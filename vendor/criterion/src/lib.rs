//! Offline stand-in for `criterion`.
//!
//! Provides the macro/type surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_with_input, bench_function, finish}`,
//! `BenchmarkId`, `Bencher::iter`, `black_box` — backed by a plain
//! wall-clock measurement loop instead of upstream's statistical machinery.
//! Results print as `group/function/param  <mean> ns/iter`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(120),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement: self.measurement,
            results: Vec::new(),
            _marker: std::marker::PhantomData,
        }
    }
}

/// Identifier of a single benchmark within a group.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement: Duration,
    results: Vec<(String, f64)>,
    // Tie the group to the driver's lifetime like upstream does.
    _marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes sample counts; here it only scales measurement time
    /// down for expensive benches (low sample sizes mean "this is slow").
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if n <= 10 {
            self.measurement = Duration::from_millis(30);
        }
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement = t;
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            measurement: self.measurement,
            ns_per_iter: None,
        };
        f(&mut b, input);
        self.record(format!("{}/{}", id.function, id.parameter), b.ns_per_iter);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            measurement: self.measurement,
            ns_per_iter: None,
        };
        f(&mut b);
        self.record(id.into(), b.ns_per_iter);
        self
    }

    fn record(&mut self, label: String, ns: Option<f64>) {
        let ns = ns.unwrap_or(f64::NAN);
        println!("{}/{label}  {ns:.1} ns/iter", self.name);
        self.results.push((label, ns));
    }

    pub fn finish(self) {}
}

/// Measures a closure's mean wall-clock time per iteration.
pub struct Bencher {
    measurement: Duration,
    ns_per_iter: Option<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        self.ns_per_iter = Some(measure(self.measurement, &mut f));
    }
}

/// Warm up briefly, then run until the time budget is spent (always at
/// least one iteration) and report the mean ns per iteration.
pub fn measure<O, F: FnMut() -> O>(budget: Duration, f: &mut F) -> f64 {
    let warmup_deadline = Instant::now() + budget / 10;
    let mut warmup_iters = 0u64;
    while Instant::now() < warmup_deadline && warmup_iters < 1000 {
        black_box(f());
        warmup_iters += 1;
    }

    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        black_box(f());
        iters += 1;
        let elapsed = start.elapsed();
        if elapsed >= budget {
            return elapsed.as_nanos() as f64 / iters as f64;
        }
    }
}

/// Declares a function that runs each listed benchmark against a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
