//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so this workspace vendors a
//! self-serialization framework with serde's *interface*: `Serialize` /
//! `Deserialize` traits plus same-named derive macros. Instead of upstream's
//! visitor architecture, values convert to and from a small tree data model
//! ([`Node`]), which `serde_json` then renders and parses. The workspace only
//! ever round-trips plain structs and enums through JSON, so this is a
//! complete replacement for how the crates here use serde.

pub use serde_derive::{Deserialize, Serialize};

pub mod node;

pub use node::Node;

/// Serialization error (unused by the tree model itself, kept for parity).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    pub fn missing_field(field: &str) -> Self {
        Error {
            msg: format!("missing field `{field}`"),
        }
    }

    pub fn expected(what: &str, while_parsing: &str) -> Self {
        Error {
            msg: format!("expected {what} while deserializing {while_parsing}"),
        }
    }

    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        Error {
            msg: format!("unknown variant `{variant}` for {ty}"),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A value that can be converted into the [`Node`] tree model.
pub trait Serialize {
    fn to_node(&self) -> Node;
}

/// A value that can be reconstructed from the [`Node`] tree model.
pub trait Deserialize: Sized {
    fn from_node(node: &Node) -> Result<Self, Error>;
}
