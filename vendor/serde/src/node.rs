//! The tree data model all serialization flows through, plus `Serialize` /
//! `Deserialize` implementations for the primitives and containers the
//! workspace uses.

use crate::{Deserialize, Error, Serialize};
use std::collections::BTreeMap;

/// A self-describing value tree — the equivalent of `serde_json::Value`,
/// shared by every format (there is exactly one: JSON).
#[derive(Clone, Debug, PartialEq)]
pub enum Node {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Node>),
    /// Insertion-ordered map with string keys.
    Map(Vec<(String, Node)>),
}

impl Node {
    /// Look up a key in a [`Node::Map`].
    pub fn get(&self, key: &str) -> Option<&Node> {
        match self {
            Node::Map(entries) => get(entries, key),
            _ => None,
        }
    }
}

/// Key lookup over raw map entries (used by derive-generated code).
pub fn get<'a>(entries: &'a [(String, Node)], key: &str) -> Option<&'a Node> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

impl Serialize for Node {
    fn to_node(&self) -> Node {
        self.clone()
    }
}

impl Deserialize for Node {
    fn from_node(node: &Node) -> Result<Self, Error> {
        Ok(node.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_node(&self) -> Node {
        (**self).to_node()
    }
}

impl Serialize for bool {
    fn to_node(&self) -> Node {
        Node::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_node(node: &Node) -> Result<Self, Error> {
        match node {
            Node::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", "bool")),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_node(&self) -> Node {
                Node::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_node(node: &Node) -> Result<Self, Error> {
                let v = match node {
                    Node::U64(v) => *v,
                    Node::I64(v) if *v >= 0 => *v as u64,
                    _ => return Err(Error::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(v)
                    .map_err(|_| Error::custom(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_node(&self) -> Node {
                Node::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_node(node: &Node) -> Result<Self, Error> {
                let v = match node {
                    Node::I64(v) => *v,
                    Node::U64(v) => i64::try_from(*v)
                        .map_err(|_| Error::custom(format!("{v} out of range for i64")))?,
                    _ => return Err(Error::expected("integer", stringify!($t))),
                };
                <$t>::try_from(v)
                    .map_err(|_| Error::custom(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_node(&self) -> Node {
        Node::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_node(node: &Node) -> Result<Self, Error> {
        match node {
            Node::F64(v) => Ok(*v),
            Node::U64(v) => Ok(*v as f64),
            Node::I64(v) => Ok(*v as f64),
            // JSON cannot represent non-finite floats; they serialize as
            // null, so null reads back as NaN.
            Node::Null => Ok(f64::NAN),
            _ => Err(Error::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_node(&self) -> Node {
        Node::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_node(node: &Node) -> Result<Self, Error> {
        f64::from_node(node).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_node(&self) -> Node {
        Node::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_node(node: &Node) -> Result<Self, Error> {
        match node {
            Node::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_node(&self) -> Node {
        Node::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_node(&self) -> Node {
        match self {
            Some(v) => v.to_node(),
            None => Node::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_node(node: &Node) -> Result<Self, Error> {
        match node {
            Node::Null => Ok(None),
            other => T::from_node(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_node(&self) -> Node {
        Node::Seq(self.iter().map(Serialize::to_node).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_node(node: &Node) -> Result<Self, Error> {
        match node {
            Node::Seq(items) => items.iter().map(T::from_node).collect(),
            _ => Err(Error::expected("sequence", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_node(&self) -> Node {
        Node::Seq(self.iter().map(Serialize::to_node).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_node(&self) -> Node {
        Node::Map(self.iter().map(|(k, v)| (k.clone(), v.to_node())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_node(node: &Node) -> Result<Self, Error> {
        match node {
            Node::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_node(v)?)))
                .collect(),
            _ => Err(Error::expected("map", "BTreeMap")),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_node(&self) -> Node {
                Node::Seq(vec![$(self.$idx.to_node()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_node(node: &Node) -> Result<Self, Error> {
                match node {
                    Node::Seq(items) if items.len() == [$($idx),+].len() => {
                        let mut it = items.iter();
                        Ok(($($name::from_node(it.next().expect(stringify!($idx)))?,)+))
                    }
                    _ => Err(Error::expected("tuple sequence", "tuple")),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
