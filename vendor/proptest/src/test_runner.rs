//! Test configuration, case errors, and the deterministic generator that
//! drives case generation.

/// Per-`proptest!` block configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property does not hold for these inputs.
    Fail(String),
    /// The inputs were rejected (e.g. by `prop_assume!`); not a failure.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Deterministic generator: xoshiro256++ seeded from the test name, so every
/// run of a given test explores the same inputs.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::from_seed(h)
    }

    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        let mut m = self.next_u64() as u128 * bound as u128;
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                m = self.next_u64() as u128 * bound as u128;
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
