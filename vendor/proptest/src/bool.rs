//! Boolean strategies: `prop::bool::ANY`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `true` or `false` with equal probability.
#[derive(Clone, Copy, Debug)]
pub struct Any;

pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
