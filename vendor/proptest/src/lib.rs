//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`, `Just`,
//! `prop_oneof!`, ranges and tuples and `Vec`s of strategies as strategies,
//! `collection::vec`, `prop::bool::ANY`, the `proptest!` macro with optional
//! `#![proptest_config(...)]`, and the `prop_assert*` macros. Cases are
//! generated from a deterministic per-test seed; there is no shrinking — a
//! failing case reports its inputs via the assertion message instead.

pub mod bool;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over `Config::cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let __strategy = ($($strategy,)+);
            for __case in 0..__config.cases {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __msg
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` != `{:?}`: {}",
                    __l,
                    __r,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Fails the current test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", __l, __r),
            ));
        }
    }};
}

/// Rejects the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Picks uniformly between alternative strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
