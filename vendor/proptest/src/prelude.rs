//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

/// Module-path alias so tests can say `prop::bool::ANY`, `prop::collection::…`.
pub use crate as prop;
