//! Collection strategies: `proptest::collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Anything usable as the size argument of [`vec`]: an exact length, a
/// half-open range, or an inclusive range.
pub trait IntoSizeRange {
    /// Returns `(min, max)` inclusive bounds.
    fn bounds(self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(self) -> (usize, usize) {
        (self, self)
    }
}

impl IntoSizeRange for std::ops::Range<usize> {
    fn bounds(self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for std::ops::RangeInclusive<usize> {
    fn bounds(self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty size range");
        (*self.start(), *self.end())
    }
}

/// Strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
