//! The [`Strategy`] trait and the combinators the workspace's tests use.

use crate::test_runner::TestRng;

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    fn prop_flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        U: Strategy,
        F: Fn(Self::Value) -> U,
    {
        FlatMap { source: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe strategy facade used by [`BoxedStrategy`] and `prop_oneof!`.
pub trait DynStrategy<V> {
    fn dyn_generate(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

pub type BoxedStrategy<V> = Box<dyn DynStrategy<V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.as_ref().dyn_generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for FlatMap<S, F>
where
    S: Strategy,
    U: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U::Value;

    fn generate(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i64).wrapping_add(rng.below(span + 1) as i64) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty strategy range");
        start + rng.unit_f64() * (end - start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}
