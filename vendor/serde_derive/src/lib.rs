//! Offline stand-in for `serde_derive`.
//!
//! Hand-parses the derive input token stream (no `syn`/`quote` in this
//! environment) and emits `Serialize`/`Deserialize` impls against the
//! vendored serde's tree data model. Supports exactly the shapes this
//! workspace derives on: named-field structs, tuple structs (newtypes
//! serialize transparently), unit structs, and enums with unit, newtype,
//! tuple, and struct variants. Generics are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed).parse().expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed).parse().expect("generated Deserialize impl must parse")
}

struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

/// A named field and whether it carries `#[serde(default)]`.
struct Field {
    name: String,
    default: bool,
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

// ---------------------------------------------------------------- parsing

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skip any number of outer attributes `#[...]`.
    fn skip_attributes(&mut self) {
        self.take_attributes();
    }

    /// Skip any number of outer attributes `#[...]`, returning true when one
    /// of them is `#[serde(default)]` (possibly among other serde options).
    fn take_attributes(&mut self) -> bool {
        let mut has_default = false;
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    has_default |= attr_is_serde_default(g.stream());
                    self.pos += 1;
                }
                other => panic!("serde derive: malformed attribute, found {other:?}"),
            }
        }
        has_default
    }

    /// Skip `pub`, `pub(crate)`, `pub(in ...)` etc.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde derive: expected identifier, found {other:?}"),
        }
    }

    /// Consume tokens until a `,` at angle-bracket depth zero (the comma is
    /// consumed too), or until the end of the stream.
    fn skip_past_top_level_comma(&mut self) {
        let mut depth = 0i32;
        while let Some(tok) = self.next() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => return,
                    _ => {}
                }
            }
        }
    }
}

fn parse_input(input: TokenStream) -> Input {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let keyword = c.expect_ident();
    let name = c.expect_ident();
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("serde derive: generic types are not supported (deriving on {name})");
        }
    }
    let kind = match keyword.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde derive: malformed struct body for {name}: {other:?}"),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: malformed enum body for {name}: {other:?}"),
        },
        other => panic!("serde derive: expected struct or enum, found `{other}`"),
    };
    Input { name, kind }
}

/// True for the token stream of a `serde(...)` attribute body whose options
/// include the bare ident `default`.
fn attr_is_serde_default(stream: TokenStream) -> bool {
    let mut toks = stream.into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default")),
        _ => false,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        let default = c.take_attributes();
        if c.at_end() {
            break;
        }
        c.skip_visibility();
        let field = c.expect_ident();
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field `{field}`, found {other:?}"),
        }
        c.skip_past_top_level_comma();
        fields.push(Field {
            name: field,
            default,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    loop {
        c.skip_attributes();
        if c.at_end() {
            break;
        }
        c.skip_visibility();
        count += 1;
        c.skip_past_top_level_comma();
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident();
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = VariantFields::Named(parse_named_fields(g.stream()));
                c.pos += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = VariantFields::Tuple(count_tuple_fields(g.stream()));
                c.pos += 1;
                f
            }
            _ => VariantFields::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        c.skip_past_top_level_comma();
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_node(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Node::Map(::std::vec![{}])", entries.join(", "))
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_node(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_node(&self.{i})"))
                .collect();
            format!("::serde::Node::Seq(::std::vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Node::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| serialize_variant_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_node(&self) -> ::serde::Node {{ {body} }}\n\
         }}"
    )
}

fn serialize_variant_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.fields {
        VariantFields::Unit => format!(
            "{name}::{vname} => \
             ::serde::Node::Str(::std::string::String::from(\"{vname}\")),"
        ),
        VariantFields::Named(fields) => {
            let binds = fields
                .iter()
                .map(|f| f.name.clone())
                .collect::<Vec<_>>()
                .join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_node({f}))"
                    )
                })
                .collect();
            format!(
                "{name}::{vname} {{ {binds} }} => ::serde::Node::Map(::std::vec![\
                 (::std::string::String::from(\"{vname}\"), \
                  ::serde::Node::Map(::std::vec![{}]))]),",
                entries.join(", ")
            )
        }
        VariantFields::Tuple(1) => format!(
            "{name}::{vname}(__x0) => ::serde::Node::Map(::std::vec![\
             (::std::string::String::from(\"{vname}\"), \
              ::serde::Serialize::to_node(__x0))]),"
        ),
        VariantFields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
            let items: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_node({b})"))
                .collect();
            format!(
                "{name}::{vname}({}) => ::serde::Node::Map(::std::vec![\
                 (::std::string::String::from(\"{vname}\"), \
                  ::serde::Node::Seq(::std::vec![{}]))]),",
                binds.join(", "),
                items.join(", ")
            )
        }
    }
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| named_field_init(f)).collect();
            format!(
                "match __node {{\n\
                     ::serde::Node::Map(__entries) => ::std::result::Result::Ok({name} {{ {} }}),\n\
                     _ => ::std::result::Result::Err(::serde::Error::expected(\"map\", \"{name}\")),\n\
                 }}",
                inits.join(", ")
            )
        }
        Kind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_node(__node)?))"
        ),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_node(&__items[{i}])?"))
                .collect();
            format!(
                "match __node {{\n\
                     ::serde::Node::Seq(__items) if __items.len() == {n} => \
                         ::std::result::Result::Ok({name}({})),\n\
                     _ => ::std::result::Result::Err(\
                         ::serde::Error::expected(\"sequence of {n}\", \"{name}\")),\n\
                 }}",
                items.join(", ")
            )
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, VariantFields::Unit))
                .map(|v| deserialize_variant_arm(name, v))
                .collect();
            format!(
                "match __node {{\n\
                     ::serde::Node::Str(__s) => match __s.as_str() {{\n\
                         {}\n\
                         __other => ::std::result::Result::Err(\
                             ::serde::Error::unknown_variant(__other, \"{name}\")),\n\
                     }},\n\
                     ::serde::Node::Map(__top) if __top.len() == 1 => {{\n\
                         let (__k, __v) = &__top[0];\n\
                         match __k.as_str() {{\n\
                             {}\n\
                             __other => ::std::result::Result::Err(\
                                 ::serde::Error::unknown_variant(__other, \"{name}\")),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(::serde::Error::expected(\
                         \"string or single-entry map\", \"{name}\")),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_node(__node: &::serde::Node) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

fn named_field_init(f: &Field) -> String {
    let field = &f.name;
    if f.default {
        format!(
            "{field}: match ::serde::node::get(__entries, \"{field}\") {{\
                 ::std::option::Option::Some(__n) => \
                     ::serde::Deserialize::from_node(__n)?,\
                 ::std::option::Option::None => ::std::default::Default::default(),\
             }}"
        )
    } else {
        format!(
            "{field}: ::serde::Deserialize::from_node(\
                 ::serde::node::get(__entries, \"{field}\")\
                     .ok_or_else(|| ::serde::Error::missing_field(\"{field}\"))?)?"
        )
    }
}

fn deserialize_variant_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.fields {
        VariantFields::Unit => unreachable!("unit variants handled in the Str arm"),
        VariantFields::Named(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| named_field_init(f)).collect();
            format!(
                "\"{vname}\" => match __v {{\n\
                     ::serde::Node::Map(__entries) => \
                         ::std::result::Result::Ok({name}::{vname} {{ {} }}),\n\
                     _ => ::std::result::Result::Err(\
                         ::serde::Error::expected(\"map\", \"{name}::{vname}\")),\n\
                 }},",
                inits.join(", ")
            )
        }
        VariantFields::Tuple(1) => format!(
            "\"{vname}\" => ::std::result::Result::Ok(\
                 {name}::{vname}(::serde::Deserialize::from_node(__v)?)),"
        ),
        VariantFields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_node(&__items[{i}])?"))
                .collect();
            format!(
                "\"{vname}\" => match __v {{\n\
                     ::serde::Node::Seq(__items) if __items.len() == {n} => \
                         ::std::result::Result::Ok({name}::{vname}({})),\n\
                     _ => ::std::result::Result::Err(\
                         ::serde::Error::expected(\"sequence of {n}\", \"{name}::{vname}\")),\n\
                 }},",
                items.join(", ")
            )
        }
    }
}
