//! Offline stand-in for `serde_json`: renders and parses JSON against the
//! vendored serde's tree data model. Covers the workspace's usage —
//! `Value`, `to_value`, `to_string`, `to_string_pretty`, `from_str` — with a
//! full recursive-descent parser so round-trips are exact.

use serde::{Deserialize, Serialize};

/// JSON values are exactly the serde tree model.
pub use serde::Node as Value;

/// Error raised by serialization or parsing.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_node())
}

/// Render compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_node(&mut out, &value.to_node(), None, 0);
    Ok(out)
}

/// Render human-readable JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_node(&mut out, &value.to_node(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any deserializable value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let node = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(T::from_node(&node)?)
}

// ---------------------------------------------------------------- writer

fn write_node(out: &mut String, node: &Value, indent: Option<usize>, depth: usize) {
    match node {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => write_f64(out, *v),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_compound(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_node(out, &items[i], indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_compound(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, v) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_node(out, v, indent, depth + 1);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(step * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(step * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no NaN/Infinity; upstream serde_json writes null.
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    // Keep a float marker so the value parses back as a float.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require the paired escape.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error::new("invalid \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(Value::U64(v))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Value::I64(v))
        } else {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&"x\"y").unwrap(), "\"x\\\"y\"");
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&s).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert("a".to_string(), vec![1u64, 2]);
        m.insert("b".to_string(), vec![]);
        let s = to_string(&m).unwrap();
        assert_eq!(s, "{\"a\":[1,2],\"b\":[]}");
        assert_eq!(from_str::<BTreeMap<String, Vec<u64>>>(&s).unwrap(), m);
    }

    #[test]
    fn pretty_output_shape() {
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), vec![1u64]);
        assert_eq!(to_string_pretty(&m).unwrap(), "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn float_fidelity() {
        for v in [0.1, 1.0, 1e300, -2.25, 1234.5678, f64::MIN_POSITIVE] {
            let s = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), v, "via {s}");
        }
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("42 junk").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
