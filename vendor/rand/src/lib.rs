//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors a
//! minimal, dependency-free implementation of exactly the surface it uses:
//! `RngCore`, `Rng::{gen_range, gen_bool}`, `SeedableRng::seed_from_u64`, and
//! `rngs::StdRng`. Determinism is the only contract the workspace relies on —
//! every simulation seed is explicit — so `StdRng` here is xoshiro256++
//! seeded via SplitMix64 rather than the upstream ChaCha12.

/// Core random number generation trait: a source of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators. Upstream requires `from_seed`; this workspace only
/// ever seeds from a `u64`, so that is the whole trait here.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can produce a uniform single sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53-bit mantissa fraction in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Debiased multiply-shift (Lemire's method).
    let mut m = rng.next_u64() as u128 * span as u128;
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span; // 2^64 mod span
        while lo < threshold {
            m = rng.next_u64() as u128 * span as u128;
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_uint_ranges {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_uint_ranges!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let sa: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5..=9usize);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
