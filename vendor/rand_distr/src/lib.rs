//! Offline stand-in for `rand_distr`: the exponential and normal
//! distributions this workspace samples, via inverse-transform and
//! Box–Muller respectively. Deterministic given a deterministic `Rng`.

use rand::Rng;

/// Types that can produce samples of `T` from a source of randomness.
pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

#[inline]
fn unit_open<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // (0, 1]: never zero, so ln() below is always finite.
    ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Exponential distribution with rate `lambda`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exp {
    lambda: f64,
}

/// Error type for [`Exp`] construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExpError {
    LambdaTooSmall,
}

impl std::fmt::Display for ExpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lambda must be positive and finite")
    }
}

impl std::error::Error for ExpError {}

impl Exp {
    pub fn new(lambda: f64) -> Result<Self, ExpError> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(ExpError::LambdaTooSmall)
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -unit_open(rng).ln() / self.lambda
    }
}

/// Normal (Gaussian) distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

/// Error type for [`Normal`] construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NormalError {
    BadVariance,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "standard deviation must be non-negative and finite")
    }
}

impl std::error::Error for NormalError {}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if std_dev >= 0.0 && std_dev.is_finite() && mean.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(NormalError::BadVariance)
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; two uniforms per sample keeps the draw stateless.
        let u1 = unit_open(rng);
        let u2 = unit_open(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exp_mean_close_to_inverse_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        let exp = Exp::new(0.5).unwrap();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exp.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let normal = Normal::new(3.0, 2.0).unwrap();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }
}
