//! # wtpg — Concurrency Control of Bulk Access Transactions
//!
//! A from-scratch Rust reproduction of Ohmori, Kitsuregawa & Tanaka,
//! *"Concurrency Control of Bulk Access Transactions on Shared Nothing
//! Parallel Database Machines"* (ICDE 1990): the Weighted Transaction
//! Precedence Graph (WTPG), the CHAIN and K-WTPG schedulers, the ASL / C2PL
//! / NODC baselines, and the full simulation study (Experiments 1–4,
//! Figures 6–10).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`core`] (`wtpg-core`) — transaction model, partition lock table, the
//!   WTPG, the chain optimisers (including the paper's appendix DP, with a
//!   documented erratum), the `E(q)` estimator, and all seven schedulers.
//! * [`graph`] (`wtpg-graph`) — the directed-graph substrate (arena digraph,
//!   traversals, topological sort, DAG longest path).
//! * [`sim`] (`wtpg-sim`) — the discrete-event shared-nothing machine and
//!   the λ-sweep experiment runner.
//! * [`workload`] (`wtpg-workload`) — the paper's transaction patterns,
//!   hot-set catalogs, and the erroneous-I/O-demand model.
//!
//! ## Quickstart
//!
//! ```
//! use wtpg::core::sched::{ChainScheduler, Scheduler, Admission, LockOutcome};
//! use wtpg::core::txn::{StepSpec, TxnId, TxnSpec};
//! use wtpg::core::time::Tick;
//!
//! // Declare the paper's Figure-1 transactions (A=P0, B=P1, C=P2, D=P3).
//! let t1 = TxnSpec::new(TxnId(1), vec![
//!     StepSpec::read(0, 1.0), StepSpec::read(1, 3.0), StepSpec::write(0, 1.0),
//! ]);
//! let t2 = TxnSpec::new(TxnId(2), vec![
//!     StepSpec::read(2, 1.0), StepSpec::write(0, 1.0),
//! ]);
//! let t3 = TxnSpec::new(TxnId(3), vec![
//!     StepSpec::write(2, 1.0), StepSpec::read(3, 3.0),
//! ]);
//!
//! let mut chain = ChainScheduler::new(5000);
//! assert_eq!(chain.on_arrive(&t1, Tick(0)).unwrap().0, Admission::Admitted);
//! assert_eq!(chain.on_arrive(&t2, Tick(0)).unwrap().0, Admission::Admitted);
//! assert_eq!(chain.on_arrive(&t3, Tick(0)).unwrap().0, Admission::Admitted);
//!
//! // Example 3.3: T2's first step is inconsistent with the optimal
//! // serialization order W = {T1→T2, T3→T2}, so CHAIN delays it.
//! let (outcome, _) = chain.on_request(TxnId(2), 0, Tick(1)).unwrap();
//! assert_eq!(outcome, LockOutcome::Delayed);
//! ```
//!
//! See the `examples/` directory for full scenarios (the banking batch
//! window, a hot master-file stress test, erroneous cost declarations) and
//! the `repro` binary in `wtpg-bench` for regenerating every figure of the
//! paper.

#![forbid(unsafe_code)]

pub use wtpg_core as core;
pub use wtpg_graph as graph;
pub use wtpg_sim as sim;
pub use wtpg_workload as workload;
