//! Differential testing of the schedule certifier (DESIGN.md §10).
//!
//! Two directions:
//!
//! * **soundness** — histories produced by real scheduler runs (CHAIN and
//!   K-WTPG over randomized seeds and arrival rates) certify clean under
//!   their claimed modes;
//! * **sensitivity** — minimally corrupted versions of those same histories
//!   (two conflicting grants swapped between transactions; a commit dropped
//!   while a later conflicting grant exists) are rejected.

use std::collections::BTreeMap;

use proptest::prelude::*;
use proptest::test_runner::Config;

use wtpg::core::certify::{certify_history, CertifyMode};
use wtpg::core::history::{Event, History};
use wtpg::core::txn::{AccessMode, TxnId, TxnSpec};
use wtpg::core::PartitionId;
use wtpg::sim::machine::Machine;
use wtpg::sim::sched_kind::SchedKind;
use wtpg::sim::SimParams;
use wtpg::workload::Experiment;

/// Runs one certified simulation; `Machine::run` itself panics if the run
/// fails certification, so returning at all is the soundness half.
fn certified_run(
    kind: SchedKind,
    seed: u64,
    lambda: f64,
) -> (History, BTreeMap<TxnId, TxnSpec>) {
    let params = SimParams {
        sim_length_ms: 80_000,
        seed,
        certify: true,
        ..SimParams::paper_defaults()
    };
    let workload = Experiment::exp1().workload(seed);
    let mut m = Machine::new(params.clone(), kind.build(&params), workload);
    m.run(lambda);
    let report = m.certify().expect("a scheduler's own run must certify");
    assert!(report.grants > 0, "{kind:?} run too small to be meaningful");
    (m.history().expect("certification records history").clone(), m.spec_log().clone())
}

fn mode_of(kind: SchedKind, params_k: usize) -> CertifyMode {
    match kind {
        SchedKind::Chain => CertifyMode::Chain,
        SchedKind::KWtpg => CertifyMode::KConflict(params_k),
        _ => CertifyMode::General,
    }
}

/// Swaps the payloads (not the timestamps) of the first pair of conflicting
/// grant events issued to different transactions on the same partition.
fn swap_conflicting_grants(h: &History) -> Option<History> {
    let ev = h.events();
    for i in 0..ev.len() {
        let Event::Granted {
            txn: t1,
            partition: p1,
            mode: m1,
            ..
        } = ev[i].1
        else {
            continue;
        };
        for j in i + 1..ev.len() {
            let Event::Granted {
                txn: t2,
                partition: p2,
                mode: m2,
                ..
            } = ev[j].1
            else {
                continue;
            };
            if t1 != t2 && p1 == p2 && m1.conflicts_with(m2) {
                let mut out = History::new();
                for (k, &(t, e)) in ev.iter().enumerate() {
                    let e = if k == i {
                        ev[j].1
                    } else if k == j {
                        ev[i].1
                    } else {
                        e
                    };
                    out.push(t, e);
                }
                return Some(out);
            }
        }
    }
    None
}

/// Drops the first commit whose transaction holds a lock that a *later*
/// grant conflicts with — without the release, that later grant is illegal.
fn drop_conflicted_commit(h: &History) -> Option<History> {
    let ev = h.events();
    for i in 0..ev.len() {
        let Event::Committed(t) = ev[i].1 else {
            continue;
        };
        let held: Vec<(PartitionId, AccessMode)> = ev[..i]
            .iter()
            .filter_map(|&(_, e)| match e {
                Event::Granted {
                    txn,
                    partition,
                    mode,
                    ..
                } if txn == t => Some((partition, mode)),
                _ => None,
            })
            .collect();
        let later_conflict = ev[i + 1..].iter().any(|&(_, e)| {
            matches!(e, Event::Granted { txn, partition, mode, .. }
                if txn != t
                    && held.iter().any(|&(p, m)| p == partition && m.conflicts_with(mode)))
        });
        if later_conflict {
            let mut out = History::new();
            for (k, &(tick, e)) in ev.iter().enumerate() {
                if k != i {
                    out.push(tick, e);
                }
            }
            return Some(out);
        }
    }
    None
}

proptest! {
    #![proptest_config(Config::with_cases(3))]

    #[test]
    fn chain_runs_certify_and_mutations_are_rejected(
        seed in 0u64..1_000,
        lambda in 0.35f64..0.65,
    ) {
        let kind = SchedKind::Chain;
        let (h, specs) = certified_run(kind, seed, lambda);
        let mode = mode_of(kind, 2);
        prop_assert!(certify_history(&h, &specs, mode).is_ok());

        if let Some(bad) = swap_conflicting_grants(&h) {
            prop_assert!(
                certify_history(&bad, &specs, mode).is_err(),
                "swapped conflicting grants must not certify"
            );
        }
        if let Some(bad) = drop_conflicted_commit(&h) {
            prop_assert!(
                certify_history(&bad, &specs, mode).is_err(),
                "dropped commit with a later conflicting grant must not certify"
            );
        }
    }

    #[test]
    fn kwtpg_runs_certify_and_mutations_are_rejected(
        seed in 1_000u64..2_000,
        lambda in 0.35f64..0.65,
    ) {
        let kind = SchedKind::KWtpg;
        let (h, specs) = certified_run(kind, seed, lambda);
        let mode = mode_of(kind, 2);
        prop_assert!(certify_history(&h, &specs, mode).is_ok());

        if let Some(bad) = swap_conflicting_grants(&h) {
            prop_assert!(
                certify_history(&bad, &specs, mode).is_err(),
                "swapped conflicting grants must not certify"
            );
        }
        if let Some(bad) = drop_conflicted_commit(&h) {
            prop_assert!(
                certify_history(&bad, &specs, mode).is_err(),
                "dropped commit with a later conflicting grant must not certify"
            );
        }
    }
}

/// The corruption helpers must actually find something to corrupt on a
/// contended run — otherwise the proptest above would be vacuous.
#[test]
fn mutation_helpers_find_targets_on_contended_runs() {
    let (h, _) = certified_run(SchedKind::KWtpg, 7, 0.6);
    assert!(swap_conflicting_grants(&h).is_some());
    assert!(drop_conflicted_commit(&h).is_some());
}
