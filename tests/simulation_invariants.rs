//! Cross-crate invariants: every lock-based scheduler, driven by the real
//! machine over the real pattern workloads (including erroneous
//! declarations), must produce serializable, strict, mutually exclusive,
//! deadlock-free executions.

use wtpg::sim::machine::Machine;
use wtpg::sim::{SchedKind, SimParams};
use wtpg::workload::{Experiment, PatternWorkload};

fn run_with_history(
    kind: SchedKind,
    workload: PatternWorkload,
    lambda: f64,
    sim_ms: u64,
) -> wtpg::core::history::History {
    let params = SimParams {
        sim_length_ms: sim_ms,
        ..SimParams::paper_defaults()
    };
    let mut m = Machine::new(params.clone(), kind.build(&params), workload);
    m.record_history();
    m.run(lambda);
    m.history().unwrap().clone()
}

fn assert_correct(kind: SchedKind, h: &wtpg::core::history::History) {
    assert!(
        h.committed().len() > 3,
        "{kind:?} committed too little to be meaningful"
    );
    h.check_conflict_serializable()
        .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
    h.check_strictness()
        .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
    h.check_lock_exclusion()
        .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
}

#[test]
fn pattern1_histories_are_correct() {
    let exp = Experiment::exp1();
    for kind in SchedKind::CONTENDERS {
        let h = run_with_history(kind, exp.workload(11), 0.5, 150_000);
        assert_correct(kind, &h);
    }
}

#[test]
fn hot_set_histories_are_correct() {
    let exp = Experiment::exp2(4);
    for kind in SchedKind::CONTENDERS {
        let h = run_with_history(kind, exp.workload(13), 0.6, 150_000);
        assert_correct(kind, &h);
    }
}

#[test]
fn pattern3_histories_are_correct() {
    let exp = Experiment::exp3();
    for kind in SchedKind::CONTENDERS {
        let h = run_with_history(kind, exp.workload(17), 0.5, 150_000);
        assert_correct(kind, &h);
    }
}

/// Even with wildly wrong declared costs, correctness is untouched — only
/// performance may degrade (locks and conflicts never depend on weights).
#[test]
fn erroneous_declarations_never_break_correctness() {
    let exp = Experiment::exp4(1.0);
    for kind in [
        SchedKind::Chain,
        SchedKind::KWtpg,
        SchedKind::ChainC2pl,
        SchedKind::KC2pl,
    ] {
        let h = run_with_history(kind, exp.workload(19), 0.5, 150_000);
        assert_correct(kind, &h);
    }
}

/// NODC commits everything it starts but offers no isolation — its history
/// is allowed to be non-serializable (it is the paper's upper bound, not a
/// real scheduler). Strictness of the drive protocol still holds.
#[test]
fn nodc_history_is_strict_but_not_necessarily_serializable() {
    let exp = Experiment::exp1();
    let h = run_with_history(SchedKind::Nodc, exp.workload(23), 0.8, 150_000);
    assert!(h.committed().len() > 10);
    h.check_strictness().unwrap();
    // No assertion on serializability: at this arrival rate NODC interleaves
    // conflicting bulk updates freely.
}

/// Determinism across the whole stack: same seed, same history length and
/// commit sequence.
#[test]
fn full_stack_determinism() {
    let exp = Experiment::exp1();
    let h1 = run_with_history(SchedKind::KWtpg, exp.workload(31), 0.5, 100_000);
    let h2 = run_with_history(SchedKind::KWtpg, exp.workload(31), 0.5, 100_000);
    assert_eq!(h1.len(), h2.len());
    assert_eq!(h1.committed(), h2.committed());
}
