//! Property tests for the simulated machine: correctness invariants and
//! conservation laws must hold for random workload shapes, arrival rates,
//! and parameter settings.

use proptest::prelude::*;

use wtpg_core::history::Event as HEvent;
use wtpg_core::partition::Catalog;
use wtpg_core::txn::StepSpec;
use wtpg_sim::config::SimParams;
use wtpg_sim::machine::Machine;
use wtpg_sim::sched_kind::SchedKind;
use wtpg_sim::workload::FixedWorkload;

/// Random repeating workload over a small catalog.
fn arb_shapes(num_parts: u32) -> impl Strategy<Value = Vec<Vec<StepSpec>>> {
    proptest::collection::vec(
        proptest::collection::vec((0..num_parts, prop::bool::ANY, 1u64..=6), 1..=3),
        1..=4,
    )
    .prop_map(|shapes| {
        shapes
            .into_iter()
            .map(|steps| {
                steps
                    .into_iter()
                    .map(|(p, write, objs)| {
                        if write {
                            StepSpec::write(p, objs as f64)
                        } else {
                            StepSpec::read(p, objs as f64)
                        }
                    })
                    .collect()
            })
            .collect()
    })
}

fn run(
    kind: SchedKind,
    shapes: Vec<Vec<StepSpec>>,
    lambda: f64,
    seed: u64,
) -> (wtpg_sim::RunReport, wtpg_core::history::History) {
    let params = SimParams {
        sim_length_ms: 80_000,
        seed,
        ..SimParams::paper_defaults()
    };
    let catalog = Catalog::uniform(8, 6, 8);
    let workload = FixedWorkload::new(catalog, shapes);
    let mut m = Machine::new(params.clone(), kind.build(&params), workload);
    m.record_history();
    let r = m.run(lambda);
    (r, m.history().unwrap().clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Each lock-based scheduler's histories stay correct on arbitrary
    /// workload shapes through the timed machine.
    #[test]
    fn machine_histories_correct(
        shapes in arb_shapes(8),
        lambda in 0.1f64..0.8,
        seed in 0u64..1000,
    ) {
        for kind in [SchedKind::C2pl, SchedKind::KWtpg, SchedKind::Chain, SchedKind::Asl] {
            let (_, h) = run(kind, shapes.clone(), lambda, seed);
            h.check_conflict_serializable()
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            h.check_strictness().unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            h.check_lock_exclusion().unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        }
    }

    /// Work conservation: every committed transaction did exactly its
    /// declared actual work at the data nodes.
    #[test]
    fn work_is_conserved(
        shapes in arb_shapes(8),
        lambda in 0.1f64..0.6,
        seed in 0u64..1000,
    ) {
        let (r, h) = run(SchedKind::C2pl, shapes, lambda, seed);
        // Per-transaction progress accounting.
        let mut per_txn: std::collections::BTreeMap<_, u64> = Default::default();
        for &(_, e) in h.events() {
            if let HEvent::Progress { txn, amount } = e {
                *per_txn.entry(txn).or_default() += amount.units();
            }
        }
        // Committed transactions must have exactly their total actual cost
        // processed — needs the spec; reconstruct from grants: instead check
        // the weaker conservation that every committed txn made progress and
        // the DN busy time equals the total processed work.
        // Metrics count completions whose commit *processing* finishes inside
        // the measurement window; the history records the commit decision at
        // event time, so it may run a commit or two ahead at the boundary.
        let hist_committed = h.committed().len();
        prop_assert!(hist_committed >= r.completed as usize);
        prop_assert!(hist_committed - (r.completed as usize) <= 2);
        for t in h.committed() {
            prop_assert!(per_txn.get(&t).copied().unwrap_or(0) > 0, "{t} committed without work");
        }
        let total_progress: u64 = per_txn.values().sum();
        // DN busy time (1 ms per unit at ObjTime=1000) ≥ progress of committed.
        // (in-flight txns also consumed DN time, so use ≥)
        let total_busy: u64 = (r.dn_utilization * 8.0 * 80_000.0).round() as u64;
        prop_assert!(
            (total_busy as i64 - total_progress as i64).abs() <= 8_000,
            "busy {total_busy} vs progress {total_progress}"
        );
    }

    /// Commits never exceed arrivals, grants never exceed what the steps
    /// require, and every counter is self-consistent.
    #[test]
    fn counters_are_consistent(
        shapes in arb_shapes(6),
        lambda in 0.1f64..0.8,
        seed in 0u64..1000,
    ) {
        for kind in [SchedKind::Asl, SchedKind::KWtpg] {
            let (r, h) = run(kind, shapes.clone(), lambda, seed);
            prop_assert!(r.completed <= r.arrivals);
            let grants_in_history = h
                .events()
                .iter()
                .filter(|(_, e)| matches!(e, HEvent::Granted { .. }))
                .count() as u64;
            // ASL grants all steps at once but records per-step grants when
            // driven; count must match the metric.
            prop_assert_eq!(r.grants, grants_in_history, "{:?}", kind);
        }
    }

    /// Throughput is weakly increasing in arrival rate while far below
    /// saturation (NODC, low λ).
    #[test]
    fn nodc_throughput_monotone_at_low_lambda(shapes in arb_shapes(8), seed in 0u64..100) {
        let (lo, _) = run(SchedKind::Nodc, shapes.clone(), 0.05, seed);
        let (hi, _) = run(SchedKind::Nodc, shapes, 0.15, seed);
        // 80 s windows are short; allow slack for boundary effects.
        prop_assert!(hi.completed + 2 >= lo.completed);
    }
}
