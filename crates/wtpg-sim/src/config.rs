//! Simulation parameters — the paper's Table 1.
//!
//! Table 1 itself did not survive into the available text (it is an image);
//! the values stated in prose (`ObjTime = 1 s`, `NumNodes = 8`, 2,000,000
//! clocks, `keeptime = 5000 ms`) are used verbatim and the remaining control
//! costs are chosen from the paper's description ("determined by instruction
//! counts of the control programs", all ≪ ObjTime) — see DESIGN.md §5 for
//! the rationale behind each assumed value.

use serde::{Deserialize, Serialize};

/// All machine and control-cost parameters of one simulation run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimParams {
    /// Number of data-processing nodes (`NumNodes`).
    pub num_nodes: u32,
    /// Time to process one object at a DN, ms (`ObjTime`).
    pub obj_time_ms: u64,
    /// CN cost to start a transaction — 2PC coordinator setup (`startuptime`).
    pub startup_time_ms: u64,
    /// CN cost to commit a transaction (`committime`).
    pub commit_time_ms: u64,
    /// CN cost of one deadlock prediction (`ddtime`, C2PL).
    pub dd_time_ms: u64,
    /// CN cost of one full-SR-order optimisation (`chaintime`, CHAIN).
    pub chain_time_ms: u64,
    /// CN cost of one `E(q)` evaluation (`kwtpgtime`, K-WTPG).
    pub kwtpg_time_ms: u64,
    /// CN cost of a plain lock-table operation (request handling floor).
    pub lockop_time_ms: u64,
    /// Control-saving period (`keeptime`): reuse `W` / cached `E(q)` until
    /// this much time has passed (§3.4).
    pub keeptime_ms: u64,
    /// Fixed resubmission delay for delayed requests and rejected arrivals.
    pub retry_delay_ms: u64,
    /// Simulated duration, ms (paper: 2,000,000 clocks of 1 ms).
    pub sim_length_ms: u64,
    /// Warm-up period excluded from metrics (0 = match the paper, which
    /// reports whole-run means).
    pub warmup_ms: u64,
    /// RNG seed for arrivals and workload generation.
    pub seed: u64,
    /// `K` for the K-WTPG scheduler (the paper evaluates K = 2).
    pub k: usize,
    /// Record the full history and certify it against the scheduler's
    /// claimed guarantees at the end of the run
    /// ([`wtpg_core::certify::certify_history`]). Off by default: recording
    /// costs memory and the replay costs time. The `WTPG_CERTIFY=1`
    /// environment variable enables it regardless of this field.
    #[serde(default)]
    pub certify: bool,
}

impl SimParams {
    /// The reproduction's default parameter set (Table 1 as recovered /
    /// assumed; see DESIGN.md §5).
    pub fn paper_defaults() -> SimParams {
        SimParams {
            num_nodes: 8,
            obj_time_ms: 1000,
            startup_time_ms: 10,
            commit_time_ms: 20,
            dd_time_ms: 5,
            chain_time_ms: 30,
            kwtpg_time_ms: 15,
            lockop_time_ms: 1,
            keeptime_ms: 5000,
            retry_delay_ms: 1000,
            sim_length_ms: 2_000_000,
            warmup_ms: 0,
            seed: 42,
            k: 2,
            certify: false,
        }
    }

    /// A shortened configuration for tests and quick runs.
    pub fn quick() -> SimParams {
        SimParams {
            sim_length_ms: 200_000,
            ..SimParams::paper_defaults()
        }
    }

    /// Same parameters with a different seed (replications).
    pub fn with_seed(mut self, seed: u64) -> SimParams {
        self.seed = seed;
        self
    }

    /// Milliseconds a DN needs for `units` milli-objects of bulk work.
    ///
    /// Exact at `ObjTime = 1000 ms` (1 unit = 1 ms); otherwise rounded to the
    /// nearest ms with a 1 ms floor for non-empty work.
    pub fn dn_time(&self, units: u64) -> u64 {
        if units == 0 {
            return 0;
        }
        ((units * self.obj_time_ms + 500) / 1000).max(1)
    }
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_prose_values() {
        let p = SimParams::paper_defaults();
        assert_eq!(p.num_nodes, 8);
        assert_eq!(p.obj_time_ms, 1000);
        assert_eq!(p.sim_length_ms, 2_000_000);
        assert_eq!(p.keeptime_ms, 5000);
        assert_eq!(p.k, 2);
    }

    #[test]
    fn dn_time_is_identity_at_default_objtime() {
        let p = SimParams::paper_defaults();
        assert_eq!(p.dn_time(1000), 1000); // one object, one second
        assert_eq!(p.dn_time(200), 200); // 0.2 objects
        assert_eq!(p.dn_time(0), 0);
    }

    #[test]
    fn dn_time_scales_with_objtime() {
        let mut p = SimParams::paper_defaults();
        p.obj_time_ms = 500;
        assert_eq!(p.dn_time(1000), 500);
        assert_eq!(p.dn_time(1), 1); // floor at 1 ms
    }

    #[test]
    fn serde_round_trip() {
        let p = SimParams::paper_defaults();
        let s = serde_json::to_string(&p).unwrap();
        let q: SimParams = serde_json::from_str(&s).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn configs_without_certify_field_still_parse() {
        // Configs written before the certifier existed must keep loading.
        let s = serde_json::to_string(&SimParams::paper_defaults()).unwrap();
        let without = s
            .replace(",\"certify\":false", "")
            .replace("\"certify\":false,", "");
        assert!(!without.contains("certify"), "field not stripped: {without}");
        let p: SimParams = serde_json::from_str(&without).unwrap();
        assert!(!p.certify);
    }
}
