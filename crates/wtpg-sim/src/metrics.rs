//! Run metrics: response time, throughput, utilisation, and scheduling
//! incident counters.

use serde::{Deserialize, Serialize};
use wtpg_core::time::Tick;

/// Accumulates observations during a run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Response times (creation → completion) of committed transactions, ms.
    pub response_times_ms: Vec<u64>,
    /// Per-DN busy milliseconds.
    pub dn_busy_ms: Vec<u64>,
    /// CN busy milliseconds.
    pub cn_busy_ms: u64,
    /// Transactions that arrived (first attempts only).
    pub arrivals: u64,
    /// Admission rejections (ASL lock failure / structural constraint).
    pub rejections: u64,
    /// Requests that found a conflicting held lock.
    pub blocks: u64,
    /// Requests delayed by the scheduler's policy.
    pub delays: u64,
    /// Grants issued.
    pub grants: u64,
    /// Control-operation counters (actually computed, after control saving).
    pub deadlock_tests: u64,
    /// CHAIN optimisations performed.
    pub chain_opts: u64,
    /// `E(q)` evaluations performed.
    pub eq_evals: u64,
}

impl Metrics {
    /// Fresh metrics for a machine with `num_nodes` DNs.
    pub fn new(num_nodes: u32) -> Metrics {
        Metrics {
            dn_busy_ms: vec![0; num_nodes as usize],
            ..Metrics::default()
        }
    }

    /// Record a completion.
    pub fn complete(&mut self, created: Tick, committed: Tick) {
        self.response_times_ms.push(committed - created);
    }

    /// Finalises into a report over `measured_ms` of simulated time.
    pub fn report(&self, measured_ms: u64) -> RunReport {
        let n = self.response_times_ms.len();
        let mean_rt = if n == 0 {
            f64::NAN
        } else {
            self.response_times_ms.iter().sum::<u64>() as f64 / n as f64
        };
        let mut sorted = self.response_times_ms.clone();
        sorted.sort_unstable();
        let pct = |p: f64| -> f64 {
            if sorted.is_empty() {
                f64::NAN
            } else {
                let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
                sorted[idx] as f64
            }
        };
        let dn_util = if measured_ms == 0 || self.dn_busy_ms.is_empty() {
            0.0
        } else {
            self.dn_busy_ms.iter().sum::<u64>() as f64
                / (measured_ms as f64 * self.dn_busy_ms.len() as f64)
        };
        RunReport {
            completed: n as u64,
            mean_rt_ms: mean_rt,
            p50_rt_ms: pct(0.50),
            p95_rt_ms: pct(0.95),
            throughput_tps: n as f64 / (measured_ms as f64 / 1000.0),
            dn_utilization: dn_util,
            cn_utilization: if measured_ms == 0 {
                0.0
            } else {
                self.cn_busy_ms as f64 / measured_ms as f64
            },
            arrivals: self.arrivals,
            rejections: self.rejections,
            blocks: self.blocks,
            delays: self.delays,
            grants: self.grants,
            deadlock_tests: self.deadlock_tests,
            chain_opts: self.chain_opts,
            eq_evals: self.eq_evals,
        }
    }
}

/// Summary of one simulation run — the numbers the paper plots.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunReport {
    /// Transactions committed in the measurement window.
    pub completed: u64,
    /// Mean response time, ms (the paper's `RT`).
    pub mean_rt_ms: f64,
    /// Median response time, ms.
    pub p50_rt_ms: f64,
    /// 95th-percentile response time, ms.
    pub p95_rt_ms: f64,
    /// Completed transactions per second (the paper's `TPS`).
    pub throughput_tps: f64,
    /// Mean DN busy fraction.
    pub dn_utilization: f64,
    /// CN busy fraction.
    pub cn_utilization: f64,
    /// First-attempt arrivals.
    pub arrivals: u64,
    /// Admission rejections.
    pub rejections: u64,
    /// Blocked requests.
    pub blocks: u64,
    /// Delayed requests.
    pub delays: u64,
    /// Grants.
    pub grants: u64,
    /// Deadlock predictions computed.
    pub deadlock_tests: u64,
    /// CHAIN optimisations computed.
    pub chain_opts: u64,
    /// `E(q)` evaluations computed.
    pub eq_evals: u64,
}

impl RunReport {
    /// Mean response time in seconds.
    pub fn mean_rt_secs(&self) -> f64 {
        self.mean_rt_ms / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_basic_stats() {
        let mut m = Metrics::new(2);
        m.complete(Tick(0), Tick(1000));
        m.complete(Tick(500), Tick(3500));
        m.dn_busy_ms = vec![500, 1500];
        m.cn_busy_ms = 100;
        let r = m.report(10_000);
        assert_eq!(r.completed, 2);
        assert!((r.mean_rt_ms - 2000.0).abs() < 1e-9);
        assert!((r.throughput_tps - 0.2).abs() < 1e-9);
        assert!((r.dn_utilization - 0.1).abs() < 1e-9);
        assert!((r.cn_utilization - 0.01).abs() < 1e-9);
    }

    #[test]
    fn empty_run_has_nan_rt_zero_tps() {
        let m = Metrics::new(1);
        let r = m.report(1000);
        assert!(r.mean_rt_ms.is_nan());
        assert_eq!(r.throughput_tps, 0.0);
    }

    #[test]
    fn percentiles() {
        let mut m = Metrics::new(1);
        for i in 1..=100u64 {
            m.complete(Tick(0), Tick(i * 10));
        }
        let r = m.report(1000);
        assert!((r.p50_rt_ms - 500.0).abs() <= 10.0);
        assert!((r.p95_rt_ms - 940.0).abs() <= 20.0);
    }
}
