//! The workload abstraction the machine consumes.
//!
//! Concrete generators (the paper's Patterns 1–3, hot sets, the Experiment-4
//! error model) live in `wtpg-workload`; the simulator only needs a source
//! of transaction specs and the partition catalog they run against.

use wtpg_core::partition::Catalog;
use wtpg_core::txn::{TxnId, TxnSpec};

/// A source of bulk-access transactions.
pub trait Workload {
    /// The partition catalog this workload runs against.
    fn catalog(&self) -> &Catalog;

    /// Produces the transaction with the given id. Implementations own
    /// their randomness (seeded at construction) so runs are reproducible.
    fn next_txn(&mut self, id: TxnId) -> TxnSpec;
}

impl<W: Workload + ?Sized> Workload for Box<W> {
    fn catalog(&self) -> &Catalog {
        (**self).catalog()
    }
    fn next_txn(&mut self, id: TxnId) -> TxnSpec {
        (**self).next_txn(id)
    }
}

/// A fixed, repeating list of transaction shapes — useful for tests.
#[derive(Clone, Debug)]
pub struct FixedWorkload {
    catalog: Catalog,
    shapes: Vec<Vec<wtpg_core::txn::StepSpec>>,
    next: usize,
}

impl FixedWorkload {
    /// Cycles through `shapes` in order.
    ///
    /// # Panics
    /// Panics if `shapes` is empty.
    pub fn new(catalog: Catalog, shapes: Vec<Vec<wtpg_core::txn::StepSpec>>) -> FixedWorkload {
        assert!(!shapes.is_empty(), "need at least one transaction shape");
        FixedWorkload {
            catalog,
            shapes,
            next: 0,
        }
    }
}

impl Workload for FixedWorkload {
    fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    fn next_txn(&mut self, id: TxnId) -> TxnSpec {
        let shape = self.shapes[self.next % self.shapes.len()].clone();
        self.next += 1;
        TxnSpec::new(id, shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtpg_core::txn::StepSpec;

    #[test]
    fn fixed_workload_cycles() {
        let cat = Catalog::uniform(4, 5, 2);
        let mut w = FixedWorkload::new(
            cat,
            vec![vec![StepSpec::read(0, 1.0)], vec![StepSpec::write(1, 2.0)]],
        );
        assert_eq!(w.next_txn(TxnId(1)).steps()[0].partition.0, 0);
        assert_eq!(w.next_txn(TxnId(2)).steps()[0].partition.0, 1);
        assert_eq!(w.next_txn(TxnId(3)).steps()[0].partition.0, 0);
    }
}
