//! The event kernel: a time-ordered queue with deterministic tie-breaking.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use wtpg_core::time::Tick;
use wtpg_core::txn::{TxnId, TxnSpec};

/// A scheduled simulation event.
#[derive(Clone, Debug)]
pub enum Event {
    /// A transaction (re-)arrives at the control node.
    Arrive(Box<TxnSpec>),
    /// The control node processes a lock request for a step.
    Request {
        /// Requesting transaction.
        txn: TxnId,
        /// Step index.
        step: usize,
    },
    /// A granted transaction (plus its step's work) reaches its data node.
    DnEnqueue {
        /// The transaction.
        txn: TxnId,
        /// Step index being executed.
        step: usize,
    },
    /// A data node finishes one round-robin quantum.
    DnQuantum {
        /// The data node.
        node: u32,
    },
    /// The control node processes a commit.
    Commit {
        /// Committing transaction.
        txn: TxnId,
    },
}

/// Min-heap of events ordered by (time, insertion sequence): ties fire in
/// the order they were scheduled, keeping runs reproducible.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(Tick, u64, EventSlot)>>,
    seq: u64,
}

/// Wrapper that opts the payload out of ordering.
#[derive(Debug)]
struct EventSlot(Event);

impl PartialEq for EventSlot {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl Eq for EventSlot {}
impl PartialOrd for EventSlot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventSlot {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedules `event` at time `at`.
    pub fn push(&mut self, at: Tick, event: Event) {
        self.heap.push(Reverse((at, self.seq, EventSlot(event))));
        self.seq += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(Tick, Event)> {
        self.heap.pop().map(|Reverse((t, _, e))| (t, e.0))
    }

    /// Earliest scheduled time without popping.
    pub fn peek_time(&self) -> Option<Tick> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Tick(30), Event::Commit { txn: TxnId(3) });
        q.push(Tick(10), Event::Commit { txn: TxnId(1) });
        q.push(Tick(20), Event::Commit { txn: TxnId(2) });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Commit { txn } => txn.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        for id in 0..10u64 {
            q.push(Tick(5), Event::Commit { txn: TxnId(id) });
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Commit { txn } => txn.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(Tick(7), Event::DnQuantum { node: 0 });
        assert_eq!(q.peek_time(), Some(Tick(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop().unwrap();
        assert!(q.is_empty());
    }
}
