//! The shared-nothing machine (paper Figure 5): one control node, `NumNodes`
//! round-robin data nodes, Poisson arrivals, retry/wakeup plumbing.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Exp};

use wtpg_obs::{emit_deltas, ControlStats, Histogram, ObsEvent, Observer};

use wtpg_core::certify::{certify_history, CertifyReport, CertifyViolation};
use wtpg_core::history::{Event as HEvent, History};
use wtpg_core::partition::{Catalog, PartitionId, Placement};
use wtpg_core::sched::{Admission, ControlOps, LockOutcome, Scheduler};
use wtpg_core::time::Tick;
use wtpg_core::txn::{TxnId, TxnSpec};
use wtpg_core::work::Work;

use crate::config::SimParams;
use crate::events::{Event, EventQueue};
use crate::metrics::{Metrics, RunReport};
use crate::workload::Workload;

/// One in-flight bulk operation at a data node.
#[derive(Clone, Debug)]
struct DnJob {
    txn: TxnId,
    step: usize,
    remaining: Work,
}

/// A data node: a serial server processing one object per quantum,
/// round-robin over resident transactions (§4.1).
#[derive(Clone, Debug, Default)]
struct DataNode {
    ready: VecDeque<DnJob>,
    /// Job in service and its quantum size.
    current: Option<(DnJob, Work)>,
}

#[derive(Clone, Debug)]
struct TxnState {
    spec: TxnSpec,
    created: Tick,
}

/// One round-robin quantum executed at a data node — the raw material for
/// execution timelines (see the `timeline` example).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuantumRecord {
    /// Completion instant of the quantum.
    pub at: Tick,
    /// The data node that executed it.
    pub node: u32,
    /// The transaction served.
    pub txn: TxnId,
    /// Amount of work done in this quantum.
    pub amount: Work,
}

/// One committed transaction's lifecycle, for per-class analyses (e.g. the
/// mixed-workload extension separates short transactions from BATs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompletionRecord {
    /// The transaction.
    pub txn: TxnId,
    /// First arrival.
    pub created: Tick,
    /// End of commit processing.
    pub committed: Tick,
    /// Number of declared steps.
    pub steps: usize,
    /// Total actual work, in `Work` units.
    pub work_units: u64,
}

/// The simulated machine. Construct, then [`Machine::run`].
pub struct Machine<W: Workload> {
    params: SimParams,
    sched: Box<dyn Scheduler>,
    workload: W,
    catalog: Catalog,
    queue: EventQueue,
    now: Tick,
    /// The control node is a serial server: busy until this instant.
    cn_free: Tick,
    nodes: Vec<DataNode>,
    txns: BTreeMap<TxnId, TxnState>,
    /// Requests waiting for a held lock, keyed by the partition they need.
    blocked: BTreeMap<PartitionId, Vec<(TxnId, usize)>>,
    /// Outstanding stripes of fanned-out steps (declustered placement):
    /// (txn, step) → stripes still running.
    fanout: BTreeMap<(TxnId, usize), u32>,
    next_txn_id: u64,
    metrics: Metrics,
    completions: Vec<CompletionRecord>,
    history: Option<History>,
    timeline: Option<Vec<QuantumRecord>>,
    /// Certify the recorded history at the end of [`Machine::run`].
    certify: bool,
    /// The report of the end-of-run certification, when one ran and passed.
    cert_report: Option<CertifyReport>,
    /// Declared specs of every transaction ever admitted, for the certifier's
    /// replay (kept only while certification is enabled).
    spec_log: BTreeMap<TxnId, TxnSpec>,
    /// Trace sink. Events are keyed by the simulated clock (`Tick` ms), so
    /// traces are byte-deterministic; the observer is passive and never
    /// influences the trajectory.
    obs: Option<Arc<dyn Observer>>,
    /// Scheduler stats at the last delta emission.
    obs_last: ControlStats,
    /// First request attempt per (txn, step), for lock-wait durations.
    /// Populated only while an observer is attached.
    obs_first_attempt: BTreeMap<(TxnId, usize), Tick>,
    /// Response times of committed transactions (ms), for the end-of-run
    /// histogram snapshot.
    obs_rt: Histogram,
    rng: StdRng,
}

/// True when the `WTPG_CERTIFY` environment variable requests certification
/// ("1" or "true") — the hook CI uses to certify a whole test run without
/// touching any configuration.
fn env_certify() -> bool {
    matches!(
        std::env::var("WTPG_CERTIFY").ok().as_deref(),
        Some("1") | Some("true")
    )
}

impl<W: Workload> Machine<W> {
    /// Builds a machine from parameters, a scheduler, and a workload.
    pub fn new(params: SimParams, sched: Box<dyn Scheduler>, workload: W) -> Machine<W> {
        let catalog = workload.catalog().clone();
        assert_eq!(
            catalog.num_nodes(),
            params.num_nodes,
            "workload catalog and SimParams disagree on NumNodes"
        );
        let metrics = Metrics::new(params.num_nodes);
        let rng = StdRng::seed_from_u64(params.seed ^ 0x9e37_79b9_7f4a_7c15);
        let certify = params.certify || env_certify();
        Machine {
            nodes: vec![DataNode::default(); params.num_nodes as usize],
            params,
            sched,
            workload,
            catalog,
            queue: EventQueue::new(),
            now: Tick::ZERO,
            cn_free: Tick::ZERO,
            txns: BTreeMap::new(),
            blocked: BTreeMap::new(),
            fanout: BTreeMap::new(),
            next_txn_id: 1,
            metrics,
            completions: Vec::new(),
            history: if certify { Some(History::new()) } else { None },
            timeline: None,
            certify,
            cert_report: None,
            spec_log: BTreeMap::new(),
            obs: None,
            obs_last: ControlStats::default(),
            obs_first_attempt: BTreeMap::new(),
            obs_rt: Histogram::new(),
            rng,
        }
    }

    /// Attaches a trace sink. Every event is stamped with the simulated
    /// clock, so two runs of the same configuration produce byte-identical
    /// traces, and a [`wtpg_obs::NullObserver`] (or no observer) leaves the
    /// trajectory untouched.
    pub fn set_observer(&mut self, obs: Arc<dyn Observer>) {
        self.obs = Some(obs);
    }

    /// Enables end-of-run certification (implies history recording). Also
    /// switched on by `SimParams::certify` or the `WTPG_CERTIFY` environment
    /// variable.
    pub fn enable_certification(&mut self) {
        self.certify = true;
        if self.history.is_none() {
            self.history = Some(History::new());
        }
    }

    /// The report of [`Machine::run`]'s end-of-run certification, if one ran
    /// (avoids replaying the history a second time just for the statistics).
    pub fn certify_report(&self) -> Option<CertifyReport> {
        self.cert_report
    }

    /// The declared spec of every transaction that ever arrived, as the
    /// certifier needs them (empty unless certification is enabled).
    pub fn spec_log(&self) -> &BTreeMap<TxnId, TxnSpec> {
        &self.spec_log
    }

    /// Replays the recorded history against a fresh scheduler core and
    /// checks the guarantees this machine's scheduler claims (chain form,
    /// `|C(q)| ≤ K`, exclusion, serializability, …).
    ///
    /// # Errors
    /// The first violation found, or a description of why certification
    /// could not run (history recording was never enabled).
    pub fn certify(&self) -> Result<CertifyReport, CertifyViolation> {
        let Some(h) = &self.history else {
            return Err(CertifyViolation {
                at: usize::MAX,
                tick: Tick::ZERO,
                what: "history recording is not enabled".to_string(),
            });
        };
        certify_history(h, &self.spec_log, self.sched.certify_mode())
    }

    /// Enables full history recording (for validation; costs memory).
    pub fn record_history(&mut self) {
        self.history = Some(History::new());
    }

    /// The recorded history, if enabled.
    pub fn history(&self) -> Option<&History> {
        self.history.as_ref()
    }

    /// Lifecycle records of every transaction committed so far.
    pub fn completions(&self) -> &[CompletionRecord] {
        &self.completions
    }

    /// Enables per-quantum timeline recording (costs memory).
    pub fn record_timeline(&mut self) {
        self.timeline = Some(Vec::new());
    }

    /// The recorded execution timeline, if enabled.
    pub fn timeline(&self) -> Option<&[QuantumRecord]> {
        self.timeline.as_deref()
    }

    /// The scheduler's display name.
    pub fn sched_name(&self) -> &str {
        self.sched.name()
    }

    fn record(&mut self, e: HEvent) {
        if let Some(h) = &mut self.history {
            h.push(self.now, e);
        }
    }

    /// Forwards `ev` to the attached observer, if any.
    fn obs_emit(&self, ev: ObsEvent) {
        if let Some(o) = &self.obs {
            o.record(ev);
        }
    }

    /// Emits counter events for every scheduler statistic that changed
    /// since the previous emission (no-op without an observer).
    fn obs_sched_deltas(&mut self) {
        let Some(o) = &self.obs else { return };
        let after = self.sched.obs_stats();
        emit_deltas(o.as_ref(), self.now.millis(), 0, &self.obs_last, &after);
        self.obs_last = after;
    }

    /// Price of the control work in CN milliseconds.
    fn ops_cost(&self, ops: ControlOps) -> u64 {
        ops.deadlock_tests as u64 * self.params.dd_time_ms
            + ops.chain_opts as u64 * self.params.chain_time_ms
            + ops.eq_evals as u64 * self.params.kwtpg_time_ms
    }

    /// Occupies the CN for `cost` ms starting no earlier than `now`;
    /// returns the completion instant.
    fn cn_serve(&mut self, cost: u64) -> Tick {
        let start = self.now.max(self.cn_free);
        let end = start + cost;
        self.cn_free = end;
        self.metrics.cn_busy_ms += cost;
        end
    }

    fn schedule_next_arrival(&mut self, lambda_tps: f64) {
        // Interarrival ~ Exp(λ); λ is per second, the clock is ms.
        let exp = Exp::new(lambda_tps / 1000.0).expect("λ must be positive");
        let gap = exp.sample(&mut self.rng).ceil().max(1.0) as u64;
        let at = self.now + gap;
        let id = TxnId(self.next_txn_id);
        self.next_txn_id += 1;
        let spec = self.workload.next_txn(id);
        self.queue.push(at, Event::Arrive(Box::new(spec)));
    }

    /// Runs the machine for `params.sim_length_ms` with Poisson arrivals at
    /// `lambda_tps` transactions per second; returns the run report.
    ///
    /// # Panics
    /// Panics if `lambda_tps <= 0`, if the scheduler reports a protocol
    /// error (which would be a bug in this driver), or if certification is
    /// enabled and the recorded history fails it.
    pub fn run(&mut self, lambda_tps: f64) -> RunReport {
        assert!(lambda_tps > 0.0, "arrival rate must be positive");
        self.schedule_next_arrival(lambda_tps);
        while let Some((t, ev)) = self.queue.pop() {
            if t.millis() > self.params.sim_length_ms {
                break;
            }
            self.now = t;
            match ev {
                Event::Arrive(spec) => self.handle_arrive(*spec, lambda_tps),
                Event::Request { txn, step } => self.handle_request(txn, step),
                Event::DnEnqueue { txn, step } => self.handle_dn_enqueue(txn, step),
                Event::DnQuantum { node } => self.handle_dn_quantum(node),
                Event::Commit { txn } => self.handle_commit(txn),
            }
        }
        if self.certify {
            match self.certify() {
                Ok(report) => self.cert_report = Some(report),
                Err(v) => panic!("certification failed for {}: {v}", self.sched.name()),
            }
        }
        if self.obs.is_some() {
            // Final counter values (even unchanged ones) plus the
            // response-time histogram, so a summary of the trace alone can
            // reconstruct the run's control-plane totals.
            self.obs_sched_deltas();
            let at = self.now.millis();
            let final_stats = self.obs_last;
            for (name, value) in final_stats.fields() {
                self.obs_emit(ObsEvent::counter(at, 0, name, value));
            }
            self.obs_emit(ObsEvent::counter(at, 0, "arrivals", self.metrics.arrivals));
            self.obs_emit(ObsEvent::counter(at, 0, "rejections", self.metrics.rejections));
            self.obs_emit(ObsEvent::counter(at, 0, "grants", self.metrics.grants));
            self.obs_emit(ObsEvent::counter(at, 0, "blocks", self.metrics.blocks));
            self.obs_emit(ObsEvent::counter(at, 0, "delays", self.metrics.delays));
            self.obs_emit(ObsEvent::hist(at, 0, "txn_response_ms", self.obs_rt.clone()));
        }
        let measured = self.params.sim_length_ms - self.params.warmup_ms;
        self.metrics.report(measured)
    }

    fn handle_arrive(&mut self, spec: TxnSpec, lambda_tps: f64) {
        let id = spec.id;
        if self.certify {
            // Resubmissions carry the identical spec, so the insert is
            // idempotent across retry attempts.
            self.spec_log.insert(id, spec.clone());
        }
        let first_attempt = !self.txns.contains_key(&id);
        if first_attempt {
            self.metrics.arrivals += 1;
            self.txns.insert(
                id,
                TxnState {
                    spec: spec.clone(),
                    created: self.now,
                },
            );
            // Keep the Poisson process going: one fresh arrival spawns the next.
            self.schedule_next_arrival(lambda_tps);
        }
        let (admission, ops) = self
            .sched
            .on_arrive(&spec, self.now)
            .expect("driver protocol violated at arrival");
        self.obs_sched_deltas();
        let cost = self.params.startup_time_ms + self.ops_cost(ops);
        self.bump_ops(ops);
        let end = self.cn_serve(cost);
        match admission {
            Admission::Admitted => {
                self.record(HEvent::Admitted(id));
                self.obs_emit(ObsEvent::span_begin(end.millis(), 0, "txn", id.0));
                self.queue.push(end, Event::Request { txn: id, step: 0 });
            }
            Admission::Rejected => {
                self.metrics.rejections += 1;
                self.record(HEvent::Rejected(id));
                self.obs_emit(ObsEvent::instant(end.millis(), 0, "admission_rejected", id.0));
                self.queue.push(
                    end + self.params.retry_delay_ms,
                    Event::Arrive(Box::new(spec)),
                );
            }
        }
    }

    fn handle_request(&mut self, txn: TxnId, step: usize) {
        if self.obs.is_some() {
            self.obs_first_attempt.entry((txn, step)).or_insert(self.now);
        }
        let (outcome, ops) = self
            .sched
            .on_request(txn, step, self.now)
            .expect("driver protocol violated at request");
        self.obs_sched_deltas();
        let cost = self.params.lockop_time_ms + self.ops_cost(ops);
        self.bump_ops(ops);
        let end = self.cn_serve(cost);
        let s = self.txns[&txn].spec.steps()[step];
        match outcome {
            LockOutcome::Granted => {
                self.metrics.grants += 1;
                self.record(HEvent::Granted {
                    txn,
                    step,
                    partition: s.partition,
                    mode: s.mode,
                });
                if let Some(first) = self.obs_first_attempt.remove(&(txn, step)) {
                    let at = first.millis();
                    let dur = end.millis().saturating_sub(at);
                    self.obs_emit(ObsEvent::duration(at, 0, "lock_wait", txn.0, dur));
                    let node = self.catalog.node_of(s.partition);
                    self.obs_emit(ObsEvent::span_begin(end.millis(), node + 1, "step", txn.0));
                }
                self.queue.push(end, Event::DnEnqueue { txn, step });
            }
            LockOutcome::Blocked => {
                self.metrics.blocks += 1;
                self.obs_emit(ObsEvent::instant(end.millis(), 0, "lock_blocked", txn.0));
                self.blocked
                    .entry(s.partition)
                    .or_default()
                    .push((txn, step));
            }
            LockOutcome::Delayed => {
                self.metrics.delays += 1;
                self.obs_emit(ObsEvent::instant(end.millis(), 0, "lock_delayed", txn.0));
                self.queue.push(
                    end + self.params.retry_delay_ms,
                    Event::Request { txn, step },
                );
            }
        }
    }

    fn handle_dn_enqueue(&mut self, txn: TxnId, step: usize) {
        let spec_step = self.txns[&txn].spec.steps()[step];
        let work = spec_step.actual_cost;
        if work.is_zero() {
            // Degenerate step (possible under extreme error models): no DN
            // time, complete immediately.
            self.finish_step(txn, step);
            return;
        }
        match self.catalog.placement() {
            Placement::Modulo => {
                let node = self.catalog.node_of(spec_step.partition);
                self.nodes[node as usize].ready.push_back(DnJob {
                    txn,
                    step,
                    remaining: work,
                });
                self.start_quantum(node);
            }
            Placement::Declustered => {
                // Stripe the bulk operation over every node; the step ends
                // when the last stripe does (intra-transaction parallelism,
                // the extension discussed in the paper's §4.3).
                let n = self.params.num_nodes as u64;
                let base = work.units() / n;
                let extra = work.units() % n;
                let mut stripes = 0u32;
                for node in 0..self.params.num_nodes {
                    let share = base + u64::from((node as u64) < extra);
                    if share == 0 {
                        continue;
                    }
                    stripes += 1;
                    self.nodes[node as usize].ready.push_back(DnJob {
                        txn,
                        step,
                        remaining: Work::from_units(share),
                    });
                }
                debug_assert!(stripes > 0);
                self.fanout.insert((txn, step), stripes);
                for node in 0..self.params.num_nodes {
                    self.start_quantum(node);
                }
            }
        }
    }

    /// Starts the next round-robin quantum on `node` if it is idle.
    fn start_quantum(&mut self, node: u32) {
        let dn = &mut self.nodes[node as usize];
        if dn.current.is_some() {
            return;
        }
        let Some(job) = dn.ready.pop_front() else {
            return;
        };
        let quantum = job.remaining.min(Work::ONE_OBJECT);
        let service = self.params.dn_time(quantum.units());
        dn.current = Some((job, quantum));
        self.queue
            .push(self.now + service, Event::DnQuantum { node });
    }

    fn handle_dn_quantum(&mut self, node: u32) {
        let (mut job, quantum) = self.nodes[node as usize]
            .current
            .take()
            .expect("quantum completion without a job in service");
        self.metrics.dn_busy_ms[node as usize] += self.params.dn_time(quantum.units());
        if let Some(tl) = &mut self.timeline {
            tl.push(QuantumRecord {
                at: self.now,
                node,
                txn: job.txn,
                amount: quantum,
            });
        }
        job.remaining = job.remaining.saturating_sub(quantum);
        // The per-object weight-adjustment message to CN (§3.1). Its CN cost
        // is negligible next to ObjTime and is not priced (see DESIGN.md).
        self.sched
            .on_progress(job.txn, quantum)
            .expect("driver protocol violated at progress");
        self.record(HEvent::Progress {
            txn: job.txn,
            amount: quantum,
        });
        if job.remaining.is_zero() {
            let (txn, step) = (job.txn, job.step);
            self.start_quantum(node);
            // Under declustered placement the step ends only when the last
            // stripe does.
            if let Some(pending) = self.fanout.get_mut(&(txn, step)) {
                *pending -= 1;
                if *pending == 0 {
                    self.fanout.remove(&(txn, step));
                    self.finish_step(txn, step);
                }
            } else {
                self.finish_step(txn, step);
            }
        } else {
            self.nodes[node as usize].ready.push_back(job);
            self.start_quantum(node);
        }
    }

    fn finish_step(&mut self, txn: TxnId, step: usize) {
        self.sched
            .on_step_complete(txn, step)
            .expect("driver protocol violated at step completion");
        self.record(HEvent::StepCompleted { txn, step });
        if self.obs.is_some() {
            let node = self.catalog.node_of(self.txns[&txn].spec.steps()[step].partition);
            self.obs_emit(ObsEvent::span_end(self.now.millis(), node + 1, "step", txn.0));
        }
        let last = step + 1 == self.txns[&txn].spec.len();
        if last {
            self.queue.push(self.now, Event::Commit { txn });
        } else {
            self.queue.push(
                self.now,
                Event::Request {
                    txn,
                    step: step + 1,
                },
            );
        }
    }

    fn handle_commit(&mut self, txn: TxnId) {
        let res = self
            .sched
            .on_commit(txn, self.now)
            .expect("driver protocol violated at commit");
        self.obs_sched_deltas();
        let cost = self.params.commit_time_ms + self.ops_cost(res.ops);
        self.bump_ops(res.ops);
        let end = self.cn_serve(cost);
        self.record(HEvent::Committed(txn));
        let state = self.txns.remove(&txn).expect("committing unknown txn");
        if self.obs.is_some() {
            self.obs_emit(ObsEvent::span_end(end.millis(), 0, "txn", txn.0));
            self.obs_rt
                .record(end.millis().saturating_sub(state.created.millis()));
        }
        if end.millis() >= self.params.warmup_ms && end.millis() <= self.params.sim_length_ms {
            self.metrics.complete(state.created, end);
            self.completions.push(CompletionRecord {
                txn,
                created: state.created,
                committed: end,
                steps: state.spec.len(),
                work_units: state.spec.total_actual().units(),
            });
        }
        // Wake requests blocked on the freed partitions.
        for p in res.freed {
            if let Some(waiters) = self.blocked.remove(&p) {
                for (w_txn, w_step) in waiters {
                    self.queue.push(
                        end,
                        Event::Request {
                            txn: w_txn,
                            step: w_step,
                        },
                    );
                }
            }
        }
    }

    fn bump_ops(&mut self, ops: ControlOps) {
        self.metrics.deadlock_tests += ops.deadlock_tests as u64;
        self.metrics.chain_opts += ops.chain_opts as u64;
        self.metrics.eq_evals += ops.eq_evals as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched_kind::SchedKind;
    use crate::workload::FixedWorkload;
    use wtpg_core::txn::StepSpec;

    fn tiny_params() -> SimParams {
        SimParams {
            sim_length_ms: 100_000,
            ..SimParams::paper_defaults()
        }
    }

    fn one_part_workload() -> FixedWorkload {
        FixedWorkload::new(
            Catalog::uniform(16, 5, 8),
            vec![vec![StepSpec::read(0, 1.0), StepSpec::write(1, 2.0)]],
        )
    }

    #[test]
    fn runs_and_completes_transactions() {
        for kind in SchedKind::MAIN_FIVE {
            let params = tiny_params();
            let mut m = Machine::new(params.clone(), kind.build(&params), one_part_workload());
            let report = m.run(0.2);
            assert!(report.completed > 0, "{:?} completed nothing", kind);
            assert!(
                report.mean_rt_ms >= 3000.0,
                "{:?}: each txn needs ≥3 s of DN time",
                kind
            );
        }
    }

    #[test]
    fn histories_are_serializable_for_real_schedulers() {
        for kind in SchedKind::CONTENDERS {
            let params = tiny_params();
            let mut m = Machine::new(params.clone(), kind.build(&params), one_part_workload());
            m.record_history();
            m.run(0.3);
            let h = m.history().unwrap();
            assert!(h.committed().len() > 1);
            h.check_conflict_serializable().unwrap();
            h.check_strictness().unwrap();
            h.check_lock_exclusion().unwrap();
        }
    }

    #[test]
    fn every_scheduler_certifies_its_own_run() {
        for kind in SchedKind::MAIN_FIVE {
            let params = SimParams {
                certify: true,
                ..tiny_params()
            };
            let mut m = Machine::new(params.clone(), kind.build(&params), one_part_workload());
            // run() panics if certification fails.
            let report = m.run(0.3);
            assert!(report.completed > 0, "{kind:?} completed nothing");
            let cert = m.certify().unwrap();
            assert!(cert.grants > 0 && cert.commits > 0, "{kind:?}: {cert:?}");
        }
    }

    #[test]
    fn certification_does_not_change_the_trajectory() {
        let run = |certify: bool| {
            let params = SimParams {
                certify,
                ..tiny_params()
            };
            let mut m = Machine::new(
                params.clone(),
                SchedKind::KWtpg.build(&params),
                one_part_workload(),
            );
            let r = m.run(0.3);
            (r.completed, r.grants, r.blocks, r.delays, r.mean_rt_ms as u64)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let params = SimParams {
                seed,
                sim_length_ms: 50_000,
                ..SimParams::paper_defaults()
            };
            let mut m = Machine::new(
                params.clone(),
                SchedKind::KWtpg.build(&params),
                one_part_workload(),
            );
            let r = m.run(0.3);
            (r.completed, r.grants, r.blocks, r.delays)
        };
        assert_eq!(run(7), run(7));
        // Different seed ⇒ different arrival times (almost surely different
        // counters at this contention level, but equality is not *impossible*
        // — only assert the same-seed determinism).
    }

    #[test]
    fn higher_arrival_rate_does_not_reduce_throughput_below_capacity() {
        let params = tiny_params();
        let tps = |lambda: f64| {
            let mut m = Machine::new(
                params.clone(),
                SchedKind::Nodc.build(&params),
                one_part_workload(),
            );
            m.run(lambda).throughput_tps
        };
        let low = tps(0.05);
        let high = tps(0.3);
        assert!(
            high > low,
            "NODC throughput should grow with λ below saturation"
        );
    }

    #[test]
    fn declustered_placement_parallelizes_a_single_bat() {
        // One 8-object scan: under modulo placement it takes 8 s on one
        // node; declustered over 8 nodes it takes ~1 s of wall time.
        let shapes = vec![vec![StepSpec::read(0, 8.0)]];
        let run = |placement: wtpg_core::partition::Placement| {
            let params = SimParams {
                sim_length_ms: 200_000,
                ..SimParams::paper_defaults()
            };
            let catalog = Catalog::uniform(16, 8, 8).with_placement(placement);
            let workload = FixedWorkload::new(catalog, shapes.clone());
            let mut m = Machine::new(params.clone(), SchedKind::C2pl.build(&params), workload);
            m.run(0.05)
        };
        let modulo = run(wtpg_core::partition::Placement::Modulo);
        let declustered = run(wtpg_core::partition::Placement::Declustered);
        assert!(modulo.completed > 0 && declustered.completed > 0);
        // Intra-transaction parallelism slashes the response time.
        assert!(
            declustered.mean_rt_ms < modulo.mean_rt_ms / 3.0,
            "declustered RT {} should be far below modulo RT {}",
            declustered.mean_rt_ms,
            modulo.mean_rt_ms
        );
    }

    #[test]
    fn declustered_work_is_conserved() {
        let shapes = vec![vec![StepSpec::read(0, 3.0), StepSpec::write(1, 2.0)]];
        let params = SimParams {
            sim_length_ms: 100_000,
            ..SimParams::paper_defaults()
        };
        let catalog =
            Catalog::uniform(8, 8, 8).with_placement(wtpg_core::partition::Placement::Declustered);
        let workload = FixedWorkload::new(catalog, shapes);
        let mut m = Machine::new(params.clone(), SchedKind::C2pl.build(&params), workload);
        m.record_history();
        let r = m.run(0.05);
        assert!(r.completed > 0);
        // Every committed transaction processed exactly 5 objects of work.
        let h = m.history().unwrap();
        let committed = h.committed().len() as u64;
        let total: u64 = h
            .events()
            .iter()
            .filter_map(|&(_, e)| match e {
                wtpg_core::history::Event::Progress { amount, .. } => Some(amount.units()),
                _ => None,
            })
            .sum();
        assert!(
            total >= committed * 5000,
            "work lost: {total} units for {committed} txns"
        );
        h.check_conflict_serializable().unwrap();
    }

    #[test]
    fn observer_does_not_change_the_trajectory() {
        use wtpg_obs::{MemorySink, NullObserver};
        let run = |obs: Option<Arc<dyn wtpg_obs::Observer>>| {
            let params = tiny_params();
            let mut m = Machine::new(
                params.clone(),
                SchedKind::KWtpg.build(&params),
                one_part_workload(),
            );
            if let Some(o) = obs {
                m.set_observer(o);
            }
            let r = m.run(0.3);
            (r.completed, r.grants, r.blocks, r.delays, r.mean_rt_ms as u64)
        };
        let bare = run(None);
        assert_eq!(bare, run(Some(Arc::new(NullObserver))));
        assert_eq!(bare, run(Some(Arc::new(MemorySink::new()))));
    }

    #[test]
    fn traces_are_byte_deterministic() {
        use wtpg_obs::MemorySink;
        let trace = || {
            let params = tiny_params();
            let mut m = Machine::new(
                params.clone(),
                SchedKind::C2pl.build(&params),
                one_part_workload(),
            );
            let sink = Arc::new(MemorySink::new());
            m.set_observer(sink.clone());
            m.run(0.3);
            wtpg_obs::jsonl::encode(&sink.snapshot())
        };
        assert_eq!(trace(), trace());
    }

    #[test]
    fn traces_carry_control_plane_statistics() {
        use wtpg_obs::{MemorySink, TraceSummary};
        let summary_for = |kind: SchedKind, workload: FixedWorkload, lambda: f64| {
            let params = tiny_params();
            let mut m = Machine::new(params.clone(), kind.build(&params), workload);
            let sink = Arc::new(MemorySink::new());
            m.set_observer(sink.clone());
            m.run(lambda);
            TraceSummary::from_events(&sink.snapshot())
        };
        // A long and a short transaction both ending in a write of partition
        // 0: the long one loses the E(q) comparison against the short one's
        // declaration, is delayed, and its retry (same WTPG version) hits
        // the cache — exactly the §3.4 saving the counters must witness.
        let hot = || {
            FixedWorkload::new(
                Catalog::uniform(16, 5, 8),
                vec![
                    vec![StepSpec::read(2, 5.0), StepSpec::write(0, 5.0)],
                    vec![StepSpec::read(3, 1.0), StepSpec::write(0, 1.0)],
                ],
            )
        };
        // CHAIN reuses W plans, K-WTPG hits the E(q) cache, C2PL both misses
        // and (on retries) hits its deadlock-prediction cache.
        let chain = summary_for(SchedKind::Chain, one_part_workload(), 0.3).control_stats();
        assert!(chain.w_reuses > 0, "CHAIN: {chain:?}");
        let k2 = summary_for(SchedKind::KWtpg, hot(), 0.4).control_stats();
        assert!(k2.eq_cache_hits > 0, "K-WTPG: {k2:?}");
        let c2pl_sum = summary_for(SchedKind::C2pl, one_part_workload(), 0.3);
        let c2pl = c2pl_sum.control_stats();
        assert!(c2pl.dd_cache_misses > 0, "C2PL: {c2pl:?}");
        // Every scheduler records lock waits and commits txn spans.
        let spans = c2pl_sum;
        let lock_wait = spans.span("lock_wait").expect("lock_wait histogram");
        assert!(lock_wait.count() > 0);
        let txn = spans.span("txn").expect("txn span histogram");
        assert!(txn.count() > 0);
    }

    #[test]
    fn cn_and_dn_utilization_are_sane() {
        let params = tiny_params();
        let mut m = Machine::new(
            params.clone(),
            SchedKind::C2pl.build(&params),
            one_part_workload(),
        );
        let r = m.run(0.2);
        assert!(r.dn_utilization > 0.0 && r.dn_utilization <= 1.0);
        assert!(r.cn_utilization >= 0.0 && r.cn_utilization <= 1.0);
        assert!(r.deadlock_tests > 0, "C2PL must run deadlock predictions");
    }
}
