//! Scheduler selection for runs and sweeps.

use serde::{Deserialize, Serialize};
use wtpg_core::sched::{
    AslScheduler, C2plScheduler, ChainScheduler, GWtpgScheduler, KWtpgScheduler, NodcScheduler,
    Scheduler,
};

use crate::config::SimParams;

/// Which scheduler a run uses — the five of §4.1 plus the §4.4 hybrids.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SchedKind {
    /// Chain-WTPG scheduler (CC1).
    Chain,
    /// K-conflict WTPG scheduler (CC2) with the configured K.
    KWtpg,
    /// Atomic static locking.
    Asl,
    /// Cautious two-phase locking.
    C2pl,
    /// No data contention (upper bound).
    Nodc,
    /// C2PL + chain-form constraint (Experiment 4 lower bound).
    ChainC2pl,
    /// C2PL + K-conflict constraint (Experiment 4 lower bound).
    KC2pl,
    /// G-WTPG (extension): CHAIN's global strategy on arbitrary conflict
    /// graphs via the heuristic planner — no chain-form admission test.
    GWtpg,
}

impl SchedKind {
    /// Display label matching the paper's figures.
    pub fn label(self, params: &SimParams) -> String {
        match self {
            SchedKind::Chain => "CHAIN".to_string(),
            SchedKind::KWtpg => format!("K{}", params.k),
            SchedKind::Asl => "ASL".to_string(),
            SchedKind::C2pl => "C2PL".to_string(),
            SchedKind::Nodc => "NODC".to_string(),
            SchedKind::ChainC2pl => "CHAIN-C2PL".to_string(),
            SchedKind::KC2pl => format!("K{}-C2PL", params.k),
            SchedKind::GWtpg => "G-WTPG".to_string(),
        }
    }

    /// Builds a fresh scheduler instance.
    pub fn build(self, params: &SimParams) -> Box<dyn Scheduler> {
        match self {
            SchedKind::Chain => Box::new(ChainScheduler::new(params.keeptime_ms)),
            SchedKind::KWtpg => Box::new(KWtpgScheduler::new(params.k, params.keeptime_ms)),
            SchedKind::Asl => Box::new(AslScheduler::new()),
            SchedKind::C2pl => Box::new(C2plScheduler::new()),
            SchedKind::Nodc => Box::new(NodcScheduler::new()),
            SchedKind::ChainC2pl => Box::new(C2plScheduler::chain_c2pl()),
            SchedKind::KC2pl => Box::new(C2plScheduler::k_c2pl(params.k)),
            SchedKind::GWtpg => Box::new(GWtpgScheduler::new(params.keeptime_ms)),
        }
    }

    /// The five schedulers of the main evaluation (§4.1).
    pub const MAIN_FIVE: [SchedKind; 5] = [
        SchedKind::Asl,
        SchedKind::Chain,
        SchedKind::KWtpg,
        SchedKind::C2pl,
        SchedKind::Nodc,
    ];

    /// The four contenders of Figures 6–9 (NODC excluded).
    pub const CONTENDERS: [SchedKind; 4] = [
        SchedKind::Asl,
        SchedKind::Chain,
        SchedKind::KWtpg,
        SchedKind::C2pl,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        let p = SimParams::paper_defaults();
        assert_eq!(SchedKind::Chain.label(&p), "CHAIN");
        assert_eq!(SchedKind::KWtpg.label(&p), "K2");
        assert_eq!(SchedKind::KC2pl.label(&p), "K2-C2PL");
    }

    #[test]
    fn builds_every_kind() {
        let p = SimParams::paper_defaults();
        for kind in [
            SchedKind::Chain,
            SchedKind::KWtpg,
            SchedKind::Asl,
            SchedKind::C2pl,
            SchedKind::Nodc,
            SchedKind::ChainC2pl,
            SchedKind::KC2pl,
            SchedKind::GWtpg,
        ] {
            let s = kind.build(&p);
            assert!(!s.name().is_empty());
        }
    }
}
