//! The measurement procedure of §4.1: λ sweeps, per-point reports, and the
//! paper's summary metric "throughput at mean response time = 70 seconds".

use serde::{Deserialize, Serialize};

use crate::config::SimParams;
use crate::machine::Machine;
use crate::metrics::RunReport;
use crate::sched_kind::SchedKind;
use crate::workload::Workload;

/// One (λ, report) measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LambdaPoint {
    /// Offered arrival rate, transactions per second.
    pub lambda_tps: f64,
    /// The measured run report.
    pub report: RunReport,
}

/// A whole sweep for one scheduler.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepResult {
    /// Scheduler label (paper figure legend).
    pub scheduler: String,
    /// Measurements in ascending λ.
    pub points: Vec<LambdaPoint>,
}

/// Runs one simulation: fresh scheduler + workload at the given λ.
pub fn run_once<W, F>(
    params: &SimParams,
    kind: SchedKind,
    make_workload: F,
    lambda: f64,
) -> RunReport
where
    W: Workload,
    F: FnOnce(u64) -> W,
{
    let workload = make_workload(params.seed);
    let mut machine = Machine::new(params.clone(), kind.build(params), workload);
    machine.run(lambda)
}

/// Sweeps λ over `lambdas` for one scheduler, building a fresh workload
/// (seeded from `params.seed`) per point.
pub fn sweep<W, F>(
    params: &SimParams,
    kind: SchedKind,
    make_workload: &F,
    lambdas: &[f64],
) -> SweepResult
where
    W: Workload,
    F: Fn(u64) -> W,
{
    let points = lambdas
        .iter()
        .map(|&l| LambdaPoint {
            lambda_tps: l,
            report: run_once(params, kind, make_workload, l),
        })
        .collect();
    SweepResult {
        scheduler: kind.label(params),
        points,
    }
}

/// The paper's summary metric: the throughput where the mean response time
/// crosses `rt_target_ms`, linearly interpolated between the two bracketing
/// sweep points.
///
/// Returns `None` when the sweep never reaches the target response time
/// (the scheduler's RT stays below it for every measured λ — its throughput
/// at that RT is beyond the sweep), in which case callers usually report the
/// last point's throughput as a lower bound.
pub fn tps_at_rt(sweep: &SweepResult, rt_target_ms: f64) -> Option<f64> {
    let pts: Vec<(f64, f64)> = sweep
        .points
        .iter()
        .filter(|p| p.report.completed > 0 && p.report.mean_rt_ms.is_finite())
        .map(|p| (p.report.mean_rt_ms, p.report.throughput_tps))
        .collect();
    if pts.is_empty() {
        return None;
    }
    // Find the first adjacent pair bracketing the target RT.
    for w in pts.windows(2) {
        let (rt0, tp0) = w[0];
        let (rt1, tp1) = w[1];
        if rt0 <= rt_target_ms && rt1 >= rt_target_ms && rt1 > rt0 {
            let f = (rt_target_ms - rt0) / (rt1 - rt0);
            return Some(tp0 + f * (tp1 - tp0));
        }
    }
    // Already above target at the smallest λ: report that throughput.
    if pts[0].0 > rt_target_ms {
        return Some(pts[0].1);
    }
    None
}

/// Convenience: max throughput observed in a sweep (fallback when the RT
/// target is never reached).
pub fn max_tps(sweep: &SweepResult) -> f64 {
    sweep
        .points
        .iter()
        .map(|p| p.report.throughput_tps)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use wtpg_core::time::Tick;

    fn fake_point(lambda: f64, rt_ms: f64, tps: f64) -> LambdaPoint {
        let mut m = Metrics::new(1);
        m.complete(Tick(0), Tick(rt_ms as u64));
        let mut report = m.report(1000);
        report.throughput_tps = tps;
        LambdaPoint {
            lambda_tps: lambda,
            report,
        }
    }

    #[test]
    fn interpolates_between_bracketing_points() {
        let s = SweepResult {
            scheduler: "X".into(),
            points: vec![
                fake_point(0.1, 50_000.0, 0.1),
                fake_point(0.2, 90_000.0, 0.2),
            ],
        };
        let tps = tps_at_rt(&s, 70_000.0).unwrap();
        assert!((tps - 0.15).abs() < 1e-9);
    }

    #[test]
    fn none_when_target_never_reached() {
        let s = SweepResult {
            scheduler: "X".into(),
            points: vec![
                fake_point(0.1, 10_000.0, 0.1),
                fake_point(0.2, 20_000.0, 0.2),
            ],
        };
        assert!(tps_at_rt(&s, 70_000.0).is_none());
        assert!((max_tps(&s) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn first_point_already_saturated() {
        let s = SweepResult {
            scheduler: "X".into(),
            points: vec![fake_point(0.1, 100_000.0, 0.09)],
        };
        assert_eq!(tps_at_rt(&s, 70_000.0), Some(0.09));
    }
}
