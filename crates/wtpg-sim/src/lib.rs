//! # wtpg-sim
//!
//! A discrete-event simulator of the paper's shared-nothing database machine
//! (§4.1, Figure 5), driving the schedulers of `wtpg-core` over bulk-access
//! transaction workloads:
//!
//! * one **control node** (CN) — a serial CPU that admits transactions,
//!   runs the concurrency control (priced with `ddtime` / `chaintime` /
//!   `kwtpgtime` per operation actually performed), and coordinates
//!   two-phase commit (`startuptime` / `committime`);
//! * `NumNodes` **data-processing nodes** (DN) — serial servers that process
//!   bulk operations one *object* at a time (`ObjTime`) round-robin among
//!   resident transactions, sending a weight-adjustment message to CN after
//!   every object;
//! * partitions placed by `node = partition mod NumNodes`;
//! * Poisson arrivals at rate λ with **unbounded multiprogramming level**;
//! * delayed/rejected requests resubmitted after a fixed delay, blocked
//!   requests woken by the commit that frees their partition.
//!
//! One simulated clock is one millisecond, and at the default
//! `ObjTime = 1 s` one milli-object of [`wtpg_core::Work`] is exactly one
//! clock, so the machine is exact integer arithmetic throughout.
//!
//! The [`runner`] module adds the paper's measurement procedure: λ sweeps,
//! mean response time / throughput per point, and interpolated
//! *throughput at RT = 70 s* — the metric behind Figures 8 and 10.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod events;
pub mod machine;
pub mod metrics;
pub mod runner;
pub mod sched_kind;
pub mod workload;

pub use config::SimParams;
pub use machine::Machine;
pub use metrics::RunReport;
pub use runner::{run_once, sweep, tps_at_rt, LambdaPoint, SweepResult};
pub use sched_kind::SchedKind;
pub use workload::Workload;
