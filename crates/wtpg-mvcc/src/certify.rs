//! The snapshot-consistency check.
//!
//! Rule: **every read of a read-only BAT observed exactly the
//! committed-prefix state of its partition at the BAT's snapshot tick** —
//! the cells produced by folding, from zero, the write effects of precisely
//! those sealed write steps whose transactions committed at a tick `<= S`.
//!
//! The check replays nothing and trusts no node: it rebuilds the reference
//! cells of each partition from the control node's [`CommitLog`] (seal
//! order, unit counts, commit ticks) and compares the
//! [`read_checksum`](crate::chain::read_checksum) the data node actually
//! returned for each read against the checksum of the reference state. Reads
//! are verified in one sweep per partition: observations sorted by snapshot
//! tick, committed writes folded in commit-tick order as the sweep passes
//! them.

use std::collections::BTreeMap;

use wtpg_core::time::Tick;
use wtpg_core::txn::TxnId;

use crate::chain::{apply_write_effect, read_checksum};
use crate::watermark::CommitLog;

/// One snapshot read as the client-visible protocol saw it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadObservation {
    /// The reader's step index.
    pub step: u32,
    /// Partition read.
    pub partition: u32,
    /// Milli-object cells scanned.
    pub units: u64,
    /// Checksum the data node returned.
    pub checksum: u64,
}

/// One read-only BAT's certification record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReaderRecord {
    /// The reader.
    pub txn: TxnId,
    /// Its snapshot tick.
    pub snapshot: Tick,
    /// Every read it performed, with the replies it got.
    pub reads: Vec<ReadObservation>,
}

/// What the snapshot certifier verified.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotReport {
    /// Read-only BATs checked.
    pub readers: u64,
    /// Individual reads checked.
    pub reads: u64,
    /// Committed write effects folded into reference states.
    pub writes_folded: u64,
}

/// A snapshot-consistency violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// A read's checksum does not match the committed-prefix state at its
    /// snapshot tick.
    Mismatch {
        /// The reader.
        txn: TxnId,
        /// Its step index.
        step: u32,
        /// Partition read.
        partition: u32,
        /// The reader's snapshot tick.
        snapshot: Tick,
        /// Checksum of the reference committed-prefix state.
        expected: u64,
        /// Checksum the node returned.
        got: u64,
    },
    /// A read names a partition the catalog has no cell count for.
    UnknownPartition(u32),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SnapshotError::Mismatch {
                txn,
                step,
                partition,
                snapshot,
                expected,
                got,
            } => write!(
                f,
                "snapshot violation: {txn} step {step} on partition {partition} \
                 at snapshot {snapshot:?} read {got:#x}, committed prefix is {expected:#x}"
            ),
            SnapshotError::UnknownPartition(p) => {
                write!(f, "snapshot read names unknown partition {p}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Certifies every reader against the snapshot-consistency rule.
///
/// `rows` maps each partition to its cell count (the catalog size the data
/// nodes were built with).
///
/// # Errors
/// The first [`SnapshotError`] found, scanning partitions in id order and
/// reads in snapshot-tick order.
pub fn certify_snapshots(
    log: &CommitLog,
    readers: &[ReaderRecord],
    rows: &BTreeMap<u32, u64>,
) -> Result<SnapshotReport, SnapshotError> {
    // Regroup: per partition, every (snapshot, reader, observation).
    let mut by_part: BTreeMap<u32, Vec<(Tick, TxnId, ReadObservation)>> = BTreeMap::new();
    for r in readers {
        for obs in &r.reads {
            by_part
                .entry(obs.partition)
                .or_default()
                .push((r.snapshot, r.txn, *obs));
        }
    }
    let mut report = SnapshotReport {
        readers: readers.len() as u64,
        ..SnapshotReport::default()
    };
    for (p, mut obs) in by_part {
        let rows_p = *rows.get(&p).ok_or(SnapshotError::UnknownPartition(p))?;
        // Committed writes on p in commit-tick order (ticks are unique per
        // transaction; one transaction's steps share a tick and fold
        // together, which is exactly the atomicity the snapshot promises).
        let mut writes: Vec<(Tick, u64)> = log
            .seal_order(p)
            .iter()
            .filter_map(|e| log.commit_tick(e.txn).map(|t| (t, e.units)))
            .collect();
        writes.sort_unstable();
        obs.sort_by_key(|&(s, txn, o)| (s, txn, o.step));
        let mut cells = vec![0u64; rows_p.max(1) as usize];
        let mut next = 0usize;
        for (snapshot, txn, o) in obs {
            while let Some(&(tick, units)) = writes.get(next) {
                if tick > snapshot {
                    break;
                }
                apply_write_effect(&mut cells, units);
                report.writes_folded += 1;
                next += 1;
            }
            let expected = read_checksum(&cells, o.units);
            if expected != o.checksum {
                return Err(SnapshotError::Mismatch {
                    txn,
                    step: o.step,
                    partition: p,
                    snapshot,
                    expected,
                    got: o.checksum,
                });
            }
            report.reads += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::VersionChain;

    fn obs(step: u32, partition: u32, units: u64, checksum: u64) -> ReadObservation {
        ReadObservation {
            step,
            partition,
            units,
            checksum,
        }
    }

    /// End-to-end agreement: a node-side chain reconstruction and the
    /// certifier's committed-prefix fold must accept each other.
    #[test]
    fn node_reconstruction_certifies() {
        let rows = 10u64;
        let mut log = CommitLog::new();
        let mut chain = VersionChain::new();
        let mut current = vec![0u64; rows as usize];

        // Writer 1 seals and commits at tick 10; writer 2 seals but is
        // still uncommitted when the snapshot is taken; writer 3 seals
        // after the snapshot and commits at tick 30.
        for (txn, units) in [(1u64, 17u64), (2, 23)] {
            let seq = log.seal(0, TxnId(txn), units);
            chain.record(seq, TxnId(txn), units);
            crate::chain::apply_write_effect(&mut current, units);
        }
        log.note_commit(TxnId(1), Tick(10));

        // Snapshot at tick 15: horizon 2, exclusion {1}.
        let snapshot = Tick(15);
        let horizon = log.horizon(0);
        let exclude = log.exclusions(0);
        assert_eq!(exclude, vec![1]);

        // Writer 3 arrives and commits after the snapshot was taken.
        let seq = log.seal(0, TxnId(3), 40);
        chain.record(seq, TxnId(3), 40);
        crate::chain::apply_write_effect(&mut current, 40);
        log.note_commit(TxnId(3), Tick(30));
        // Writer 2 also eventually commits, after the snapshot.
        log.note_commit(TxnId(2), Tick(31));

        // The node answers the read from its chain.
        let snap_cells = chain.snapshot_cells(&current, horizon, &exclude);
        let checksum = read_checksum(&snap_cells, 25);

        let readers = vec![ReaderRecord {
            txn: TxnId(9),
            snapshot,
            reads: vec![obs(0, 0, 25, checksum)],
        }];
        let rows_map = BTreeMap::from([(0u32, rows)]);
        let report = certify_snapshots(&log, &readers, &rows_map).expect("consistent");
        assert_eq!(report.readers, 1);
        assert_eq!(report.reads, 1);
        assert_eq!(report.writes_folded, 1, "only writer 1 is in the prefix");
    }

    /// The in-flight-commit GC race: a snapshot excludes a
    /// sealed-but-uncommitted writer, and that writer commits while the
    /// `SnapshotRead` is still undelivered. The reader's hold (smallest
    /// excluded sequence) keeps the floor below the entry, so the late
    /// read still reconstructs the committed-prefix state at its tick —
    /// whereas pruning at the raw committed prefix (the horizon-only hold
    /// this test guards against regressing to) yields exactly the dirty
    /// read the certifier flags.
    #[test]
    fn excluded_writer_committing_in_flight_still_certifies() {
        use crate::watermark::{gc_floor, ActiveSnapshots};
        let rows = 8u64;
        let mut log = CommitLog::new();
        let mut chain = VersionChain::new();
        let mut current = vec![0u64; rows as usize];

        // Writer 1 seals and its write is applied at the node.
        let seq = log.seal(0, TxnId(1), 12);
        chain.record(seq, TxnId(1), 12);
        apply_write_effect(&mut current, 12);

        // Snapshot at tick 4: horizon 1, exclusion {0}, hold 0.
        let snapshot = Tick(4);
        let horizon = log.horizon(0);
        let exclude = log.exclusions(0);
        assert_eq!(exclude, vec![0]);
        let mut active = ActiveSnapshots::new();
        active.begin(TxnId(5), snapshot);
        active.observe(TxnId(5), 0, exclude.first().copied().unwrap_or(horizon));

        // The writer commits while the read is still undelivered, and the
        // recomputed floor reaches the node out-of-band...
        log.note_commit(TxnId(1), Tick(9));
        let floor = gc_floor(&mut log, &active, 0);
        assert_eq!(floor, 0, "the reader's hold caps the floor");
        chain.prune_below(floor);

        // ...then the read is finally served, and certifies.
        let cells = chain.snapshot_cells(&current, horizon, &exclude);
        let readers = vec![ReaderRecord {
            txn: TxnId(5),
            snapshot,
            reads: vec![obs(0, 0, 12, read_checksum(&cells, 12))],
        }];
        let rows_map = BTreeMap::from([(0u32, rows)]);
        certify_snapshots(&log, &readers, &rows_map).expect("no dirty read");

        // Pruning at the committed prefix instead drops the excluded
        // entry; the reconstruction includes the in-flight commit and the
        // certifier rejects it.
        let mut horizon_only = chain.clone();
        horizon_only.prune_below(log.committed_prefix(0));
        let dirty = horizon_only.snapshot_cells(&current, horizon, &exclude);
        let dirty_readers = vec![ReaderRecord {
            txn: TxnId(5),
            snapshot,
            reads: vec![obs(0, 0, 12, read_checksum(&dirty, 12))],
        }];
        assert!(
            certify_snapshots(&log, &dirty_readers, &rows_map).is_err(),
            "the horizon-only hold admits a dirty read"
        );
    }

    #[test]
    fn a_dirty_read_is_a_violation() {
        let rows = BTreeMap::from([(0u32, 8u64)]);
        let mut log = CommitLog::new();
        log.seal(0, TxnId(1), 12);
        // Txn 1 never commits, yet the reader's checksum includes its
        // effect (it read the raw current cells — a dirty read).
        let mut dirty = vec![0u64; 8];
        apply_write_effect(&mut dirty, 12);
        let readers = vec![ReaderRecord {
            txn: TxnId(5),
            snapshot: Tick(4),
            reads: vec![obs(0, 0, 12, read_checksum(&dirty, 12))],
        }];
        let err = certify_snapshots(&log, &readers, &rows).unwrap_err();
        assert!(matches!(
            err,
            SnapshotError::Mismatch {
                txn: TxnId(5),
                step: 0,
                partition: 0,
                ..
            }
        ));
    }

    #[test]
    fn readers_at_different_ticks_see_different_prefixes() {
        let rows = BTreeMap::from([(0u32, 8u64)]);
        let mut log = CommitLog::new();
        log.seal(0, TxnId(1), 10);
        log.seal(0, TxnId(2), 20);
        log.note_commit(TxnId(1), Tick(5));
        log.note_commit(TxnId(2), Tick(9));
        let mut after1 = vec![0u64; 8];
        apply_write_effect(&mut after1, 10);
        let mut after2 = after1.clone();
        apply_write_effect(&mut after2, 20);
        let readers = vec![
            ReaderRecord {
                txn: TxnId(7),
                snapshot: Tick(6),
                reads: vec![obs(0, 0, 5, read_checksum(&after1, 5))],
            },
            ReaderRecord {
                txn: TxnId(8),
                snapshot: Tick(9),
                reads: vec![obs(0, 0, 5, read_checksum(&after2, 5))],
            },
        ];
        let report = certify_snapshots(&log, &readers, &rows).expect("both consistent");
        assert_eq!(report.reads, 2);
        assert_eq!(report.writes_folded, 2);
        // Swapping the two checksums breaks both.
        let swapped = vec![
            ReaderRecord {
                snapshot: Tick(6),
                ..readers[1].clone()
            },
        ];
        assert!(certify_snapshots(&log, &swapped, &rows).is_err());
    }

    #[test]
    fn unknown_partition_is_an_error() {
        let log = CommitLog::new();
        let readers = vec![ReaderRecord {
            txn: TxnId(1),
            snapshot: Tick(1),
            reads: vec![obs(0, 42, 1, 0)],
        }];
        assert_eq!(
            certify_snapshots(&log, &readers, &BTreeMap::new()).unwrap_err(),
            SnapshotError::UnknownPartition(42)
        );
    }

    #[test]
    fn empty_run_certifies_trivially() {
        let report = certify_snapshots(&CommitLog::new(), &[], &BTreeMap::new()).unwrap();
        assert_eq!(report, SnapshotReport::default());
    }
}
