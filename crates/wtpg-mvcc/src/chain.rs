//! Version chains and the commutative write-effect algebra.
//!
//! A data node keeps one [`VersionChain`] per partition it homes: an ordered
//! map from *seal sequence number* to the [`SealedWrite`] applied under that
//! number. Seal sequences are assigned by the control node the moment it
//! orders a write step (`Access`), so they are a per-partition total order
//! that both ends agree on even when the fault layer delays, duplicates, or
//! reorders deliveries — the node never numbers writes itself, it files them
//! under the sequence the order carries.
//!
//! The chain stores *effects*, not values. A write step's effect on a
//! partition is fully determined by its unit count (see
//! [`apply_write_effect`]), and effects commute, so the state any snapshot
//! observed can be reconstructed from the current cells by subtracting the
//! effects that are not part of the snapshot — in any order, without ever
//! having copied a cell ([`VersionChain::snapshot_cells`]).
//!
//! Garbage collection is a floor: once the control node's watermark says no
//! active or future snapshot can exclude a sealed write (it is committed and
//! every active reader's horizon is above it), its entry is dead weight and
//! [`VersionChain::prune_below`] drops it.

use std::collections::BTreeMap;

use wtpg_core::txn::TxnId;

/// Adds the total effect of a write step of `units` milli-object cells to a
/// partition's cell slice.
///
/// Mirrors `NodeStore::chunk_into_cells` in write mode for a whole step:
/// steps start at logical offset zero and cycle, so the chunked application
/// (each chunk offset picking up where the last ended) sums to `units / rows`
/// added to every cell plus one to the first `units % rows` cells. The
/// decomposition is what makes effects commutative — and therefore what
/// makes snapshot reconstruction order-free.
pub fn apply_write_effect(cells: &mut [u64], units: u64) {
    let rows = (cells.len() as u64).max(1);
    let full = units / rows;
    let part = (units % rows) as usize;
    if full > 0 {
        for cell in cells.iter_mut() {
            *cell = cell.wrapping_add(full);
        }
    }
    for cell in cells.get_mut(..part).unwrap_or(&mut []) {
        *cell = cell.wrapping_add(1);
    }
}

/// Subtracts the total effect of a write step of `units` cells — the exact
/// inverse of [`apply_write_effect`] (wrapping arithmetic, so the pair is an
/// inverse even across overflow).
pub fn unapply_write_effect(cells: &mut [u64], units: u64) {
    let rows = (cells.len() as u64).max(1);
    let full = units / rows;
    let part = (units % rows) as usize;
    if full > 0 {
        for cell in cells.iter_mut() {
            *cell = cell.wrapping_sub(full);
        }
    }
    for cell in cells.get_mut(..part).unwrap_or(&mut []) {
        *cell = cell.wrapping_sub(1);
    }
}

/// The checksum a read step of `units` cells computes over a partition's
/// cells, matching `NodeStore::chunk_into_cells` in read mode for one whole
/// step (logical offset zero). Shared by the data node's snapshot-read path
/// (over reconstructed cells) and the snapshot certifier (over reference
/// cells) so both sides fold the same function.
pub fn read_checksum(cells: &[u64], units: u64) -> u64 {
    let rows = (cells.len() as u64).max(1);
    let full = units / rows;
    let part = (units % rows) as usize;
    let mut checksum = 0u64;
    if full > 0 {
        let whole: u64 = cells.iter().fold(0u64, |s, &c| s.wrapping_add(c));
        checksum = whole.wrapping_mul(full);
    }
    for &cell in cells.get(..part).unwrap_or(&[]) {
        checksum = checksum.wrapping_add(cell);
    }
    checksum.rotate_left((units % 63) as u32 + 1)
}

/// One version-chain entry: the write step applied under a seal sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SealedWrite {
    /// The writing transaction.
    pub txn: TxnId,
    /// Milli-object cells the step touched (its full declared-actual cost).
    pub units: u64,
}

/// One partition's version chain: applied writes keyed by seal sequence.
#[derive(Clone, Debug, Default)]
pub struct VersionChain {
    /// Applied writes by seal sequence. Entries below `floor` are pruned.
    entries: BTreeMap<u64, SealedWrite>,
    /// GC floor: every sequence below this has been pruned (monotonic).
    floor: u64,
    /// Entries ever recorded (telemetry).
    appended: u64,
    /// Entries ever pruned (telemetry).
    pruned: u64,
    /// Largest live entry count ever held (telemetry).
    live_peak: u64,
}

impl VersionChain {
    /// An empty chain with GC floor zero.
    pub fn new() -> VersionChain {
        VersionChain::default()
    }

    /// Records that the write `txn` of `units` cells was applied under seal
    /// sequence `seq`. Returns `false` (and records nothing) if `seq` is
    /// already present or below the GC floor — both are redeliveries of an
    /// order the node already applied, which the caller's apply-marks should
    /// have filtered before reaching the store.
    pub fn record(&mut self, seq: u64, txn: TxnId, units: u64) -> bool {
        if seq < self.floor || self.entries.contains_key(&seq) {
            return false;
        }
        self.entries.insert(seq, SealedWrite { txn, units });
        self.appended += 1;
        self.live_peak = self.live_peak.max(self.entries.len() as u64);
        true
    }

    /// Reconstructs the cells a snapshot with the given `horizon` and
    /// exclusion set observed: clones `current`, subtracts every applied
    /// write sealed at or above the horizon (sealed after the snapshot was
    /// taken), then subtracts every excluded sequence that is present
    /// (writes that were sealed but uncommitted when the snapshot was
    /// taken). Excluded sequences that are absent were simply not applied
    /// yet — skipping them lands on the same state.
    pub fn snapshot_cells(&self, current: &[u64], horizon: u64, exclude: &[u64]) -> Vec<u64> {
        let mut cells = current.to_vec();
        for (_, e) in self.entries.range(horizon..) {
            unapply_write_effect(&mut cells, e.units);
        }
        for &seq in exclude {
            if seq < horizon {
                if let Some(e) = self.entries.get(&seq) {
                    unapply_write_effect(&mut cells, e.units);
                }
            }
        }
        cells
    }

    /// Prunes every entry with sequence below `floor` and returns how many
    /// were dropped. The floor is monotonic: a stale (smaller) floor from a
    /// redelivered message is a no-op.
    pub fn prune_below(&mut self, floor: u64) -> u64 {
        if floor <= self.floor {
            return 0;
        }
        let keep = self.entries.split_off(&floor);
        let dropped = self.entries.len() as u64;
        self.entries = keep;
        self.floor = floor;
        self.pruned += dropped;
        dropped
    }

    /// Live (unpruned) entries.
    pub fn live(&self) -> usize {
        self.entries.len()
    }

    /// The current GC floor.
    pub fn floor(&self) -> u64 {
        self.floor
    }

    /// Lifetime telemetry: `(appended, pruned, live_peak)`.
    pub fn totals(&self) -> (u64, u64, u64) {
        (self.appended, self.pruned, self.live_peak)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtpg_core::txn::AccessMode;
    use wtpg_rt::store::NodeStore;

    /// The effect algebra must reproduce the store kernel's chunked writes:
    /// a step of `units` applied chunk-by-chunk (offsets picking up where
    /// the previous chunk ended) equals one `apply_write_effect` call.
    #[test]
    fn write_effect_matches_chunked_kernel_application() {
        for (rows, units, chunk) in [(7usize, 23u64, 5u64), (100, 100, 1), (3, 1000, 17), (1, 5, 2)]
        {
            let mut kernel = vec![0u64; rows];
            let mut offset = 0;
            while offset < units {
                let n = chunk.min(units - offset);
                NodeStore::chunk_into_cells(&mut kernel, AccessMode::Write, offset, n);
                offset += n;
            }
            let mut effect = vec![0u64; rows];
            apply_write_effect(&mut effect, units);
            assert_eq!(kernel, effect, "rows={rows} units={units} chunk={chunk}");
            unapply_write_effect(&mut effect, units);
            assert_eq!(effect, vec![0u64; rows], "inverse returns to zero");
        }
    }

    /// `read_checksum` must equal the kernel's read of one whole step at
    /// offset zero, over arbitrary cell contents.
    #[test]
    fn read_checksum_matches_kernel_read() {
        let cells: Vec<u64> = (0..37).map(|i| i * i + 1).collect();
        for units in [0u64, 1, 36, 37, 38, 500] {
            let mut copy = cells.clone();
            let kernel = NodeStore::chunk_into_cells(&mut copy, AccessMode::Read, 0, units);
            assert_eq!(copy, cells, "reads change nothing");
            assert_eq!(read_checksum(&cells, units), kernel, "units={units}");
        }
    }

    /// Effects commute: applying in any order and unapplying any subset
    /// reaches the state of applying only the complement.
    #[test]
    fn effects_commute_and_cancel() {
        let steps = [13u64, 200, 7, 99];
        let mut forward = vec![0u64; 11];
        for &u in &steps {
            apply_write_effect(&mut forward, u);
        }
        let mut reversed = vec![0u64; 11];
        for &u in steps.iter().rev() {
            apply_write_effect(&mut reversed, u);
        }
        assert_eq!(forward, reversed);
        // Remove steps 0 and 2 == apply only steps 1 and 3.
        unapply_write_effect(&mut forward, steps[0]);
        unapply_write_effect(&mut forward, steps[2]);
        let mut complement = vec![0u64; 11];
        apply_write_effect(&mut complement, steps[1]);
        apply_write_effect(&mut complement, steps[3]);
        assert_eq!(forward, complement);
    }

    #[test]
    fn snapshot_cells_excludes_uncommitted_and_post_horizon_writes() {
        let mut chain = VersionChain::new();
        let rows = 10usize;
        let mut current = vec![0u64; rows];
        // Seal order: seq 0 (committed), 1 (uncommitted), 2 (past horizon).
        for (seq, units) in [(0u64, 25u64), (1, 13), (2, 40)] {
            assert!(chain.record(seq, TxnId(seq + 1), units));
            apply_write_effect(&mut current, units);
        }
        // Snapshot taken after seq 0..=1 sealed (horizon 2), with seq 1
        // uncommitted: it observes exactly seq 0.
        let snap = chain.snapshot_cells(&current, 2, &[1]);
        let mut expected = vec![0u64; rows];
        apply_write_effect(&mut expected, 25);
        assert_eq!(snap, expected);
        // Excluded-but-absent sequences are skipped (not yet applied).
        let snap = chain.snapshot_cells(&current, 2, &[1, 7]);
        assert_eq!(snap, expected);
        // Empty exclusion at full horizon: the current state.
        assert_eq!(chain.snapshot_cells(&current, 3, &[]), current);
    }

    #[test]
    fn record_rejects_duplicates_and_pruned_sequences() {
        let mut chain = VersionChain::new();
        assert!(chain.record(0, TxnId(1), 5));
        assert!(!chain.record(0, TxnId(1), 5), "duplicate seal seq");
        assert!(chain.record(1, TxnId(2), 6));
        assert_eq!(chain.prune_below(1), 1);
        assert_eq!(chain.prune_below(1), 0, "floor is monotonic");
        assert!(!chain.record(0, TxnId(1), 5), "below the floor");
        assert_eq!(chain.live(), 1);
        assert_eq!(chain.floor(), 1);
        assert_eq!(chain.totals(), (2, 1, 2));
    }
}
