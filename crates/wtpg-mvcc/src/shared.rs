//! The MVCC layer's two cross-actor cells.
//!
//! Everything else in this crate is single-owner state (a control actor's
//! log, a data actor's chains). These two are shared and mutex-protected,
//! and both are declared leaves in the workspace lock hierarchy
//! (`lint-locks.toml`: `mvcc-chain` rank 8, `mvcc-watermark` rank 9) —
//! neither is ever held across another acquisition.
//!
//! * [`GcWatermark`] — the control plane's published per-partition GC
//!   floors. Snapshot reads piggyback the floor on the wire, but a
//!   partition no reader ever visits would otherwise keep its chain
//!   forever; data actors poll this cell when they seal new writes.
//! * [`ChainStats`] — run-level version-chain telemetry, added by each data
//!   actor at teardown and read once by the harness for the report.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Published per-partition GC floors (monotonic).
#[derive(Debug, Default)]
pub struct GcWatermark {
    floors: Mutex<BTreeMap<u32, u64>>,
}

impl GcWatermark {
    /// All floors at zero.
    pub fn new() -> GcWatermark {
        GcWatermark::default()
    }

    /// Raises `partition`'s published floor to `floor` (stale smaller
    /// values are ignored — floors only advance).
    pub fn publish(&self, partition: u32, floor: u64) {
        let mut floors = self
            .floors
            .lock()
            .expect("invariant: watermark lock is never poisoned (no panics while held)");
        let slot = floors.entry(partition).or_insert(0);
        *slot = (*slot).max(floor);
    }

    /// The published floor of `partition` (zero if never published).
    pub fn floor(&self, partition: u32) -> u64 {
        self.floors
            .lock()
            .expect("invariant: watermark lock is never poisoned (no panics while held)")
            .get(&partition)
            .copied()
            .unwrap_or(0)
    }
}

/// Run-level version-chain totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChainTotals {
    /// Chain entries recorded across all partitions.
    pub appended: u64,
    /// Chain entries pruned by the GC floor.
    pub pruned: u64,
    /// Largest per-partition live chain length observed.
    pub live_peak: u64,
    /// Snapshot reads served from chains.
    pub snapshot_reads: u64,
}

impl ChainTotals {
    /// Adds `other` into `self` (`live_peak` takes the max).
    pub fn merge(&mut self, other: ChainTotals) {
        self.appended += other.appended;
        self.pruned += other.pruned;
        self.live_peak = self.live_peak.max(other.live_peak);
        self.snapshot_reads += other.snapshot_reads;
    }
}

/// Shared collector of [`ChainTotals`] across data actors.
#[derive(Debug, Default)]
pub struct ChainStats {
    inner: Mutex<ChainTotals>,
}

impl ChainStats {
    /// An empty collector.
    pub fn new() -> ChainStats {
        ChainStats::default()
    }

    /// Merges one actor's totals into the run's.
    pub fn add(&self, totals: ChainTotals) {
        self.inner
            .lock()
            .expect("invariant: chain-stats lock is never poisoned (no panics while held)")
            .merge(totals);
    }

    /// The run's totals so far.
    pub fn totals(&self) -> ChainTotals {
        *self
            .inner
            .lock()
            .expect("invariant: chain-stats lock is never poisoned (no panics while held)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_floors_are_monotonic() {
        let w = GcWatermark::new();
        assert_eq!(w.floor(3), 0);
        w.publish(3, 5);
        w.publish(3, 2);
        assert_eq!(w.floor(3), 5, "stale publishes are ignored");
        w.publish(3, 9);
        assert_eq!(w.floor(3), 9);
        assert_eq!(w.floor(4), 0);
    }

    #[test]
    fn chain_stats_merge_across_actors() {
        let stats = ChainStats::new();
        std::thread::scope(|s| {
            for i in 1..=4u64 {
                let stats = &stats;
                s.spawn(move || {
                    stats.add(ChainTotals {
                        appended: i,
                        pruned: 1,
                        live_peak: i,
                        snapshot_reads: 2,
                    });
                });
            }
        });
        let t = stats.totals();
        assert_eq!(t.appended, 10);
        assert_eq!(t.pruned, 4);
        assert_eq!(t.live_peak, 4);
        assert_eq!(t.snapshot_reads, 8);
    }
}
