//! Multi-version concurrency layer for read-only bulk access transactions.
//!
//! The paper's machine gives every BAT what amounts to an exclusive claim on
//! the partitions it touches, so read-only bulk work (reports, scans,
//! backups) serializes behind bulk writers. This crate layers timestamped
//! multi-version state *under* the partition stores so a read-only BAT can
//! acquire a snapshot timestamp at admission, bypass the WTPG entirely, and
//! still be certified against an exact consistency rule.
//!
//! The layer exploits one property of the engine's storage model: a write
//! step's total effect on a partition's cells is a *commutative* function of
//! its unit count (every step starts at logical offset zero and cycles, so
//! the effect is `units / rows` added to every cell plus one to the first
//! `units % rows` cells — see [`chain::apply_write_effect`]). Snapshot state
//! therefore never needs value copies: it is the current cells minus the
//! effects of writes that are not part of the snapshot, in any order.
//!
//! Four pieces:
//!
//! * [`chain`] — per-partition [`VersionChain`]s keyed by control-assigned
//!   *seal sequence numbers*, plus the write-effect algebra and the
//!   snapshot-reconstruction kernel data nodes run for `SnapshotRead`.
//! * [`watermark`] — the control-side [`CommitLog`] (seal order + commit
//!   ticks of the shared [`LogicalClock`](wtpg_core::time::LogicalClock))
//!   and [`ActiveSnapshots`] registry, which together yield the GC floor:
//!   versions below the oldest active snapshot's horizon are pruned.
//! * [`certify`] — the snapshot-consistency check: every read observed
//!   exactly the committed-prefix state at its snapshot tick.
//! * [`shared`] — the two cross-actor cells (GC watermark, chain telemetry)
//!   declared in the workspace lock hierarchy (`lint-locks.toml`).

pub mod certify;
pub mod chain;
pub mod shared;
pub mod watermark;

pub use certify::{certify_snapshots, ReadObservation, ReaderRecord, SnapshotError, SnapshotReport};
pub use chain::{apply_write_effect, read_checksum, unapply_write_effect, SealedWrite, VersionChain};
pub use shared::{ChainStats, ChainTotals, GcWatermark};
pub use watermark::{gc_floor, ActiveSnapshots, CommitLog, SealEntry};
