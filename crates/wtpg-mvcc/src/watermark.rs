//! Control-side MVCC bookkeeping: the commit log and the active-snapshot
//! registry, which together drive the GC watermark.
//!
//! The control node *seals* a write step the moment it orders it at a data
//! node: the step gets the next seal sequence of its partition, appended to
//! the [`CommitLog`]. When the transaction later commits, the log records
//! its commit tick from the shared [`LogicalClock`]
//! (wtpg_core::time::LogicalClock). A snapshot taken "now" is then fully
//! described per partition by two numbers and a set, all read off the log in
//! one control-actor step:
//!
//! * the **snapshot tick** `S` — the clock's current instant; the snapshot
//!   is the committed-prefix state at `S`;
//! * the **horizon** — the partition's next seal sequence; writes sealed
//!   later are not part of the snapshot (their commit ticks will be `> S`);
//! * the **exclusion set** — sealed-but-uncommitted sequences below the
//!   horizon; they may already be applied at the node but are not part of
//!   the committed prefix.
//!
//! GC: a chain entry is dead once it is committed *and* no active snapshot
//! can still need to subtract it. A snapshot subtracts entries at or above
//! its horizon **and** its excluded entries below the horizon — and an
//! excluded writer may commit (advancing the committed prefix past its
//! sequence) while the read is still in flight. So a reader's *hold* on a
//! partition is `min(horizon, smallest excluded sequence)`, and the
//! per-partition floor — `min(committed prefix, oldest active hold)` — is
//! what [`VersionChain::prune_below`](crate::chain::VersionChain::prune_below)
//! receives, piggybacked on snapshot reads and published through
//! [`GcWatermark`](crate::shared::GcWatermark) for partitions no reader
//! visits.

use std::collections::BTreeMap;

use wtpg_core::time::Tick;
use wtpg_core::txn::TxnId;

/// One sealed write step in a partition's seal order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SealEntry {
    /// The writing transaction.
    pub txn: TxnId,
    /// Milli-object cells the step writes (declared-actual cost).
    pub units: u64,
}

/// The control node's seal order and commit-tick record, per partition.
#[derive(Clone, Debug, Default)]
pub struct CommitLog {
    /// Seal order of write steps, per partition; the index of an entry is
    /// its seal sequence.
    seal: BTreeMap<u32, Vec<SealEntry>>,
    /// Commit tick of every committed transaction.
    committed: BTreeMap<TxnId, Tick>,
    /// Per-partition count of leading seal entries known committed — the
    /// committed-prefix cursor, advanced lazily and monotonically.
    cursor: BTreeMap<u32, u64>,
}

impl CommitLog {
    /// An empty log.
    pub fn new() -> CommitLog {
        CommitLog::default()
    }

    /// Seals a write step of `txn` touching `units` cells of `partition`,
    /// returning its seal sequence. Called exactly once per write step, at
    /// the moment the control node first pushes the step's `Access` order.
    pub fn seal(&mut self, partition: u32, txn: TxnId, units: u64) -> u64 {
        let order = self.seal.entry(partition).or_default();
        order.push(SealEntry { txn, units });
        order.len() as u64 - 1
    }

    /// Records `txn`'s commit tick.
    pub fn note_commit(&mut self, txn: TxnId, tick: Tick) {
        self.committed.insert(txn, tick);
    }

    /// The commit tick of `txn`, if it committed.
    pub fn commit_tick(&self, txn: TxnId) -> Option<Tick> {
        self.committed.get(&txn).copied()
    }

    /// The partition's next seal sequence — the horizon of a snapshot taken
    /// right now.
    pub fn horizon(&self, partition: u32) -> u64 {
        self.seal.get(&partition).map_or(0, |o| o.len() as u64)
    }

    /// Seal sequences below the horizon whose transactions have not
    /// committed — the exclusion set of a snapshot taken right now. Scans
    /// only past the committed-prefix cursor, so steady-state cost tracks
    /// the live writer population, not run length.
    pub fn exclusions(&mut self, partition: u32) -> Vec<u64> {
        let from = self.committed_prefix(partition);
        let Some(order) = self.seal.get(&partition) else {
            return Vec::new();
        };
        order
            .get(from as usize..)
            .into_iter()
            .flatten()
            .enumerate()
            .filter(|(_, e)| !self.committed.contains_key(&e.txn))
            .map(|(i, _)| from + i as u64)
            .collect()
    }

    /// Count of leading seal entries whose transactions have committed,
    /// advancing the cursor past any newly committed prefix.
    pub fn committed_prefix(&mut self, partition: u32) -> u64 {
        let Some(order) = self.seal.get(&partition) else {
            return 0;
        };
        let cur = self.cursor.entry(partition).or_insert(0);
        while order
            .get(*cur as usize)
            .is_some_and(|e| self.committed.contains_key(&e.txn))
        {
            *cur += 1;
        }
        *cur
    }

    /// Partitions with at least one sealed write.
    pub fn partitions(&self) -> impl Iterator<Item = u32> + '_ {
        self.seal.keys().copied()
    }

    /// The full seal order of `partition` (certification input).
    pub fn seal_order(&self, partition: u32) -> &[SealEntry] {
        self.seal.get(&partition).map_or(&[], |o| o.as_slice())
    }

    /// Merges `other` into `self`. Partition seal orders must not overlap
    /// across the merged logs (each control shard seals disjoint
    /// partitions); commit ticks union.
    pub fn merge(&mut self, other: CommitLog) {
        for (p, order) in other.seal {
            debug_assert!(
                !self.seal.contains_key(&p),
                "two control shards sealed partition {p}"
            );
            self.seal.insert(p, order);
        }
        for (p, cur) in other.cursor {
            self.cursor.insert(p, cur);
        }
        self.committed.extend(other.committed);
    }
}

/// The registry of snapshots currently being read: snapshot tick and
/// per-partition holds of every admitted, unfinished read-only BAT.
#[derive(Clone, Debug, Default)]
pub struct ActiveSnapshots {
    readers: BTreeMap<TxnId, Reader>,
}

#[derive(Clone, Debug)]
struct Reader {
    snapshot: Tick,
    holds: BTreeMap<u32, u64>,
}

impl ActiveSnapshots {
    /// An empty registry.
    pub fn new() -> ActiveSnapshots {
        ActiveSnapshots::default()
    }

    /// Admits reader `txn` at snapshot tick `snapshot`.
    pub fn begin(&mut self, txn: TxnId, snapshot: Tick) {
        self.readers.insert(
            txn,
            Reader {
                snapshot,
                holds: BTreeMap::new(),
            },
        );
    }

    /// Records `txn`'s hold on `partition`: the smallest seal sequence its
    /// snapshot may still need to subtract — `min(horizon, smallest
    /// excluded sequence)`. The horizon alone is not enough: an excluded
    /// (sealed-but-uncommitted) entry below the horizon is only protected
    /// from GC while its writer stays uncommitted, and the writer can
    /// commit while this read is still in flight.
    pub fn observe(&mut self, txn: TxnId, partition: u32, hold: u64) {
        if let Some(r) = self.readers.get_mut(&txn) {
            r.holds.insert(partition, hold);
        }
    }

    /// Retires reader `txn` (all replies received). Returns whether it was
    /// active.
    pub fn end(&mut self, txn: TxnId) -> bool {
        self.readers.remove(&txn).is_some()
    }

    /// The oldest active snapshot tick — the run's GC watermark. `None`
    /// when no reader is active (everything committed is prunable).
    pub fn watermark(&self) -> Option<Tick> {
        self.readers.values().map(|r| r.snapshot).min()
    }

    /// The smallest hold any active reader has on `partition` — no chain
    /// entry at or above it may be pruned while that reader lives.
    pub fn min_hold(&self, partition: u32) -> Option<u64> {
        self.readers
            .values()
            .filter_map(|r| r.holds.get(&partition).copied())
            .min()
    }

    /// Active readers.
    pub fn len(&self) -> usize {
        self.readers.len()
    }

    /// True when no reader is active.
    pub fn is_empty(&self) -> bool {
        self.readers.is_empty()
    }
}

/// The GC floor of `partition`: the committed prefix, capped by the oldest
/// active reader hold on that partition. Every chain entry below the floor
/// is committed and no current or future snapshot can need to subtract it
/// — committed entries the prefix has passed are only prunable once no
/// live reader excludes them.
pub fn gc_floor(log: &mut CommitLog, active: &ActiveSnapshots, partition: u32) -> u64 {
    let prefix = log.committed_prefix(partition);
    match active.min_hold(partition) {
        Some(h) => prefix.min(h),
        None => prefix,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_sequences_and_horizons_advance_per_partition() {
        let mut log = CommitLog::new();
        assert_eq!(log.horizon(0), 0);
        assert_eq!(log.seal(0, TxnId(1), 10), 0);
        assert_eq!(log.seal(0, TxnId(2), 20), 1);
        assert_eq!(log.seal(7, TxnId(1), 5), 0);
        assert_eq!(log.horizon(0), 2);
        assert_eq!(log.horizon(7), 1);
        assert_eq!(log.seal_order(0).len(), 2);
        assert_eq!(log.partitions().collect::<Vec<_>>(), vec![0, 7]);
    }

    #[test]
    fn exclusions_are_the_uncommitted_sealed_suffix() {
        let mut log = CommitLog::new();
        for id in 1..=4u64 {
            log.seal(0, TxnId(id), 10);
        }
        assert_eq!(log.exclusions(0), vec![0, 1, 2, 3]);
        log.note_commit(TxnId(1), Tick(5));
        log.note_commit(TxnId(3), Tick(6));
        // Seq 0 committed (prefix), 1 uncommitted, 2 committed, 3 not.
        assert_eq!(log.exclusions(0), vec![1, 3]);
        assert_eq!(log.committed_prefix(0), 1);
        log.note_commit(TxnId(2), Tick(7));
        assert_eq!(log.exclusions(0), vec![3]);
        assert_eq!(log.committed_prefix(0), 3, "cursor jumps the new prefix");
    }

    #[test]
    fn gc_floor_is_capped_by_the_oldest_reader_hold() {
        let mut log = CommitLog::new();
        let mut active = ActiveSnapshots::new();
        for id in 1..=3u64 {
            log.seal(0, TxnId(id), 10);
            log.note_commit(TxnId(id), Tick(id));
        }
        assert_eq!(gc_floor(&mut log, &active, 0), 3, "no readers: full prefix");
        active.begin(TxnId(9), Tick(2));
        active.observe(TxnId(9), 0, 1);
        assert_eq!(active.watermark(), Some(Tick(2)));
        assert_eq!(gc_floor(&mut log, &active, 0), 1, "reader holds the floor");
        assert_eq!(gc_floor(&mut log, &active, 5), 0, "unread partition");
        assert!(active.end(TxnId(9)));
        assert!(!active.end(TxnId(9)));
        assert!(active.is_empty());
        assert_eq!(gc_floor(&mut log, &active, 0), 3);
    }

    /// The race the hold rule exists for: a reader excludes a
    /// sealed-but-uncommitted writer below its horizon, and that writer
    /// commits while the read is still in flight. The committed prefix
    /// passes the excluded sequence, but the reader's hold (the smallest
    /// excluded sequence, not the horizon) must keep the floor below it
    /// until the reader retires — otherwise the chain entry is pruned and
    /// the reconstructed snapshot silently includes a write that was
    /// uncommitted at the snapshot tick.
    #[test]
    fn an_excluded_writer_committing_in_flight_cannot_raise_the_floor() {
        let mut log = CommitLog::new();
        let mut active = ActiveSnapshots::new();
        log.seal(0, TxnId(1), 10); // seq 0: still uncommitted at snapshot
        log.seal(0, TxnId(2), 20); // seq 1: also uncommitted
        let horizon = log.horizon(0);
        let exclude = log.exclusions(0);
        assert_eq!(exclude, vec![0, 1]);
        active.begin(TxnId(9), Tick(5));
        let hold = exclude.first().copied().unwrap_or(horizon);
        active.observe(TxnId(9), 0, hold);
        // Both excluded writers commit while the read is undelivered.
        log.note_commit(TxnId(1), Tick(6));
        log.note_commit(TxnId(2), Tick(7));
        assert_eq!(log.committed_prefix(0), 2);
        assert_eq!(
            gc_floor(&mut log, &active, 0),
            0,
            "the hold pins the floor below the excluded entries"
        );
        assert!(active.end(TxnId(9)));
        assert_eq!(gc_floor(&mut log, &active, 0), 2, "retirement releases it");
    }

    #[test]
    fn merge_unions_shard_logs() {
        let mut a = CommitLog::new();
        a.seal(0, TxnId(1), 10);
        a.note_commit(TxnId(1), Tick(3));
        let mut b = CommitLog::new();
        b.seal(1, TxnId(2), 20);
        b.note_commit(TxnId(2), Tick(4));
        a.merge(b);
        assert_eq!(a.horizon(0), 1);
        assert_eq!(a.horizon(1), 1);
        assert_eq!(a.commit_tick(TxnId(2)), Some(Tick(4)));
    }
}
