//! End-to-end tests of the `wtpg` binary.

use std::io::Write as _;
use std::process::{Command, Stdio};

const FIGURE1: &str =
    "T1: r(A:1) -> r(B:3) -> w(A:1)\nT2: r(C:1) -> w(A:1)\nT3: w(C:1) -> r(D:3)\n";

fn wtpg(args: &[&str], stdin: Option<&str>) -> (String, String, bool) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_wtpg"));
    cmd.args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn wtpg");
    if let Some(input) = stdin {
        child
            .stdin
            .as_mut()
            .expect("stdin piped")
            .write_all(input.as_bytes())
            .expect("write stdin");
    }
    drop(child.stdin.take());
    let out = child.wait_with_output().expect("wait wtpg");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

#[test]
fn plan_analyses_figure1() {
    let (stdout, _, ok) = wtpg(&["plan", "-"], Some(FIGURE1));
    assert!(ok);
    assert!(stdout.contains("chain-form: YES"));
    assert!(stdout.contains("optimal critical path 6"));
    assert!(stdout.contains("T1 -> T2"));
    assert!(stdout.contains("T3 -> T2"));
    assert!(stdout.contains("heuristic is optimal here"));
}

#[test]
fn dot_emits_graphviz() {
    let (stdout, _, ok) = wtpg(&["dot", "-"], Some(FIGURE1));
    assert!(ok);
    assert!(stdout.starts_with("digraph wtpg"));
    assert!(stdout.contains("style=dashed"));
}

#[test]
fn trace_narrates_chain_decisions() {
    let (stdout, _, ok) = wtpg(&["trace", "-", "--scheduler", "chain"], Some(FIGURE1));
    assert!(ok);
    assert!(stdout.contains("scheduler: CHAIN"));
    // Example 3.3: T2's first step is delayed at least once.
    assert!(stdout.contains("T2 step 0 r(P2:1) delayed"));
    assert!(stdout.contains("all 3 transactions committed"));
}

#[test]
fn trace_supports_every_scheduler_name() {
    for name in [
        "chain",
        "k2",
        "gwtpg",
        "asl",
        "c2pl",
        "chain-c2pl",
        "k2-c2pl",
        "nodc",
    ] {
        let (stdout, stderr, ok) = wtpg(&["trace", "-", "--scheduler", name], Some(FIGURE1));
        assert!(ok, "{name}: {stderr}");
        assert!(stdout.contains("all 3 transactions committed"), "{name}");
    }
}

#[test]
fn simulate_prints_a_report() {
    let (stdout, _, ok) = wtpg(
        &[
            "simulate",
            "--pattern",
            "2",
            "--hots",
            "4",
            "--scheduler",
            "k2",
            "--lambda",
            "0.5",
            "--sim-ms",
            "60000",
        ],
        None,
    );
    assert!(ok);
    assert!(stdout.contains("Pattern2(hots=4)"));
    assert!(stdout.contains("throughput"));
    assert!(stdout.contains("E(q) evals"));
}

#[test]
fn engine_runs_a_certified_batch() {
    let (stdout, stderr, ok) = wtpg(
        &[
            "engine", "--sched", "chain", "--threads", "4", "--txns", "50", "--seed", "11",
        ],
        None,
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("CHAIN | 4 threads"));
    assert!(stdout.contains("committed  : 50"));
    assert!(stdout.contains("certified  : clean"));
    assert!(stdout.contains("consistent"));
}

#[test]
fn engine_writes_a_json_report() {
    let dir = std::env::temp_dir().join("wtpg-cli-engine-test");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let out = dir.join("engine_cell.json");
    let out_str = out.to_str().expect("utf-8 temp path");
    let (stdout, stderr, ok) = wtpg(
        &[
            "engine", "--sched", "k2", "--threads", "2", "--txns", "30", "--out", out_str,
        ],
        None,
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("wrote"));
    let json = std::fs::read_to_string(&out).expect("report written");
    assert!(json.contains("\"scheduler\""));
    assert!(json.contains("\"throughput_tps\""));
    std::fs::remove_file(&out).ok();
}

#[test]
fn engine_trace_feeds_obs_summary_diff_and_chrome() {
    let dir = std::env::temp_dir().join("wtpg-cli-obs-test");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let trace = dir.join("engine_trace.jsonl");
    let trace_str = trace.to_str().expect("utf-8 temp path");
    let (stdout, stderr, ok) = wtpg(
        &[
            "engine", "--sched", "k2", "--threads", "4", "--txns", "40", "--pattern", "2",
            "--hots", "4", "--trace", trace_str,
        ],
        None,
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("wrote trace"), "{stdout}");

    let (summary, stderr, ok) = wtpg(&["obs", "summary", trace_str], None);
    assert!(ok, "{stderr}");
    assert!(summary.contains("cache: hits="), "{summary}");
    assert!(summary.contains("lock_wait"), "{summary}");
    assert!(summary.contains("txn"), "{summary}");

    let (diff, stderr, ok) = wtpg(&["obs", "diff", trace_str, trace_str], None);
    assert!(ok, "{stderr}");
    assert!(diff.contains("no counter or span differences"), "{diff}");

    // The Chrome export must be real JSON in trace_event object format.
    let (chrome, stderr, ok) = wtpg(&["obs", "chrome", trace_str], None);
    assert!(ok, "{stderr}");
    let doc: serde_json::Value = serde_json::from_str(&chrome).expect("chrome output parses");
    let events = match doc.get("traceEvents") {
        Some(serde_json::Value::Seq(evs)) => evs,
        other => panic!("traceEvents missing or not an array: {other:?}"),
    };
    assert!(!events.is_empty());
    let mut phases = std::collections::BTreeSet::new();
    let mut open_spans = 0i64;
    for ev in events {
        for key in ["name", "ph", "ts", "pid", "tid"] {
            assert!(ev.get(key).is_some(), "event missing {key}: {ev:?}");
        }
        let ph = match ev.get("ph") {
            Some(serde_json::Value::Str(s)) => s.clone(),
            other => panic!("ph is not a string: {other:?}"),
        };
        match ph.as_str() {
            "B" => open_spans += 1,
            "E" => open_spans -= 1,
            "X" => assert!(ev.get("dur").is_some(), "X event missing dur: {ev:?}"),
            "C" | "i" => assert!(ev.get("args").is_some(), "{ph} event missing args: {ev:?}"),
            other => panic!("unexpected phase {other:?}"),
        }
        phases.insert(ph);
    }
    assert!(open_spans >= 0, "more span ends than begins");
    for needed in ["B", "E", "C", "X"] {
        assert!(phases.contains(needed), "no {needed} events in {phases:?}");
    }
    std::fs::remove_file(&trace).ok();
}

#[test]
fn simulate_trace_is_summarisable() {
    let dir = std::env::temp_dir().join("wtpg-cli-obs-test");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let trace = dir.join("sim_trace.jsonl");
    let trace_str = trace.to_str().expect("utf-8 temp path");
    let (stdout, stderr, ok) = wtpg(
        &[
            "simulate", "--pattern", "1", "--scheduler", "chain", "--lambda", "0.5", "--sim-ms",
            "60000", "--trace", trace_str,
        ],
        None,
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("wrote trace"), "{stdout}");
    let (summary, stderr, ok) = wtpg(&["obs", "summary", trace_str], None);
    assert!(ok, "{stderr}");
    assert!(summary.contains("txn_response_ms"), "{summary}");
    assert!(summary.contains("cache: hits="), "{summary}");
    std::fs::remove_file(&trace).ok();
}

#[test]
fn bad_input_fails_cleanly() {
    let (_, stderr, ok) = wtpg(&["plan", "-"], Some("T1: fly(A:1)"));
    assert!(!ok);
    assert!(stderr.contains("error"));
    let (_, stderr, ok) = wtpg(&["simulate", "--pattern", "9"], None);
    assert!(!ok);
    assert!(stderr.contains("pattern"));
    let (_, stderr, ok) = wtpg(&["frobnicate"], None);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn help_lists_commands() {
    let (_, stderr, ok) = wtpg(&["--help"], None);
    assert!(ok);
    for cmd in ["plan", "dot", "trace", "simulate", "engine", "obs"] {
        assert!(stderr.contains(cmd));
    }
}
