//! `wtpg top`: live (or one-shot) view of a run's windowed telemetry.
//!
//! Tails a JSONL trace carrying [`WindowSnapshot`] records — typically one
//! `wtpg load --jsonl FILE` is writing *right now* — and renders a
//! top-style table: throughput, commit-latency tail, queue depths,
//! backlog, abort rate, WAL flush lag, and the per-shard commit balance.
//!
//! ```text
//! wtpg load --lambda 4000 --secs 30 --jsonl load.jsonl &
//! wtpg top load.jsonl                # follow live, redraw each interval
//! wtpg top load.jsonl --once         # render the current state and exit
//! ```
//!
//! Partial trailing lines (the writer mid-`writeln!`) are skipped and
//! picked up on the next poll; parse errors on complete lines are
//! reported once per line, not fatal.

use wtpg_obs::window::{metric, WindowSnapshot};
use wtpg_obs::{EventKind, ObsEvent};

struct TopArgs {
    path: String,
    once: bool,
    interval_ms: u64,
    rows: usize,
}

fn parse(args: &[String]) -> Result<TopArgs, String> {
    let mut a = TopArgs {
        path: String::new(),
        once: false,
        interval_ms: 500,
        rows: 12,
    };
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| "missing option value".to_string())
        };
        match args[i].as_str() {
            "--once" => a.once = true,
            "--interval" => {
                a.interval_ms = take(&mut i)?.parse().map_err(|_| "bad --interval")?
            }
            "--rows" => a.rows = take(&mut i)?.parse().map_err(|_| "bad --rows")?,
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other:?}"))
            }
            other if a.path.is_empty() => a.path = other.to_string(),
            other => return Err(format!("unexpected argument {other:?}")),
        }
        i += 1;
    }
    if a.path.is_empty() {
        return Err("usage: wtpg top <trace.jsonl> [--once] [--interval MS] [--rows N]".into());
    }
    Ok(a)
}

/// Decodes the window records out of a trace, line by line, so one
/// unparseable line (a partial tail mid-write, a foreign record) skips
/// that line only.
fn windows_of(text: &str) -> Vec<WindowSnapshot> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(events) = wtpg_obs::jsonl::decode(line) else {
            continue;
        };
        for ev in events {
            if let ObsEvent {
                kind: EventKind::Window(snap),
                ..
            } = ev
            {
                out.push(*snap);
            }
        }
    }
    out
}

fn pct_ms(w: &WindowSnapshot, q: f64) -> f64 {
    w.hist(metric::COMMIT_LAT_US)
        .map(|h| h.percentile(q) as f64 / 1000.0)
        .unwrap_or(0.0)
}

fn tps(w: &WindowSnapshot) -> f64 {
    if w.len == 0 {
        0.0
    } else {
        w.counter(metric::COMMITS) as f64 * 1_000_000.0 / w.len as f64
    }
}

fn abort_rate(w: &WindowSnapshot) -> f64 {
    let rejected = w.counter(metric::REJECTS);
    let shed = w.counter(metric::SHED);
    let denom = (w.counter(metric::COMMITS) + rejected + shed).max(w.counter(metric::OFFERED));
    if denom == 0 {
        0.0
    } else {
        (rejected + shed) as f64 / denom as f64
    }
}

fn render(windows: &[WindowSnapshot], path: &str, rows: usize, live: bool) {
    if live {
        // Clear and home — an in-place redraw, not a scrolling log.
        print!("\x1b[2J\x1b[H");
    }
    println!("wtpg top — {path} — {} windows", windows.len());
    let Some(last) = windows.last() else {
        println!("  (no window records yet)");
        return;
    };
    println!(
        "  now: {:>8.1} tps | p50 {:>7.2} ms  p99 {:>7.2} ms  p99.9 {:>7.2} ms | abort {:>5.2}%",
        tps(last),
        pct_ms(last, 0.50),
        pct_ms(last, 0.99),
        pct_ms(last, 0.999),
        abort_rate(last) * 100.0
    );
    println!(
        "  queues: inflight {:>4} | backlog {:>4} parked {:>4} | wal lag {} B | sched {} grants \
         {} aborts {} delays",
        last.gauge(metric::INFLIGHT).unwrap_or(0),
        last.gauge_sum("ctrl/s", "/backlog"),
        last.gauge_sum("ctrl/s", "/parked"),
        last.gauge(metric::WAL_LAG).unwrap_or(0),
        last.counter(metric::SCHED_GRANTS),
        last.counter(metric::SCHED_ABORTS),
        last.counter(metric::SCHED_DELAYS),
    );
    let shard_commits = last.counter_matches("ctrl/s", "/commits");
    if shard_commits.len() > 1 {
        let balance: Vec<String> = shard_commits
            .iter()
            .map(|(n, v)| {
                let shard = n
                    .strip_prefix("ctrl/s")
                    .and_then(|s| s.strip_suffix("/commits"))
                    .unwrap_or(n);
                format!("s{shard}:{v}")
            })
            .collect();
        println!("  shards: {}", balance.join("  "));
    }
    println!(
        "  {:>5} | {:>8} | {:>8} | {:>5} | {:>8} | {:>8} | {:>8} | {:>6}",
        "win", "tps", "offered", "shed", "p50 ms", "p99 ms", "p99.9 ms", "abort%"
    );
    let start = windows.len().saturating_sub(rows);
    for w in &windows[start..] {
        println!(
            "  {:>5} | {:>8.1} | {:>8} | {:>5} | {:>8.2} | {:>8.2} | {:>8.2} | {:>6.2}",
            w.seq,
            tps(w),
            w.counter(metric::OFFERED),
            w.counter(metric::SHED),
            pct_ms(w, 0.50),
            pct_ms(w, 0.99),
            pct_ms(w, 0.999),
            abort_rate(w) * 100.0
        );
    }
}

pub(crate) fn run(args: &[String]) -> Result<(), String> {
    let a = parse(args)?;
    if a.once {
        let text = std::fs::read_to_string(&a.path)
            .map_err(|e| format!("cannot read {}: {e}", a.path))?;
        render(&windows_of(&text), &a.path, a.rows, false);
        return Ok(());
    }
    // Follow mode: poll the whole file each interval (window records are
    // small — hundreds of bytes per 250 ms — so re-reading beats keeping
    // byte offsets through truncation/rewrite) and redraw in place until
    // interrupted.
    let mut last_len = usize::MAX;
    loop {
        let text = std::fs::read_to_string(&a.path).unwrap_or_default();
        let windows = windows_of(&text);
        if windows.len() != last_len {
            last_len = windows.len();
            render(&windows, &a.path, a.rows, true);
            println!("  (following — ctrl-c to exit)");
        }
        std::thread::sleep(std::time::Duration::from_millis(a.interval_ms.max(50)));
    }
}
