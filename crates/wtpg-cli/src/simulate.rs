//! `wtpg simulate`: run the timed shared-nothing machine on one of the
//! paper's patterns and print the run report.

use wtpg_sim::config::SimParams;
use wtpg_sim::machine::Machine;
use wtpg_sim::sched_kind::SchedKind;
use wtpg_workload::{ErrorModel, Pattern, PatternWorkload};

pub(crate) fn run(args: &[String]) -> Result<(), String> {
    let mut pattern = 1u32;
    let mut sched = "k2".to_string();
    let mut lambda = 0.5f64;
    let mut sim_ms = 300_000u64;
    let mut hots = 8u32;
    let mut sigma = 0.0f64;
    let mut seed = 42u64;
    let mut certify = false;
    let mut trace: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| "missing option value".to_string())
        };
        match args[i].as_str() {
            "--pattern" => pattern = take(&mut i)?.parse().map_err(|_| "bad --pattern")?,
            "--scheduler" => sched = take(&mut i)?,
            "--lambda" => lambda = take(&mut i)?.parse().map_err(|_| "bad --lambda")?,
            "--sim-ms" => sim_ms = take(&mut i)?.parse().map_err(|_| "bad --sim-ms")?,
            "--hots" => hots = take(&mut i)?.parse().map_err(|_| "bad --hots")?,
            "--sigma" => sigma = take(&mut i)?.parse().map_err(|_| "bad --sigma")?,
            "--seed" => seed = take(&mut i)?.parse().map_err(|_| "bad --seed")?,
            "--certify" => certify = true,
            "--trace" => trace = Some(take(&mut i)?),
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }
    let pattern = match pattern {
        1 => Pattern::One,
        2 => Pattern::Two { num_hots: hots },
        3 => Pattern::Three { num_hots: hots },
        other => return Err(format!("--pattern must be 1, 2 or 3, got {other}")),
    };
    let kind = match sched.to_ascii_lowercase().as_str() {
        "chain" => SchedKind::Chain,
        "k2" | "kwtpg" => SchedKind::KWtpg,
        "gwtpg" | "g-wtpg" => SchedKind::GWtpg,
        "asl" => SchedKind::Asl,
        "c2pl" => SchedKind::C2pl,
        "nodc" => SchedKind::Nodc,
        "chain-c2pl" => SchedKind::ChainC2pl,
        "k2-c2pl" => SchedKind::KC2pl,
        other => return Err(format!("unknown scheduler {other:?}")),
    };
    let params = SimParams {
        sim_length_ms: sim_ms,
        seed,
        certify,
        ..SimParams::paper_defaults()
    };
    let workload = PatternWorkload::with_error(pattern, seed, ErrorModel::new(sigma));
    let mut machine = Machine::new(params.clone(), kind.build(&params), workload);
    let sink = trace.as_ref().map(|_| std::sync::Arc::new(wtpg_obs::MemorySink::new()));
    if let Some(s) = &sink {
        machine.set_observer(s.clone());
    }
    let r = machine.run(lambda);
    if let (Some(path), Some(s)) = (&trace, &sink) {
        // Simulator events are ms ticks; Chrome wants µs.
        crate::obs::write_trace(path, &s.snapshot(), 1000)?;
        println!("wrote trace {path}");
    }
    println!(
        "pattern {} | scheduler {} | λ = {lambda} TPS | {} s simulated | σ = {sigma}",
        pattern.label(),
        kind.label(&params),
        sim_ms / 1000
    );
    println!("  completed     : {}", r.completed);
    println!(
        "  mean RT       : {:.2} s  (p50 {:.2}, p95 {:.2})",
        r.mean_rt_ms / 1000.0,
        r.p50_rt_ms / 1000.0,
        r.p95_rt_ms / 1000.0
    );
    println!("  throughput    : {:.3} TPS", r.throughput_tps);
    println!(
        "  DN utilisation: {:.0} %  CN: {:.1} %",
        r.dn_utilization * 100.0,
        r.cn_utilization * 100.0
    );
    println!(
        "  arrivals {} | rejects {} | blocks {} | delays {} | grants {}",
        r.arrivals, r.rejections, r.blocks, r.delays, r.grants
    );
    println!(
        "  control: {} deadlock tests, {} W optimisations, {} E(q) evals",
        r.deadlock_tests, r.chain_opts, r.eq_evals
    );
    if certify {
        // run() already certified (it panics on a violation) and kept the
        // report.
        let cert = machine
            .certify_report()
            .ok_or_else(|| "certification report missing after run".to_string())?;
        println!(
            "  certified: {} events replayed ({} grants, {} commits, {} E(q) checks)",
            cert.events, cert.grants, cert.commits, cert.eq_checks
        );
    }
    Ok(())
}
