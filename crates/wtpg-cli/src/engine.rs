//! `wtpg engine`: run a batch of pattern transactions on the real
//! multi-threaded execution engine and print (or record) the report.
//!
//! Single cell:
//!
//! ```text
//! wtpg engine --sched chain --threads 8 --txns 1000
//! ```
//!
//! Grid mode sweeps scheduler × threads × contention and writes one JSON
//! report per cell to `BENCH_engine.json`:
//!
//! ```text
//! wtpg engine --grid --out BENCH_engine.json
//! ```
//!
//! `--trace FILE` (single-cell mode) records a structured trace of the run:
//! JSONL when `FILE` ends in `.jsonl` (inspect with `wtpg obs summary`),
//! Chrome trace_event JSON otherwise (open in chrome://tracing or Perfetto).

use std::sync::Arc;

use serde::Serialize;
use wtpg_obs::MemorySink;
use wtpg_rt::engine::run_engine_obs;
use wtpg_rt::workload::pattern_specs;
use wtpg_rt::{sched_by_name, EngineConfig, EngineReport};
use wtpg_workload::Pattern;

/// One grid cell of `BENCH_engine.json`.
#[derive(Serialize)]
struct GridCell {
    contention: &'static str,
    pattern: String,
    report: EngineReport,
}

/// The whole `BENCH_engine.json` document, stamped with enough run
/// metadata to reproduce it: build provenance plus the swept grid.
#[derive(Serialize)]
struct GridDoc {
    bench: &'static str,
    git_describe: String,
    git_sha: String,
    txns: usize,
    seed: u64,
    schedulers: Vec<String>,
    thread_grid: Vec<usize>,
    cells: Vec<GridCell>,
}

struct EngineArgs {
    sched: String,
    threads: usize,
    txns: usize,
    pattern: u32,
    hots: u32,
    seed: u64,
    queue: usize,
    k: usize,
    keeptime: u64,
    certify: bool,
    grid: bool,
    out: Option<String>,
    trace: Option<String>,
}

fn parse(args: &[String]) -> Result<EngineArgs, String> {
    let mut a = EngineArgs {
        sched: "chain".into(),
        threads: 8,
        txns: 1000,
        pattern: 1,
        hots: 8,
        seed: 42,
        queue: 64,
        k: 2,
        keeptime: 5000,
        certify: true,
        grid: false,
        out: None,
        trace: None,
    };
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| "missing option value".to_string())
        };
        match args[i].as_str() {
            "--sched" | "--scheduler" => a.sched = take(&mut i)?,
            "--threads" => a.threads = take(&mut i)?.parse().map_err(|_| "bad --threads")?,
            "--txns" => a.txns = take(&mut i)?.parse().map_err(|_| "bad --txns")?,
            "--pattern" => a.pattern = take(&mut i)?.parse().map_err(|_| "bad --pattern")?,
            "--hots" => a.hots = take(&mut i)?.parse().map_err(|_| "bad --hots")?,
            "--seed" => a.seed = take(&mut i)?.parse().map_err(|_| "bad --seed")?,
            "--queue" => a.queue = take(&mut i)?.parse().map_err(|_| "bad --queue")?,
            "--k" => a.k = take(&mut i)?.parse().map_err(|_| "bad --k")?,
            "--keeptime" => a.keeptime = take(&mut i)?.parse().map_err(|_| "bad --keeptime")?,
            "--no-certify" => a.certify = false,
            "--grid" => a.grid = true,
            "--out" => a.out = Some(take(&mut i)?),
            "--trace" => a.trace = Some(take(&mut i)?),
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }
    Ok(a)
}

fn pattern_of(pattern: u32, hots: u32) -> Result<Pattern, String> {
    match pattern {
        1 => Ok(Pattern::One),
        2 => Ok(Pattern::Two { num_hots: hots }),
        3 => Ok(Pattern::Three { num_hots: hots }),
        other => Err(format!("--pattern must be 1, 2 or 3, got {other}")),
    }
}

fn run_cell(
    a: &EngineArgs,
    sched: &str,
    threads: usize,
    pattern: Pattern,
    sink: Option<Arc<MemorySink>>,
) -> Result<EngineReport, String> {
    let (catalog, specs) = pattern_specs(pattern, a.txns, a.seed);
    let cfg = EngineConfig {
        threads,
        queue_depth: a.queue,
        certify: a.certify,
        seed: a.seed,
        ..EngineConfig::default()
    };
    let sched = sched_by_name(sched, a.k, a.keeptime)
        .ok_or_else(|| format!("unknown scheduler {sched:?}"))?;
    let obs = sink.map(|s| s as Arc<dyn wtpg_obs::Observer>);
    run_engine_obs(&cfg, sched, &catalog, &specs, obs).map_err(|e| e.to_string())
}

fn print_report(r: &EngineReport, pattern: &str) {
    println!(
        "{} | {} threads | {} | {} txns submitted",
        r.scheduler, r.threads, pattern, r.submitted
    );
    println!(
        "  committed  : {}  ({:.1} TPS over {:.0} ms wall)",
        r.committed, r.throughput_tps, r.wall_ms
    );
    println!(
        "  latency    : mean {:.2} ms  p50 {:.2}  p95 {:.2}  max {:.2}",
        r.latency.mean_ms, r.latency.p50_ms, r.latency.p95_ms, r.latency.max_ms
    );
    println!(
        "  aborts     : {} rejected admissions ({:.1} % of attempts), \
         {} blocked + {} delayed retries, worst streak {}",
        r.rejected_admissions,
        r.abort_rate * 100.0,
        r.blocked_retries,
        r.delayed_retries,
        r.max_retry_streak
    );
    println!(
        "  control    : {} history events, {} logical ticks, {} deadlock tests, \
         {} W opts, {} E(q) evals",
        r.history_events, r.logical_ticks, r.deadlock_tests, r.chain_opts, r.eq_evals
    );
    if r.certified {
        println!(
            "  certified  : clean ({} grants checked, {} E(q) spot checks)",
            r.certify_grants, r.certify_eq_checks
        );
    } else {
        println!("  certified  : skipped (--no-certify)");
    }
    println!(
        "  store      : {} / {} write units visible — {}",
        r.store_write_units,
        r.expected_write_units,
        if r.store_consistent { "consistent" } else { "INCONSISTENT" }
    );
}

pub(crate) fn run(args: &[String]) -> Result<(), String> {
    let a = parse(args)?;
    if !a.grid {
        let pattern = pattern_of(a.pattern, a.hots)?;
        let sink = a.trace.as_ref().map(|_| Arc::new(MemorySink::new()));
        let report = run_cell(&a, &a.sched, a.threads, pattern, sink.clone())?;
        print_report(&report, &pattern.label());
        if let (Some(path), Some(sink)) = (&a.trace, sink) {
            // Engine events are wall-clock µs, so Chrome's ts unit is 1:1.
            crate::obs::write_trace(path, &sink.snapshot(), 1)?;
            println!("wrote trace {path}");
        }
        if let Some(path) = &a.out {
            let json = serde_json::to_string_pretty(&report)
                .map_err(|e| format!("cannot serialise report: {e}"))?;
            std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote {path}");
        }
        return Ok(());
    }

    // Grid mode: scheduler × threads × contention, one report per cell.
    let scheds = ["chain", "k2", "c2pl"];
    let thread_grid = [2usize, 4, 8];
    let contentions = [
        ("low", Pattern::One),
        ("high", Pattern::Two { num_hots: a.hots }),
    ];
    let mut cells = Vec::new();
    for sched in scheds {
        for &threads in &thread_grid {
            for (label, pattern) in contentions {
                let report = run_cell(&a, sched, threads, pattern, None)?;
                println!(
                    "{:>6} | {} threads | {:>4} contention | {:>8.1} TPS | p95 {:>8.2} ms \
                     | abort {:>5.1} % | {}",
                    report.scheduler,
                    threads,
                    label,
                    report.throughput_tps,
                    report.latency.p95_ms,
                    report.abort_rate * 100.0,
                    if report.certified { "certified" } else { "uncertified" }
                );
                cells.push(GridCell {
                    contention: label,
                    pattern: pattern.label(),
                    report,
                });
            }
        }
    }
    let out = a.out.as_deref().unwrap_or("BENCH_engine.json");
    let n_cells = cells.len();
    let doc = GridDoc {
        bench: "engine",
        git_describe: wtpg_obs::meta::git_describe().to_string(),
        git_sha: wtpg_obs::meta::git_sha().to_string(),
        txns: a.txns,
        seed: a.seed,
        schedulers: scheds.iter().map(|s| s.to_string()).collect(),
        thread_grid: thread_grid.to_vec(),
        cells,
    };
    let json =
        serde_json::to_string_pretty(&doc).map_err(|e| format!("cannot serialise grid: {e}"))?;
    std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out} ({n_cells} cells)");
    Ok(())
}
