//! `wtpg net`: run a batch of pattern transactions on the shared-nothing
//! message-passing runtime (control actor + one actor per data node) and
//! print (or record) the report.
//!
//! Single cell:
//!
//! ```text
//! wtpg net --sched chain --clients 4 --transport tcp --fault crash
//! wtpg net --fault kill --durability sync --wal-dir /tmp/wtpg-wal
//! ```
//!
//! `--fault kill` tears a data node down mid-run and restarts it from its
//! write-ahead log, so it needs a durability level that keeps one
//! (`buffered` or `sync`); when the flags are omitted a kill cell defaults
//! to `sync` with a fresh per-run temp directory.
//!
//! Grid mode sweeps scheduler × transport × fault plan (including kill)
//! and writes one JSON report per cell to `BENCH_net.json`, plus a
//! per-(scheduler, fault) in-proc vs TCP coordination-overhead comparison:
//!
//! ```text
//! wtpg net --grid --out BENCH_net.json
//! ```

use std::path::{Path, PathBuf};

use serde::Serialize;
use wtpg_net::{run_cell, Durability, FaultPlan, InProc, NetConfig, NetReport, Tcp, Transport};
use wtpg_rt::workload::pattern_specs;
use wtpg_rt::sched_by_name;
use wtpg_workload::{Pattern, ReadMix};

/// One grid cell of `BENCH_net.json`.
#[derive(Serialize)]
struct GridCell {
    pattern: String,
    report: NetReport,
}

/// In-proc vs TCP overhead for one (scheduler, fault) pair — the wire cost
/// of moving the same certified workload across real sockets.
#[derive(Serialize)]
struct OverheadRow {
    scheduler: String,
    fault: String,
    inproc_tps: f64,
    tcp_tps: f64,
    /// Extra wall-clock the TCP run took relative to in-proc, percent.
    tcp_overhead_pct: f64,
    tcp_bytes_per_commit: f64,
    tcp_msgs_per_commit: f64,
}

/// The whole `BENCH_net.json` document, stamped with enough run metadata
/// to reproduce it: build provenance plus the swept grid.
#[derive(Serialize)]
struct GridDoc {
    bench: &'static str,
    git_describe: String,
    git_sha: String,
    txns: usize,
    seed: u64,
    clients: usize,
    schedulers: Vec<String>,
    transports: Vec<String>,
    faults: Vec<String>,
    cells_certified: usize,
    cells_total: usize,
    overhead: Vec<OverheadRow>,
    cells: Vec<GridCell>,
}

struct NetArgs {
    sched: String,
    clients: usize,
    txns: usize,
    pattern: u32,
    hots: u32,
    groups: u32,
    seed: u64,
    transport: String,
    fault: String,
    chunk: u64,
    k: usize,
    keeptime: u64,
    shards: usize,
    batch_max: usize,
    batch_window: u64,
    pipeline: usize,
    admit_window: usize,
    certify: bool,
    durability: Option<String>,
    wal_dir: Option<String>,
    read_mix: f64,
    read_theta: f64,
    mvcc: bool,
    grid: bool,
    out: Option<String>,
}

fn parse(args: &[String]) -> Result<NetArgs, String> {
    let mut a = NetArgs {
        sched: "chain".into(),
        clients: 4,
        txns: 500,
        pattern: 1,
        hots: 8,
        groups: 4,
        seed: 42,
        transport: "inproc".into(),
        fault: "none".into(),
        chunk: 1000,
        k: 2,
        keeptime: 5000,
        shards: 1,
        batch_max: 128,
        batch_window: 100,
        pipeline: 16,
        admit_window: 32,
        certify: true,
        durability: None,
        wal_dir: None,
        read_mix: 0.0,
        read_theta: 0.0,
        mvcc: false,
        grid: false,
        out: None,
    };
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| "missing option value".to_string())
        };
        match args[i].as_str() {
            "--sched" | "--scheduler" => a.sched = take(&mut i)?,
            "--clients" => a.clients = take(&mut i)?.parse().map_err(|_| "bad --clients")?,
            "--txns" => a.txns = take(&mut i)?.parse().map_err(|_| "bad --txns")?,
            "--pattern" => a.pattern = take(&mut i)?.parse().map_err(|_| "bad --pattern")?,
            "--hots" => a.hots = take(&mut i)?.parse().map_err(|_| "bad --hots")?,
            "--groups" => a.groups = take(&mut i)?.parse().map_err(|_| "bad --groups")?,
            "--seed" => a.seed = take(&mut i)?.parse().map_err(|_| "bad --seed")?,
            "--shards" => a.shards = take(&mut i)?.parse().map_err(|_| "bad --shards")?,
            "--batch-max" => {
                a.batch_max = take(&mut i)?.parse().map_err(|_| "bad --batch-max")?
            }
            "--batch-window" => {
                a.batch_window = take(&mut i)?.parse().map_err(|_| "bad --batch-window")?
            }
            "--pipeline" => a.pipeline = take(&mut i)?.parse().map_err(|_| "bad --pipeline")?,
            "--admit-window" => {
                a.admit_window = take(&mut i)?.parse().map_err(|_| "bad --admit-window")?
            }
            "--transport" => a.transport = take(&mut i)?,
            "--fault" => a.fault = take(&mut i)?,
            "--chunk" => a.chunk = take(&mut i)?.parse().map_err(|_| "bad --chunk")?,
            "--k" => a.k = take(&mut i)?.parse().map_err(|_| "bad --k")?,
            "--keeptime" => a.keeptime = take(&mut i)?.parse().map_err(|_| "bad --keeptime")?,
            "--no-certify" => a.certify = false,
            "--durability" => a.durability = Some(take(&mut i)?),
            "--wal-dir" => a.wal_dir = Some(take(&mut i)?),
            "--read-mix" => a.read_mix = take(&mut i)?.parse().map_err(|_| "bad --read-mix")?,
            "--read-theta" => {
                a.read_theta = take(&mut i)?.parse().map_err(|_| "bad --read-theta")?
            }
            "--mvcc" => a.mvcc = true,
            "--grid" => a.grid = true,
            "--out" => a.out = Some(take(&mut i)?),
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }
    if !(0.0..=1.0).contains(&a.read_mix) {
        return Err("--read-mix must be within 0..=1".into());
    }
    if a.read_theta < 0.0 {
        return Err("--read-theta must be non-negative".into());
    }
    Ok(a)
}

fn pattern_of(pattern: u32, hots: u32, groups: u32) -> Result<Pattern, String> {
    match pattern {
        1 => Ok(Pattern::One),
        2 => Ok(Pattern::Two { num_hots: hots }),
        3 => Ok(Pattern::Three { num_hots: hots }),
        // The sharding ablation: `--groups` disjoint conflict components,
        // each with `--hots` private hot partitions.
        4 => Ok(Pattern::Clustered {
            groups,
            hots_per_group: hots,
        }),
        other => Err(format!("--pattern must be 1, 2, 3 or 4, got {other}")),
    }
}

fn transport_of(name: &str) -> Result<&'static dyn Transport, String> {
    match name {
        "inproc" => Ok(&InProc),
        "tcp" => Ok(&Tcp),
        other => Err(format!("--transport must be inproc or tcp, got {other:?}")),
    }
}

/// Fault plans always target data node 0's control link; the plan seed is
/// derived from the run seed so `--seed` reproduces the fault schedule too.
/// `kill` tears node 0 down mid-run (in-memory state destroyed) and
/// restarts it from its write-ahead log, so it requires a durability level
/// that keeps one.
fn fault_of(name: &str, seed: u64) -> Result<FaultPlan, String> {
    match name {
        "none" => Ok(FaultPlan::none()),
        "fault" => Ok(FaultPlan::flaky_links(seed ^ 0x5bd1_e995)),
        "crash" => Ok(FaultPlan::flaky_with_crash(seed ^ 0x5bd1_e995, 0)),
        "kill" => Ok(FaultPlan::kill_node(0)),
        other => Err(format!(
            "--fault must be none, fault, crash or kill, got {other:?}"
        )),
    }
}

/// Resolves the durability level and WAL directory for one run. A kill
/// fault defaults to `sync` when `--durability` is absent (it cannot heal
/// without a log); a log-keeping level without `--wal-dir` gets a fresh
/// per-run temp directory. Returns `(level, dir, created)` — when
/// `created` is true the caller owns cleanup of the temp directory.
fn durability_setup(
    durability: Option<&str>,
    wal_dir: Option<&str>,
    fault: &str,
    tag: &str,
) -> Result<(Durability, Option<PathBuf>, bool), String> {
    let dur = match durability {
        Some(s) => Durability::parse(s)
            .ok_or_else(|| format!("--durability must be none, buffered or sync, got {s:?}"))?,
        None if fault == "kill" => Durability::Sync,
        None => Durability::None,
    };
    if fault == "kill" && !dur.requires_log() {
        return Err("--fault kill needs --durability buffered or sync (a log to restart from)".into());
    }
    if let Some(d) = wal_dir {
        return Ok((dur, Some(PathBuf::from(d)), false));
    }
    if !dur.requires_log() {
        return Ok((dur, None, false));
    }
    let dir = std::env::temp_dir().join(format!("wtpg-net-wal-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Ok((dur, Some(dir), true))
}

/// One grid cell beyond the base sweep's shared knobs: its own client
/// count, shard request and pattern (the 10× hot cell and the sharded
/// clustered cells need different ones).
struct CellShape {
    clients: usize,
    shards: usize,
    pattern: Pattern,
    /// Fraction of the batch rewritten into read-only BATs.
    read_mix: f64,
    /// MVCC snapshot plane on: read-only BATs bypass the scheduler. Off,
    /// the same readers take S-locks — the baseline the reader-latency
    /// comparison runs against.
    mvcc: bool,
}

fn run_one(
    a: &NetArgs,
    sched: &str,
    transport: &dyn Transport,
    fault: &FaultPlan,
    shape: &CellShape,
    durability: Durability,
    wal_dir: Option<&Path>,
) -> Result<NetReport, String> {
    let (catalog, mut specs) = pattern_specs(shape.pattern, a.txns, a.seed);
    // `fraction == 0` is a guaranteed no-op, so plain cells stay untouched.
    ReadMix::skewed(shape.read_mix, a.read_theta).apply(&catalog, &mut specs, a.seed);
    let cfg = NetConfig {
        clients: shape.clients,
        chunk_units: a.chunk,
        certify: a.certify,
        shards: shape.shards,
        batch_max: a.batch_max,
        batch_window_us: a.batch_window,
        pipeline: a.pipeline,
        admit_window: a.admit_window,
        durability,
        wal_dir: wal_dir.map(Path::to_path_buf),
        mvcc: shape.mvcc,
        ..NetConfig::default()
    };
    if sched_by_name(sched, a.k, a.keeptime).is_none() {
        return Err(format!("unknown scheduler {sched:?}"));
    }
    // Each control shard builds its own scheduler from the same recipe.
    let factory = || sched_by_name(sched, a.k, a.keeptime).expect("scheduler name checked above");
    run_cell(&cfg, &factory, &catalog, &specs, transport, fault).map_err(|e| e.to_string())
}

fn print_report(r: &NetReport, pattern: &str) {
    println!(
        "{} | {} transport | {} faults | {} clients × {} data nodes × {} control shards \
         | {} | {} txns",
        r.scheduler, r.transport, r.fault, r.clients, r.data_nodes, r.shards, pattern, r.submitted
    );
    println!(
        "  committed  : {}  ({:.1} TPS over {:.0} ms wall)",
        r.committed, r.throughput_tps, r.wall_ms
    );
    println!(
        "  latency    : mean {:.2} ms  p50 {:.2}  p95 {:.2}  max {:.2}",
        r.latency.mean_ms, r.latency.p50_ms, r.latency.p95_ms, r.latency.max_ms
    );
    println!(
        "  round trips: control p95 {:.2} ms, bulk-step p95 {:.2} ms",
        r.ctrl_rtt.p95_ms, r.data_rtt.p95_ms
    );
    println!(
        "  messages   : {} sent ({:.1} per commit) — {} submits, {} grants, \
         {} accesses, {} stats deltas",
        r.messages_sent,
        r.msgs_per_commit(),
        r.msgs.submit,
        r.msgs.grant,
        r.msgs.access,
        r.msgs.stats_delta
    );
    println!(
        "  batching   : {} batch frames carrying {} coalesced messages",
        r.msgs.batch, r.batched_inner
    );
    if r.bytes_sent > 0 {
        println!(
            "  wire       : {} bytes sent / {} received ({:.0} bytes per commit, \
             {} frames)",
            r.bytes_sent,
            r.bytes_received,
            r.bytes_per_commit(),
            r.frames_sent
        );
    } else {
        println!("  wire       : in-process (no frames)");
    }
    println!(
        "  faults     : {} delayed, {} duplicated, {} crash drops, {} access retries",
        r.delayed_deliveries, r.dup_deliveries, r.crash_drops, r.access_retries
    );
    println!(
        "  aborts     : {} rejected admissions, {} delayed retries, worst streak {}",
        r.rejected_admissions, r.delayed_retries, r.max_retry_streak
    );
    if r.certified {
        println!(
            "  certified  : clean ({} grants checked, {} E(q) spot checks)",
            r.certify_grants, r.certify_eq_checks
        );
    } else {
        println!("  certified  : skipped (--no-certify)");
    }
    println!(
        "  store      : {} / {} write units visible — {}",
        r.store_write_units,
        r.expected_write_units,
        if r.store_consistent { "consistent" } else { "INCONSISTENT" }
    );
    if r.reader_commits > 0 {
        println!(
            "  readers    : {} committed via {} snapshot reads — \
             reader p99 {:.2} ms vs writer p99 {:.2} ms",
            r.reader_commits,
            r.snapshot_reads,
            r.reader_latency.p99_ms,
            r.writer_latency.p99_ms
        );
        println!(
            "  chains     : {} versions appended, {} pruned, peak {} live — snapshots {}",
            r.chain_appended,
            r.chain_pruned,
            r.chain_live_peak,
            if r.snapshot_certified { "certified" } else { "UNCERTIFIED" }
        );
    } else if r.reader_latency.max_ms > 0.0 {
        println!(
            "  readers    : lock-path (S mode) — reader p99 {:.2} ms vs \
             writer p99 {:.2} ms",
            r.reader_latency.p99_ms, r.writer_latency.p99_ms
        );
    }
    if r.durability != "none" {
        println!(
            "  durability : {} — {} wal records ({} flushes, {} fsyncs), \
             {} recoveries replaying {} chunks, {} orders parked unavailable",
            r.durability,
            r.wal_records,
            r.wal_flushes,
            r.wal_fsyncs,
            r.recoveries,
            r.wal_replayed_chunks,
            r.node_unavailable
        );
    }
}

pub(crate) fn run(args: &[String]) -> Result<(), String> {
    let a = parse(args)?;
    let pattern = pattern_of(a.pattern, a.hots, a.groups)?;
    if !a.grid {
        let transport = transport_of(&a.transport)?;
        let fault = fault_of(&a.fault, a.seed)?;
        let (dur, wal_dir, created) =
            durability_setup(a.durability.as_deref(), a.wal_dir.as_deref(), &a.fault, "cell")?;
        if a.mvcc && a.fault == "kill" {
            return Err(
                "--mvcc is incompatible with --fault kill: version chains are in-memory \
                 and do not survive a restart-from-log"
                    .into(),
            );
        }
        let shape = CellShape {
            clients: a.clients,
            shards: a.shards,
            pattern,
            read_mix: a.read_mix,
            mvcc: a.mvcc,
        };
        let report = run_one(&a, &a.sched, transport, &fault, &shape, dur, wal_dir.as_deref());
        if created {
            if let Some(d) = &wal_dir {
                let _ = std::fs::remove_dir_all(d);
            }
        }
        let report = report?;
        print_report(&report, &pattern.label());
        if let Some(path) = &a.out {
            let json = serde_json::to_string_pretty(&report)
                .map_err(|e| format!("cannot serialise report: {e}"))?;
            std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote {path}");
        }
        return Ok(());
    }

    // Grid provenance: the describe string is baked into the binary at
    // build time, so a stale or dirty build would stamp misleading numbers
    // into BENCH_net.json. Warn locally; refuse under CI.
    let describe = wtpg_obs::meta::git_describe();
    if describe.ends_with("-dirty") {
        if std::env::var_os("CI").is_some() {
            return Err(format!(
                "refusing to write a grid benchmark from a dirty build ({describe}) under CI; \
                 commit (or stash) and rebuild first"
            ));
        }
        eprintln!(
            "warning: benchmarking a dirty build ({describe}); \
             BENCH_net.json will carry the -dirty stamp"
        );
    }

    // Grid mode: scheduler × transport × fault, one report per cell. Kill
    // cells run under sync durability with a WAL in a fresh temp directory
    // (removed after the cell); the other fault plans keep durability off
    // so the base sweep's numbers stay comparable with earlier grids.
    let scheds = ["chain", "k2", "c2pl"];
    let transports: [(&str, &dyn Transport); 2] = [("inproc", &InProc), ("tcp", &Tcp)];
    let faults = ["none", "fault", "crash", "kill"];
    // The base sweep includes kill cells, which the snapshot plane refuses;
    // the grid carries its own mvcc-vs-baseline reader pair below instead.
    if a.mvcc {
        return Err("--grid sweeps its own mvcc cells; use --mvcc on single cells only".into());
    }
    let base_shape = CellShape {
        clients: a.clients,
        shards: a.shards,
        pattern,
        read_mix: a.read_mix,
        mvcc: false,
    };
    let print_row = |tname: &str, report: &NetReport| {
        println!(
            "{:>6} | {:>6} | {:>11} faults | {:>2} shards | {:>8.1} TPS | p95 {:>8.2} ms \
             | {:>5.1} msg/commit | {}",
            report.scheduler,
            tname,
            report.fault,
            report.shards,
            report.throughput_tps,
            report.latency.p95_ms,
            report.msgs_per_commit(),
            if report.certified { "certified" } else { "UNCERTIFIED" }
        );
    };
    let mut cells: Vec<GridCell> = Vec::new();
    for sched in scheds {
        for (tname, transport) in transports {
            for fname in faults {
                let fault = fault_of(fname, a.seed)?;
                let tag = format!("{sched}-{tname}-{fname}");
                let (dur, wal_dir, created) = durability_setup(None, None, fname, &tag)?;
                let report =
                    run_one(&a, sched, transport, &fault, &base_shape, dur, wal_dir.as_deref());
                if created {
                    if let Some(d) = &wal_dir {
                        let _ = std::fs::remove_dir_all(d);
                    }
                }
                let report = report?;
                print_row(tname, &report);
                cells.push(GridCell {
                    pattern: pattern.label(),
                    report,
                });
            }
        }
    }
    let base_cells = cells.len();

    // Beyond the base sweep: the high-contention in-proc cell (8 clients
    // hammering Pattern 2's hot set — the committed-tps headline) and the
    // sharded clustered cells (disjoint conflict components split across 4
    // control shards, exercised with and without fault plans on both
    // transports).
    let hot = CellShape {
        clients: 8,
        shards: 1,
        pattern: Pattern::Two { num_hots: 4 },
        read_mix: a.read_mix,
        mvcc: false,
    };
    let clustered = |shards| CellShape {
        clients: 8,
        shards,
        pattern: Pattern::Clustered {
            groups: 4,
            hots_per_group: 4,
        },
        read_mix: a.read_mix,
        mvcc: false,
    };
    // The reader pair: the same high-contention hot-set cell with half the
    // batch rewritten into read-only BATs, run once over the S-lock path
    // (baseline) and once on the snapshot plane — the reader/writer
    // latency tails land side by side in BENCH_net.json.
    let readers = |mvcc| CellShape {
        clients: 8,
        shards: 1,
        pattern: Pattern::Two { num_hots: 4 },
        read_mix: 0.5,
        mvcc,
    };
    let extras: [(&str, &dyn Transport, &str, CellShape); 8] = [
        ("inproc", &InProc, "none", hot),
        ("inproc", &InProc, "none", clustered(4)),
        ("inproc", &InProc, "fault", clustered(4)),
        ("tcp", &Tcp, "none", clustered(4)),
        ("tcp", &Tcp, "crash", clustered(2)),
        ("inproc", &InProc, "none", readers(false)),
        ("inproc", &InProc, "none", readers(true)),
        ("tcp", &Tcp, "none", readers(true)),
    ];
    for (tname, transport, fname, shape) in extras {
        let fault = fault_of(fname, a.seed)?;
        let report = run_one(&a, "chain", transport, &fault, &shape, Durability::None, None)?;
        print_row(tname, &report);
        cells.push(GridCell {
            pattern: shape.pattern.label(),
            report,
        });
    }

    // Pair each (scheduler, fault) across transports: the TCP run moves
    // the identical workload, so the delta is pure coordination overhead.
    // Only the base sweep pairs up — its cells are laid out sched-major,
    // then transport, then fault; the extra cells after `base_cells` have
    // no in-proc/TCP twin.
    debug_assert_eq!(base_cells, scheds.len() * transports.len() * faults.len());
    let mut overhead = Vec::new();
    for (si, _) in scheds.iter().enumerate() {
        for (fi, fname) in faults.iter().enumerate() {
            let ip = &cells[si * transports.len() * faults.len() + fi].report;
            let tcp = &cells[si * transports.len() * faults.len() + faults.len() + fi].report;
            overhead.push(OverheadRow {
                scheduler: ip.scheduler.clone(),
                fault: fname.to_string(),
                inproc_tps: ip.throughput_tps,
                tcp_tps: tcp.throughput_tps,
                tcp_overhead_pct: if ip.wall_ms > 0.0 {
                    (tcp.wall_ms / ip.wall_ms - 1.0) * 100.0
                } else {
                    0.0
                },
                tcp_bytes_per_commit: tcp.bytes_per_commit(),
                tcp_msgs_per_commit: tcp.msgs_per_commit(),
            });
        }
    }

    let certified = cells.iter().filter(|c| c.report.certified).count();
    let consistent = cells.iter().filter(|c| c.report.store_consistent).count();
    let snapshotted = cells
        .iter()
        .filter(|c| c.report.snapshot_certified)
        .count();
    let n_cells = cells.len();
    println!(
        "{certified}/{n_cells} cells certified, {consistent}/{n_cells} stores consistent, \
         {snapshotted}/{n_cells} snapshot-certified"
    );
    if certified < n_cells || consistent < n_cells || snapshotted < n_cells {
        return Err("grid run left uncertified or inconsistent cells".into());
    }

    let out = a.out.as_deref().unwrap_or("BENCH_net.json");
    let doc = GridDoc {
        bench: "net",
        git_describe: wtpg_obs::meta::git_describe().to_string(),
        git_sha: wtpg_obs::meta::git_sha().to_string(),
        txns: a.txns,
        seed: a.seed,
        clients: a.clients,
        schedulers: scheds.iter().map(|s| s.to_string()).collect(),
        transports: transports.iter().map(|(t, _)| t.to_string()).collect(),
        faults: faults.iter().map(|f| f.to_string()).collect(),
        cells_certified: certified,
        cells_total: n_cells,
        overhead,
        cells,
    };
    let json =
        serde_json::to_string_pretty(&doc).map_err(|e| format!("cannot serialise grid: {e}"))?;
    std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out} ({n_cells} cells)");
    Ok(())
}
