//! `wtpg load`: open-loop sustained-load harness. Arrivals come from a
//! Poisson process at target rate λ (not from client think-time), excess
//! arrivals are shed at a bounded in-flight window, the live event stream
//! is replay-certified incrementally (bounded memory — no full history),
//! and the per-window telemetry is judged against a declarative SLO.
//!
//! Single cell — run λ transactions/s for `--secs` and print the
//! per-window verdict stream plus the final SLO outcome:
//!
//! ```text
//! wtpg load --sched chain --lambda 4000 --secs 3 --slo "p99<50ms,abort<5%,sustain=4"
//! wtpg load --lambda 2000 --transport tcp --jsonl load.jsonl   # live-tail with `wtpg top`
//! ```
//!
//! Grid mode finds the max sustainable throughput under the SLO per
//! (scheduler, transport, durability) by bisecting λ, reruns each cell at
//! its sustainable rate to record the window stream, appends one
//! ≥1M-transaction endurance cell at the best measured rate, and writes
//! `BENCH_load.json`:
//!
//! ```text
//! wtpg load --grid --out BENCH_load.json
//! ```

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use serde::Serialize;
use wtpg_net::{
    run_cell_load, Durability, FaultPlan, InProc, NetConfig, NetReport, OpenLoop, Tcp, Transport,
};
use wtpg_obs::slo::{bisect_max, evaluate, SloOutcome, SloSpec, WindowStats, WindowVerdict};
use wtpg_obs::wclock::{WindowFlusher, DEFAULT_WINDOW_MS};
use wtpg_obs::wall::WallClock;
use wtpg_obs::{EventKind, ObsEvent, Observer, Registry};
use wtpg_rt::sched_by_name;
use wtpg_rt::workload::pattern_specs;
use wtpg_workload::{Pattern, ReadMix};

/// Observer track the load harness emits window records on. Distinct from
/// track 0 (the runtime's end-of-run cumulative records) so a trace holds
/// both without collision.
const WINDOW_TRACK: u32 = 9;

/// Appends each event to a JSONL file as it is recorded, flushing per
/// line, so `wtpg top` can follow the file while the run is still going.
struct JsonlFileSink {
    out: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl JsonlFileSink {
    fn create(path: &str) -> Result<JsonlFileSink, String> {
        let file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create {path}: {e}"))?;
        Ok(JsonlFileSink {
            out: Mutex::new(std::io::BufWriter::new(file)),
        })
    }
}

impl Observer for JsonlFileSink {
    fn record(&self, ev: ObsEvent) {
        use std::io::Write;
        let line = wtpg_obs::jsonl::encode_event(&ev);
        let mut out = self.out.lock().expect("jsonl sink poisoned");
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

/// Buffers the window records (for judging after the run) while optionally
/// tee-ing every event to a live JSONL file.
struct WindowTap {
    windows: Mutex<Vec<ObsEvent>>,
    tee: Option<JsonlFileSink>,
}

impl WindowTap {
    fn new(tee: Option<JsonlFileSink>) -> WindowTap {
        WindowTap {
            windows: Mutex::new(Vec::new()),
            tee,
        }
    }

    fn stats(&self) -> Vec<WindowStats> {
        self.windows
            .lock()
            .expect("window tap poisoned")
            .iter()
            .filter_map(|ev| match &ev.kind {
                EventKind::Window(snap) => Some(WindowStats::from_snapshot(snap)),
                _ => None,
            })
            .collect()
    }
}

impl Observer for WindowTap {
    fn record(&self, ev: ObsEvent) {
        if let Some(tee) = &self.tee {
            tee.record(ev.clone());
        }
        if matches!(ev.kind, EventKind::Window(_)) {
            self.windows.lock().expect("window tap poisoned").push(ev);
        }
    }
}

struct LoadArgs {
    sched: String,
    lambda: f64,
    secs: f64,
    txns: Option<usize>,
    clients: usize,
    inflight: usize,
    pattern: u32,
    hots: u32,
    groups: u32,
    seed: u64,
    transport: String,
    shards: usize,
    chunk: u64,
    k: usize,
    keeptime: u64,
    window_ms: u64,
    slo: String,
    durability: Option<String>,
    wal_dir: Option<String>,
    read_mix: f64,
    read_theta: f64,
    mvcc: bool,
    jsonl: Option<String>,
    telemetry: bool,
    grid: bool,
    endurance_txns: usize,
    bisect_iters: u32,
    probe_secs: f64,
    out: Option<String>,
}

fn parse(args: &[String]) -> Result<LoadArgs, String> {
    let mut a = LoadArgs {
        sched: "chain".into(),
        lambda: 2000.0,
        secs: 3.0,
        txns: None,
        clients: 4,
        inflight: 32,
        pattern: 1,
        hots: 8,
        groups: 4,
        seed: 42,
        transport: "inproc".into(),
        shards: 1,
        chunk: 1000,
        k: 2,
        keeptime: 5000,
        window_ms: DEFAULT_WINDOW_MS,
        slo: "p99<50ms,abort<5%,sustain=4".into(),
        durability: None,
        wal_dir: None,
        read_mix: 0.0,
        read_theta: 0.0,
        mvcc: false,
        jsonl: None,
        telemetry: true,
        grid: false,
        endurance_txns: 1_000_000,
        bisect_iters: 6,
        probe_secs: 2.5,
        out: None,
    };
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| "missing option value".to_string())
        };
        match args[i].as_str() {
            "--sched" | "--scheduler" => a.sched = take(&mut i)?,
            "--lambda" | "--tps" => a.lambda = take(&mut i)?.parse().map_err(|_| "bad --lambda")?,
            "--secs" => a.secs = take(&mut i)?.parse().map_err(|_| "bad --secs")?,
            "--txns" => a.txns = Some(take(&mut i)?.parse().map_err(|_| "bad --txns")?),
            "--clients" => a.clients = take(&mut i)?.parse().map_err(|_| "bad --clients")?,
            "--inflight" => a.inflight = take(&mut i)?.parse().map_err(|_| "bad --inflight")?,
            "--pattern" => a.pattern = take(&mut i)?.parse().map_err(|_| "bad --pattern")?,
            "--hots" => a.hots = take(&mut i)?.parse().map_err(|_| "bad --hots")?,
            "--groups" => a.groups = take(&mut i)?.parse().map_err(|_| "bad --groups")?,
            "--seed" => a.seed = take(&mut i)?.parse().map_err(|_| "bad --seed")?,
            "--transport" => a.transport = take(&mut i)?,
            "--shards" => a.shards = take(&mut i)?.parse().map_err(|_| "bad --shards")?,
            "--chunk" => a.chunk = take(&mut i)?.parse().map_err(|_| "bad --chunk")?,
            "--k" => a.k = take(&mut i)?.parse().map_err(|_| "bad --k")?,
            "--keeptime" => a.keeptime = take(&mut i)?.parse().map_err(|_| "bad --keeptime")?,
            "--window" => a.window_ms = take(&mut i)?.parse().map_err(|_| "bad --window")?,
            "--slo" => a.slo = take(&mut i)?,
            "--durability" => a.durability = Some(take(&mut i)?),
            "--wal-dir" => a.wal_dir = Some(take(&mut i)?),
            "--read-mix" => a.read_mix = take(&mut i)?.parse().map_err(|_| "bad --read-mix")?,
            "--read-theta" => {
                a.read_theta = take(&mut i)?.parse().map_err(|_| "bad --read-theta")?
            }
            "--mvcc" => a.mvcc = true,
            "--jsonl" => a.jsonl = Some(take(&mut i)?),
            // Telemetry off: no registry, no flusher — the baseline side
            // of the window-flush overhead experiment (EXPERIMENTS.md).
            "--no-telemetry" => a.telemetry = false,
            "--grid" => a.grid = true,
            "--endurance-txns" => {
                a.endurance_txns =
                    take(&mut i)?.parse().map_err(|_| "bad --endurance-txns")?
            }
            "--bisect-iters" => {
                a.bisect_iters = take(&mut i)?.parse().map_err(|_| "bad --bisect-iters")?
            }
            "--probe-secs" => {
                a.probe_secs = take(&mut i)?.parse().map_err(|_| "bad --probe-secs")?
            }
            "--out" => a.out = Some(take(&mut i)?),
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }
    if a.lambda <= 0.0 {
        return Err("--lambda must be positive".into());
    }
    if !(0.0..=1.0).contains(&a.read_mix) {
        return Err("--read-mix must be within 0..=1".into());
    }
    if a.read_theta < 0.0 {
        return Err("--read-theta must be non-negative".into());
    }
    Ok(a)
}

fn pattern_of(pattern: u32, hots: u32, groups: u32) -> Result<Pattern, String> {
    match pattern {
        1 => Ok(Pattern::One),
        2 => Ok(Pattern::Two { num_hots: hots }),
        3 => Ok(Pattern::Three { num_hots: hots }),
        4 => Ok(Pattern::Clustered {
            groups,
            hots_per_group: hots,
        }),
        other => Err(format!("--pattern must be 1, 2, 3 or 4, got {other}")),
    }
}

fn transport_of(name: &str) -> Result<&'static dyn Transport, String> {
    match name {
        "inproc" => Ok(&InProc),
        "tcp" => Ok(&Tcp),
        other => Err(format!("--transport must be inproc or tcp, got {other:?}")),
    }
}

/// Everything one open-loop cell needs beyond the shared knobs.
#[derive(Clone)]
struct CellPlan {
    sched: String,
    transport: String,
    durability: Durability,
    lambda: f64,
    txns: usize,
    pattern: Pattern,
    shards: usize,
}

/// One finished open-loop run: the network report plus the judged window
/// stream.
struct CellRun {
    report: NetReport,
    verdicts: Vec<WindowVerdict>,
    outcome: SloOutcome,
}

/// Runs one open-loop cell: Poisson arrivals at `plan.lambda`, windowed
/// telemetry on `a.window_ms`, streaming certification, SLO judging.
/// `jsonl` tee-writes the live trace for `wtpg top`.
fn run_cell(
    a: &LoadArgs,
    plan: &CellPlan,
    spec: &SloSpec,
    jsonl: Option<&str>,
) -> Result<CellRun, String> {
    let transport = transport_of(&plan.transport)?;
    let (catalog, mut specs) = pattern_specs(plan.pattern, plan.txns, a.seed);
    // `fraction == 0` is a guaranteed no-op, so plain cells stay untouched.
    ReadMix::skewed(a.read_mix, a.read_theta).apply(&catalog, &mut specs, a.seed);

    // A log-keeping durability level gets a fresh per-run temp directory
    // unless the user pinned one.
    let (wal_dir, created) = if !plan.durability.requires_log() {
        (None, false)
    } else if let Some(d) = &a.wal_dir {
        (Some(PathBuf::from(d)), false)
    } else {
        let dir = std::env::temp_dir().join(format!(
            "wtpg-load-wal-{}-{}-{}",
            std::process::id(),
            plan.sched,
            plan.transport
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (Some(dir), true)
    };

    let cfg = NetConfig {
        clients: a.clients,
        chunk_units: a.chunk,
        shards: plan.shards,
        certify: false,
        stream_certify: true,
        open_loop: Some(OpenLoop {
            lambda_tps: plan.lambda,
            seed: a.seed,
            inflight: a.inflight,
        }),
        durability: plan.durability,
        wal_dir: wal_dir.clone(),
        mvcc: a.mvcc,
        ..NetConfig::default()
    };
    if sched_by_name(&plan.sched, a.k, a.keeptime).is_none() {
        return Err(format!("unknown scheduler {:?}", plan.sched));
    }
    let factory =
        || sched_by_name(&plan.sched, a.k, a.keeptime).expect("scheduler name checked above");

    let tee = jsonl.map(JsonlFileSink::create).transpose()?;
    let tap = Arc::new(WindowTap::new(tee));
    // The flusher shares the run's own µs epoch only approximately (it
    // starts its clock here, the runtime starts another inside); windows
    // are judged on their own lengths, so a small epoch skew is harmless.
    // `--no-telemetry` drops the registry and flusher entirely — the
    // observer-off baseline the overhead experiment compares against.
    let (reg, flusher) = if a.telemetry {
        let reg = Arc::new(Registry::new());
        let flusher = WindowFlusher::spawn(
            Arc::clone(&reg),
            Arc::clone(&tap) as Arc<dyn Observer>,
            WallClock::start(),
            a.window_ms,
            WINDOW_TRACK,
        );
        (Some(reg), Some(flusher))
    } else {
        (None, None)
    };
    let result = run_cell_load(
        &cfg,
        &factory,
        &catalog,
        &specs,
        transport,
        &FaultPlan::none(),
        Some(Arc::clone(&tap) as Arc<dyn Observer>),
        reg,
    );
    if let Some(f) = flusher {
        f.stop();
    }
    if created {
        if let Some(d) = &wal_dir {
            let _ = std::fs::remove_dir_all(d);
        }
    }
    let report = result.map_err(|e| e.to_string())?;
    let windows = tap.stats();
    let (verdicts, outcome) = evaluate(spec, &windows);
    Ok(CellRun {
        report,
        verdicts,
        outcome,
    })
}

/// One window row of the committed benchmark: the judged stats plus the
/// derived rates, so the JSON is readable without recomputing.
#[derive(Serialize)]
struct WindowRow {
    seq: u64,
    dur_us: u64,
    offered: u64,
    shed: u64,
    committed: u64,
    rejected: u64,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
    tps: f64,
    abort_rate: f64,
    ok: bool,
    breaches: Vec<String>,
}

fn window_rows(verdicts: &[WindowVerdict]) -> Vec<WindowRow> {
    verdicts
        .iter()
        .map(|v| WindowRow {
            seq: v.stats.seq,
            dur_us: v.stats.dur_us,
            offered: v.stats.offered,
            shed: v.stats.shed,
            committed: v.stats.committed,
            rejected: v.stats.rejected,
            p50_us: v.stats.p50_us,
            p99_us: v.stats.p99_us,
            p999_us: v.stats.p999_us,
            tps: v.stats.tps(),
            abort_rate: v.stats.abort_rate(),
            ok: v.ok,
            breaches: v.breaches.clone(),
        })
        .collect()
}

#[derive(Serialize)]
struct SloDoc {
    spec: String,
    pass: bool,
    judged: u32,
    compliant: u32,
    tail_streak: u32,
    reason: String,
}

fn slo_doc(spec: &SloSpec, outcome: &SloOutcome) -> SloDoc {
    SloDoc {
        spec: spec.label(),
        pass: outcome.pass,
        judged: outcome.judged,
        compliant: outcome.compliant,
        tail_streak: outcome.tail_streak,
        reason: outcome.reason.clone(),
    }
}

/// One grid cell of `BENCH_load.json`.
#[derive(Serialize)]
struct LoadCell {
    scheduler: String,
    transport: String,
    durability: String,
    pattern: String,
    /// Max λ (arrivals/s) at which the SLO held during the bisection, or
    /// 0 when even the lowest probe failed.
    sustainable_tps: f64,
    /// λ the recorded confirmation run used (the sustainable rate).
    lambda_tps: f64,
    txns: usize,
    slo: SloDoc,
    windows: Vec<WindowRow>,
    report: NetReport,
}

/// The whole `BENCH_load.json` document.
#[derive(Serialize)]
struct LoadDoc {
    bench: &'static str,
    git_describe: String,
    git_sha: String,
    seed: u64,
    clients: usize,
    inflight: usize,
    window_ms: u64,
    slo: String,
    probe_secs: f64,
    bisect_iters: u32,
    cells_certified: usize,
    cells_total: usize,
    cells: Vec<LoadCell>,
}

fn print_verdicts(run: &CellRun, spec: &SloSpec) {
    println!(
        "  {:>4} | {:>8} | {:>8} | {:>5} | {:>8} | {:>8} | {:>8} | verdict",
        "win", "tps", "offered", "shed", "p50 ms", "p99 ms", "p99.9 ms"
    );
    for v in &run.verdicts {
        println!(
            "  {:>4} | {:>8.1} | {:>8} | {:>5} | {:>8.2} | {:>8.2} | {:>8.2} | {}",
            v.stats.seq,
            v.stats.tps(),
            v.stats.offered,
            v.stats.shed,
            v.stats.p50_us as f64 / 1000.0,
            v.stats.p99_us as f64 / 1000.0,
            v.stats.p999_us as f64 / 1000.0,
            if v.ok {
                "ok".to_string()
            } else {
                v.breaches.join("; ")
            }
        );
    }
    let o = &run.outcome;
    println!(
        "  SLO [{}]: {} — {}",
        spec.label(),
        if o.pass { "PASS" } else { "FAIL" },
        o.reason
    );
}

fn print_run(run: &CellRun, plan: &CellPlan, spec: &SloSpec) {
    let r = &run.report;
    println!(
        "{} | {} transport | {} durability | λ={:.0}/s open loop | {} clients × {} data nodes \
         × {} shards",
        r.scheduler,
        r.transport,
        r.durability,
        plan.lambda,
        r.clients,
        r.data_nodes,
        r.shards
    );
    println!(
        "  offered {} → submitted {} (shed {} = {:.2}%), committed {} @ {:.1} TPS over {:.0} ms",
        r.offered,
        r.submitted,
        r.shed,
        r.shed_rate() * 100.0,
        r.committed,
        r.throughput_tps,
        r.wall_ms
    );
    println!(
        "  certified  : {} ({} grants, {} E(q) checks, streaming) | store {} ({} / {} units)",
        if r.certified { "clean" } else { "SKIPPED" },
        r.certify_grants,
        r.certify_eq_checks,
        if r.store_consistent {
            "consistent"
        } else {
            "INCONSISTENT"
        },
        r.store_write_units,
        r.expected_write_units
    );
    if r.reader_commits > 0 {
        println!(
            "  readers    : {} committed via {} snapshot reads ({}) — \
             reader p99 {:.2} ms vs writer p99 {:.2} ms",
            r.reader_commits,
            r.snapshot_reads,
            if r.snapshot_certified { "certified" } else { "UNCERTIFIED" },
            r.reader_latency.p99_ms,
            r.writer_latency.p99_ms
        );
    } else if r.reader_latency.max_ms > 0.0 {
        println!(
            "  readers    : lock-path (S mode) — reader p99 {:.2} ms vs \
             writer p99 {:.2} ms",
            r.reader_latency.p99_ms, r.writer_latency.p99_ms
        );
    }
    print_verdicts(run, spec);
}

/// Bisects λ to the max sustainable rate under `spec`, then reruns the
/// cell at that rate (backing off 5 % on a flaky miss) until a run
/// actually sustains it; that confirmed rate and that run's window
/// stream are what the cell records. Probe failures (errors *or* SLO
/// misses) push the bisection down.
fn sustain_cell(
    a: &LoadArgs,
    plan: &CellPlan,
    spec: &SloSpec,
    lo: f64,
    hi: f64,
) -> Result<(f64, CellRun), String> {
    let probe = |lambda: f64| -> bool {
        let mut p = plan.clone();
        p.lambda = lambda;
        p.txns = (lambda * a.probe_secs).ceil() as usize;
        match run_cell(a, &p, spec, None) {
            Ok(run) => {
                eprintln!(
                    "    probe λ={lambda:>8.0}/s → {} ({})",
                    if run.outcome.pass { "pass" } else { "fail" },
                    run.outcome.reason
                );
                run.outcome.pass && run.report.certified && run.report.store_consistent
            }
            Err(e) => {
                eprintln!("    probe λ={lambda:>8.0}/s → error ({e})");
                false
            }
        }
    };
    let sustainable = bisect_max(lo, hi, a.bisect_iters, probe).unwrap_or(0.0);
    // Confirmation runs at the bisected rate. The bisection's last passing
    // probe sits right at the knee, where run-to-run jitter on a shared box
    // can flip the verdict, so a failed confirmation backs the rate off 5 %
    // and tries again (down to the floor): the recorded sustainable_tps is
    // always a rate the cell actually sustained in its committed window
    // stream, not just one the search once got lucky at. If even the floor
    // fails, the cell still records its window stream and a FAIL slo.
    let mut lambda = if sustainable > 0.0 { sustainable } else { lo };
    loop {
        let mut p = plan.clone();
        p.lambda = lambda;
        p.txns = (lambda * a.probe_secs).ceil() as usize;
        let run = run_cell(a, &p, spec, None)?;
        if run.outcome.pass || lambda <= lo {
            return Ok((lambda, run));
        }
        eprintln!(
            "    confirm λ={lambda:>8.0}/s → fail ({}); backing off 5 %",
            run.outcome.reason
        );
        lambda = (lambda * 0.95).max(lo);
    }
}

pub(crate) fn run(args: &[String]) -> Result<(), String> {
    let a = parse(args)?;
    let spec = SloSpec::parse(&a.slo)?;
    let pattern = pattern_of(a.pattern, a.hots, a.groups)?;

    if !a.grid {
        let durability = match a.durability.as_deref() {
            Some(s) => Durability::parse(s)
                .ok_or_else(|| format!("--durability must be none, buffered or sync, got {s:?}"))?,
            None => Durability::None,
        };
        let plan = CellPlan {
            sched: a.sched.clone(),
            transport: a.transport.clone(),
            durability,
            lambda: a.lambda,
            txns: a.txns.unwrap_or((a.lambda * a.secs).ceil() as usize),
            pattern,
            shards: a.shards,
        };
        let run = run_cell(&a, &plan, &spec, a.jsonl.as_deref())?;
        print_run(&run, &plan, &spec);
        if let Some(path) = &a.jsonl {
            println!("  trace      : {path} (follow live with `wtpg top {path}`)");
        }
        if let Some(path) = &a.out {
            let cell = LoadCell {
                scheduler: run.report.scheduler.clone(),
                transport: run.report.transport.clone(),
                durability: run.report.durability.clone(),
                pattern: pattern.label(),
                sustainable_tps: 0.0,
                lambda_tps: plan.lambda,
                txns: plan.txns,
                slo: slo_doc(&spec, &run.outcome),
                windows: window_rows(&run.verdicts),
                report: run.report,
            };
            let json = serde_json::to_string_pretty(&cell)
                .map_err(|e| format!("cannot serialise cell: {e}"))?;
            std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote {path}");
        }
        return Ok(());
    }

    // Grid provenance: same dirty-build policy as `wtpg net --grid`.
    let describe = wtpg_obs::meta::git_describe();
    if describe.ends_with("-dirty") {
        if std::env::var_os("CI").is_some() {
            return Err(format!(
                "refusing to write a grid benchmark from a dirty build ({describe}) under CI; \
                 commit (or stash) and rebuild first"
            ));
        }
        eprintln!(
            "warning: benchmarking a dirty build ({describe}); \
             BENCH_load.json will carry the -dirty stamp"
        );
    }

    // The sweep: scheduler × transport under no durability, plus the
    // buffered-WAL cell (what group-commit logging costs under sustained
    // load). λ search bounds reflect the transport: in-proc commits run
    // tens of thousands per second on one box, TCP a fraction of that.
    let sweeps: [(&str, &str, Durability); 5] = [
        ("chain", "inproc", Durability::None),
        ("k2", "inproc", Durability::None),
        ("chain", "tcp", Durability::None),
        ("k2", "tcp", Durability::None),
        ("chain", "inproc", Durability::Buffered),
    ];
    let mut cells: Vec<LoadCell> = Vec::new();
    let mut best_inproc = 0.0_f64;
    for (sched, transport, durability) in sweeps {
        println!(
            "cell {sched} × {transport} × {} — bisecting λ…",
            durability.label()
        );
        let plan = CellPlan {
            sched: sched.into(),
            transport: transport.into(),
            durability,
            lambda: 0.0,
            txns: 0,
            pattern,
            shards: a.shards,
        };
        let hi = if transport == "tcp" { 12_000.0 } else { 30_000.0 };
        let (sustainable, run) = sustain_cell(&a, &plan, &spec, 250.0, hi)?;
        println!(
            "  sustainable: {sustainable:.0}/s under [{}] — confirmation {} @ {:.1} TPS",
            spec.label(),
            if run.outcome.pass { "PASS" } else { "FAIL" },
            run.report.throughput_tps
        );
        if transport == "inproc" && durability == Durability::None {
            best_inproc = best_inproc.max(sustainable);
        }
        cells.push(LoadCell {
            scheduler: run.report.scheduler.clone(),
            transport: run.report.transport.clone(),
            durability: run.report.durability.clone(),
            pattern: pattern.label(),
            sustainable_tps: sustainable,
            lambda_tps: if sustainable > 0.0 { sustainable } else { 250.0 },
            txns: run.report.offered as usize,
            slo: slo_doc(&spec, &run.outcome),
            windows: window_rows(&run.verdicts),
            report: run.report,
        });
    }

    // Endurance cell: ≥1M transactions through the streaming certifier at
    // ~85% of the best measured in-proc rate (backing off from the edge
    // keeps the long run inside the SLO, which is the point: certify a
    // million-transaction history in bounded memory, not find the knee
    // twice). A minutes-long run sees noise a 2.5 s probe never meets, so
    // an SLO miss backs the rate off 10 % and retries — bounded attempts,
    // and the last run is recorded honestly either way.
    let mut lambda = (best_inproc * 0.85).max(1000.0);
    let txns = a.endurance_txns;
    let mut attempts_left = 3u32;
    let run = loop {
        println!("cell chain × inproc endurance — {txns} txns at λ={lambda:.0}/s…");
        let plan = CellPlan {
            sched: "chain".into(),
            transport: "inproc".into(),
            durability: Durability::None,
            lambda,
            txns,
            pattern,
            shards: a.shards,
        };
        let run = run_cell(&a, &plan, &spec, None)?;
        println!(
            "  endurance: {} committed @ {:.1} TPS, {} events stream-certified, SLO {}",
            run.report.committed,
            run.report.throughput_tps,
            run.report.history_events,
            if run.outcome.pass { "PASS" } else { "FAIL" }
        );
        attempts_left -= 1;
        if run.outcome.pass || lambda <= 1000.0 || attempts_left == 0 {
            break run;
        }
        eprintln!("  endurance missed its SLO ({}); backing off 10 %", run.outcome.reason);
        lambda = (lambda * 0.9).max(1000.0);
    };
    cells.push(LoadCell {
        scheduler: run.report.scheduler.clone(),
        transport: run.report.transport.clone(),
        durability: run.report.durability.clone(),
        pattern: pattern.label(),
        sustainable_tps: lambda,
        lambda_tps: lambda,
        txns,
        slo: slo_doc(&spec, &run.outcome),
        windows: window_rows(&run.verdicts),
        report: run.report,
    });

    let certified = cells
        .iter()
        .filter(|c| c.report.certified && c.report.store_consistent)
        .count();
    let n_cells = cells.len();
    println!("{certified}/{n_cells} cells certified and conserved");
    if certified < n_cells {
        return Err("grid run left uncertified or inconsistent cells".into());
    }

    let out = a.out.as_deref().unwrap_or("BENCH_load.json");
    let doc = LoadDoc {
        bench: "load",
        git_describe: wtpg_obs::meta::git_describe().to_string(),
        git_sha: wtpg_obs::meta::git_sha().to_string(),
        seed: a.seed,
        clients: a.clients,
        inflight: a.inflight,
        window_ms: a.window_ms,
        slo: spec.label(),
        probe_secs: a.probe_secs,
        bisect_iters: a.bisect_iters,
        cells_certified: certified,
        cells_total: n_cells,
        cells,
    };
    let json =
        serde_json::to_string_pretty(&doc).map_err(|e| format!("cannot serialise grid: {e}"))?;
    std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out} ({n_cells} cells)");
    Ok(())
}
