//! `wtpg obs`: inspect JSONL traces produced by `wtpg engine --trace` or
//! `wtpg simulate --trace`.
//!
//! ```text
//! wtpg obs summary <trace.jsonl>             percentiles, abort causes,
//!                                            cache-hit ratio
//! wtpg obs diff    <a.jsonl> <b.jsonl>       counter/span deltas between
//!                                            two traces
//! wtpg obs chrome  <trace.jsonl> [--out F]   convert to Chrome trace_event
//!                                            JSON (chrome://tracing,
//!                                            Perfetto)
//! ```

use wtpg_obs::{ObsEvent, TraceSummary};

/// Loads a JSONL trace, reporting the offending line on parse failure.
fn load_trace(path: &str) -> Result<Vec<ObsEvent>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    wtpg_obs::jsonl::decode(&text).map_err(|e| format!("{path}: {e}"))
}

/// Wall-clock engine traces are in µs, simulator traces in ms ticks. The
/// heuristic matters only for Chrome's `ts` scaling: engine traces carry
/// µs-resolution histograms named `*_us`.
fn us_per_unit(events: &[ObsEvent]) -> u64 {
    let wall_clock = events
        .iter()
        .any(|e| e.kind.name().ends_with("_us"));
    if wall_clock {
        1
    } else {
        1000
    }
}

/// Writes `events` to `path`: JSONL when the extension is `.jsonl`, Chrome
/// trace_event JSON (for chrome://tracing / Perfetto) otherwise.
/// `us_per_unit` scales event timestamps to Chrome's µs `ts` field.
pub(crate) fn write_trace(
    path: &str,
    events: &[ObsEvent],
    us_per_unit: u64,
) -> Result<(), String> {
    let body = if path.ends_with(".jsonl") {
        wtpg_obs::jsonl::encode(events)
    } else {
        wtpg_obs::chrome::chrome_trace(events, us_per_unit)
    };
    std::fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))
}

pub(crate) fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("summary") => {
            let path = args
                .get(1)
                .ok_or_else(|| "usage: wtpg obs summary <trace.jsonl>".to_string())?;
            let events = load_trace(path)?;
            let summary = TraceSummary::from_events(&events);
            print!("{}", summary.render());
            Ok(())
        }
        Some("diff") => {
            let a = args
                .get(1)
                .ok_or_else(|| "usage: wtpg obs diff <a.jsonl> <b.jsonl>".to_string())?;
            let b = args
                .get(2)
                .ok_or_else(|| "usage: wtpg obs diff <a.jsonl> <b.jsonl>".to_string())?;
            let sa = TraceSummary::from_events(&load_trace(a)?);
            let sb = TraceSummary::from_events(&load_trace(b)?);
            print!("{}", sa.diff(&sb));
            Ok(())
        }
        Some("chrome") => {
            let path = args
                .get(1)
                .ok_or_else(|| "usage: wtpg obs chrome <trace.jsonl> [--out FILE]".to_string())?;
            let out = match (args.get(2).map(String::as_str), args.get(3)) {
                (Some("--out"), Some(f)) => Some(f.clone()),
                (None, _) => None,
                _ => return Err("usage: wtpg obs chrome <trace.jsonl> [--out FILE]".into()),
            };
            let events = load_trace(path)?;
            let json = wtpg_obs::chrome::chrome_trace(&events, us_per_unit(&events));
            match out {
                Some(f) => {
                    std::fs::write(&f, json).map_err(|e| format!("cannot write {f}: {e}"))?;
                    println!("wrote {f}");
                }
                None => println!("{json}"),
            }
            Ok(())
        }
        _ => Err(
            "usage: wtpg obs summary <trace.jsonl> | diff <a> <b> | chrome <trace.jsonl> \
             [--out FILE]"
                .into(),
        ),
    }
}
