//! `wtpg plan` / `wtpg dot`: static analysis of a declared workload.

use wtpg_core::chain::{chain_components, threshold};
use wtpg_core::planner;
use wtpg_core::work::Work;
use wtpg_core::wtpg::{Dir, Wtpg};

pub(crate) fn run(args: &[String], dot_only: bool) -> Result<(), String> {
    let specs = crate::read_workload(args.first())?;
    let wtpg = Wtpg::from_declared(&specs).map_err(|e| e.to_string())?;
    if dot_only {
        print!("{}", wtpg.to_dot());
        return Ok(());
    }
    println!("== workload ==");
    for s in &specs {
        println!("  {s}");
    }
    println!("\n== WTPG ==");
    println!(
        "  {} transactions, {} conflicting edges",
        wtpg.len(),
        wtpg.conflict_edges().len()
    );
    for (a, b, w_ab, w_ba) in wtpg.conflict_edges() {
        println!("  ({a}, {b}): w({a}->{b}) = {w_ab}, w({b}->{a}) = {w_ba}");
    }
    match chain_components(&wtpg) {
        Ok(comps) => {
            println!("\n== chain-form: YES ({} component(s)) ==", comps.len());
            let mut total = Work::ZERO;
            for comp in &comps {
                let names: Vec<String> = comp.nodes.iter().map(|t| t.to_string()).collect();
                let sol = threshold::solve(&comp.problem);
                total = total.max(Work::from_units(sol.critical_path));
                println!(
                    "  [{}]: optimal critical path {}",
                    names.join(" - "),
                    Work::from_units(sol.critical_path)
                );
                for (i, dir) in sol.orient.iter().enumerate() {
                    let (x, y) = (comp.nodes[i], comp.nodes[i + 1]);
                    match dir {
                        Dir::Down => println!("    {x} -> {y}"),
                        Dir::Up => println!("    {y} -> {x}"),
                    }
                }
            }
            println!("  exact optimum (CHAIN's W): critical path {total}");
        }
        Err(why) => {
            println!("\n== chain-form: NO ({why}) ==");
        }
    }
    // General planner always applies.
    let plan = planner::local_search(&wtpg);
    println!(
        "\n== heuristic plan (greedy + local search) ==\n  critical path {}",
        plan.critical_path
    );
    for &(a, b) in &plan.order {
        println!("  {a} -> {b}");
    }
    if wtpg.conflict_edges().len() <= 16 {
        let oracle = planner::exhaustive(&wtpg);
        println!(
            "  exhaustive optimum: {} ({})",
            oracle.critical_path,
            if oracle.critical_path == plan.critical_path {
                "heuristic is optimal here"
            } else {
                "heuristic is suboptimal here"
            }
        );
    }
    Ok(())
}
