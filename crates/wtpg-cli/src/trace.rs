//! `wtpg trace`: drive a declared workload through a scheduler, one step
//! completing per grant, and narrate every decision.

use wtpg_core::sched::{Admission, LockOutcome};
use wtpg_core::time::Tick;
use wtpg_core::txn::TxnSpec;

pub(crate) fn run(args: &[String]) -> Result<(), String> {
    let mut path = None;
    let mut sched_name = "chain".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scheduler" => {
                i += 1;
                sched_name = args.get(i).ok_or("--scheduler needs a value")?.clone();
            }
            a if !a.starts_with('-') || a == "-" => path = Some(args[i].clone()),
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }
    let specs = crate::read_workload(path.as_ref())?;
    let mut sched = crate::scheduler_by_name(&sched_name)?;
    println!("scheduler: {}", sched.name());

    #[derive(Clone)]
    enum St {
        Pending(TxnSpec),
        Running(TxnSpec, usize),
    }
    let total = specs.len();
    let mut states: Vec<St> = specs.into_iter().map(St::Pending).collect();
    let mut done = 0usize;
    let mut now = Tick(0);
    let mut rounds = 0usize;
    while done < total {
        rounds += 1;
        if rounds > 300 * total + 300 {
            return Err(format!("workload did not converge under {}", sched.name()));
        }
        let mut next = Vec::new();
        for st in states {
            now += 1;
            match st {
                St::Pending(spec) => {
                    let (adm, _) = sched.on_arrive(&spec, now).map_err(|e| e.to_string())?;
                    match adm {
                        Admission::Admitted => {
                            println!("t={now}: {} admitted", spec.id);
                            next.push(St::Running(spec, 0));
                        }
                        Admission::Rejected => {
                            println!("t={now}: {} REJECTED (will retry)", spec.id);
                            next.push(St::Pending(spec));
                        }
                    }
                }
                St::Running(spec, step) => {
                    let id = spec.id;
                    let s = spec.steps()[step];
                    let (out, ops) = sched.on_request(id, step, now).map_err(|e| e.to_string())?;
                    match out {
                        LockOutcome::Granted => {
                            println!("t={now}: {id} step {step} {s} GRANTED");
                            sched
                                .on_progress(id, s.actual_cost)
                                .map_err(|e| e.to_string())?;
                            sched
                                .on_step_complete(id, step)
                                .map_err(|e| e.to_string())?;
                            if step + 1 == spec.len() {
                                sched.on_commit(id, now).map_err(|e| e.to_string())?;
                                println!("t={now}: {id} COMMITTED");
                                done += 1;
                            } else {
                                next.push(St::Running(spec, step + 1));
                            }
                        }
                        LockOutcome::Blocked => {
                            println!("t={now}: {id} step {step} {s} blocked (held lock)");
                            next.push(St::Running(spec, step));
                        }
                        LockOutcome::Delayed => {
                            let why = if ops.eq_evals > 0 {
                                "lost E(q) comparison or deadlock"
                            } else if ops.chain_opts > 0
                                || sched.name().contains("WTPG")
                                || sched.name() == "CHAIN"
                            {
                                "inconsistent with W"
                            } else {
                                "deadlock predicted"
                            };
                            println!("t={now}: {id} step {step} {s} delayed ({why})");
                            next.push(St::Running(spec, step));
                        }
                    }
                }
            }
        }
        states = next;
    }
    println!("all {total} transactions committed in {rounds} round(s)");
    Ok(())
}
