//! `wtpg` — command-line companion to the reproduction.
//!
//! ```text
//! wtpg plan     <workload.txt | ->      analyse a workload: WTPG, chain
//!                                       components, optimal/heuristic W
//! wtpg dot      <workload.txt | ->      emit the WTPG as Graphviz DOT
//! wtpg trace    <workload.txt | ->      drive the workload through a
//!               [--scheduler NAME]      scheduler and print every decision
//! wtpg simulate [--pattern 1|2|3]       run the timed machine and print
//!               [--scheduler NAME]      the run report
//!               [--lambda F] [--sim-ms N] [--hots N] [--sigma F] [--seed N]
//!               [--certify]               record the history and certify it
//! wtpg engine   [--sched NAME]          execute a batch on the real
//!               [--threads N]           multi-threaded engine; --grid
//!               [--txns N] [--pattern 1|2|3] [--hots N] [--seed N]
//!               [--queue N] [--k N] [--keeptime MS] [--no-certify]
//!               [--grid] [--out FILE]   sweeps sched × threads × contention
//!               [--trace FILE]          record a structured trace
//! wtpg net      [--sched NAME]          execute a batch on the shared-
//!               [--transport inproc|tcp]  nothing message-passing runtime
//!               [--fault none|fault|crash|kill] with injected link faults
//!               [--durability none|buffered|sync] or a mid-run node kill
//!               [--wal-dir DIR]         restarted from its write-ahead log
//!               [--clients N] [--txns N] [--pattern 1|2|3] [--hots N]
//!               [--seed N] [--chunk N] [--k N] [--keeptime MS]
//!               [--no-certify]
//!               [--grid] [--out FILE]   sweeps sched × transport × fault
//! wtpg load     [--lambda TPS] [--secs F] open-loop Poisson load with
//!               [--slo SPEC] [--jsonl F]  windowed SLO verdicts; --grid
//!               [--grid] [--out FILE]     bisects max sustainable tps and
//!                                         writes BENCH_load.json
//! wtpg top      <trace.jsonl> [--once]    live windowed-telemetry view
//! wtpg obs      summary <trace.jsonl>   percentiles, abort causes, cache
//!               diff <a.jsonl> <b.jsonl>  hit ratios; counter/span deltas
//!               chrome <trace.jsonl>    convert to Chrome trace_event JSON
//! ```
//!
//! Workloads use the paper's notation, one transaction per line:
//!
//! ```text
//! T1: r(A:1) -> r(B:3) -> w(A:1)
//! T2: r(C:1) -> w(A:1)
//! ```

use std::io::Read as _;

mod engine;
mod load;
mod net;
mod obs;
mod plan;
mod simulate;
mod top;
mod trace;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("plan") => plan::run(&args[1..], false),
        Some("dot") => plan::run(&args[1..], true),
        Some("trace") => trace::run(&args[1..]),
        Some("simulate") => simulate::run(&args[1..]),
        Some("engine") => engine::run(&args[1..]),
        Some("net") => net::run(&args[1..]),
        Some("load") => load::run(&args[1..]),
        Some("top") => top::run(&args[1..]),
        Some("obs") => obs::run(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_help();
            Ok(())
        }
        Some(other) => {
            eprintln!("unknown command {other:?}\n");
            print_help();
            std::process::exit(2);
        }
    };
    if let Err(e) = code {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn print_help() {
    eprintln!(
        "wtpg — bulk-access-transaction scheduling (ICDE 1990 reproduction)\n\
         \n\
         usage:\n\
           wtpg plan     <workload.txt | ->                analyse + optimise\n\
           wtpg dot      <workload.txt | ->                Graphviz output\n\
           wtpg trace    <workload.txt | -> [--scheduler chain|k2|gwtpg|asl|c2pl]\n\
           wtpg simulate [--pattern 1|2|3] [--scheduler S] [--lambda F]\n\
                         [--sim-ms N] [--hots N] [--sigma F] [--seed N] [--certify]\n\
                         [--trace FILE]\n\
           wtpg engine   [--sched S] [--threads N] [--txns N] [--pattern 1|2|3]\n\
                         [--hots N] [--seed N] [--queue N] [--k N] [--keeptime MS]\n\
                         [--no-certify] [--grid] [--out FILE] [--trace FILE]\n\
           wtpg net      [--sched S] [--transport inproc|tcp] [--fault none|fault|crash|kill]\n\
                         [--durability none|buffered|sync] [--wal-dir DIR]\n\
                         [--clients N] [--txns N] [--pattern 1|2|3|4] [--hots N] [--groups N]\n\
                         [--seed N] [--chunk N] [--k N] [--keeptime MS] [--shards N]\n\
                         [--batch-max N] [--batch-window USEC] [--pipeline N]\n\
                         [--admit-window N] [--no-certify] [--grid] [--out FILE]\n\
           wtpg load     [--sched S] [--lambda TPS] [--secs F] [--transport inproc|tcp]\n\
                         [--clients N] [--inflight N] [--slo SPEC] [--window MS]\n\
                         [--durability none|buffered|sync] [--jsonl FILE]\n\
                         [--grid] [--probe-secs F] [--bisect-iters N]\n\
                         [--endurance-txns N] [--out FILE]   open-loop Poisson load,\n\
                         windowed SLO verdicts; --grid bisects max sustainable tps\n\
           wtpg top      <trace.jsonl> [--once] [--interval MS] [--rows N]\n\
                         live view of a run's windowed telemetry\n\
           wtpg obs      summary <trace.jsonl> | diff <a.jsonl> <b.jsonl>\n\
                         | chrome <trace.jsonl> [--out FILE]\n\
         \n\
         workload lines use the paper's notation: T1: r(A:1) -> w(B:0.2)"
    );
}

/// Reads a workload from a file path or stdin (`-`).
pub(crate) fn read_workload(path: Option<&String>) -> Result<Vec<wtpg_core::txn::TxnSpec>, String> {
    let text = match path.map(String::as_str) {
        None | Some("-") => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            buf
        }
        Some(p) => std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?,
    };
    wtpg_workload::notation::parse_workload(&text).map_err(|e| e.to_string())
}

/// Builds a scheduler by CLI name.
pub(crate) fn scheduler_by_name(
    name: &str,
) -> Result<Box<dyn wtpg_core::sched::Scheduler>, String> {
    use wtpg_core::sched::*;
    Ok(match name.to_ascii_lowercase().as_str() {
        "chain" => Box::new(ChainScheduler::new(5000)),
        "k2" | "kwtpg" | "k-wtpg" => Box::new(KWtpgScheduler::new(2, 5000)),
        "gwtpg" | "g-wtpg" => Box::new(GWtpgScheduler::new(5000)),
        "asl" => Box::new(AslScheduler::new()),
        "c2pl" => Box::new(C2plScheduler::new()),
        "chain-c2pl" => Box::new(C2plScheduler::chain_c2pl()),
        "k2-c2pl" => Box::new(C2plScheduler::k_c2pl(2)),
        "nodc" => Box::new(NodcScheduler::new()),
        other => return Err(format!("unknown scheduler {other:?}")),
    })
}
