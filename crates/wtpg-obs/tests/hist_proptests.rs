//! Property tests for the log-scale histogram and the JSONL codec — the
//! correctness satellite of the observability PR.
//!
//! The histogram contract: for any sample set and any quantile, the
//! reported percentile is interpolated *within* the log2 bucket holding
//! the exact order statistic at that rank — it lands in the same bucket,
//! between that bucket's lower and upper bound, never outside it.

use proptest::prelude::*;

use wtpg_obs::jsonl;
use wtpg_obs::{Histogram, ObsEvent};

fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let total = sorted.len() as u64;
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    sorted[(rank - 1) as usize]
}

proptest! {
    #[test]
    fn percentile_within_one_bucket_of_exact(
        samples in proptest::collection::vec(0u64..2_000_000, 1..300),
        qs in 0u32..=100,
    ) {
        let q = qs as f64 / 100.0;
        let mut h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let exact = exact_percentile(&sorted, q);
        let reported = h.percentile(q);
        let eb = Histogram::bucket_of(exact);
        let rb = Histogram::bucket_of(reported);
        prop_assert_eq!(
            eb, rb,
            "q={} exact={} (bucket {}) reported={} (bucket {})",
            q, exact, eb, reported, rb
        );
        // Interpolation stays inside the winning bucket's range.
        prop_assert!(
            reported >= Histogram::bucket_lower_bound(eb)
                && reported <= Histogram::bucket_upper_bound(eb),
            "reported {} escapes bucket {}", reported, eb
        );
    }

    #[test]
    fn merge_equals_bulk_record(
        a in proptest::collection::vec(0u64..1_000_000, 0..100),
        b in proptest::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let mut ha = Histogram::new();
        for &v in &a { ha.record(v); }
        let mut hb = Histogram::new();
        for &v in &b { hb.record(v); }
        ha.merge(&hb);
        let mut all = Histogram::new();
        for &v in a.iter().chain(b.iter()) { all.record(v); }
        prop_assert_eq!(ha, all);
    }

    #[test]
    fn histogram_text_codec_round_trips(
        samples in proptest::collection::vec(0u64..u64::MAX, 0..200),
    ) {
        let mut h = Histogram::new();
        for &v in &samples { h.record(v); }
        prop_assert_eq!(Histogram::decode(&h.encode()), Some(h));
    }

    #[test]
    fn jsonl_round_trips_random_events(
        raw in proptest::collection::vec(
            (0u64..u64::MAX, 0u32..64, 0usize..6, 0u64..u64::MAX, 0u64..1_000_000),
            0..120,
        ),
    ) {
        let events: Vec<ObsEvent> = raw
            .iter()
            .map(|&(at, track, kind, id, aux)| match kind {
                0 => ObsEvent::span_begin(at, track, "txn", id),
                1 => ObsEvent::span_end(at, track, "txn", id),
                2 => ObsEvent::instant(at, track, "abort", id),
                3 => ObsEvent::counter(at, track, "eq_cache_hits", aux),
                4 => ObsEvent::duration(at, track, "lock_wait_us", id, aux),
                _ => {
                    let mut h = Histogram::new();
                    h.record(aux);
                    h.record(id);
                    ObsEvent::hist(at, track, "rt_ms", h)
                }
            })
            .collect();
        let text = jsonl::encode(&events);
        let decoded = jsonl::decode(&text);
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded.err());
        prop_assert_eq!(decoded.ok(), Some(events));
    }
}

/// Counter/span nesting round-trips through JSONL encode/decode — the
/// explicit satellite requirement, with properly nested spans.
#[test]
fn nested_spans_and_counters_round_trip() {
    let mut events = Vec::new();
    for txn in 0..10u64 {
        let base = txn * 100;
        events.push(ObsEvent::span_begin(base, 0, "txn", txn));
        events.push(ObsEvent::counter(base + 1, 0, "admissions", txn + 1));
        for step in 0..3u64 {
            events.push(ObsEvent::span_begin(base + 2 + step * 10, 0, "step", txn * 8 + step));
            events.push(ObsEvent::span_end(base + 7 + step * 10, 0, "step", txn * 8 + step));
        }
        events.push(ObsEvent::span_end(base + 90, 0, "txn", txn));
    }
    let decoded = jsonl::decode(&jsonl::encode(&events)).expect("round trip decodes");
    assert_eq!(decoded, events);

    let summary = wtpg_obs::TraceSummary::from_events(&decoded);
    assert_eq!(summary.span("txn").map(Histogram::count), Some(10));
    assert_eq!(summary.span("step").map(Histogram::count), Some(30));
    assert_eq!(summary.unclosed_spans, 0);
    assert_eq!(summary.counters.get("admissions"), Some(&10));
}
