//! Control-plane statistics shared by every `Scheduler` implementation.
//!
//! [`ControlStats`] is a plain bundle of cumulative `u64` counters — no
//! clocks, no maps — so schedulers can maintain one inline without
//! threatening determinism. Drivers (the simulator's `Machine`, the
//! engine's `ControlNode`) snapshot the stats around each scheduler call
//! and emit counter events for whatever changed via [`emit_deltas`].
//!
//! The abort/delay cause taxonomy follows the paper's protocols: CHAIN
//! rejects non-chain BATs, K-WTPG rejects K-conflict violations, ASL
//! rejects when it cannot take every lock up front, K-WTPG delays on
//! infinite `E(q)` (predicted deadlock) and on lost `E(q)` comparisons
//! (minimality), CHAIN delays W-inconsistent requests (minimality), and
//! C2PL delays grants its deadlock prediction flags.

use crate::event::ObsEvent;
use crate::observer::Observer;

/// Cumulative control-plane counters. All fields only ever increase over a
/// scheduler's lifetime, so deltas between two snapshots are well-defined.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ControlStats {
    /// `W` recomputed from scratch (CHAIN / GWTPG cache miss).
    pub w_recomputes: u64,
    /// `W` reused from the version-keyed cache (§3.4 control saving).
    pub w_reuses: u64,
    /// `E(q)` served from the version-keyed cache.
    pub eq_cache_hits: u64,
    /// `E(q)` recomputed.
    pub eq_cache_misses: u64,
    /// `E(q)` cache wiped (WTPG version moved or a grant changed locks).
    pub eq_cache_invalidations: u64,
    /// Deadlock predictions served from C2PL's version-keyed cache.
    pub dd_cache_hits: u64,
    /// Deadlock predictions computed by graph traversal.
    pub dd_cache_misses: u64,
    /// Admissions rejected because the BAT was not chain-form (CHAIN).
    pub aborts_non_chain: u64,
    /// Admissions rejected for violating the K-conflict bound (K-WTPG,
    /// GWTPG's conflict bound).
    pub aborts_k_conflict: u64,
    /// Admissions rejected because not every lock was available (ASL).
    pub aborts_lock_denied: u64,
    /// Requests delayed by a deadlock prediction (C2PL cycle test, K-WTPG
    /// infinite `E(q)`).
    pub delays_deadlock: u64,
    /// Requests delayed to preserve minimality (CHAIN W-order, K-WTPG lost
    /// `E(q)` comparison).
    pub delays_minimality: u64,
}

impl ControlStats {
    /// The counters as `(name, value)` pairs, in a fixed order shared with
    /// the JSONL traces and summaries.
    pub fn fields(&self) -> [(&'static str, u64); 12] {
        [
            ("w_recomputes", self.w_recomputes),
            ("w_reuses", self.w_reuses),
            ("eq_cache_hits", self.eq_cache_hits),
            ("eq_cache_misses", self.eq_cache_misses),
            ("eq_cache_invalidations", self.eq_cache_invalidations),
            ("dd_cache_hits", self.dd_cache_hits),
            ("dd_cache_misses", self.dd_cache_misses),
            ("aborts_non_chain", self.aborts_non_chain),
            ("aborts_k_conflict", self.aborts_k_conflict),
            ("aborts_lock_denied", self.aborts_lock_denied),
            ("delays_deadlock", self.delays_deadlock),
            ("delays_minimality", self.delays_minimality),
        ]
    }

    /// Control-saving cache hits across all schedulers: `W` reuses, `E(q)`
    /// cache hits and C2PL deadlock-prediction cache hits.
    pub fn cache_hits(&self) -> u64 {
        self.w_reuses + self.eq_cache_hits + self.dd_cache_hits
    }

    /// Cache misses matching [`ControlStats::cache_hits`].
    pub fn cache_misses(&self) -> u64 {
        self.w_recomputes + self.eq_cache_misses + self.dd_cache_misses
    }

    /// `hits / (hits + misses)`, or 0 when no cache was consulted.
    pub fn cache_hit_ratio(&self) -> f64 {
        let h = self.cache_hits();
        let m = self.cache_misses();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Total rejected admissions across causes.
    pub fn aborts_total(&self) -> u64 {
        self.aborts_non_chain + self.aborts_k_conflict + self.aborts_lock_denied
    }

    /// Total delayed requests across causes.
    pub fn delays_total(&self) -> u64 {
        self.delays_deadlock + self.delays_minimality
    }
}

/// Emits one cumulative [`EventKind::Counter`](crate::event::EventKind)
/// per field that changed between `before` and `after`, stamped `at` on
/// `track`. Emitting only deltas keeps traces proportional to activity.
pub fn emit_deltas(
    obs: &dyn Observer,
    at: u64,
    track: u32,
    before: &ControlStats,
    after: &ControlStats,
) {
    for ((name, old), (_, new)) in before.fields().iter().zip(after.fields().iter()) {
        if new != old {
            obs.record(ObsEvent::counter(at, track, *name, *new));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::MemorySink;

    #[test]
    fn ratios_and_totals() {
        let s = ControlStats {
            w_reuses: 3,
            w_recomputes: 1,
            eq_cache_hits: 5,
            eq_cache_misses: 3,
            aborts_non_chain: 2,
            delays_minimality: 4,
            ..ControlStats::default()
        };
        assert_eq!(s.cache_hits(), 8);
        assert_eq!(s.cache_misses(), 4);
        assert!((s.cache_hit_ratio() - 8.0 / 12.0).abs() < 1e-12);
        assert_eq!(s.aborts_total(), 2);
        assert_eq!(s.delays_total(), 4);
        assert_eq!(ControlStats::default().cache_hit_ratio(), 0.0);
    }

    #[test]
    fn emit_deltas_only_emits_changes() {
        let sink = MemorySink::new();
        let before = ControlStats::default();
        let after = ControlStats {
            eq_cache_hits: 2,
            ..before
        };
        emit_deltas(&sink, 10, 0, &before, &after);
        let evs = sink.take();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0], ObsEvent::counter(10, 0, "eq_cache_hits", 2));
        emit_deltas(&sink, 11, 0, &after, &after);
        assert!(sink.is_empty());
    }
}
