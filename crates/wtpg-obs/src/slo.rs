//! The SLO engine: declarative service-level objectives evaluated against
//! windowed telemetry.
//!
//! An [`SloSpec`] is a set of per-window thresholds (`p99 < 50ms`,
//! `abort < 5%`, `tps > 1000`) plus a sustain requirement: the objective
//! counts as *met* when at least `sustain` consecutive loaded windows —
//! ending with the last loaded window of the run — are all compliant.
//! "Loaded" means the window saw offered arrivals; the drain tail after
//! the arrival process stops is never judged. Evaluation produces one
//! [`WindowVerdict`] per loaded window (the machine-readable verdict
//! stream) and a final [`SloOutcome`].
//!
//! [`bisect_max`] is the max-sustainable-tps driver: binary search over
//! the arrival rate λ for the largest offered load whose run still meets
//! the SLO.
//!
//! Everything here is pure arithmetic over [`WindowStats`] values —
//! deterministic and clock-free, like the rest of the crate.

use crate::window::{metric, WindowSnapshot};

/// Per-window measurements the SLO thresholds are judged against,
/// extracted from a [`WindowSnapshot`] via the canonical
/// [`metric`](crate::window::metric) names.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WindowStats {
    /// Window sequence number.
    pub seq: u64,
    /// Window length, µs.
    pub dur_us: u64,
    /// Arrivals the load driver offered this window.
    pub offered: u64,
    /// Arrivals shed at the in-flight bound (backpressure signal).
    pub shed: u64,
    /// Commits acked this window.
    pub committed: u64,
    /// Admission rejections observed this window.
    pub rejected: u64,
    /// Commit-latency samples behind the percentiles below. Zero means the
    /// window's histogram was empty (or absent) — the percentiles are
    /// placeholders, not measurements, and must not be judged.
    pub lat_samples: u64,
    /// Commit latency median, µs (0 when no commits landed).
    pub p50_us: u64,
    /// Commit latency 99th percentile, µs.
    pub p99_us: u64,
    /// Commit latency 99.9th percentile, µs.
    pub p999_us: u64,
}

impl WindowStats {
    /// Extracts the judged measurements from one window record.
    pub fn from_snapshot(w: &WindowSnapshot) -> WindowStats {
        let lat = w.hist(metric::COMMIT_LAT_US);
        let pct = |q: f64| lat.and_then(|h| h.try_percentile(q)).unwrap_or(0);
        WindowStats {
            seq: w.seq,
            dur_us: w.len,
            offered: w.counter(metric::OFFERED),
            shed: w.counter(metric::SHED),
            committed: w.counter(metric::COMMITS),
            rejected: w.counter(metric::REJECTS),
            lat_samples: lat.map_or(0, |h| h.count()),
            p50_us: pct(0.50),
            p99_us: pct(0.99),
            p999_us: pct(0.999),
        }
    }

    /// Commits per second over this window (0 for a zero-length window).
    pub fn tps(&self) -> f64 {
        if self.dur_us == 0 {
            0.0
        } else {
            self.committed as f64 * 1_000_000.0 / self.dur_us as f64
        }
    }

    /// Rejected admissions as a fraction of admission outcomes, plus shed
    /// arrivals as a fraction of offers — the paper's BATs never abort
    /// mid-run, so admission rejection *is* the abort signal, and load
    /// shed counts against the same budget (turning work away is a
    /// service failure either way).
    pub fn abort_rate(&self) -> f64 {
        let denom = (self.committed + self.rejected + self.shed).max(self.offered);
        if denom == 0 {
            0.0
        } else {
            (self.rejected + self.shed) as f64 / denom as f64
        }
    }
}

/// A declarative SLO: per-window thresholds plus the sustain requirement.
/// Unset thresholds are not judged.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloSpec {
    /// Median commit latency must stay under this, µs.
    pub p50_max_us: Option<u64>,
    /// p99 commit latency must stay under this, µs.
    pub p99_max_us: Option<u64>,
    /// p99.9 commit latency must stay under this, µs.
    pub p999_max_us: Option<u64>,
    /// Abort rate (rejections + shed over outcomes) must stay under this
    /// fraction.
    pub abort_rate_max: Option<f64>,
    /// Throughput must stay above this, commits/s.
    pub min_tps: Option<f64>,
    /// Consecutive compliant loaded windows required, ending at the last
    /// loaded window.
    pub sustain: u32,
}

impl Default for SloSpec {
    fn default() -> SloSpec {
        SloSpec {
            p50_max_us: None,
            p99_max_us: Some(50_000),
            p999_max_us: None,
            abort_rate_max: Some(0.05),
            min_tps: None,
            sustain: 4,
        }
    }
}

/// Parses one duration term like `50ms`, `200us`, `2s` into µs.
fn parse_dur_us(s: &str) -> Result<u64, String> {
    let (num, mult) = if let Some(n) = s.strip_suffix("ms") {
        (n, 1_000.0)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1.0)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1_000_000.0)
    } else {
        return Err(format!("duration {s:?} needs a unit (us/ms/s)"));
    };
    let v: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("bad duration {s:?}"))?;
    Ok((v * mult) as u64)
}

impl SloSpec {
    /// Parses the comma-separated spec grammar, e.g.
    /// `p99<50ms,abort<5%,sustain=8` or `p50<5ms,p999<200ms,tps>1000`.
    /// Terms: `p50<D`, `p99<D`, `p999<D` (D with unit us/ms/s),
    /// `abort<N%`, `tps>N`, `sustain=N`. An empty string is the default
    /// spec.
    pub fn parse(s: &str) -> Result<SloSpec, String> {
        let mut spec = SloSpec {
            p50_max_us: None,
            p99_max_us: None,
            p999_max_us: None,
            abort_rate_max: None,
            min_tps: None,
            sustain: 4,
        };
        let mut any = false;
        for term in s.split(',') {
            let term = term.trim();
            if term.is_empty() {
                continue;
            }
            any = true;
            if let Some(rest) = term.strip_prefix("p999<") {
                spec.p999_max_us = Some(parse_dur_us(rest)?);
            } else if let Some(rest) = term.strip_prefix("p99<") {
                spec.p99_max_us = Some(parse_dur_us(rest)?);
            } else if let Some(rest) = term.strip_prefix("p50<") {
                spec.p50_max_us = Some(parse_dur_us(rest)?);
            } else if let Some(rest) = term.strip_prefix("abort<") {
                let pct = rest
                    .strip_suffix('%')
                    .ok_or_else(|| format!("abort bound {rest:?} needs a %"))?;
                let v: f64 = pct.parse().map_err(|_| format!("bad abort bound {rest:?}"))?;
                spec.abort_rate_max = Some(v / 100.0);
            } else if let Some(rest) = term.strip_prefix("tps>") {
                let v: f64 = rest.parse().map_err(|_| format!("bad tps bound {rest:?}"))?;
                spec.min_tps = Some(v);
            } else if let Some(rest) = term.strip_prefix("sustain=") {
                spec.sustain = rest
                    .parse()
                    .map_err(|_| format!("bad sustain count {rest:?}"))?;
            } else {
                return Err(format!("unknown SLO term {term:?}"));
            }
        }
        if !any {
            return Ok(SloSpec::default());
        }
        Ok(spec)
    }

    /// A canonical one-line rendering of the spec.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if let Some(v) = self.p50_max_us {
            parts.push(format!("p50<{}ms", v as f64 / 1000.0));
        }
        if let Some(v) = self.p99_max_us {
            parts.push(format!("p99<{}ms", v as f64 / 1000.0));
        }
        if let Some(v) = self.p999_max_us {
            parts.push(format!("p999<{}ms", v as f64 / 1000.0));
        }
        if let Some(v) = self.abort_rate_max {
            parts.push(format!("abort<{}%", v * 100.0));
        }
        if let Some(v) = self.min_tps {
            parts.push(format!("tps>{v}"));
        }
        parts.push(format!("sustain={}", self.sustain));
        parts.join(",")
    }

    /// Judges one window: the list of breached thresholds (empty means
    /// compliant).
    pub fn breaches(&self, w: &WindowStats) -> Vec<String> {
        let mut out = Vec::new();
        // Latency thresholds are judged only against real samples: an empty
        // window histogram reports zeroed percentiles, and judging those
        // would silently *pass* any `p99<X` bound in a window where no
        // commit ever landed (the failure mode the `lat_samples` field
        // exists to block). Stalls are still caught by `tps>`/`abort<`.
        if w.lat_samples > 0 {
            if let Some(max) = self.p50_max_us {
                if w.p50_us >= max {
                    out.push(format!("p50 {}us >= {}us", w.p50_us, max));
                }
            }
            if let Some(max) = self.p99_max_us {
                if w.p99_us >= max {
                    out.push(format!("p99 {}us >= {}us", w.p99_us, max));
                }
            }
            if let Some(max) = self.p999_max_us {
                if w.p999_us >= max {
                    out.push(format!("p999 {}us >= {}us", w.p999_us, max));
                }
            }
        }
        if let Some(max) = self.abort_rate_max {
            let rate = w.abort_rate();
            if rate >= max {
                out.push(format!("abort_rate {:.4} >= {:.4}", rate, max));
            }
        }
        if let Some(min) = self.min_tps {
            let tps = w.tps();
            if tps <= min {
                out.push(format!("tps {:.1} <= {:.1}", tps, min));
            }
        }
        out
    }
}

/// The verdict for one loaded window.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowVerdict {
    /// The judged measurements.
    pub stats: WindowStats,
    /// True when no threshold was breached.
    pub ok: bool,
    /// Human-readable breach descriptions (empty when `ok`).
    pub breaches: Vec<String>,
}

/// The final pass/fail of one run against one [`SloSpec`].
#[derive(Clone, Debug, PartialEq)]
pub struct SloOutcome {
    /// True when the SLO was met (see module docs for the sustain rule).
    pub pass: bool,
    /// Loaded windows judged.
    pub judged: u32,
    /// Judged windows that were compliant.
    pub compliant: u32,
    /// Length of the compliant streak ending at the last loaded window.
    pub tail_streak: u32,
    /// Why the run passed or failed, one line.
    pub reason: String,
}

/// Evaluates a run's window records against `spec`. Only loaded windows
/// (offered > 0) are judged — the warmup before arrivals start and the
/// drain tail after they stop are skipped. Returns the per-window verdict
/// stream and the final outcome.
pub fn evaluate(spec: &SloSpec, windows: &[WindowStats]) -> (Vec<WindowVerdict>, SloOutcome) {
    let verdicts: Vec<WindowVerdict> = windows
        .iter()
        .filter(|w| w.offered > 0)
        .map(|w| {
            let breaches = spec.breaches(w);
            WindowVerdict {
                stats: *w,
                ok: breaches.is_empty(),
                breaches,
            }
        })
        .collect();
    let judged = verdicts.len() as u32;
    let compliant = verdicts.iter().filter(|v| v.ok).count() as u32;
    let tail_streak = verdicts.iter().rev().take_while(|v| v.ok).count() as u32;
    let pass = judged >= spec.sustain && tail_streak >= spec.sustain;
    let reason = if judged < spec.sustain {
        format!("only {judged} loaded windows; sustain={} requires more", spec.sustain)
    } else if pass {
        format!(
            "last {tail_streak} loaded windows compliant (sustain={}, {compliant}/{judged} overall)",
            spec.sustain
        )
    } else {
        let last_bad = verdicts
            .iter()
            .rev()
            .find(|v| !v.ok)
            .map(|v| format!("window {}: {}", v.stats.seq, v.breaches.join("; ")))
            .unwrap_or_default();
        format!(
            "tail streak {tail_streak} < sustain={} ({compliant}/{judged} compliant; {last_bad})",
            spec.sustain
        )
    };
    (
        verdicts,
        SloOutcome {
            pass,
            judged,
            compliant,
            tail_streak,
            reason,
        },
    )
}

/// Binary search for the largest `x` in `[lo, hi]` for which `probe(x)`
/// holds, assuming (approximate) monotonicity — the max-sustainable-tps
/// driver. Runs `iters` probes after checking `lo`; returns the highest
/// passing value found, or `None` when even `lo` fails.
pub fn bisect_max(
    lo: f64,
    hi: f64,
    iters: u32,
    mut probe: impl FnMut(f64) -> bool,
) -> Option<f64> {
    if !probe(lo) {
        return None;
    }
    let (mut lo, mut hi) = (lo, hi);
    let mut best = lo;
    for _ in 0..iters {
        let mid = (lo + hi) / 2.0;
        if probe(mid) {
            best = mid;
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(seq: u64, offered: u64, committed: u64, rejected: u64, p99_us: u64) -> WindowStats {
        WindowStats {
            seq,
            dur_us: 250_000,
            offered,
            shed: 0,
            committed,
            rejected,
            lat_samples: committed,
            p50_us: p99_us / 2,
            p99_us,
            p999_us: p99_us * 2,
        }
    }

    #[test]
    fn parse_round_trips_the_grammar() {
        let spec = SloSpec::parse("p99<50ms,abort<5%,sustain=8").expect("parses");
        assert_eq!(spec.p99_max_us, Some(50_000));
        assert_eq!(spec.abort_rate_max, Some(0.05));
        assert_eq!(spec.sustain, 8);
        assert_eq!(spec.p50_max_us, None);
        let spec = SloSpec::parse("p50<500us,p999<2s,tps>100").expect("parses");
        assert_eq!(spec.p50_max_us, Some(500));
        assert_eq!(spec.p999_max_us, Some(2_000_000));
        assert_eq!(spec.min_tps, Some(100.0));
        assert_eq!(SloSpec::parse(""), Ok(SloSpec::default()));
        assert!(SloSpec::parse("p99<50").is_err(), "unit required");
        assert!(SloSpec::parse("nope").is_err());
        assert!(SloSpec::default().label().contains("p99<50ms"));
    }

    #[test]
    fn sustained_compliance_passes_and_tail_breach_fails() {
        let spec = SloSpec {
            p99_max_us: Some(50_000),
            abort_rate_max: Some(0.05),
            sustain: 3,
            ..SloSpec::parse("").unwrap_or_default()
        };
        // Warmup breach is forgiven once the tail sustains.
        let run = [
            w(0, 0, 0, 0, 0), // unloaded: skipped
            w(1, 100, 60, 0, 90_000),
            w(2, 100, 100, 0, 10_000),
            w(3, 100, 100, 1, 20_000),
            w(4, 100, 100, 0, 30_000),
            w(5, 0, 40, 0, 10_000), // drain: skipped
        ];
        let (verdicts, outcome) = evaluate(&spec, &run);
        assert_eq!(verdicts.len(), 4);
        assert!(!verdicts.first().map(|v| v.ok).unwrap_or(true));
        assert!(outcome.pass, "{}", outcome.reason);
        assert_eq!(outcome.tail_streak, 3);
        // A breach inside the tail window fails the run.
        let bad = [
            w(1, 100, 100, 0, 10_000),
            w(2, 100, 100, 0, 10_000),
            w(3, 100, 20, 30, 10_000), // abort storm
            w(4, 100, 100, 0, 10_000),
        ];
        let (_, outcome) = evaluate(&spec, &bad);
        assert!(!outcome.pass, "{}", outcome.reason);
        assert!(outcome.reason.contains("abort_rate"), "{}", outcome.reason);
        // Too few loaded windows cannot pass.
        let (_, outcome) = evaluate(&spec, &run[1..3]);
        assert!(!outcome.pass);
    }

    #[test]
    fn empty_latency_window_is_not_judged_on_latency() {
        let spec = SloSpec {
            p50_max_us: Some(1),
            p99_max_us: Some(1),
            p999_max_us: Some(1),
            abort_rate_max: None,
            min_tps: None,
            sustain: 1,
        };
        // No samples: the zeroed percentiles must neither pass nor breach
        // the (impossible) `<1us` bounds — latency is simply not judged.
        let empty = WindowStats {
            offered: 10,
            ..w(0, 10, 0, 0, 0)
        };
        assert_eq!(empty.lat_samples, 0);
        assert!(spec.breaches(&empty).is_empty());
        // One real sample at 5us breaches all three bounds.
        let mut loaded = w(1, 10, 1, 0, 5);
        loaded.p50_us = 5;
        loaded.p999_us = 5;
        assert_eq!(spec.breaches(&loaded).len(), 3);
        // A stalled window is still caught by the throughput bound.
        let stall = SloSpec {
            min_tps: Some(1.0),
            ..spec
        };
        assert_eq!(stall.breaches(&empty), vec!["tps 0.0 <= 1.0".to_string()]);
    }

    #[test]
    fn abort_rate_counts_shed_against_offers() {
        let mut s = w(0, 100, 90, 0, 1000);
        s.shed = 10;
        assert!((s.abort_rate() - 0.1).abs() < 1e-9);
        assert!((w(0, 0, 0, 0, 0).abort_rate()).abs() < 1e-12);
        assert!((w(0, 100, 50, 0, 0).tps() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn bisect_finds_the_threshold() {
        let mut probes = Vec::new();
        let max = bisect_max(100.0, 6500.0, 12, |x| {
            probes.push(x);
            x <= 4200.0
        });
        let max = max.expect("lo passes");
        assert!((max - 4200.0).abs() < 5.0, "{max}");
        assert_eq!(probes.len(), 13);
        assert_eq!(bisect_max(100.0, 500.0, 4, |_| false), None);
        let all = bisect_max(100.0, 500.0, 4, |_| true).unwrap_or(0.0);
        assert!(all > 470.0, "{all}");
    }
}
