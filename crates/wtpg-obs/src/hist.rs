//! Fixed-bucket log-scale histograms.
//!
//! Values are binned by their binary magnitude: bucket 0 holds the value 0
//! and bucket `b >= 1` holds the range `[2^(b-1), 2^b - 1]` (the final
//! bucket absorbs everything from `2^63` up). Recording is a single
//! increment of a fixed `[u64; 65]` array — no allocation, no floating
//! point, no data-dependent layout — so histograms are safe inside the
//! deterministic core/sim paths and cheap enough for per-event use in the
//! engine.
//!
//! Percentile queries locate the bucket containing the requested rank and
//! *interpolate* within it, assuming samples spread uniformly across the
//! bucket's range: rank `r` of `c` in-bucket samples reports
//! `lo + (hi - lo) * (2r - 1) / (2c)` (the midpoint of the r-th of `c`
//! equal sub-ranges). The reported value therefore always lies inside the
//! winning bucket — within one binary order of magnitude of the exact
//! order statistic, and much closer in practice (the old upper-bound
//! readout overstated p99 by up to the full bucket width at log-scale
//! tails). The golden and property tests in this crate pin that contract.

/// Number of buckets: one for zero plus one per binary magnitude of `u64`.
pub const BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; BUCKETS],
        }
    }

    /// The bucket index a value falls into.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// The largest value representable by bucket `b` — the ceiling of the
    /// interpolation range percentile queries use for that bucket.
    pub fn bucket_upper_bound(b: usize) -> u64 {
        match b {
            0 => 0,
            1..=63 => (1u64 << b) - 1,
            _ => u64::MAX,
        }
    }

    /// The smallest value that falls into bucket `b` — the floor of the
    /// interpolation range percentile queries use for that bucket.
    pub fn bucket_lower_bound(b: usize) -> u64 {
        match b {
            0 => 0,
            1..=64 => 1u64 << (b - 1),
            _ => u64::MAX,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        if let Some(c) = self.counts.get_mut(Self::bucket_of(v)) {
            *c += 1;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), interpolated within the bucket
    /// holding that rank under a uniform-within-bucket assumption: the
    /// `r`-th of `c` in-bucket samples reports the midpoint of the `r`-th
    /// of `c` equal sub-ranges of `[lo, hi]`. Always lies inside the
    /// winning bucket. Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (b, c) in self.counts.iter().enumerate() {
            if *c == 0 {
                continue;
            }
            if cum + c >= rank {
                let lo = Self::bucket_lower_bound(b);
                let hi = Self::bucket_upper_bound(b);
                let r = rank - cum; // 1-based rank within the bucket
                let width = (hi - lo) as u128;
                let offset = width * (2 * r as u128 - 1) / (2 * *c as u128);
                return lo + offset as u64;
            }
            cum += c;
        }
        Self::bucket_upper_bound(BUCKETS - 1)
    }

    /// The `q`-quantile, or `None` for an empty histogram — so a window
    /// with no samples (a reader-only window's write-latency series, say)
    /// reports "no data" instead of a fake zero that would silently pass
    /// or fail an SLO threshold.
    pub fn try_percentile(&self, q: f64) -> Option<u64> {
        if self.is_empty() {
            None
        } else {
            Some(self.percentile(q))
        }
    }

    /// Upper bound of the highest non-empty bucket (0 when empty).
    pub fn max_bound(&self) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .rev()
            .find(|(_, c)| **c > 0)
            .map(|(b, _)| Self::bucket_upper_bound(b))
            .unwrap_or(0)
    }

    /// Sparse text encoding `"bucket:count;bucket:count"` used by the JSONL
    /// sink. Empty histogram encodes to the empty string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for (b, c) in self.counts.iter().enumerate() {
            if *c > 0 {
                if !out.is_empty() {
                    out.push(';');
                }
                out.push_str(&format!("{b}:{c}"));
            }
        }
        out
    }

    /// Parses the [`Histogram::encode`] format. Returns `None` on malformed
    /// input or out-of-range bucket indices.
    pub fn decode(s: &str) -> Option<Histogram> {
        let mut h = Histogram::new();
        if s.is_empty() {
            return Some(h);
        }
        for part in s.split(';') {
            let (b, c) = part.split_once(':')?;
            let b: usize = b.parse().ok()?;
            let c: u64 = c.parse().ok()?;
            *h.counts.get_mut(b)? = c;
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(2), 3);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn percentile_of_uniform_run() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // p50 rank = 500 → bucket 9 ([256, 511], 256 samples, in-bucket
        // rank 245) → interpolated 256 + 255*489/512 = 499; exact is 500.
        assert_eq!(h.percentile(0.5), 499);
        assert_eq!(h.percentile(1.0), 1022);
        assert_eq!(h.max_bound(), 1023);
        assert_eq!(h.count(), 1000);
    }

    /// Golden test pinning the interpolated readout against exact order
    /// statistics of a known distribution: uniform 1..=1000. The old
    /// upper-bound readout reported 511/1023/1023 for p50/p99/p100
    /// (errors of +11/+33/+23); interpolation must land within ~4.5% of
    /// exact at every probed quantile and always inside the winning bucket.
    #[test]
    fn golden_interpolated_quantiles_vs_exact() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // (q, exact order statistic, interpolated expectation)
        let golden = [
            (0.01, 10u64, 10u64),
            (0.25, 250, 249),
            (0.50, 500, 499),
            (0.90, 900, 917),
            (0.99, 990, 1012),
            (0.999, 999, 1021),
            (1.0, 1000, 1022),
        ];
        for (q, exact, want) in golden {
            let got = h.percentile(q);
            assert_eq!(got, want, "q={q}");
            // Within the winning bucket ⇒ within one binary magnitude.
            let b = Histogram::bucket_of(exact);
            assert!(
                got >= Histogram::bucket_lower_bound(b.saturating_sub(1))
                    && got <= Histogram::bucket_upper_bound(b + 1),
                "q={q}: {got} not near exact {exact}"
            );
            let err = got.abs_diff(exact) as f64 / exact as f64;
            assert!(err < 0.045, "q={q}: relative error {err:.3}");
        }
        // A lone sample reports the midpoint of its bucket, not the top.
        let mut one = Histogram::new();
        one.record(9);
        assert_eq!(one.percentile(0.5), 11); // bucket [8,15], mid ≈ 11
        // Zero stays exact.
        let mut z = Histogram::new();
        z.record(0);
        assert_eq!(z.percentile(0.99), 0);
    }

    #[test]
    fn empty_percentile_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.max_bound(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(5);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut h = Histogram::new();
        for v in [0, 1, 3, 900, 70_000, u64::MAX] {
            h.record(v);
        }
        let enc = h.encode();
        assert_eq!(Histogram::decode(&enc), Some(h));
        assert_eq!(Histogram::decode(""), Some(Histogram::new()));
        assert_eq!(Histogram::decode("99:1"), None);
        assert_eq!(Histogram::decode("x"), None);
    }
}
