//! Fixed-bucket log-scale histograms.
//!
//! Values are binned by their binary magnitude: bucket 0 holds the value 0
//! and bucket `b >= 1` holds the range `[2^(b-1), 2^b - 1]` (the final
//! bucket absorbs everything from `2^63` up). Recording is a single
//! increment of a fixed `[u64; 65]` array — no allocation, no floating
//! point, no data-dependent layout — so histograms are safe inside the
//! deterministic core/sim paths and cheap enough for per-event use in the
//! engine.
//!
//! Percentile queries return the *upper bound* of the bucket containing the
//! requested rank, so a reported percentile is always within one bucket
//! (one binary order of magnitude) of the exact order statistic; the
//! property tests in this crate pin that contract.

/// Number of buckets: one for zero plus one per binary magnitude of `u64`.
pub const BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; BUCKETS],
        }
    }

    /// The bucket index a value falls into.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// The largest value representable by bucket `b` — what percentile
    /// queries report for ranks landing in that bucket.
    pub fn bucket_upper_bound(b: usize) -> u64 {
        match b {
            0 => 0,
            1..=63 => (1u64 << b) - 1,
            _ => u64::MAX,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        if let Some(c) = self.counts.get_mut(Self::bucket_of(v)) {
            *c += 1;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), reported as the upper bound of
    /// the bucket holding that rank. Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (b, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::bucket_upper_bound(b);
            }
        }
        Self::bucket_upper_bound(BUCKETS - 1)
    }

    /// Upper bound of the highest non-empty bucket (0 when empty).
    pub fn max_bound(&self) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .rev()
            .find(|(_, c)| **c > 0)
            .map(|(b, _)| Self::bucket_upper_bound(b))
            .unwrap_or(0)
    }

    /// Sparse text encoding `"bucket:count;bucket:count"` used by the JSONL
    /// sink. Empty histogram encodes to the empty string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for (b, c) in self.counts.iter().enumerate() {
            if *c > 0 {
                if !out.is_empty() {
                    out.push(';');
                }
                out.push_str(&format!("{b}:{c}"));
            }
        }
        out
    }

    /// Parses the [`Histogram::encode`] format. Returns `None` on malformed
    /// input or out-of-range bucket indices.
    pub fn decode(s: &str) -> Option<Histogram> {
        let mut h = Histogram::new();
        if s.is_empty() {
            return Some(h);
        }
        for part in s.split(';') {
            let (b, c) = part.split_once(':')?;
            let b: usize = b.parse().ok()?;
            let c: u64 = c.parse().ok()?;
            *h.counts.get_mut(b)? = c;
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(2), 3);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn percentile_of_uniform_run() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // p50 rank = 500 → value 500 → bucket 9 → bound 511.
        assert_eq!(h.percentile(0.5), 511);
        assert_eq!(h.percentile(1.0), 1023);
        assert_eq!(h.max_bound(), 1023);
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn empty_percentile_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.max_bound(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(5);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut h = Histogram::new();
        for v in [0, 1, 3, 900, 70_000, u64::MAX] {
            h.record(v);
        }
        let enc = h.encode();
        assert_eq!(Histogram::decode(&enc), Some(h));
        assert_eq!(Histogram::decode(""), Some(Histogram::new()));
        assert_eq!(Histogram::decode("99:1"), None);
        assert_eq!(Histogram::decode("x"), None);
    }
}
