//! Chrome `trace_event` export.
//!
//! Produces the JSON object format (`{"traceEvents": [...]}`) that
//! `chrome://tracing` and Perfetto open directly. Spans map to `ph:"B"` /
//! `ph:"E"` duration events, [`EventKind::Duration`] to complete `ph:"X"`
//! events, instants to `ph:"i"`, counters to `ph:"C"`, and histogram
//! snapshots to a `ph:"C"` carrying their percentile summary. All events
//! share `pid` 1; the event track becomes the `tid`.
//!
//! `ts` must be microseconds. Producers using logical ticks (milliseconds
//! of simulated time) pass `us_per_unit = 1000`; the engine's wall-clock
//! traces are already in µs and pass 1.

use crate::event::{EventKind, ObsEvent};

fn escape(s: &str) -> String {
    let mut out = String::new();
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn record(ev: &ObsEvent, us_per_unit: u64) -> String {
    let ts = ev.at.saturating_mul(us_per_unit);
    let head = |name: &str, ph: &str| {
        format!(
            "{{\"name\":\"{}\",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":1,\"tid\":{}",
            escape(name),
            ev.track
        )
    };
    match &ev.kind {
        EventKind::SpanBegin { name, id } => {
            format!("{},\"args\":{{\"id\":{id}}}}}", head(name, "B"))
        }
        EventKind::SpanEnd { name, id } => {
            format!("{},\"args\":{{\"id\":{id}}}}}", head(name, "E"))
        }
        EventKind::Instant { name, id } => {
            format!("{},\"s\":\"t\",\"args\":{{\"id\":{id}}}}}", head(name, "i"))
        }
        EventKind::Counter { name, value } => {
            format!("{},\"args\":{{\"value\":{value}}}}}", head(name, "C"))
        }
        EventKind::Duration { name, id, dur } => {
            format!(
                "{},\"dur\":{},\"args\":{{\"id\":{id}}}}}",
                head(name, "X"),
                dur.saturating_mul(us_per_unit)
            )
        }
        EventKind::Hist { name, hist } => {
            format!(
                "{},\"args\":{{\"count\":{},\"p50\":{},\"p95\":{},\"max\":{}}}}}",
                head(name, "C"),
                hist.count(),
                hist.percentile(0.5),
                hist.percentile(0.95),
                hist.max_bound()
            )
        }
        EventKind::Window(w) => {
            // One counter-phase record per window: counter deltas and
            // gauge levels inline, histograms as p50/p99 pairs.
            let mut args = format!("\"seq\":{}", w.seq);
            for (n, v) in &w.counters {
                args.push_str(&format!(",\"{}\":{v}", escape(n)));
            }
            for (n, v) in &w.gauges {
                args.push_str(&format!(",\"{}\":{v}", escape(n)));
            }
            for (n, h) in &w.hists {
                args.push_str(&format!(
                    ",\"{}.p50\":{},\"{}.p99\":{}",
                    escape(n),
                    h.percentile(0.5),
                    escape(n),
                    h.percentile(0.99)
                ));
            }
            format!("{},\"args\":{{{args}}}}}", head("window", "C"))
        }
    }
}

/// Renders a trace in Chrome `trace_event` JSON object format.
/// `us_per_unit` converts event timestamps to microseconds (1000 for
/// logical-tick traces, 1 for wall-clock µs traces).
pub fn chrome_trace(events: &[ObsEvent], us_per_unit: u64) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&record(ev, us_per_unit));
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn phases_and_scaling() {
        let mut h = Histogram::new();
        h.record(9);
        let evs = vec![
            ObsEvent::span_begin(1, 0, "txn", 3),
            ObsEvent::span_end(2, 0, "txn", 3),
            ObsEvent::instant(2, 1, "abort", 4),
            ObsEvent::counter(3, 0, "grants", 5),
            ObsEvent::duration(4, 2, "lock_wait", 3, 6),
            ObsEvent::hist(5, 0, "rt", h),
        ];
        let json = chrome_trace(&evs, 1000);
        assert!(json.starts_with("{\"traceEvents\":["));
        for needle in [
            "\"ph\":\"B\"",
            "\"ph\":\"E\"",
            "\"ph\":\"i\"",
            "\"ph\":\"C\"",
            "\"ph\":\"X\"",
            "\"ts\":1000",
            "\"dur\":6000",
            "\"tid\":2",
            "\"p95\":11",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn names_are_escaped() {
        let evs = vec![ObsEvent::instant(0, 0, String::from("a\"b"), 1)];
        assert!(chrome_trace(&evs, 1).contains("a\\\"b"));
    }
}
