//! Structured trace events.
//!
//! Every event carries a timestamp `at` whose meaning is fixed by the
//! producer: logical `Tick` values (milliseconds of simulated time, or
//! control-node linearization ticks) in the deterministic core/sim paths,
//! wall-clock microseconds since run start inside `wtpg-rt`. Events never
//! read a clock themselves — the producer supplies `at` — which is what
//! keeps instrumented deterministic runs byte-reproducible.
//!
//! Names are `Cow<'static, str>` so the hot record path borrows static
//! string literals (no allocation) while decoded traces own their names;
//! `Cow` equality compares contents, so decode(encode(x)) == x holds.

use std::borrow::Cow;

use crate::hist::Histogram;
use crate::window::WindowSnapshot;

/// An event name — borrowed from a static literal on the record path,
/// owned after JSONL decode.
pub type Name = Cow<'static, str>;

/// One structured trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObsEvent {
    /// Producer-defined timestamp (logical ticks or wall-clock µs).
    pub at: u64,
    /// Track (Chrome "thread") the event belongs to: 0 = control plane,
    /// `1 + worker_index` for engine workers, `1 + node` for sim data nodes.
    pub track: u32,
    /// What happened.
    pub kind: EventKind,
}

/// The payload of an [`ObsEvent`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opens. Paired with the [`EventKind::SpanEnd`] carrying the
    /// same `(name, id)`.
    SpanBegin {
        /// Span name (e.g. `"txn"`, `"step"`).
        name: Name,
        /// Instance id disambiguating concurrent spans of the same name.
        id: u64,
    },
    /// A span closes.
    SpanEnd {
        /// Span name matching the opening event.
        name: Name,
        /// Instance id matching the opening event.
        id: u64,
    },
    /// A point event (admission, abort, commit, …).
    Instant {
        /// Event name.
        name: Name,
        /// Subject id (usually a transaction id).
        id: u64,
    },
    /// A cumulative counter observation: `value` is the counter's value at
    /// `at`, not a delta.
    Counter {
        /// Counter name.
        name: Name,
        /// Cumulative value.
        value: u64,
    },
    /// A complete span recorded after the fact: began at `at`, lasted
    /// `dur` timestamp units. Used where begin/end pairing would cross
    /// thread boundaries (queue wait, lock wait).
    Duration {
        /// Span name.
        name: Name,
        /// Subject id.
        id: u64,
        /// Length in the producer's timestamp unit.
        dur: u64,
    },
    /// A histogram snapshot, usually emitted once at end of run.
    Hist {
        /// Histogram name.
        name: Name,
        /// The bucket counts, boxed so routine events stay small.
        hist: Box<Histogram>,
    },
    /// One windowed-telemetry flush: counter deltas, gauge levels and
    /// per-window histogram snapshots for the window ending at `at`.
    /// Boxed so routine events stay small.
    Window(Box<WindowSnapshot>),
}

impl EventKind {
    /// The event's name.
    pub fn name(&self) -> &str {
        match self {
            EventKind::SpanBegin { name, .. }
            | EventKind::SpanEnd { name, .. }
            | EventKind::Instant { name, .. }
            | EventKind::Counter { name, .. }
            | EventKind::Duration { name, .. }
            | EventKind::Hist { name, .. } => name,
            EventKind::Window(_) => "window",
        }
    }
}

impl ObsEvent {
    /// Opens a span.
    pub fn span_begin(at: u64, track: u32, name: impl Into<Name>, id: u64) -> ObsEvent {
        ObsEvent {
            at,
            track,
            kind: EventKind::SpanBegin {
                name: name.into(),
                id,
            },
        }
    }

    /// Closes a span.
    pub fn span_end(at: u64, track: u32, name: impl Into<Name>, id: u64) -> ObsEvent {
        ObsEvent {
            at,
            track,
            kind: EventKind::SpanEnd {
                name: name.into(),
                id,
            },
        }
    }

    /// A point event.
    pub fn instant(at: u64, track: u32, name: impl Into<Name>, id: u64) -> ObsEvent {
        ObsEvent {
            at,
            track,
            kind: EventKind::Instant {
                name: name.into(),
                id,
            },
        }
    }

    /// A cumulative counter observation.
    pub fn counter(at: u64, track: u32, name: impl Into<Name>, value: u64) -> ObsEvent {
        ObsEvent {
            at,
            track,
            kind: EventKind::Counter {
                name: name.into(),
                value,
            },
        }
    }

    /// A complete span.
    pub fn duration(at: u64, track: u32, name: impl Into<Name>, id: u64, dur: u64) -> ObsEvent {
        ObsEvent {
            at,
            track,
            kind: EventKind::Duration {
                name: name.into(),
                id,
                dur,
            },
        }
    }

    /// A histogram snapshot.
    pub fn hist(at: u64, track: u32, name: impl Into<Name>, hist: Histogram) -> ObsEvent {
        ObsEvent {
            at,
            track,
            kind: EventKind::Hist {
                name: name.into(),
                hist: Box::new(hist),
            },
        }
    }

    /// A windowed-telemetry flush for the window ending at `at`.
    pub fn window(at: u64, track: u32, snap: WindowSnapshot) -> ObsEvent {
        ObsEvent {
            at,
            track,
            kind: EventKind::Window(Box::new(snap)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn borrowed_and_owned_names_compare_equal() {
        let a = ObsEvent::instant(3, 0, "commit", 7);
        let b = ObsEvent::instant(3, 0, String::from("commit"), 7);
        assert_eq!(a, b);
        assert_eq!(a.kind.name(), "commit");
    }
}
