//! Observability layer for the WTPG workspace.
//!
//! This crate is the shared telemetry backbone: a passive [`Observer`]
//! trait, structured trace events ([`ObsEvent`]: spans, instants,
//! cumulative counters, complete durations, log-scale [`Histogram`]
//! snapshots), the control-plane counter bundle [`ControlStats`] every
//! `Scheduler` maintains, and three sinks — [`NullObserver`] (zero-cost
//! when tracing is off), JSONL export ([`jsonl`]), and Chrome
//! `trace_event` export ([`chrome`]) openable in `chrome://tracing` /
//! Perfetto. [`TraceSummary`] implements the `wtpg obs summary` / `wtpg
//! obs diff` tooling.
//!
//! The windowed-telemetry plane lives in [`window`] (a [`Registry`] of
//! counters/gauges/streaming histograms, flushed snapshot-and-reset into
//! [`EventKind::Window`] records), [`slo`] (declarative [`SloSpec`]
//! thresholds evaluated per window into verdict streams) and [`wclock`]
//! (the wall-driven flusher thread).
//!
//! # Determinism contract
//!
//! Events never read clocks; producers supply every timestamp. In
//! `wtpg-core` and `wtpg-sim` timestamps are logical `Tick`s, so an
//! instrumented run is byte-reproducible and the whole crate (minus the
//! [`wall`] module, which only `wtpg-rt` may use, and [`wclock`], the
//! window-flush clock boundary) passes wtpg-lint's determinism rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod hist;
pub mod jsonl;
pub mod meta;
pub mod net;
pub mod observer;
pub mod slo;
pub mod stats;
pub mod summary;
pub mod wall;
pub mod wclock;
pub mod window;

pub use event::{EventKind, Name, ObsEvent};
pub use hist::Histogram;
pub use net::{ByteCounts, MsgCounts, NetStats, WalStats};
pub use observer::{MemorySink, NullObserver, Observer};
pub use slo::{SloOutcome, SloSpec, WindowStats, WindowVerdict};
pub use stats::{emit_deltas, ControlStats};
pub use summary::TraceSummary;
pub use window::{Counter, Gauge, HistHandle, Registry, WindowSnapshot};
