//! Build-time run metadata, captured by this crate's `build.rs` so that
//! benchmark emitters (`BENCH_engine.json`, `BENCH_wtpg_hotpath.json`)
//! can attribute results to a commit without a runtime git dependency.

/// `git describe --always --dirty --tags` at build time ("unknown" outside
/// a checkout).
pub fn git_describe() -> &'static str {
    env!("WTPG_GIT_DESCRIBE")
}

/// `git rev-parse HEAD` at build time ("unknown" outside a checkout).
pub fn git_sha() -> &'static str {
    env!("WTPG_GIT_SHA")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_is_nonempty() {
        assert!(!git_describe().is_empty());
        assert!(!git_sha().is_empty());
    }
}
