//! Wall-clock timestamps for the real-time engine — the **only** file in
//! this crate allowed to touch `std::time`.
//!
//! Everything else in `wtpg-obs` is deterministic by construction and
//! wtpg-lint enforces that scoping (see `rules_for`): the determinism rule
//! covers all of `wtpg-obs/src` except this module, which exists solely so
//! `wtpg-rt` workers can stamp events with microseconds-since-run-start.
//! Core and simulator code must never import this module; their events are
//! keyed by `LogicalClock` ticks supplied by the caller.

use std::time::Instant;

/// A wall-clock origin; timestamps are µs elapsed since [`WallClock::start`].
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// Fixes the origin at the current instant.
    pub fn start() -> WallClock {
        WallClock {
            origin: Instant::now(),
        }
    }

    /// Microseconds elapsed since the origin (saturates at `u64::MAX`).
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_moves_forward() {
        let clock = WallClock::start();
        let a = clock.now_us();
        let b = clock.now_us();
        assert!(b >= a);
    }
}
