//! Windowed telemetry: a [`Registry`] of named counters, gauges and
//! streaming histograms that every layer updates on its hot path, plus the
//! snapshot-and-reset flush that turns one window of activity into a
//! single [`EventKind::Window`](crate::event::EventKind) record.
//!
//! The registry hands out cheap handles — [`Counter`] and [`Gauge`] are
//! atomics, [`HistHandle`] a per-metric mutex — so producers pay one
//! atomic add (or one uncontended lock) per observation and never touch
//! the registry map again after setup. Flushing is the only consumer:
//! [`Registry::flush`] snapshots every metric, resets the histograms,
//! computes counter deltas against the previous flush, and returns a
//! [`WindowSnapshot`] whose metric lists are name-sorted (the registry
//! maps are `BTreeMap`s), keeping windowed traces byte-deterministic for
//! a deterministic producer.
//!
//! This module is pure bookkeeping and carries the crate's determinism
//! contract: nothing here reads a clock. Producers that flush on wall
//! time use the [`crate::wclock::WindowFlusher`] thread, the crate's
//! second sanctioned clock boundary next to `wall.rs`; logical-time
//! producers call [`Registry::flush`] at their own window boundaries.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::{Name, ObsEvent};
use crate::hist::Histogram;

/// A cumulative counter handle. Cloning shares the underlying cell.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `d` to the counter.
    pub fn add(&self, d: u64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The cumulative value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A level gauge handle (queue depth, backlog, lag). Cloning shares the
/// underlying cell.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the level by `d`.
    pub fn add(&self, d: u64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Lowers the level by `d`, saturating at zero.
    pub fn sub(&self, d: u64) {
        // fetch_update never fails with a Some-returning closure.
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(d))
            });
    }

    /// The current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A streaming histogram handle. Recording takes a per-metric mutex that
/// only the flusher ever contends with.
#[derive(Clone, Debug)]
pub struct HistHandle(Arc<Mutex<Histogram>>);

impl HistHandle {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        lock_unpoisoned(&self.0).record(v);
    }
}

/// Locks a mutex, recovering the data from a poisoned lock (observability
/// must never take the engine down with it).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Everything one window of activity produced: counter *deltas* since the
/// previous flush, gauge levels at flush time, and the per-window
/// histogram snapshots (reset at each flush). Lists are name-sorted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowSnapshot {
    /// Flush sequence number, 0-based.
    pub seq: u64,
    /// Window length in the producer's timestamp unit (the carrying
    /// event's `at` is the window *end*).
    pub len: u64,
    /// `(name, delta)` per counter that moved this window.
    pub counters: Vec<(Name, u64)>,
    /// `(name, level)` per registered gauge.
    pub gauges: Vec<(Name, u64)>,
    /// `(name, histogram)` per histogram that recorded this window.
    pub hists: Vec<(Name, Histogram)>,
}

impl WindowSnapshot {
    /// The delta of counter `name` this window (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// The level of gauge `name` (None when absent).
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The histogram recorded under `name` this window, if any.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Sum of gauge levels whose names start with `prefix` and end with
    /// `suffix` — e.g. per-shard `ctrl/s<i>/backlog` totals.
    pub fn gauge_sum(&self, prefix: &str, suffix: &str) -> u64 {
        self.gauges
            .iter()
            .filter(|(n, _)| n.starts_with(prefix) && n.ends_with(suffix))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Counter deltas whose names start with `prefix` and end with
    /// `suffix`, in name order — e.g. per-shard commit balance.
    pub fn counter_matches(&self, prefix: &str, suffix: &str) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .filter(|(n, _)| n.starts_with(prefix) && n.ends_with(suffix))
            .map(|(n, v)| (n.to_string(), *v))
            .collect()
    }
}

/// Canonical metric names shared by producers (clients, control shards,
/// data nodes, the WAL writer) and consumers (the SLO engine, `wtpg top`,
/// trace summaries). Names never contain `=`, `;`, `,` or `"` — the
/// window JSONL codec packs them into flat string fields.
pub mod metric {
    /// Open-loop arrivals offered by the load driver (counter).
    pub const OFFERED: &str = "load/offered";
    /// Arrivals shed because the in-flight bound was full (counter) —
    /// the backpressure signal.
    pub const SHED: &str = "load/shed";
    /// Transactions actually submitted to the control plane (counter).
    pub const SUBMITTED: &str = "load/submitted";
    /// Commit acks received by clients (counter).
    pub const COMMITS: &str = "load/commits";
    /// Admission rejections observed by clients (counter).
    pub const REJECTS: &str = "load/rejects";
    /// Step delays observed by clients (counter).
    pub const DELAYS: &str = "load/delays";
    /// Submit-to-commit-ack latency, µs (histogram).
    pub const COMMIT_LAT_US: &str = "lat/commit_us";
    /// Submit-to-commit-ack latency of read-only (snapshot) BATs, µs
    /// (histogram). A subset of [`COMMIT_LAT_US`]'s samples; empty — and
    /// therefore omitted from every window — when the run has no readers.
    pub const READER_LAT_US: &str = "lat/reader_us";
    /// Read-only (snapshot) BAT commits acked by clients (counter). A
    /// subset of [`COMMITS`]; never bumped when the run has no readers.
    pub const READER_COMMITS: &str = "load/reader_commits";
    /// Control-plane round trip, µs (histogram).
    pub const CTRL_RTT_US: &str = "lat/ctrl_rtt_us";
    /// Clients' in-flight transactions (gauge, summed over clients).
    pub const INFLIGHT: &str = "load/inflight";
    /// Per-shard admission backlog depth (gauge): `ctrl/s<i>/backlog`.
    pub fn shard_backlog(shard: usize) -> String {
        format!("ctrl/s{shard}/backlog")
    }
    /// Per-shard parked-set size (gauge): `ctrl/s<i>/parked`.
    pub fn shard_parked(shard: usize) -> String {
        format!("ctrl/s{shard}/parked")
    }
    /// Per-shard commits (counter): `ctrl/s<i>/commits`.
    pub fn shard_commits(shard: usize) -> String {
        format!("ctrl/s{shard}/commits")
    }
    /// Per-shard admissions (counter): `ctrl/s<i>/admissions`.
    pub fn shard_admissions(shard: usize) -> String {
        format!("ctrl/s{shard}/admissions")
    }
    /// Scheduler lock grants, control-side (counter).
    pub const SCHED_GRANTS: &str = "sched/grants";
    /// Scheduler aborts (admission rejections), control-side (counter).
    pub const SCHED_ABORTS: &str = "sched/aborts";
    /// Scheduler delays, control-side (counter).
    pub const SCHED_DELAYS: &str = "sched/delays";
    /// Scheduler control-saving cache hits (counter).
    pub const SCHED_CACHE_HITS: &str = "sched/cache_hits";
    /// Bulk units applied across data nodes (counter).
    pub const DATA_UNITS: &str = "data/units";
    /// WAL records appended (counter).
    pub const WAL_RECORDS: &str = "wal/records";
    /// WAL group-commit flushes (counter).
    pub const WAL_FLUSHES: &str = "wal/flushes";
    /// WAL bytes buffered in the writer but not yet flushed to the file —
    /// flush lag, what a kill would destroy right now (gauge).
    pub const WAL_LAG: &str = "wal/lag";
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    hists: BTreeMap<String, Arc<Mutex<Histogram>>>,
    prev: BTreeMap<String, u64>,
    seq: u64,
}

/// A registry of named windowed metrics. One per run, shared by every
/// actor; see the module docs for the handle/flush split.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

/// True when `name` survives the window codec's flat packing.
fn name_ok(name: &str) -> bool {
    !name.is_empty() && !name.contains(['=', ';', ',', '"', '\\'])
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        debug_assert!(name_ok(name), "bad metric name {name:?}");
        let mut inner = lock_unpoisoned(&self.inner);
        Counter(Arc::clone(
            inner.counters.entry(name.to_string()).or_default(),
        ))
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        debug_assert!(name_ok(name), "bad metric name {name:?}");
        let mut inner = lock_unpoisoned(&self.inner);
        Gauge(Arc::clone(inner.gauges.entry(name.to_string()).or_default()))
    }

    /// The histogram named `name`, created empty on first use.
    pub fn hist(&self, name: &str) -> HistHandle {
        debug_assert!(name_ok(name), "bad metric name {name:?}");
        let mut inner = lock_unpoisoned(&self.inner);
        HistHandle(Arc::clone(
            inner.hists.entry(name.to_string()).or_default(),
        ))
    }

    /// Snapshots one window and resets the streaming state: counters
    /// report their delta since the previous flush (unchanged ones are
    /// omitted), gauges report their level, histograms are swapped out
    /// and reset (empty ones are omitted). `len` is the window length in
    /// the producer's timestamp unit.
    // `mem::replace`, not `mem::take`: the lock-order pass resolves bare
    // callee names, and `take` is also the sink-draining method that
    // acquires the `obs-events` lock class.
    #[allow(clippy::mem_replace_with_default)]
    pub fn flush_snapshot(&self, len: u64) -> WindowSnapshot {
        let mut inner = lock_unpoisoned(&self.inner);
        let seq = inner.seq;
        inner.seq += 1;
        let mut counters = Vec::new();
        let mut prev_updates = Vec::new();
        for (name, cell) in &inner.counters {
            let now = cell.load(Ordering::Relaxed);
            let before = inner.prev.get(name).copied().unwrap_or(0);
            if now != before {
                counters.push((Name::Owned(name.clone()), now - before));
                prev_updates.push((name.clone(), now));
            }
        }
        for (name, now) in prev_updates {
            inner.prev.insert(name, now);
        }
        let gauges = inner
            .gauges
            .iter()
            .map(|(name, cell)| (Name::Owned(name.clone()), cell.load(Ordering::Relaxed)))
            .collect();
        // Swap histograms out cell by cell *after* releasing the registry
        // lock — the cells are the innermost lock class, never nested
        // under anything (recorders on the hot path take only their own
        // cell, and so does the flusher here).
        let hist_cells: Vec<(String, Arc<Mutex<Histogram>>)> = inner
            .hists
            .iter()
            .map(|(name, cell)| (name.clone(), Arc::clone(cell)))
            .collect();
        drop(inner);
        let mut hists = Vec::new();
        for (name, cell) in hist_cells {
            let mut h = lock_unpoisoned(&cell);
            if !h.is_empty() {
                let snap = std::mem::replace(&mut *h, Histogram::new());
                hists.push((Name::Owned(name), snap));
            }
        }
        WindowSnapshot {
            seq,
            len,
            counters,
            gauges,
            hists,
        }
    }

    /// Flushes one window as a ready-to-record event ending at `at` on
    /// `track`.
    pub fn flush(&self, at: u64, track: u32, len: u64) -> ObsEvent {
        ObsEvent::window(at, track, self.flush_snapshot(len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_report_deltas_and_reset_between_windows() {
        let reg = Registry::new();
        let c = reg.counter("load/offered");
        c.add(5);
        let w0 = reg.flush_snapshot(250);
        assert_eq!(w0.seq, 0);
        assert_eq!(w0.counter("load/offered"), 5);
        c.add(2);
        let w1 = reg.flush_snapshot(250);
        assert_eq!(w1.seq, 1);
        assert_eq!(w1.counter("load/offered"), 2);
        // An idle window omits the unchanged counter entirely.
        let w2 = reg.flush_snapshot(250);
        assert!(w2.counters.is_empty(), "{:?}", w2.counters);
        assert_eq!(w2.counter("load/offered"), 0);
    }

    #[test]
    fn gauges_report_levels_and_hists_snapshot_and_reset() {
        let reg = Registry::new();
        let g = reg.gauge("ctrl/s0/backlog");
        g.add(7);
        g.sub(3);
        let h = reg.hist("lat/commit_us");
        h.record(100);
        h.record(200);
        let w0 = reg.flush_snapshot(250);
        assert_eq!(w0.gauge("ctrl/s0/backlog"), Some(4));
        assert_eq!(w0.hist("lat/commit_us").map(Histogram::count), Some(2));
        // The histogram was reset; the gauge holds its level.
        let w1 = reg.flush_snapshot(250);
        assert!(w1.hist("lat/commit_us").is_none());
        assert_eq!(w1.gauge("ctrl/s0/backlog"), Some(4));
        g.sub(100); // saturates at zero
        assert_eq!(reg.flush_snapshot(250).gauge("ctrl/s0/backlog"), Some(0));
    }

    #[test]
    fn handles_share_cells_and_snapshot_order_is_name_sorted() {
        let reg = Registry::new();
        let a = reg.counter("b/two");
        let b = reg.counter("b/two");
        a.inc();
        b.inc();
        reg.counter("a/one").inc();
        reg.gauge("z/g").set(9);
        let w = reg.flush_snapshot(1);
        assert_eq!(w.counter("b/two"), 2);
        let names: Vec<&str> = w.counters.iter().map(|(n, _)| n.as_ref()).collect();
        assert_eq!(names, vec!["a/one", "b/two"]);
        assert_eq!(w.gauge_sum("z/", "g"), 9);
        assert_eq!(
            w.counter_matches("b/", "two"),
            vec![("b/two".to_string(), 2)]
        );
    }

    #[test]
    fn merging_window_hists_reconstructs_the_whole_run() {
        let reg = Registry::new();
        let h = reg.hist("lat/commit_us");
        let mut whole = Histogram::new();
        let mut merged = Histogram::new();
        for window in 0..4u64 {
            for i in 0..50u64 {
                let v = window * 1000 + i * 7;
                h.record(v);
                whole.record(v);
            }
            let w = reg.flush_snapshot(250);
            if let Some(wh) = w.hist("lat/commit_us") {
                merged.merge(wh);
            }
        }
        assert_eq!(merged, whole);
        assert_eq!(merged.encode(), whole.encode());
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(merged.percentile(q), whole.percentile(q));
        }
    }

    #[test]
    fn threaded_merge_is_byte_identical_to_serial() {
        // REPLAY-style merge: each worker records its slice of the sample
        // stream concurrently through a shared handle, and separately into
        // a private histogram. Bucket increments are commutative, so the
        // registry's combined histogram, a serial fold of the same
        // samples, and any merge order of the private parts must all
        // encode to identical bytes.
        let reg = Registry::new();
        let samples: Vec<u64> = (0..4000u64).map(|i| (i * 2654435761) % 1_000_000).collect();
        let workers = 4;
        std::thread::scope(|s| {
            for w in 0..workers {
                let h = reg.hist("lat/commit_us");
                let slice: Vec<u64> = samples
                    .iter()
                    .copied()
                    .skip(w)
                    .step_by(workers)
                    .collect();
                s.spawn(move || {
                    for v in slice {
                        h.record(v);
                    }
                });
            }
        });
        let concurrent = reg
            .flush_snapshot(1)
            .hist("lat/commit_us")
            .expect("recorded")
            .clone();

        let mut serial = Histogram::new();
        for &v in &samples {
            serial.record(v);
        }
        let parts: Vec<Histogram> = (0..workers)
            .map(|w| {
                let mut h = Histogram::new();
                for &v in samples.iter().skip(w).step_by(workers) {
                    h.record(v);
                }
                h
            })
            .collect();
        let mut forward = Histogram::new();
        for p in &parts {
            forward.merge(p);
        }
        let mut reverse = Histogram::new();
        for p in parts.iter().rev() {
            reverse.merge(p);
        }
        assert_eq!(concurrent.encode(), serial.encode());
        assert_eq!(forward.encode(), serial.encode());
        assert_eq!(reverse.encode(), serial.encode());
    }
}
