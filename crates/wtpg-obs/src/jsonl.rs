//! JSONL trace encoding: one flat JSON object per event, one event per
//! line. Hand-rolled (this crate is dependency-free); the decoder accepts
//! exactly what the encoder produces — flat objects whose values are
//! unsigned integers or strings — which is all a trace ever contains.

use std::fmt;

use crate::event::{EventKind, Name, ObsEvent};
use crate::hist::Histogram;
use crate::window::WindowSnapshot;

/// A decode failure, with the 1-based line it occurred on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonlError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for JsonlError {}

fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_str_field(out: &mut String, key: &str, val: &str) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":\"");
    escape_into(out, val);
    out.push('"');
}

fn push_u64_field(out: &mut String, key: &str, val: u64) {
    out.push_str(&format!(",\"{key}\":{val}"));
}

/// Encodes one event as a single JSON line (no trailing newline).
pub fn encode_event(ev: &ObsEvent) -> String {
    let mut out = format!("{{\"at\":{},\"track\":{}", ev.at, ev.track);
    match &ev.kind {
        EventKind::SpanBegin { name, id } => {
            push_str_field(&mut out, "kind", "span_begin");
            push_str_field(&mut out, "name", name);
            push_u64_field(&mut out, "id", *id);
        }
        EventKind::SpanEnd { name, id } => {
            push_str_field(&mut out, "kind", "span_end");
            push_str_field(&mut out, "name", name);
            push_u64_field(&mut out, "id", *id);
        }
        EventKind::Instant { name, id } => {
            push_str_field(&mut out, "kind", "instant");
            push_str_field(&mut out, "name", name);
            push_u64_field(&mut out, "id", *id);
        }
        EventKind::Counter { name, value } => {
            push_str_field(&mut out, "kind", "counter");
            push_str_field(&mut out, "name", name);
            push_u64_field(&mut out, "value", *value);
        }
        EventKind::Duration { name, id, dur } => {
            push_str_field(&mut out, "kind", "duration");
            push_str_field(&mut out, "name", name);
            push_u64_field(&mut out, "id", *id);
            push_u64_field(&mut out, "dur", *dur);
        }
        EventKind::Hist { name, hist } => {
            push_str_field(&mut out, "kind", "hist");
            push_str_field(&mut out, "name", name);
            push_str_field(&mut out, "buckets", &hist.encode());
        }
        EventKind::Window(w) => {
            push_str_field(&mut out, "kind", "window");
            push_u64_field(&mut out, "seq", w.seq);
            push_u64_field(&mut out, "len", w.len);
            push_str_field(&mut out, "counters", &pack_pairs(&w.counters));
            push_str_field(&mut out, "gauges", &pack_pairs(&w.gauges));
            let hists: Vec<String> = w
                .hists
                .iter()
                .map(|(n, h)| format!("{n}={}", h.encode()))
                .collect();
            push_str_field(&mut out, "hists", &hists.join(","));
        }
    }
    out.push('}');
    out
}

/// Packs name/value pairs as `"name=value;name=value"` — the flat-object
/// codec only carries strings and unsigned integers, so window metric
/// lists travel as one string field each. Metric names never contain
/// `=`, `;` or `,` (see [`crate::window::metric`]).
fn pack_pairs(pairs: &[(Name, u64)]) -> String {
    let items: Vec<String> = pairs.iter().map(|(n, v)| format!("{n}={v}")).collect();
    items.join(";")
}

/// Parses the [`pack_pairs`] format.
fn unpack_pairs(s: &str) -> Result<Vec<(Name, u64)>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    for item in s.split(';') {
        let (n, v) = item
            .split_once('=')
            .ok_or_else(|| format!("bad metric pair {item:?}"))?;
        let v: u64 = v.parse().map_err(|_| format!("bad metric value {item:?}"))?;
        out.push((Name::Owned(n.to_string()), v));
    }
    Ok(out)
}

/// Encodes a full trace: one line per event, trailing newline.
pub fn encode(events: &[ObsEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&encode_event(ev));
        out.push('\n');
    }
    out
}

/// A parsed flat-JSON value: traces only contain strings and unsigned
/// integers.
enum Flat {
    Str(String),
    Num(u64),
}

/// Parses one flat JSON object into key/value pairs.
fn parse_flat(line: &str) -> Result<Vec<(String, Flat)>, String> {
    let mut chars = line.trim().chars().peekable();
    let mut pairs = Vec::new();
    if chars.next() != Some('{') {
        return Err("expected '{'".into());
    }
    loop {
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some(',') => {
                chars.next();
            }
            Some('"') => {}
            Some(c) => return Err(format!("unexpected character '{c}'")),
            None => return Err("unterminated object".into()),
        }
        if chars.peek() != Some(&'"') {
            continue;
        }
        let key = parse_string(&mut chars)?;
        if chars.next() != Some(':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        let val = match chars.peek() {
            Some('"') => Flat::Str(parse_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() => {
                let mut n = String::new();
                while let Some(c) = chars.peek() {
                    if c.is_ascii_digit() {
                        n.push(*c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                Flat::Num(n.parse().map_err(|_| format!("bad number {n:?}"))?)
            }
            _ => return Err(format!("unsupported value for key {key:?}")),
        };
        pairs.push((key, val));
    }
    if chars.next().is_some() {
        return Err("trailing characters after object".into());
    }
    Ok(pairs)
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected '\"'".into());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                Some('u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let d = chars
                            .next()
                            .and_then(|c| c.to_digit(16))
                            .ok_or("bad \\u escape")?;
                        code = code * 16 + d;
                    }
                    out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                }
                _ => return Err("bad escape".into()),
            },
            Some(c) => out.push(c),
            None => return Err("unterminated string".into()),
        }
    }
}

struct Fields {
    pairs: Vec<(String, Flat)>,
}

impl Fields {
    fn num(&self, key: &str) -> Result<u64, String> {
        match self.pairs.iter().find(|(k, _)| k == key) {
            Some((_, Flat::Num(n))) => Ok(*n),
            Some(_) => Err(format!("field {key:?} is not a number")),
            None => Err(format!("missing field {key:?}")),
        }
    }

    fn str(&self, key: &str) -> Result<&str, String> {
        match self.pairs.iter().find(|(k, _)| k == key) {
            Some((_, Flat::Str(s))) => Ok(s),
            Some(_) => Err(format!("field {key:?} is not a string")),
            None => Err(format!("missing field {key:?}")),
        }
    }
}

fn decode_line(line: &str) -> Result<ObsEvent, String> {
    let f = Fields {
        pairs: parse_flat(line)?,
    };
    let at = f.num("at")?;
    let track = u32::try_from(f.num("track")?).map_err(|_| "track out of range".to_string())?;
    let name = || -> Result<Name, String> { Ok(Name::Owned(f.str("name")?.to_string())) };
    let kind = match f.str("kind")? {
        "span_begin" => EventKind::SpanBegin {
            name: name()?,
            id: f.num("id")?,
        },
        "span_end" => EventKind::SpanEnd {
            name: name()?,
            id: f.num("id")?,
        },
        "instant" => EventKind::Instant {
            name: name()?,
            id: f.num("id")?,
        },
        "counter" => EventKind::Counter {
            name: name()?,
            value: f.num("value")?,
        },
        "duration" => EventKind::Duration {
            name: name()?,
            id: f.num("id")?,
            dur: f.num("dur")?,
        },
        "hist" => EventKind::Hist {
            name: name()?,
            hist: Box::new(
                Histogram::decode(f.str("buckets")?)
                    .ok_or_else(|| "malformed histogram buckets".to_string())?,
            ),
        },
        "window" => {
            let mut hists = Vec::new();
            let packed = f.str("hists")?;
            if !packed.is_empty() {
                for item in packed.split(',') {
                    let (n, enc) = item
                        .split_once('=')
                        .ok_or_else(|| format!("bad window histogram {item:?}"))?;
                    let h = Histogram::decode(enc)
                        .ok_or_else(|| format!("malformed window histogram {n:?}"))?;
                    hists.push((Name::Owned(n.to_string()), h));
                }
            }
            EventKind::Window(Box::new(WindowSnapshot {
                seq: f.num("seq")?,
                len: f.num("len")?,
                counters: unpack_pairs(f.str("counters")?)?,
                gauges: unpack_pairs(f.str("gauges")?)?,
                hists,
            }))
        }
        other => return Err(format!("unknown event kind {other:?}")),
    };
    Ok(ObsEvent { at, track, kind })
}

/// Decodes a JSONL trace. Blank lines are skipped; any malformed line
/// fails the whole decode with its line number.
pub fn decode(text: &str) -> Result<Vec<ObsEvent>, JsonlError> {
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(decode_line(line).map_err(|msg| JsonlError { line: idx + 1, msg })?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<ObsEvent> {
        let mut h = Histogram::new();
        h.record(0);
        h.record(17);
        h.record(1 << 40);
        vec![
            ObsEvent::span_begin(1, 0, "txn", 42),
            ObsEvent::span_begin(2, 1, "step", 42),
            ObsEvent::counter(3, 0, "eq_cache_hits", 7),
            ObsEvent::instant(4, 0, "abort", 9),
            ObsEvent::duration(5, 2, "lock_wait_us", 42, 137),
            ObsEvent::span_end(6, 1, "step", 42),
            ObsEvent::span_end(7, 0, "txn", 42),
            ObsEvent::hist(8, 0, "rt_ms", h),
        ]
    }

    #[test]
    fn round_trip_preserves_events() {
        let evs = sample_events();
        let text = encode(&evs);
        assert_eq!(decode(&text).expect("decodes"), evs);
    }

    #[test]
    fn window_events_round_trip() {
        let reg = crate::window::Registry::new();
        reg.counter("load/offered").add(12);
        reg.counter("load/shed").add(2);
        reg.gauge("ctrl/s0/backlog").set(5);
        let h = reg.hist("lat/commit_us");
        h.record(900);
        h.record(17);
        let evs = vec![
            ObsEvent::window(250_000, 0, reg.flush_snapshot(250_000)),
            // An idle window (no counters, no hists) still round-trips.
            ObsEvent::window(500_000, 0, reg.flush_snapshot(250_000)),
        ];
        let text = encode(&evs);
        assert_eq!(decode(&text).expect("decodes"), evs);
        // The encoding is flat: one line per event, string-packed metrics.
        let first = text.lines().next().unwrap_or("");
        assert!(first.contains("\"kind\":\"window\""), "{first}");
        assert!(first.contains("load/offered=12;load/shed=2"), "{first}");
    }

    #[test]
    fn escaped_names_round_trip() {
        let evs = vec![ObsEvent::instant(0, 0, String::from("we\"ird\\na\nme"), 1)];
        assert_eq!(decode(&encode(&evs)).expect("decodes"), evs);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let evs = sample_events();
        let text = format!("\n{}\n\n", encode(&evs));
        assert_eq!(decode(&text).expect("decodes"), evs);
    }

    #[test]
    fn malformed_lines_report_position() {
        let err = decode("{\"at\":1,\"track\":0,\"kind\":\"instant\",\"name\":\"x\",\"id\":1}\nnot json\n")
            .expect_err("must fail");
        assert_eq!(err.line, 2);
        let err = decode("{\"at\":1}\n").expect_err("must fail");
        assert_eq!(err.line, 1);
        assert!(err.msg.contains("track"), "{err}");
    }
}
