//! The window-flush clock: a wall-driven thread that periodically flushes
//! a [`Registry`] into [`EventKind::Window`](crate::EventKind::Window)
//! records.
//!
//! This module is — alongside [`wall`](crate::wall) — one of the two
//! sanctioned clock boundaries in the workspace (wtpg-lint's determinism
//! rule exempts exactly these two files). Everything downstream of the
//! flusher stays deterministic-by-construction: the snapshot it emits
//! carries producer-supplied timestamps and the flusher itself never
//! leaks `Instant`s into event payloads. Logical-time producers
//! (`wtpg-sim`) do not use this module at all; they call
//! [`Registry::flush`] themselves on tick boundaries.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::observer::Observer;
use crate::wall::WallClock;
use crate::window::Registry;

/// Default flush window, ms — matches the logical-time default used by
/// tick-driven producers.
pub const DEFAULT_WINDOW_MS: u64 = 250;

/// A background thread that flushes `reg` into the observer every
/// `window_ms` of wall time. Stop it with [`WindowFlusher::stop`] to get
/// the final partial window flushed before the handle joins; dropping it
/// without `stop` also shuts the thread down (without the final flush
/// being ordered after the producer's last write — prefer `stop`).
pub struct WindowFlusher {
    stop: Arc<AtomicBool>,
    // Wakes the sleeper early on stop so shutdown is prompt even with
    // long windows.
    wake_tx: mpsc::Sender<()>,
    handle: Option<thread::JoinHandle<()>>,
}

impl WindowFlusher {
    /// Spawns the flusher thread. `track` is the observer track window
    /// records are emitted on; `wall` supplies the µs timestamps (share
    /// the producer's clock so window `at`s interleave correctly with
    /// the rest of the trace).
    pub fn spawn(
        reg: Arc<Registry>,
        obs: Arc<dyn Observer>,
        wall: WallClock,
        window_ms: u64,
        track: u32,
    ) -> WindowFlusher {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let (wake_tx, wake_rx) = mpsc::channel::<()>();
        let window_us = window_ms.max(1).saturating_mul(1000);
        let handle = thread::spawn(move || {
            let mut last = wall.now_us();
            loop {
                if stop2.load(Ordering::Acquire) {
                    break;
                }
                let now = wall.now_us();
                let elapsed = now.saturating_sub(last);
                if elapsed >= window_us {
                    obs.record(reg.flush(now, track, elapsed));
                    last = now;
                }
                // Sleep a fraction of the window so flush timing stays
                // close to the boundary without busy-waiting; the wake
                // channel cuts the sleep short on stop.
                let nap = (window_us / 8).clamp(1_000, 25_000);
                let _ = wake_rx.recv_timeout(Duration::from_micros(nap));
            }
            // Final partial window: everything recorded since the last
            // boundary, so short runs and drain tails are not lost.
            let now = wall.now_us();
            let elapsed = now.saturating_sub(last);
            let snap = reg.flush(now, track, elapsed.max(1));
            obs.record(snap);
        });
        WindowFlusher {
            stop,
            wake_tx,
            handle: Some(handle),
        }
    }

    /// Stops the thread, flushing the final partial window, and joins.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        let _ = self.wake_tx.send(());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for WindowFlusher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::observer::MemorySink;
    use crate::window::metric;

    #[test]
    fn flusher_emits_windows_and_a_final_partial() {
        let reg = Arc::new(Registry::new());
        let sink = Arc::new(MemorySink::new());
        let wall = WallClock::start();
        let flusher = WindowFlusher::spawn(
            Arc::clone(&reg),
            sink.clone() as Arc<dyn Observer>,
            wall,
            5,
            7,
        );
        let commits = reg.counter(metric::COMMITS);
        for _ in 0..10 {
            commits.inc();
            thread::sleep(Duration::from_millis(2));
        }
        flusher.stop();
        let events = sink.take();
        assert!(!events.is_empty(), "at least the final flush lands");
        let mut total = 0u64;
        for ev in &events {
            assert_eq!(ev.track, 7);
            match &ev.kind {
                EventKind::Window(w) => total += w.counter(metric::COMMITS),
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert_eq!(total, 10, "window deltas account for every commit");
        // Window seqs are monotone from the shared registry.
        let seqs: Vec<u64> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Window(w) => Some(w.seq),
                _ => None,
            })
            .collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
    }

    #[test]
    fn drop_without_stop_still_joins() {
        let reg = Arc::new(Registry::new());
        let sink = Arc::new(MemorySink::new());
        let wall = WallClock::start();
        {
            let _f = WindowFlusher::spawn(
                Arc::clone(&reg),
                sink.clone() as Arc<dyn Observer>,
                wall,
                1000,
                0,
            );
            reg.counter(metric::OFFERED).add(3);
        }
        let events = sink.take();
        let offered: u64 = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Window(w) => Some(w.counter(metric::OFFERED)),
                _ => None,
            })
            .sum();
        assert_eq!(offered, 3);
    }
}
