//! Trace summarisation and diffing — the logic behind `wtpg obs summary`
//! and `wtpg obs diff`.
//!
//! A summary folds a trace into: final cumulative counter values,
//! occurrence counts per instant name, and one duration [`Histogram`] per
//! span name (pairing `SpanBegin`/`SpanEnd` by `(name, id)`, folding in
//! complete [`EventKind::Duration`] events, and merging end-of-run
//! [`EventKind::Hist`] snapshots under `<name>` as recorded).
//!
//! Windowed traces fold the same way: each [`EventKind::Window`] record
//! accumulates its counter deltas into the summary's counters, overwrites
//! gauge levels (last window wins, like cumulative counters), and merges
//! its per-window histograms into the span map — so `wtpg obs summary`
//! and `diff` treat a windowed trace exactly like the equivalent
//! whole-run trace, and the fold stays byte-deterministic.

use std::collections::BTreeMap;

use crate::event::{EventKind, ObsEvent};
use crate::hist::Histogram;
use crate::stats::ControlStats;

/// Aggregated view of one trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSummary {
    /// Total events in the trace.
    pub events: usize,
    /// Final (latest) cumulative value per counter name.
    pub counters: BTreeMap<String, u64>,
    /// Occurrences per instant name.
    pub instants: BTreeMap<String, u64>,
    /// Duration histogram per span name (timestamp units of the trace).
    pub spans: BTreeMap<String, Histogram>,
    /// Span begin events that never closed (diagnostic; non-zero is legal
    /// for truncated traces).
    pub unclosed_spans: usize,
    /// Windowed-telemetry flush records folded into this summary.
    pub windows: usize,
}

impl TraceSummary {
    /// Builds a summary from decoded events.
    pub fn from_events(events: &[ObsEvent]) -> TraceSummary {
        let mut s = TraceSummary {
            events: events.len(),
            ..TraceSummary::default()
        };
        let mut open: BTreeMap<(String, u64, u32), u64> = BTreeMap::new();
        for ev in events {
            match &ev.kind {
                EventKind::SpanBegin { name, id } => {
                    open.insert((name.to_string(), *id, ev.track), ev.at);
                }
                EventKind::SpanEnd { name, id } => {
                    if let Some(begin) = open.remove(&(name.to_string(), *id, ev.track)) {
                        s.spans
                            .entry(name.to_string())
                            .or_default()
                            .record(ev.at.saturating_sub(begin));
                    }
                }
                EventKind::Instant { name, .. } => {
                    *s.instants.entry(name.to_string()).or_insert(0) += 1;
                }
                EventKind::Counter { name, value } => {
                    s.counters.insert(name.to_string(), *value);
                }
                EventKind::Duration { name, dur, .. } => {
                    s.spans.entry(name.to_string()).or_default().record(*dur);
                }
                EventKind::Hist { name, hist } => {
                    s.spans.entry(name.to_string()).or_default().merge(hist);
                }
                EventKind::Window(w) => {
                    s.windows += 1;
                    for (name, delta) in &w.counters {
                        *s.counters.entry(name.to_string()).or_insert(0) += delta;
                    }
                    for (name, level) in &w.gauges {
                        s.counters.insert(name.to_string(), *level);
                    }
                    for (name, hist) in &w.hists {
                        s.spans.entry(name.to_string()).or_default().merge(hist);
                    }
                }
            }
        }
        s.unclosed_spans = open.len();
        s
    }

    /// Reconstructs the control-plane stats from the trace's counters
    /// (fields absent from the trace read as 0).
    pub fn control_stats(&self) -> ControlStats {
        let get = |k: &str| self.counters.get(k).copied().unwrap_or(0);
        ControlStats {
            w_recomputes: get("w_recomputes"),
            w_reuses: get("w_reuses"),
            eq_cache_hits: get("eq_cache_hits"),
            eq_cache_misses: get("eq_cache_misses"),
            eq_cache_invalidations: get("eq_cache_invalidations"),
            dd_cache_hits: get("dd_cache_hits"),
            dd_cache_misses: get("dd_cache_misses"),
            aborts_non_chain: get("aborts_non_chain"),
            aborts_k_conflict: get("aborts_k_conflict"),
            aborts_lock_denied: get("aborts_lock_denied"),
            delays_deadlock: get("delays_deadlock"),
            delays_minimality: get("delays_minimality"),
        }
    }

    /// Abort/delay causes present in the trace, most frequent first.
    pub fn top_abort_causes(&self) -> Vec<(String, u64)> {
        let mut causes: Vec<(String, u64)> = self
            .counters
            .iter()
            .filter(|(k, v)| (k.starts_with("aborts_") || k.starts_with("delays_")) && **v > 0)
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        causes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        causes
    }

    /// The duration histogram recorded under `name`, if any.
    pub fn span(&self, name: &str) -> Option<&Histogram> {
        self.spans.get(name)
    }

    /// Network-plane messages sent per commit, when the trace carries the
    /// runtime's `net_tx_*` and `net_commits` counters (a sent batch counts
    /// as one message, its coalesced contents do not).
    pub fn net_msgs_per_commit(&self) -> Option<f64> {
        let sent: u64 = self
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("net_tx_"))
            .map(|(_, v)| *v)
            .sum();
        let commits = self.counters.get("net_commits").copied().unwrap_or(0);
        (sent > 0 && commits > 0).then(|| sent as f64 / commits as f64)
    }

    /// Per-shard `(admissions, commits)` pairs recovered from the trace's
    /// `net_shard<i>_*` counters, in shard order; empty for traces of
    /// unsharded (or non-network) runs.
    pub fn shard_balance(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for i in 0usize.. {
            let a = self.counters.get(&format!("net_shard{i}_admissions"));
            let c = self.counters.get(&format!("net_shard{i}_commits"));
            if a.is_none() && c.is_none() {
                break;
            }
            out.push((a.copied().unwrap_or(0), c.copied().unwrap_or(0)));
        }
        out
    }

    /// Renders the human-readable summary `wtpg obs summary` prints.
    pub fn render(&self) -> String {
        let mut out = format!("events: {}\n", self.events);
        if self.windows > 0 {
            out.push_str(&format!("windows: {}\n", self.windows));
        }
        let stats = self.control_stats();
        out.push_str(&format!(
            "cache: hits={} misses={} hit_ratio={:.3} (W reuse {}, E(q) {}, deadlock-pred {})\n",
            stats.cache_hits(),
            stats.cache_misses(),
            stats.cache_hit_ratio(),
            stats.w_reuses,
            stats.eq_cache_hits,
            stats.dd_cache_hits,
        ));
        if let Some(mpc) = self.net_msgs_per_commit() {
            let commits = self.counters.get("net_commits").copied().unwrap_or(0);
            let inner = self.counters.get("net_batched_inner").copied().unwrap_or(0);
            out.push_str(&format!(
                "net: {commits} commits, {mpc:.2} msgs/commit, \
                 {inner} messages coalesced into batches\n"
            ));
            let shards = self.shard_balance();
            if shards.len() > 1 {
                let adm: Vec<String> = shards.iter().map(|(a, _)| a.to_string()).collect();
                let com: Vec<String> = shards.iter().map(|(_, c)| c.to_string()).collect();
                out.push_str(&format!(
                    "net shards: {} (admissions {}, commits {})\n",
                    shards.len(),
                    adm.join("/"),
                    com.join("/")
                ));
            }
        }
        let causes = self.top_abort_causes();
        if causes.is_empty() {
            out.push_str("abort/delay causes: none\n");
        } else {
            out.push_str("abort/delay causes:\n");
            for (name, n) in &causes {
                out.push_str(&format!("  {name:<24} {n}\n"));
            }
        }
        if !self.spans.is_empty() {
            out.push_str("spans (duration in trace time units):\n");
            for (name, h) in &self.spans {
                out.push_str(&format!(
                    "  {name:<24} count={} p50~{} p95~{} max<={}\n",
                    h.count(),
                    h.percentile(0.5),
                    h.percentile(0.95),
                    h.max_bound()
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters (final values):\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<24} {v}\n"));
            }
        }
        if !self.instants.is_empty() {
            out.push_str("instants:\n");
            for (name, n) in &self.instants {
                out.push_str(&format!("  {name:<24} {n}\n"));
            }
        }
        if self.unclosed_spans > 0 {
            out.push_str(&format!("unclosed spans: {}\n", self.unclosed_spans));
        }
        out
    }

    /// Renders a textual diff of two summaries (self = baseline, `other` =
    /// candidate). Identical traces produce only the two header lines.
    pub fn diff(&self, other: &TraceSummary) -> String {
        let mut out = format!("events: {} -> {}\n", self.events, other.events);
        let mut changes = 0usize;
        let keys: std::collections::BTreeSet<&String> =
            self.counters.keys().chain(other.counters.keys()).collect();
        for k in keys {
            let a = self.counters.get(k).copied().unwrap_or(0);
            let b = other.counters.get(k).copied().unwrap_or(0);
            if a != b {
                let delta = b as i128 - a as i128;
                out.push_str(&format!("  counter {k:<24} {a} -> {b} ({delta:+})\n"));
                changes += 1;
            }
        }
        let keys: std::collections::BTreeSet<&String> =
            self.spans.keys().chain(other.spans.keys()).collect();
        for k in keys {
            let empty = Histogram::new();
            let a = self.spans.get(k).unwrap_or(&empty);
            let b = other.spans.get(k).unwrap_or(&empty);
            if a != b {
                out.push_str(&format!(
                    "  span    {k:<24} count {} -> {}, p95 {} -> {}\n",
                    a.count(),
                    b.count(),
                    a.percentile(0.95),
                    b.percentile(0.95)
                ));
                changes += 1;
            }
        }
        if changes == 0 {
            out.push_str("no counter or span differences\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Vec<ObsEvent> {
        vec![
            ObsEvent::span_begin(10, 0, "txn", 1),
            ObsEvent::counter(11, 0, "eq_cache_misses", 1),
            ObsEvent::counter(12, 0, "eq_cache_hits", 3),
            ObsEvent::instant(13, 0, "abort", 2),
            ObsEvent::counter(13, 0, "aborts_k_conflict", 1),
            ObsEvent::duration(14, 1, "lock_wait", 1, 4),
            ObsEvent::span_end(20, 0, "txn", 1),
            ObsEvent::span_begin(21, 0, "txn", 9),
        ]
    }

    #[test]
    fn summary_folds_counters_spans_and_instants() {
        let s = TraceSummary::from_events(&trace());
        assert_eq!(s.events, 8);
        assert_eq!(s.counters.get("eq_cache_hits"), Some(&3));
        assert_eq!(s.instants.get("abort"), Some(&1));
        let txn = s.span("txn").expect("txn span present");
        assert_eq!(txn.count(), 1);
        // Span lasted 10 units → bucket [8, 15], one sample → midpoint 11.
        assert_eq!(txn.percentile(1.0), 11);
        assert_eq!(s.span("lock_wait").map(Histogram::count), Some(1));
        assert_eq!(s.unclosed_spans, 1);
        assert_eq!(s.control_stats().eq_cache_hits, 3);
        assert!((s.control_stats().cache_hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(
            s.top_abort_causes(),
            vec![("aborts_k_conflict".to_string(), 1)]
        );
        let text = s.render();
        assert!(text.contains("hit_ratio=0.750"), "{text}");
        assert!(text.contains("aborts_k_conflict"), "{text}");
    }

    #[test]
    fn summary_renders_net_section_with_shard_balance() {
        let evs = vec![
            ObsEvent::counter(1, 0, "net_tx_submit", 40),
            ObsEvent::counter(1, 0, "net_tx_access", 120),
            ObsEvent::counter(1, 0, "net_tx_batch", 30),
            ObsEvent::counter(1, 0, "net_batched_inner", 150),
            ObsEvent::counter(1, 0, "net_commits", 40),
            ObsEvent::counter(1, 0, "net_shard0_admissions", 22),
            ObsEvent::counter(1, 0, "net_shard0_commits", 22),
            ObsEvent::counter(1, 0, "net_shard1_admissions", 18),
            ObsEvent::counter(1, 0, "net_shard1_commits", 18),
        ];
        let s = TraceSummary::from_events(&evs);
        let mpc = s.net_msgs_per_commit().expect("net counters present");
        assert!((mpc - 190.0 / 40.0).abs() < 1e-12, "{mpc}");
        assert_eq!(s.shard_balance(), vec![(22, 22), (18, 18)]);
        let text = s.render();
        assert!(text.contains("net: 40 commits, 4.75 msgs/commit"), "{text}");
        assert!(text.contains("net shards: 2 (admissions 22/18, commits 22/18)"), "{text}");
        // A trace without net counters renders no net section.
        let quiet = TraceSummary::from_events(&trace());
        assert!(quiet.net_msgs_per_commit().is_none());
        assert!(!quiet.render().contains("net:"), "{}", quiet.render());
    }

    #[test]
    fn window_records_fold_like_the_equivalent_whole_run() {
        use crate::window::Registry;
        // Windowed trace: three windows of activity.
        let reg = Registry::new();
        let commits = reg.counter("load/commits");
        let lat = reg.hist("lat/commit_us");
        let backlog = reg.gauge("ctrl/s0/backlog");
        let mut windowed = Vec::new();
        for w in 0..3u64 {
            commits.add(10 + w);
            lat.record(100 * (w + 1));
            backlog.set(w);
            windowed.push(ObsEvent::window(
                (w + 1) * 250,
                0,
                reg.flush_snapshot(250),
            ));
        }
        let s = TraceSummary::from_events(&windowed);
        assert_eq!(s.windows, 3);
        // Counter deltas accumulate back to the cumulative total.
        assert_eq!(s.counters.get("load/commits"), Some(&(10 + 11 + 12)));
        // The last gauge level wins.
        assert_eq!(s.counters.get("ctrl/s0/backlog"), Some(&2));
        // Per-window histograms merge to the whole-run histogram.
        let mut whole = Histogram::new();
        for w in 0..3u64 {
            whole.record(100 * (w + 1));
        }
        assert_eq!(s.span("lat/commit_us"), Some(&whole));
        let text = s.render();
        assert!(text.contains("windows: 3"), "{text}");
        // Diff of a windowed trace against itself is quiet.
        assert!(
            s.diff(&s).contains("no counter or span differences"),
            "{}",
            s.diff(&s)
        );
    }

    #[test]
    fn windowed_summary_render_is_byte_deterministic() {
        use crate::window::Registry;
        // The summary of a windowed trace must render the same bytes on
        // every fold, and survive a JSONL round trip unchanged — `wtpg obs
        // summary`/`diff` on a windowed trace regress here, not in prose.
        let build = || {
            let reg = Registry::new();
            let commits = reg.counter("load/commits");
            let lat = reg.hist("lat/commit_us");
            let mut events = Vec::new();
            for w in 0..5u64 {
                commits.add(7 + w);
                for i in 0..20u64 {
                    lat.record(w * 500 + i * 13);
                }
                reg.gauge("ctrl/s0/backlog").set(w * 2);
                events.push(ObsEvent::window((w + 1) * 250, 0, reg.flush_snapshot(250)));
            }
            events
        };
        let events = build();
        let direct = TraceSummary::from_events(&events).render();
        let refold = TraceSummary::from_events(&events).render();
        assert_eq!(direct, refold);
        let rebuilt = TraceSummary::from_events(&build()).render();
        assert_eq!(direct, rebuilt);
        let text = crate::jsonl::encode(&events);
        let decoded = crate::jsonl::decode(&text).expect("round trip");
        let via_jsonl = TraceSummary::from_events(&decoded).render();
        assert_eq!(direct, via_jsonl);
    }

    #[test]
    fn diff_of_identical_traces_is_quiet() {
        let s = TraceSummary::from_events(&trace());
        let d = s.diff(&s);
        assert!(d.contains("no counter or span differences"), "{d}");
    }

    #[test]
    fn diff_reports_counter_and_span_changes() {
        let a = TraceSummary::from_events(&trace());
        let mut more = trace();
        more.push(ObsEvent::counter(30, 0, "eq_cache_hits", 5));
        more.push(ObsEvent::duration(31, 1, "lock_wait", 2, 900));
        let b = TraceSummary::from_events(&more);
        let d = a.diff(&b);
        assert!(d.contains("eq_cache_hits"), "{d}");
        assert!(d.contains("3 -> 5"), "{d}");
        assert!(d.contains("span    lock_wait"), "{d}");
    }
}
