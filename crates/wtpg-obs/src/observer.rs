//! The [`Observer`] trait and the built-in sinks.
//!
//! An observer is a passive sink: producers call [`Observer::record`] with
//! fully-formed events and the observer never influences scheduling, so a
//! run with [`NullObserver`] (or no observer at all) takes the exact same
//! trajectory as an uninstrumented run — the zero-cost-when-off contract
//! the sim/engine tests pin byte-for-byte.

use std::sync::Mutex;

use crate::event::ObsEvent;

/// A passive sink for trace events. Implementations must be thread-safe:
/// the engine records from every worker concurrently.
pub trait Observer: Send + Sync {
    /// Accepts one event. Must not block on anything scheduling-visible.
    fn record(&self, ev: ObsEvent);
}

/// Discards every event. Recording through it is a no-op the optimizer can
/// erase, and — more importantly — it cannot perturb a run's trajectory.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn record(&self, _ev: ObsEvent) {}
}

/// Buffers events in memory for later export (JSONL, Chrome) or summary.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<ObsEvent>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Clones the buffered events.
    pub fn snapshot(&self) -> Vec<ObsEvent> {
        self.events
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Drains the buffered events, leaving the sink empty.
    pub fn take(&self) -> Vec<ObsEvent> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Observer for MemorySink {
    fn record(&self, ev: ObsEvent) {
        self.events.lock().unwrap_or_else(|p| p.into_inner()).push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_buffers_in_order() {
        let sink = MemorySink::new();
        sink.record(ObsEvent::instant(1, 0, "a", 1));
        sink.record(ObsEvent::instant(2, 0, "b", 2));
        assert_eq!(sink.len(), 2);
        let evs = sink.take();
        assert_eq!(evs[0].at, 1);
        assert_eq!(evs[1].at, 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn null_observer_accepts_everything() {
        NullObserver.record(ObsEvent::counter(0, 0, "x", 1));
    }
}
