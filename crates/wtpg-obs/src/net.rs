//! Network-plane statistics for the `wtpg-net` shared-nothing runtime.
//!
//! Like [`ControlStats`](crate::ControlStats), these are plain bundles of
//! cumulative `u64` counters — no clocks, no maps — kept per actor or per
//! transport endpoint and merged after the join. [`MsgCounts`] tallies
//! messages by protocol type (one field per `Msg` variant), [`ByteCounts`]
//! tallies wire traffic, and [`NetStats`] bundles both sides of an actor's
//! traffic with the fault-layer observations (duplicates delivered, delays
//! injected, retries, crash drops).

use crate::event::ObsEvent;
use crate::observer::Observer;

/// Cumulative message tallies, one counter per protocol message type. The
/// field order matches the wire-tag order of `wtpg-net`'s codec.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MsgCounts {
    /// `Submit` — client asks the control node for admission or a step lock.
    pub submit: u64,
    /// `Grant` — control node granted an admission or a step lock.
    pub grant: u64,
    /// `Reject` — control node rejected an admission (client backs off).
    pub reject: u64,
    /// `Delay` — control node blocked/delayed a step request.
    pub delay: u64,
    /// `Access` — control node orders a data node to run a bulk step.
    pub access: u64,
    /// `AccessDone` — data node finished a bulk step (carries the checksum).
    pub access_done: u64,
    /// `Commit` — client commit request / control-node commit ack.
    pub commit: u64,
    /// `Abort` — abort request / ack.
    pub abort: u64,
    /// `StatsDelta` — data node's per-chunk progress report.
    pub stats_delta: u64,
    /// `Shutdown` — orderly teardown.
    pub shutdown: u64,
    /// `Batch` — a vectored frame coalescing several messages for one peer.
    /// Counts as one wire message; its inner messages are tallied under
    /// their own types only by the *receiving* actor's processed counts.
    pub batch: u64,
    /// `Recover` — a restarted data node announces its replayed state.
    pub recover: u64,
    /// `RecoverAck` — control acknowledges a recovery and re-sends the
    /// node's outstanding orders.
    pub recover_ack: u64,
    /// `SnapshotRead` — control orders a lock-free snapshot scan at a data
    /// node (read-only BATs under the MVCC layer).
    pub snapshot_read: u64,
    /// `SnapshotReply` — data node answers a snapshot scan with its
    /// checksum.
    pub snapshot_reply: u64,
}

impl MsgCounts {
    /// The counters as `(name, value)` pairs, in wire-tag order.
    pub fn fields(&self) -> [(&'static str, u64); 15] {
        [
            ("submit", self.submit),
            ("grant", self.grant),
            ("reject", self.reject),
            ("delay", self.delay),
            ("access", self.access),
            ("access_done", self.access_done),
            ("commit", self.commit),
            ("abort", self.abort),
            ("stats_delta", self.stats_delta),
            ("shutdown", self.shutdown),
            ("batch", self.batch),
            ("recover", self.recover),
            ("recover_ack", self.recover_ack),
            ("snapshot_read", self.snapshot_read),
            ("snapshot_reply", self.snapshot_reply),
        ]
    }

    /// Total messages across all types.
    pub fn total(&self) -> u64 {
        self.fields().iter().map(|(_, v)| v).sum()
    }

    /// Adds every counter of `other` into `self` (merge after a join).
    pub fn merge(&mut self, other: &MsgCounts) {
        self.submit += other.submit;
        self.grant += other.grant;
        self.reject += other.reject;
        self.delay += other.delay;
        self.access += other.access;
        self.access_done += other.access_done;
        self.commit += other.commit;
        self.abort += other.abort;
        self.stats_delta += other.stats_delta;
        self.shutdown += other.shutdown;
        self.batch += other.batch;
        self.recover += other.recover;
        self.recover_ack += other.recover_ack;
        self.snapshot_read += other.snapshot_read;
        self.snapshot_reply += other.snapshot_reply;
    }
}

/// Cumulative write-ahead-log statistics for one data node (or one run,
/// after merging): append/flush/fsync activity on the hot path and replay
/// work performed by kill-restart recoveries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Chunk records appended to the log.
    pub records: u64,
    /// Userspace-buffer flushes to the log file (group commits).
    pub flushes: u64,
    /// `fdatasync` barriers issued (`Durability::Sync` only).
    pub fsyncs: u64,
    /// Log bytes written (frame headers included).
    pub bytes: u64,
    /// Chunk records re-applied by recovery replays.
    pub replayed_chunks: u64,
    /// Independent per-partition dependency chains replayed.
    pub replayed_chains: u64,
    /// Kill-and-restart recoveries performed.
    pub recoveries: u64,
    /// Recoveries that found (and healed past) a torn log tail.
    pub torn_tails: u64,
    /// Node snapshots written (replay-bounding checkpoints).
    pub checkpoints: u64,
}

impl WalStats {
    /// The counters as `(name, value)` pairs, in a fixed order.
    pub fn fields(&self) -> [(&'static str, u64); 9] {
        [
            ("records", self.records),
            ("flushes", self.flushes),
            ("fsyncs", self.fsyncs),
            ("bytes", self.bytes),
            ("replayed_chunks", self.replayed_chunks),
            ("replayed_chains", self.replayed_chains),
            ("recoveries", self.recoveries),
            ("torn_tails", self.torn_tails),
            ("checkpoints", self.checkpoints),
        ]
    }

    /// Adds every counter of `other` into `self` (merge after a join).
    pub fn merge(&mut self, other: &WalStats) {
        self.records += other.records;
        self.flushes += other.flushes;
        self.fsyncs += other.fsyncs;
        self.bytes += other.bytes;
        self.replayed_chunks += other.replayed_chunks;
        self.replayed_chains += other.replayed_chains;
        self.recoveries += other.recoveries;
        self.torn_tails += other.torn_tails;
        self.checkpoints += other.checkpoints;
    }

    /// Emits one cumulative counter event per nonzero statistic, stamped
    /// `at` on `track`, with names prefixed `net_wal_`.
    pub fn emit(&self, obs: &dyn Observer, at: u64, track: u32) {
        for (name, v) in self.fields() {
            if v != 0 {
                obs.record(ObsEvent::counter(at, track, format!("net_wal_{name}"), v));
            }
        }
    }
}

/// Cumulative wire-traffic tallies for one transport endpoint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ByteCounts {
    /// Payload + frame-header bytes written.
    pub bytes_sent: u64,
    /// Payload + frame-header bytes read.
    pub bytes_received: u64,
    /// Frames written.
    pub frames_sent: u64,
    /// Frames read.
    pub frames_received: u64,
}

impl ByteCounts {
    /// The counters as `(name, value)` pairs, in a fixed order.
    pub fn fields(&self) -> [(&'static str, u64); 4] {
        [
            ("bytes_sent", self.bytes_sent),
            ("bytes_received", self.bytes_received),
            ("frames_sent", self.frames_sent),
            ("frames_received", self.frames_received),
        ]
    }

    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &ByteCounts) {
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.frames_sent += other.frames_sent;
        self.frames_received += other.frames_received;
    }
}

/// One actor's (or one run's) network-plane statistics: messages processed
/// and sent by type, wire traffic, and fault-layer observations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages this actor dequeued and handled, by type.
    pub processed: MsgCounts,
    /// Messages this actor sent, by type.
    pub sent: MsgCounts,
    /// Wire traffic (zero for in-process transports).
    pub bytes: ByteCounts,
    /// Duplicate deliveries observed (fault layer sent a second copy).
    pub dup_deliveries: u64,
    /// Deliveries the fault layer held back before forwarding.
    pub delayed_deliveries: u64,
    /// `Access` orders re-sent by the control node's retry watchdog.
    pub access_retries: u64,
    /// Messages discarded by a crashed data node.
    pub crash_drops: u64,
    /// Messages that travelled *inside* sent `Batch` frames (each batch of
    /// n messages adds n here but only 1 to `sent.batch`).
    pub batched_inner: u64,
}

impl NetStats {
    /// Adds every counter of `other` into `self` (merge after a join).
    pub fn merge(&mut self, other: &NetStats) {
        self.processed.merge(&other.processed);
        self.sent.merge(&other.sent);
        self.bytes.merge(&other.bytes);
        self.dup_deliveries += other.dup_deliveries;
        self.delayed_deliveries += other.delayed_deliveries;
        self.access_retries += other.access_retries;
        self.crash_drops += other.crash_drops;
        self.batched_inner += other.batched_inner;
    }

    /// Emits one cumulative counter event per nonzero statistic, stamped
    /// `at` on `track`, with names prefixed `net_` (message types become
    /// `net_rx_<type>` / `net_tx_<type>`).
    pub fn emit(&self, obs: &dyn Observer, at: u64, track: u32) {
        for (name, v) in self.processed.fields() {
            if v != 0 {
                obs.record(ObsEvent::counter(at, track, format!("net_rx_{name}"), v));
            }
        }
        for (name, v) in self.sent.fields() {
            if v != 0 {
                obs.record(ObsEvent::counter(at, track, format!("net_tx_{name}"), v));
            }
        }
        for (name, v) in self.bytes.fields() {
            if v != 0 {
                obs.record(ObsEvent::counter(at, track, format!("net_{name}"), v));
            }
        }
        for (name, v) in [
            ("net_dup_deliveries", self.dup_deliveries),
            ("net_delayed_deliveries", self.delayed_deliveries),
            ("net_access_retries", self.access_retries),
            ("net_crash_drops", self.crash_drops),
            ("net_batched_inner", self.batched_inner),
        ] {
            if v != 0 {
                obs.record(ObsEvent::counter(at, track, name, v));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::MemorySink;

    #[test]
    fn totals_and_merge() {
        let mut a = MsgCounts {
            submit: 2,
            grant: 3,
            ..MsgCounts::default()
        };
        let b = MsgCounts {
            grant: 1,
            shutdown: 4,
            ..MsgCounts::default()
        };
        a.merge(&b);
        assert_eq!(a.submit, 2);
        assert_eq!(a.grant, 4);
        assert_eq!(a.shutdown, 4);
        assert_eq!(a.total(), 10);
        assert_eq!(MsgCounts::default().total(), 0);
    }

    #[test]
    fn byte_counts_merge() {
        let mut a = ByteCounts {
            bytes_sent: 100,
            frames_sent: 2,
            ..ByteCounts::default()
        };
        a.merge(&ByteCounts {
            bytes_sent: 50,
            bytes_received: 7,
            frames_received: 1,
            ..ByteCounts::default()
        });
        assert_eq!(a.bytes_sent, 150);
        assert_eq!(a.bytes_received, 7);
        assert_eq!(a.frames_sent, 2);
        assert_eq!(a.frames_received, 1);
    }

    #[test]
    fn net_stats_emit_skips_zeros() {
        let sink = MemorySink::new();
        let stats = NetStats {
            processed: MsgCounts {
                submit: 5,
                ..MsgCounts::default()
            },
            sent: MsgCounts {
                grant: 5,
                ..MsgCounts::default()
            },
            bytes: ByteCounts {
                bytes_sent: 80,
                ..ByteCounts::default()
            },
            dup_deliveries: 1,
            ..NetStats::default()
        };
        stats.emit(&sink, 7, 3);
        let evs = sink.take();
        assert_eq!(evs.len(), 4, "only nonzero counters are emitted: {evs:?}");
        assert!(evs.contains(&ObsEvent::counter(7, 3, "net_rx_submit", 5)));
        assert!(evs.contains(&ObsEvent::counter(7, 3, "net_tx_grant", 5)));
        assert!(evs.contains(&ObsEvent::counter(7, 3, "net_bytes_sent", 80)));
        assert!(evs.contains(&ObsEvent::counter(7, 3, "net_dup_deliveries", 1)));
    }

    #[test]
    fn net_stats_merge_covers_every_field() {
        let mut a = NetStats {
            dup_deliveries: 1,
            delayed_deliveries: 2,
            access_retries: 3,
            crash_drops: 4,
            batched_inner: 5,
            ..NetStats::default()
        };
        a.merge(&a.clone());
        assert_eq!(a.dup_deliveries, 2);
        assert_eq!(a.delayed_deliveries, 4);
        assert_eq!(a.access_retries, 6);
        assert_eq!(a.crash_drops, 8);
        assert_eq!(a.batched_inner, 10);
    }

    #[test]
    fn wal_stats_merge_and_emit_skip_zeros() {
        let mut a = WalStats {
            records: 10,
            flushes: 2,
            bytes: 750,
            recoveries: 1,
            ..WalStats::default()
        };
        a.merge(&WalStats {
            records: 5,
            fsyncs: 3,
            replayed_chunks: 7,
            replayed_chains: 2,
            torn_tails: 1,
            checkpoints: 4,
            ..WalStats::default()
        });
        assert_eq!(a.records, 15);
        assert_eq!(a.fsyncs, 3);
        assert_eq!(a.checkpoints, 4);
        let sink = MemorySink::new();
        a.emit(&sink, 2, 0);
        let evs = sink.take();
        assert_eq!(evs.len(), 9, "one event per nonzero counter: {evs:?}");
        assert!(evs.contains(&ObsEvent::counter(2, 0, "net_wal_records", 15)));
        assert!(evs.contains(&ObsEvent::counter(2, 0, "net_wal_replayed_chains", 2)));
        assert!(evs.contains(&ObsEvent::counter(2, 0, "net_wal_torn_tails", 1)));
    }

    #[test]
    fn recover_counts_merge_into_totals() {
        let mut a = MsgCounts {
            recover: 1,
            ..MsgCounts::default()
        };
        a.merge(&MsgCounts {
            recover: 2,
            recover_ack: 3,
            ..MsgCounts::default()
        });
        assert_eq!(a.recover, 3);
        assert_eq!(a.recover_ack, 3);
        assert_eq!(a.total(), 6);
    }

    #[test]
    fn batch_counts_merge_and_emit() {
        let mut a = MsgCounts {
            batch: 2,
            ..MsgCounts::default()
        };
        a.merge(&MsgCounts {
            batch: 3,
            ..MsgCounts::default()
        });
        assert_eq!(a.batch, 5);
        assert_eq!(a.total(), 5);
        let sink = MemorySink::new();
        let stats = NetStats {
            sent: a,
            batched_inner: 9,
            ..NetStats::default()
        };
        stats.emit(&sink, 1, 0);
        let evs = sink.take();
        assert!(evs.contains(&ObsEvent::counter(1, 0, "net_tx_batch", 5)));
        assert!(evs.contains(&ObsEvent::counter(1, 0, "net_batched_inner", 9)));
    }
}
