//! Captures build-time run metadata (git describe / sha) into rustc env
//! vars so benchmark emitters can stamp their JSON output without any
//! runtime git dependency. Falls back to "unknown" outside a git checkout.

use std::process::Command;

fn git(args: &[&str]) -> Option<String> {
    let out = Command::new("git").args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let s = String::from_utf8(out.stdout).ok()?;
    let s = s.trim().to_string();
    if s.is_empty() {
        None
    } else {
        Some(s)
    }
}

fn main() {
    let describe = git(&["describe", "--always", "--dirty", "--tags"])
        .unwrap_or_else(|| "unknown".to_string());
    let sha = git(&["rev-parse", "HEAD"]).unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=WTPG_GIT_DESCRIBE={describe}");
    println!("cargo:rustc-env=WTPG_GIT_SHA={sha}");
    // Re-stamp when HEAD moves. HEAD itself only changes on checkout; a
    // commit moves the branch ref it points at, so track that file too.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
    if let Ok(head) = std::fs::read_to_string("../../.git/HEAD") {
        if let Some(r) = head.trim().strip_prefix("ref: ") {
            println!("cargo:rerun-if-changed=../../.git/{r}");
        }
    }
}
