//! Parser for the paper's transaction notation.
//!
//! The paper writes transactions as `r1(A:1) -> r1(B:3) -> w1(A:1)`
//! (Figure 1) and patterns as `r(F1:1) -> r(F2:5) -> w(F1:0.2) -> w(F2:1)`.
//! This module parses that notation into [`StepSpec`] lists so workloads,
//! tests and the CLI can be written in the paper's own language:
//!
//! * each step is `r(<part>:<cost>)` or `w(<part>:<cost>)`;
//! * `<part>` is `P<n>`, `F<n>`, a bare number, or a single letter
//!   (`A` = partition 0, `B` = 1, …);
//! * `<cost>` is a decimal object count;
//! * steps are joined by `->` (spaces optional; `→` also accepted);
//! * an optional leading `T<n>:` names the transaction.
//!
//! ```
//! use wtpg_workload::notation::parse_txn;
//! let (id, steps) = parse_txn("T1: r(A:1) -> r(B:3) -> w(A:1)").unwrap();
//! assert_eq!(id, Some(1));
//! assert_eq!(steps.len(), 3);
//! ```

use wtpg_core::partition::PartitionId;
use wtpg_core::txn::{AccessMode, StepSpec, TxnId, TxnSpec};
use wtpg_core::work::Work;

/// A parse failure, with the offending fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// The fragment that failed to parse.
    pub fragment: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} in {:?}", self.message, self.fragment)
    }
}

impl std::error::Error for ParseError {}

fn err(message: &str, fragment: &str) -> ParseError {
    ParseError {
        message: message.to_string(),
        fragment: fragment.to_string(),
    }
}

/// Parses a partition name: `P3`, `F2`, `7`, or a letter `A`–`Z`.
fn parse_partition(s: &str) -> Result<PartitionId, ParseError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(err("empty partition name", s));
    }
    if let Ok(n) = s.parse::<u32>() {
        return Ok(PartitionId(n));
    }
    let (head, tail) = s.split_at(1);
    if tail.is_empty() {
        // Single letter: A = 0, B = 1, …
        let c = head.chars().next().expect("one char");
        if c.is_ascii_uppercase() {
            return Ok(PartitionId(c as u32 - 'A' as u32));
        }
        return Err(err("unrecognised partition name", s));
    }
    if matches!(head, "P" | "F" | "p" | "f") {
        if let Ok(n) = tail.parse::<u32>() {
            return Ok(PartitionId(n));
        }
    }
    Err(err("unrecognised partition name", s))
}

/// Parses one step: `r(A:1)`, `w(F2:0.2)`, `r1(B:3)` (subscripts after the
/// mode letter, as the paper writes for named transactions, are ignored).
pub fn parse_step(s: &str) -> Result<StepSpec, ParseError> {
    let s = s.trim();
    let open = s.find('(').ok_or_else(|| err("expected '('", s))?;
    if !s.ends_with(')') {
        return Err(err("expected trailing ')'", s));
    }
    let head = &s[..open];
    let body = &s[open + 1..s.len() - 1];
    let mode = match head.chars().next() {
        Some('r') | Some('R') => AccessMode::Read,
        Some('w') | Some('W') => AccessMode::Write,
        _ => return Err(err("step must start with r or w", s)),
    };
    // Anything after the mode letter (a transaction subscript) must be digits.
    if !head[1..].chars().all(|c| c.is_ascii_digit()) {
        return Err(err("unexpected characters before '('", s));
    }
    let colon = body
        .find(':')
        .ok_or_else(|| err("expected ':' inside step", s))?;
    let partition = parse_partition(&body[..colon])?;
    let cost_str = body[colon + 1..].trim();
    let cost: f64 = cost_str
        .parse()
        .map_err(|_| err("cost must be a number", cost_str))?;
    if !cost.is_finite() || cost < 0.0 {
        return Err(err("cost must be non-negative and finite", cost_str));
    }
    Ok(StepSpec::new(partition, mode, Work::from_objects_f64(cost)))
}

/// Parses a full transaction line: optional `T<n>:` prefix, then steps
/// joined by `->` or `→`. Returns the declared id (if any) and the steps.
pub fn parse_txn(s: &str) -> Result<(Option<u64>, Vec<StepSpec>), ParseError> {
    let s = s.trim();
    let (id, rest) = match s.split_once(':') {
        Some((head, rest)) if head.trim_start().starts_with(['T', 't']) && !head.contains('(') => {
            let digits = head.trim().trim_start_matches(['T', 't']);
            let id = digits
                .parse::<u64>()
                .map_err(|_| err("transaction name must be T<number>", head))?;
            (Some(id), rest)
        }
        _ => (None, s),
    };
    let normalized = rest.replace('→', "->");
    let mut steps = Vec::new();
    for frag in normalized.split("->") {
        let frag = frag.trim().trim_end_matches([',', '.', ';']);
        if frag.is_empty() {
            continue;
        }
        steps.push(parse_step(frag)?);
    }
    if steps.is_empty() {
        return Err(err("transaction has no steps", s));
    }
    Ok((id, steps))
}

/// Parses a whole workload: one transaction per non-empty, non-`#` line.
/// Ids default to the 1-based line position when not declared.
pub fn parse_workload(text: &str) -> Result<Vec<TxnSpec>, ParseError> {
    let mut out = Vec::new();
    let mut next_id = 1u64;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (id, steps) = parse_txn(line)?;
        let id = id.unwrap_or(next_id);
        next_id = next_id.max(id) + 1;
        out.push(TxnSpec::new(TxnId(id), steps));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure1_exactly() {
        let text = "
            T1: r1(A:1) -> r1(B:3) -> w1(A:1).
            T2: r2(C:1) -> w2(A:1).
            T3: w3(C:1) -> r3(D:3).
        ";
        let txns = parse_workload(text).unwrap();
        assert_eq!(txns.len(), 3);
        assert_eq!(txns[0].id, TxnId(1));
        assert_eq!(txns[0].len(), 3);
        assert_eq!(txns[0].steps()[0].partition, PartitionId(0)); // A
        assert_eq!(txns[0].steps()[1].partition, PartitionId(1)); // B
        assert_eq!(txns[0].steps()[1].cost, Work::from_objects(3));
        assert_eq!(txns[2].steps()[1].partition, PartitionId(3)); // D
        assert_eq!(txns[0].total_declared(), Work::from_objects(5));
    }

    #[test]
    fn parses_pattern1() {
        let (_, steps) = parse_txn("r(F1:1) -> r(F2:5) -> w(F1:0.2) -> w(F2:1)").unwrap();
        assert_eq!(steps.len(), 4);
        assert_eq!(steps[0].partition, PartitionId(1));
        assert_eq!(steps[2].cost, Work::from_objects_f64(0.2));
        assert_eq!(steps[2].mode, AccessMode::Write);
    }

    #[test]
    fn accepts_unicode_arrow_and_bare_numbers() {
        let (_, steps) = parse_txn("r(0:1) → w(15:2.5)").unwrap();
        assert_eq!(steps[1].partition, PartitionId(15));
        assert_eq!(steps[1].cost, Work::from_objects_f64(2.5));
    }

    #[test]
    fn round_trips_display() {
        // TxnSpec's Display emits P<n> names; the parser reads them back.
        let spec = TxnSpec::new(
            TxnId(7),
            vec![StepSpec::read(4, 1.5), StepSpec::write(9, 0.2)],
        );
        let text = spec.to_string();
        let (id, steps) = parse_txn(&text).unwrap();
        assert_eq!(id, Some(7));
        assert_eq!(steps, spec.steps().to_vec());
    }

    #[test]
    fn default_ids_are_sequential() {
        let txns = parse_workload("r(A:1)\nw(B:2)\n# comment\n\nr(C:3)").unwrap();
        let ids: Vec<u64> = txns.iter().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn declared_and_default_ids_mix() {
        let txns = parse_workload("T5: r(A:1)\nw(B:2)").unwrap();
        assert_eq!(txns[0].id, TxnId(5));
        assert_eq!(txns[1].id, TxnId(6));
    }

    #[test]
    fn error_cases() {
        assert!(parse_step("x(A:1)").is_err());
        assert!(parse_step("r A:1").is_err());
        assert!(parse_step("r(A)").is_err());
        assert!(parse_step("r(A:abc)").is_err());
        assert!(parse_step("r(A:-1)").is_err());
        assert!(parse_step("rx(A:1)").is_err());
        assert!(parse_txn("T1:").is_err());
        assert!(parse_txn("Tx: r(A:1)").is_err());
        let e = parse_step("q(A:1)").unwrap_err();
        assert!(e.to_string().contains("r or w"));
    }

    #[test]
    fn partition_name_forms() {
        assert_eq!(parse_partition("A").unwrap(), PartitionId(0));
        assert_eq!(parse_partition("Z").unwrap(), PartitionId(25));
        assert_eq!(parse_partition("P12").unwrap(), PartitionId(12));
        assert_eq!(parse_partition("F3").unwrap(), PartitionId(3));
        assert_eq!(parse_partition("42").unwrap(), PartitionId(42));
        assert!(parse_partition("").is_err());
        assert!(parse_partition("QQ").is_err());
        assert!(parse_partition("a").is_err());
    }
}
