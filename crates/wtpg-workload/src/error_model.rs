//! Experiment 4's erroneous I/O demand model (§4.4).
//!
//! Each step's *declared* cost is `C = C0 · (1 + x)` where `C0` is the exact
//! demand and `x ~ N(0, σ)`; `C = 0` when `x ≤ −1`. The *actual* work done at
//! the data nodes is always `C0` — only the scheduler's knowledge degrades.

use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};
use wtpg_core::txn::StepSpec;

/// Declared-cost perturbation with configurable standard deviation.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct ErrorModel {
    /// Standard deviation σ of the relative error. 0 = exact declarations.
    pub sigma: f64,
}

impl ErrorModel {
    /// Exact declarations (σ = 0).
    pub const EXACT: ErrorModel = ErrorModel { sigma: 0.0 };

    /// A model with the given σ.
    ///
    /// # Panics
    /// Panics on negative or non-finite σ.
    pub fn new(sigma: f64) -> ErrorModel {
        assert!(sigma.is_finite() && sigma >= 0.0, "σ must be ≥ 0");
        ErrorModel { sigma }
    }

    /// Perturbs the declared costs of `steps` in place, leaving actual costs
    /// untouched.
    pub fn apply<R: Rng>(&self, steps: &mut [StepSpec], rng: &mut R) {
        if self.sigma == 0.0 {
            return;
        }
        let normal = Normal::new(0.0, self.sigma).expect("σ validated in new()");
        for s in steps.iter_mut() {
            let x: f64 = normal.sample(rng);
            // C = C0·(1+x), clamped at zero when x ≤ −1.
            s.cost = s.actual_cost.scale(1.0 + x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wtpg_core::work::Work;

    #[test]
    fn sigma_zero_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut steps = vec![StepSpec::read(0, 5.0)];
        ErrorModel::EXACT.apply(&mut steps, &mut rng);
        assert_eq!(steps[0].cost, Work::from_objects(5));
        assert_eq!(steps[0].actual_cost, Work::from_objects(5));
    }

    #[test]
    fn actual_cost_is_never_touched() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut steps = vec![StepSpec::read(0, 5.0), StepSpec::write(1, 2.0)];
        ErrorModel::new(1.0).apply(&mut steps, &mut rng);
        assert_eq!(steps[0].actual_cost, Work::from_objects(5));
        assert_eq!(steps[1].actual_cost, Work::from_objects(2));
    }

    #[test]
    fn declared_costs_scatter_and_clamp() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = ErrorModel::new(1.0);
        let mut zeros = 0;
        let mut sum = 0.0;
        let n = 2000;
        for _ in 0..n {
            let mut steps = vec![StepSpec::read(0, 5.0)];
            model.apply(&mut steps, &mut rng);
            if steps[0].cost.is_zero() {
                zeros += 1;
            }
            sum += steps[0].cost.objects();
        }
        // x ≤ −1 has probability ≈ 15.9% at σ = 1: the clamp must fire often.
        assert!(zeros > n / 10, "clamp fired only {zeros} times");
        // The mean declared cost stays near C0·E[max(0, 1+x)] ≈ 5·1.08.
        let mean = sum / n as f64;
        assert!((4.5..6.5).contains(&mean), "mean declared {mean}");
    }

    #[test]
    fn small_sigma_stays_close() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = ErrorModel::new(0.05);
        for _ in 0..100 {
            let mut steps = vec![StepSpec::read(0, 5.0)];
            model.apply(&mut steps, &mut rng);
            let c = steps[0].cost.objects();
            assert!((4.0..6.0).contains(&c), "declared {c}");
        }
    }

    #[test]
    #[should_panic(expected = "σ must be ≥ 0")]
    fn negative_sigma_rejected() {
        let _ = ErrorModel::new(-0.1);
    }
}
