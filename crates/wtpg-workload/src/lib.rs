//! # wtpg-workload
//!
//! Workload generators for the reproduction's evaluation (paper §4):
//!
//! * [`pattern::Pattern`] — the three transaction patterns of
//!   Experiments 1–4, with the paper's partition-choice rules (random
//!   partitions for Pattern 1; a read-only partition plus hot-set targets
//!   for Patterns 2–3);
//! * [`error_model::ErrorModel`] — Experiment 4's erroneous I/O demands:
//!   declared cost `C = C0·(1+x)`, `x ~ N(0, σ)`, clamped at zero;
//! * [`generator::PatternWorkload`] — a seeded [`wtpg_sim::Workload`]
//!   producing an endless stream of pattern transactions;
//! * [`experiments`] — the canonical configuration of every experiment
//!   (catalog, pattern, λ grid), used by the `repro` harness and the
//!   integration tests;
//! * [`arrivals`] — seeded Poisson arrival schedules for the open-loop
//!   sustained-load harness (`wtpg load`), where offered load is fixed
//!   and overload surfaces as shed arrivals instead of hidden latency.
//!
//! ## Lock-mode promotion
//!
//! The paper notes that Pattern 1's first two *read* steps "require X-locks":
//! a transaction that will later bulk-update a partition takes the exclusive
//! lock at its first access rather than upgrading. Pattern generation
//! therefore promotes each step's access mode to the strongest mode the
//! transaction declares anywhere on that partition
//! ([`pattern::promote_lock_modes`]). Step *costs* are unaffected.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod error_model;
pub mod experiments;
pub mod generator;
pub mod mixed;
pub mod notation;
pub mod pattern;
pub mod read_mix;

pub use arrivals::poisson_arrivals_us;
pub use error_model::ErrorModel;
pub use experiments::{Experiment, ExperimentId};
pub use generator::PatternWorkload;
pub use mixed::MixedWorkload;
pub use pattern::Pattern;
pub use read_mix::ReadMix;
