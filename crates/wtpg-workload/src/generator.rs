//! A seeded, endless stream of pattern transactions for the simulator.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wtpg_core::partition::Catalog;
use wtpg_core::txn::{TxnId, TxnSpec};
use wtpg_sim::workload::Workload;

use crate::error_model::ErrorModel;
use crate::pattern::Pattern;

/// Generates transactions of one [`Pattern`], optionally perturbing declared
/// costs with an [`ErrorModel`] (Experiment 4).
#[derive(Clone, Debug)]
pub struct PatternWorkload {
    pattern: Pattern,
    catalog: Catalog,
    error: ErrorModel,
    rng: StdRng,
}

impl PatternWorkload {
    /// A workload with exact declarations.
    pub fn new(pattern: Pattern, seed: u64) -> PatternWorkload {
        PatternWorkload::with_error(pattern, seed, ErrorModel::EXACT)
    }

    /// A workload whose declared costs follow the error model.
    pub fn with_error(pattern: Pattern, seed: u64, error: ErrorModel) -> PatternWorkload {
        PatternWorkload {
            pattern,
            catalog: pattern.catalog(),
            error,
            rng: StdRng::seed_from_u64(seed ^ 0x51ed_2700_5ca1_ab1e),
        }
    }

    /// The generating pattern.
    pub fn pattern(&self) -> Pattern {
        self.pattern
    }

    /// Overrides the catalog's placement policy (the §4.3 intra-transaction-
    /// parallelism extension; see `wtpg_core::partition::Placement`).
    pub fn with_placement(mut self, placement: wtpg_core::partition::Placement) -> PatternWorkload {
        self.catalog = self.catalog.with_placement(placement);
        self
    }
}

impl Workload for PatternWorkload {
    fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    fn next_txn(&mut self, id: TxnId) -> TxnSpec {
        let mut steps = self.pattern.draw(&mut self.rng);
        self.error.apply(&mut steps, &mut self.rng);
        TxnSpec::new(id, steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtpg_core::work::Work;

    #[test]
    fn same_seed_same_stream() {
        let mut a = PatternWorkload::new(Pattern::One, 9);
        let mut b = PatternWorkload::new(Pattern::One, 9);
        for id in 1..=20u64 {
            assert_eq!(a.next_txn(TxnId(id)), b.next_txn(TxnId(id)));
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = PatternWorkload::new(Pattern::One, 1);
        let mut b = PatternWorkload::new(Pattern::One, 2);
        let differs = (1..=20u64).any(|id| a.next_txn(TxnId(id)) != b.next_txn(TxnId(id)));
        assert!(differs);
    }

    #[test]
    fn error_model_changes_declared_total_only() {
        let mut exact = PatternWorkload::new(Pattern::One, 5);
        let mut noisy = PatternWorkload::with_error(Pattern::One, 5, ErrorModel::new(1.0));
        let mut declared_diff = false;
        for id in 1..=50u64 {
            let e = exact.next_txn(TxnId(id));
            let n = noisy.next_txn(TxnId(id));
            assert_eq!(n.total_actual(), Work::from_objects_f64(7.2));
            assert_eq!(e.total_actual(), n.total_actual());
            if e.total_declared() != n.total_declared() {
                declared_diff = true;
            }
        }
        assert!(declared_diff, "σ = 1 must perturb at least one declaration");
    }

    #[test]
    fn catalog_matches_pattern() {
        let w = PatternWorkload::new(Pattern::Two { num_hots: 16 }, 0);
        assert_eq!(w.catalog().num_parts(), 24);
    }
}
