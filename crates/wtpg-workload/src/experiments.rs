//! Canonical definitions of the paper's four experiments — the single source
//! of truth shared by the `repro` harness, the integration tests, and
//! EXPERIMENTS.md.

use serde::{Deserialize, Serialize};
use wtpg_sim::config::SimParams;
use wtpg_sim::sched_kind::SchedKind;

use crate::error_model::ErrorModel;
use crate::generator::PatternWorkload;
use crate::pattern::Pattern;

/// Which experiment (table/figure) a configuration reproduces.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ExperimentId {
    /// Experiment 1 — Figures 6 (RT vs λ) and 7 (TPS vs λ).
    Exp1,
    /// Experiment 2 — Figure 8 (NumHots vs TPS @ RT = 70 s).
    Exp2,
    /// Experiment 3 — Figure 9 (RT vs λ on the longer-blocking pattern).
    Exp3,
    /// Experiment 4 — Figure 10 (error ratio σ vs TPS @ RT = 70 s).
    Exp4,
}

/// A fully specified experiment: pattern, σ, λ grid, schedulers.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Which figure this regenerates.
    pub id: ExperimentId,
    /// Human-readable name.
    pub name: &'static str,
    /// The transaction pattern.
    pub pattern: Pattern,
    /// Declared-cost error (Experiment 4; σ = 0 elsewhere).
    pub error: ErrorModel,
    /// Arrival rates to sweep, transactions per second.
    pub lambdas: Vec<f64>,
    /// Schedulers compared in the figure.
    pub schedulers: Vec<SchedKind>,
    /// The response-time target of the summary metric, ms.
    pub rt_target_ms: f64,
}

impl Experiment {
    /// Experiment 1: Pattern 1, NumParts = 16. The paper's anchors: resource
    /// saturation (NODC at RT = 70 s) near λ_S ≈ 1.08 TPS; ASL/CHAIN/K2
    /// roughly 1.9–2.0× the throughput of C2PL.
    pub fn exp1() -> Experiment {
        Experiment {
            id: ExperimentId::Exp1,
            name: "Experiment 1 (Figures 6-7): blocking on Pattern 1",
            pattern: Pattern::One,
            error: ErrorModel::EXACT,
            lambdas: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2],
            schedulers: SchedKind::MAIN_FIVE.to_vec(),
            rt_target_ms: 70_000.0,
        }
    }

    /// Experiment 2 at one hot-set size. The figure plots TPS @ RT = 70 s
    /// against NumHots ∈ {4, 8, 16, 32}.
    pub fn exp2(num_hots: u32) -> Experiment {
        Experiment {
            id: ExperimentId::Exp2,
            name: "Experiment 2 (Figure 8): hot set on Pattern 2",
            pattern: Pattern::Two { num_hots },
            error: ErrorModel::EXACT,
            lambdas: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2],
            schedulers: SchedKind::CONTENDERS.to_vec(),
            rt_target_ms: 70_000.0,
        }
    }

    /// The hot-set sizes of Figure 8.
    pub const EXP2_NUM_HOTS: [u32; 4] = [4, 8, 16, 32];

    /// Experiment 3: Pattern 3 with NumHots = 8 — longer blocking than
    /// Experiment 2; C2PL drops ~30 % vs its Exp 2 value, CHAIN/K2 hold
    /// 1.2–1.8× over ASL and C2PL.
    pub fn exp3() -> Experiment {
        Experiment {
            id: ExperimentId::Exp3,
            name: "Experiment 3 (Figure 9): longer blocking on Pattern 3",
            pattern: Pattern::Three { num_hots: 8 },
            error: ErrorModel::EXACT,
            lambdas: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
            schedulers: SchedKind::CONTENDERS.to_vec(),
            rt_target_ms: 70_000.0,
        }
    }

    /// Experiment 4 at one error ratio σ: Pattern 1 with erroneous declared
    /// demands; CHAIN and K2 plus their weight-free hybrid lower bounds.
    pub fn exp4(sigma: f64) -> Experiment {
        Experiment {
            id: ExperimentId::Exp4,
            name: "Experiment 4 (Figure 10): erroneous I/O demands",
            pattern: Pattern::One,
            error: ErrorModel::new(sigma),
            lambdas: vec![0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
            schedulers: vec![
                SchedKind::Chain,
                SchedKind::KWtpg,
                SchedKind::ChainC2pl,
                SchedKind::KC2pl,
                SchedKind::C2pl,
            ],
            rt_target_ms: 70_000.0,
        }
    }

    /// The error ratios of Figure 10.
    pub const EXP4_SIGMAS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

    /// A workload factory for this experiment: fresh generator per run.
    pub fn workload(&self, seed: u64) -> PatternWorkload {
        PatternWorkload::with_error(self.pattern, seed, self.error)
    }

    /// Simulation parameters (paper defaults; callers may shorten for quick
    /// runs).
    pub fn params(&self) -> SimParams {
        SimParams::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_definitions_are_consistent() {
        let e1 = Experiment::exp1();
        assert_eq!(e1.pattern, Pattern::One);
        assert_eq!(e1.schedulers.len(), 5);
        let e2 = Experiment::exp2(4);
        assert_eq!(e2.pattern, Pattern::Two { num_hots: 4 });
        let e3 = Experiment::exp3();
        assert_eq!(e3.pattern, Pattern::Three { num_hots: 8 });
        let e4 = Experiment::exp4(1.0);
        assert_eq!(e4.error, ErrorModel::new(1.0));
        assert!(e4.schedulers.contains(&SchedKind::ChainC2pl));
    }

    #[test]
    fn workload_factory_uses_pattern_catalog() {
        let e = Experiment::exp2(32);
        let w = e.workload(1);
        use wtpg_sim::workload::Workload as _;
        assert_eq!(w.catalog().num_parts(), 40);
    }

    #[test]
    fn lambda_grids_are_ascending() {
        for e in [
            Experiment::exp1(),
            Experiment::exp2(8),
            Experiment::exp3(),
            Experiment::exp4(0.5),
        ] {
            assert!(e.lambdas.windows(2).all(|w| w[0] < w[1]), "{}", e.name);
        }
    }
}
