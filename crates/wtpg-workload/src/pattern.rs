//! The paper's transaction patterns (§4.2–§4.4).

use rand::Rng;
use serde::{Deserialize, Serialize};
use wtpg_core::partition::{Catalog, PartitionId};
use wtpg_core::txn::{AccessMode, StepSpec};
use wtpg_core::work::Work;

/// One of the paper's transaction patterns.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum Pattern {
    /// Experiment 1/4 —
    /// `r(F1:1) → r(F2:5) → w(F1:0.2) → w(F2:1)` over `NumParts = 16`
    /// partitions of 5 objects each; F1 ≠ F2 chosen uniformly. Models
    /// "join the selected result of F1 with F2, then update both depending
    /// on the joined result"; the read steps take X-locks (lock-mode
    /// promotion) because the partitions are updated later.
    One,
    /// Experiment 2 — `r(B:5) → w(F1:1) → w(F2:1)`. `B` is one of 8
    /// read-only partitions (size 5, one per node); `F1 ≠ F2` come from the
    /// `num_hots` hot partitions (size 1).
    Two {
        /// Number of hot partitions (4, 8, 16 or 32 in the paper).
        num_hots: u32,
    },
    /// Experiment 3 — `r(B:4) → w(F1:1) → w(F2:2)` with `num_hots = 8`:
    /// same structure as Pattern 2 but with longer blocking times.
    Three {
        /// Number of hot partitions (8 in the paper).
        num_hots: u32,
    },
    /// Sharding ablation — Pattern 2's step shape (`r(B:5) → w(F1:1) →
    /// w(F2:1)`) confined to one of `groups` disjoint partition clusters:
    /// each group owns a private read partition and a private hot set, and
    /// a transaction draws its group first, then both hots from *that
    /// group*. The paper's patterns route everything through one shared
    /// partition pool, so their conflict graphs collapse to a single
    /// component; clustered groups are independent components by
    /// construction, which is what a sharded control plane can exploit.
    Clustered {
        /// Number of independent groups (conflict components).
        groups: u32,
        /// Hot partitions per group (≥ 2, a pair is drawn within-group).
        hots_per_group: u32,
    },
}

impl Pattern {
    /// The partition catalog this pattern runs against (`NumNodes = 8`).
    pub fn catalog(self) -> Catalog {
        match self {
            Pattern::One => Catalog::uniform(16, 5, 8),
            Pattern::Two { num_hots } | Pattern::Three { num_hots } => {
                // Partitions 0..8 are the read-only ones (size 5, one per
                // node); 8..8+num_hots are the hot set (size 1).
                let mut sizes = vec![Work::from_objects(5); 8];
                sizes.extend(vec![Work::from_objects(1); num_hots as usize]);
                Catalog::new(sizes, 8)
            }
            Pattern::Clustered {
                groups,
                hots_per_group,
            } => {
                // Group g owns partition g*(1+hots) (its read partition,
                // size 5) followed by its `hots_per_group` size-1 hots.
                let mut sizes = Vec::new();
                for _ in 0..groups {
                    sizes.push(Work::from_objects(5));
                    sizes.extend(vec![Work::from_objects(1); hots_per_group as usize]);
                }
                Catalog::new(sizes, 8)
            }
        }
    }

    /// Label used in reports.
    pub fn label(self) -> String {
        match self {
            Pattern::One => "Pattern1".into(),
            Pattern::Two { num_hots } => format!("Pattern2(hots={num_hots})"),
            Pattern::Three { num_hots } => format!("Pattern3(hots={num_hots})"),
            Pattern::Clustered {
                groups,
                hots_per_group,
            } => format!("Clustered(g={groups},hots={hots_per_group})"),
        }
    }

    /// Draws one transaction's step list (lock modes already promoted).
    pub fn draw<R: Rng>(self, rng: &mut R) -> Vec<StepSpec> {
        let steps = match self {
            Pattern::One => {
                let (f1, f2) = distinct_pair(rng, 0, 16);
                vec![
                    StepSpec::read(f1, 1.0),
                    StepSpec::read(f2, 5.0),
                    StepSpec::write(f1, 0.2),
                    StepSpec::write(f2, 1.0),
                ]
            }
            Pattern::Two { num_hots } => {
                let b = rng.gen_range(0..8u32);
                let (f1, f2) = distinct_pair(rng, 8, num_hots);
                vec![
                    StepSpec::read(b, 5.0),
                    StepSpec::write(f1, 1.0),
                    StepSpec::write(f2, 1.0),
                ]
            }
            Pattern::Three { num_hots } => {
                let b = rng.gen_range(0..8u32);
                let (f1, f2) = distinct_pair(rng, 8, num_hots);
                vec![
                    StepSpec::read(b, 4.0),
                    StepSpec::write(f1, 1.0),
                    StepSpec::write(f2, 2.0),
                ]
            }
            Pattern::Clustered {
                groups,
                hots_per_group,
            } => {
                assert!(groups >= 1, "need at least one group");
                let g = rng.gen_range(0..groups);
                let base = g * (1 + hots_per_group);
                let (f1, f2) = distinct_pair(rng, base + 1, hots_per_group);
                vec![
                    StepSpec::read(base, 5.0),
                    StepSpec::write(f1, 1.0),
                    StepSpec::write(f2, 1.0),
                ]
            }
        };
        promote_lock_modes(steps)
    }
}

/// Two distinct partitions drawn uniformly from `[base, base + count)`.
fn distinct_pair<R: Rng>(rng: &mut R, base: u32, count: u32) -> (u32, u32) {
    assert!(count >= 2, "need at least two partitions to pick a pair");
    let f1 = rng.gen_range(0..count);
    let mut f2 = rng.gen_range(0..count - 1);
    if f2 >= f1 {
        f2 += 1;
    }
    (base + f1, base + f2)
}

/// Promotes every step's access mode to the strongest mode its transaction
/// declares on the same partition. A transaction that reads a partition it
/// will later bulk-update takes the X-lock at the first access ("the first
/// two steps of Pattern 1 require X-locks"); costs are untouched.
pub fn promote_lock_modes(mut steps: Vec<StepSpec>) -> Vec<StepSpec> {
    let writes: Vec<PartitionId> = steps
        .iter()
        .filter(|s| s.mode == AccessMode::Write)
        .map(|s| s.partition)
        .collect();
    for s in &mut steps {
        if writes.contains(&s.partition) {
            s.mode = AccessMode::Write;
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pattern1_shape_matches_paper() {
        let mut rng = StdRng::seed_from_u64(1);
        let steps = Pattern::One.draw(&mut rng);
        assert_eq!(steps.len(), 4);
        let costs: Vec<f64> = steps.iter().map(|s| s.cost.objects()).collect();
        assert_eq!(costs, vec![1.0, 5.0, 0.2, 1.0]);
        // F1 at steps 0 and 2, F2 at steps 1 and 3, F1 ≠ F2.
        assert_eq!(steps[0].partition, steps[2].partition);
        assert_eq!(steps[1].partition, steps[3].partition);
        assert_ne!(steps[0].partition, steps[1].partition);
        // Lock-mode promotion: ALL steps exclusive.
        assert!(steps.iter().all(|s| s.mode == AccessMode::Write));
        // Total declared work = 7.2 objects.
        let total: Work = steps.iter().map(|s| s.cost).sum();
        assert_eq!(total, Work::from_objects_f64(7.2));
    }

    #[test]
    fn pattern1_partitions_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let steps = Pattern::One.draw(&mut rng);
            for s in &steps {
                assert!(s.partition.0 < 16);
            }
        }
    }

    #[test]
    fn pattern2_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let steps = Pattern::Two { num_hots: 4 }.draw(&mut rng);
            assert_eq!(steps.len(), 3);
            // Read-only partition in 0..8, S-lock (never promoted).
            assert!(steps[0].partition.0 < 8);
            assert_eq!(steps[0].mode, AccessMode::Read);
            assert_eq!(steps[0].cost, Work::from_objects(5));
            // Two distinct hot partitions in 8..12.
            assert!(steps[1].partition.0 >= 8 && steps[1].partition.0 < 12);
            assert!(steps[2].partition.0 >= 8 && steps[2].partition.0 < 12);
            assert_ne!(steps[1].partition, steps[2].partition);
            assert_eq!(steps[1].mode, AccessMode::Write);
        }
    }

    #[test]
    fn pattern3_costs() {
        let mut rng = StdRng::seed_from_u64(3);
        let steps = Pattern::Three { num_hots: 8 }.draw(&mut rng);
        let costs: Vec<f64> = steps.iter().map(|s| s.cost.objects()).collect();
        assert_eq!(costs, vec![4.0, 1.0, 2.0]);
    }

    #[test]
    fn catalogs_match_the_experiments() {
        let c1 = Pattern::One.catalog();
        assert_eq!(c1.num_parts(), 16);
        assert_eq!(c1.size(PartitionId(0)), Work::from_objects(5));
        let c2 = Pattern::Two { num_hots: 32 }.catalog();
        assert_eq!(c2.num_parts(), 40);
        assert_eq!(c2.size(PartitionId(7)), Work::from_objects(5));
        assert_eq!(c2.size(PartitionId(8)), Work::from_objects(1));
        assert_eq!(c2.num_nodes(), 8);
    }

    #[test]
    fn promotion_only_affects_read_of_written_partitions() {
        let steps = vec![
            StepSpec::read(0, 1.0),
            StepSpec::read(1, 1.0),
            StepSpec::write(0, 1.0),
        ];
        let promoted = promote_lock_modes(steps);
        assert_eq!(promoted[0].mode, AccessMode::Write); // read of written P0
        assert_eq!(promoted[1].mode, AccessMode::Read); // P1 never written
        assert_eq!(promoted[0].cost, Work::from_objects(1)); // cost untouched
    }

    #[test]
    fn clustered_draws_stay_inside_one_group() {
        let p = Pattern::Clustered {
            groups: 4,
            hots_per_group: 4,
        };
        let c = p.catalog();
        assert_eq!(c.num_parts(), 4 * 5);
        assert_eq!(c.num_nodes(), 8);
        assert_eq!(c.size(PartitionId(0)), Work::from_objects(5));
        assert_eq!(c.size(PartitionId(1)), Work::from_objects(1));
        assert_eq!(c.size(PartitionId(5)), Work::from_objects(5));
        let mut rng = StdRng::seed_from_u64(9);
        let mut groups_seen = std::collections::HashSet::new();
        for _ in 0..300 {
            let steps = p.draw(&mut rng);
            assert_eq!(steps.len(), 3);
            let g = steps[0].partition.0 / 5;
            groups_seen.insert(g);
            assert_eq!(steps[0].partition.0 % 5, 0, "read partition leads its group");
            assert_eq!(steps[0].mode, AccessMode::Read);
            for s in &steps[1..] {
                assert_eq!(s.partition.0 / 5, g, "hots come from the same group");
                assert_ne!(s.partition.0 % 5, 0);
                assert_eq!(s.mode, AccessMode::Write);
            }
            assert_ne!(steps[1].partition, steps[2].partition);
        }
        assert_eq!(groups_seen.len(), 4, "uniform group choice hits all groups");
        assert_eq!(p.label(), "Clustered(g=4,hots=4)");
    }

    #[test]
    fn draws_cover_the_partition_space() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            for s in Pattern::One.draw(&mut rng) {
                seen.insert(s.partition.0);
            }
        }
        assert_eq!(seen.len(), 16, "uniform choice should hit all partitions");
    }
}
