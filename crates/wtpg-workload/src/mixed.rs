//! Mixed transaction processing — the extension the paper's conclusion
//! points at: *"In mixed transaction processing, different schedulers are
//! necessary for different classes of jobs."*
//!
//! This workload interleaves two classes on the same hot-set database:
//!
//! * **BATs** — the paper's Pattern 2 (`r(B:5) → w(F1:1) → w(F2:1)`);
//! * **short transactions** — single-step debit-credit-style updates of one
//!   hot partition, with a tiny I/O demand (0.1 objects ≈ 100 ms).
//!
//! The interesting question is interference: how badly do the bulk jobs
//! delay the short ones under each scheduler, and what does each scheduler's
//! admission policy do to the mix?

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wtpg_core::partition::Catalog;
use wtpg_core::txn::{StepSpec, TxnId, TxnSpec};
use wtpg_sim::workload::Workload;

use crate::pattern::{promote_lock_modes, Pattern};

/// A mixed stream of BATs and short transactions.
#[derive(Clone, Debug)]
pub struct MixedWorkload {
    catalog: Catalog,
    bat_pattern: Pattern,
    /// Probability that an arrival is a short transaction.
    short_fraction: f64,
    /// I/O demand of a short transaction, in objects.
    short_cost: f64,
    num_hots: u32,
    rng: StdRng,
}

impl MixedWorkload {
    /// A mixed workload over the Pattern-2 hot-set database.
    ///
    /// # Panics
    /// Panics unless `0.0 ≤ short_fraction ≤ 1.0`.
    pub fn new(num_hots: u32, short_fraction: f64, seed: u64) -> MixedWorkload {
        assert!(
            (0.0..=1.0).contains(&short_fraction),
            "short_fraction must be a probability"
        );
        let bat_pattern = Pattern::Two { num_hots };
        MixedWorkload {
            catalog: bat_pattern.catalog(),
            bat_pattern,
            short_fraction,
            short_cost: 0.1,
            num_hots,
            rng: StdRng::seed_from_u64(seed ^ 0x6d69_7865_6421),
        }
    }

    /// True if a committed transaction with this many steps was short.
    /// (BATs have 3 steps, short transactions exactly 1.)
    pub fn is_short(steps: usize) -> bool {
        steps == 1
    }
}

impl Workload for MixedWorkload {
    fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    fn next_txn(&mut self, id: TxnId) -> TxnSpec {
        if self.rng.gen_bool(self.short_fraction) {
            let hot = 8 + self.rng.gen_range(0..self.num_hots);
            TxnSpec::new(id, vec![StepSpec::write(hot, self.short_cost)])
        } else {
            let steps = self.bat_pattern.draw(&mut self.rng);
            TxnSpec::new(id, promote_lock_modes(steps))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_produces_both_classes() {
        let mut w = MixedWorkload::new(8, 0.5, 1);
        let mut short = 0;
        let mut bats = 0;
        for id in 1..=200u64 {
            let t = w.next_txn(TxnId(id));
            if MixedWorkload::is_short(t.len()) {
                short += 1;
                assert!(t.steps()[0].partition.0 >= 8, "short txns hit the hot set");
            } else {
                bats += 1;
                assert_eq!(t.len(), 3);
            }
        }
        assert!(short > 50 && bats > 50, "short={short} bats={bats}");
    }

    #[test]
    fn extreme_fractions() {
        let mut all_short = MixedWorkload::new(8, 1.0, 2);
        assert!((1..=20u64).all(|id| all_short.next_txn(TxnId(id)).len() == 1));
        let mut all_bats = MixedWorkload::new(8, 0.0, 3);
        assert!((1..=20u64).all(|id| all_bats.next_txn(TxnId(id)).len() == 3));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_fraction_rejected() {
        let _ = MixedWorkload::new(8, 1.5, 0);
    }
}
