//! Read-only BAT injection — the reader side of the MVCC snapshot plane.
//!
//! A *read mix* rewrites a seeded fraction of a batch's transactions into
//! read-only BATs: two full-partition scans with no write step anywhere.
//! With the snapshot plane on (`wtpg-mvcc`), those transactions bypass the
//! WTPG scheduler entirely and execute against versioned cells; with the
//! plane off they take S-locks on the ordinary lock path, which is the
//! baseline the reader-latency comparison runs against.
//!
//! Two properties matter more than the shape of the readers themselves:
//!
//! * **`fraction == 0.0` is a guaranteed no-op.** The gate RNG is never
//!   constructed and the spec batch is returned untouched, so a `--read-mix
//!   0` run is byte-identical to one that never heard of read mixes — the
//!   differential test in `wtpg-net` leans on this.
//! * **The split is seeded and salted.** The gate draws from its own RNG
//!   (salted off the workload seed), so the same `(seed, fraction)` always
//!   converts the same transaction ids, independent of pattern internals.
//!
//! Reader *targets* are drawn Zipfian over the catalog's partitions
//! (`theta = 0` is uniform): skewed reads against the same hot partitions
//! the writers pound is exactly the interference the snapshot plane is
//! supposed to dissolve.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use wtpg_core::partition::Catalog;
use wtpg_core::txn::{StepSpec, TxnSpec};

/// Salt folded into the workload seed for the gate/target RNG, so the read
/// mix never perturbs (or is perturbed by) the pattern's own draws.
const READ_MIX_SALT: u64 = 0x5eed_bea7_0000_4ead;

/// A seeded read-only rewrite of a transaction batch.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReadMix {
    /// Probability that a transaction becomes a read-only BAT.
    pub fraction: f64,
    /// Zipfian skew of reader targets over the catalog's partitions
    /// (0 = uniform; the paper-style hot-set stress uses ≥ 0.8).
    pub theta: f64,
}

impl ReadMix {
    /// A uniform-target read mix.
    ///
    /// # Panics
    /// Panics unless `0.0 ≤ fraction ≤ 1.0`.
    pub fn new(fraction: f64) -> ReadMix {
        ReadMix::skewed(fraction, 0.0)
    }

    /// A Zipfian-target read mix.
    ///
    /// # Panics
    /// Panics unless `0.0 ≤ fraction ≤ 1.0` and `theta ≥ 0`.
    pub fn skewed(fraction: f64, theta: f64) -> ReadMix {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "read-mix fraction must be a probability"
        );
        assert!(theta >= 0.0, "zipf theta must be non-negative");
        ReadMix { fraction, theta }
    }

    /// Rewrites a seeded fraction of `specs` into read-only BATs in place.
    ///
    /// Ids, batch length and submission order are preserved; only the step
    /// lists of the gated transactions change. `fraction == 0.0` returns
    /// without touching anything — not even an RNG construction — so the
    /// zero mix is indistinguishable from no mix at all.
    pub fn apply(&self, catalog: &Catalog, specs: &mut [TxnSpec], seed: u64) {
        if self.fraction == 0.0 {
            return;
        }
        let mut rng = StdRng::seed_from_u64(seed ^ READ_MIX_SALT);
        let zipf = ZipfTable::new(catalog, self.theta);
        for spec in specs.iter_mut() {
            if rng.gen_bool(self.fraction) {
                *spec = TxnSpec::new(spec.id, reader_steps(catalog, &zipf, &mut rng));
            }
        }
    }

    /// Expected number of readers in a batch of `txns` (for sizing checks).
    pub fn expected_readers(&self, txns: usize) -> f64 {
        self.fraction * txns as f64
    }
}

/// A read-only BAT: full scans of two distinct Zipf-drawn partitions.
fn reader_steps<R: Rng>(catalog: &Catalog, zipf: &ZipfTable, rng: &mut R) -> Vec<StepSpec> {
    let p1 = zipf.draw(rng);
    let mut p2 = p1;
    // A one-partition catalog degenerates to a single-step reader.
    if catalog.num_parts() > 1 {
        while p2 == p1 {
            p2 = zipf.draw(rng);
        }
    }
    let scan = |p: u32| StepSpec::read(p, catalog.size(wtpg_core::partition::PartitionId(p)).objects());
    let mut steps = vec![scan(p1)];
    if p2 != p1 {
        steps.push(scan(p2));
    }
    steps
}

/// Cumulative Zipf weights over partition ids, sampled by binary search.
struct ZipfTable {
    /// Partition id per rank (rank = id order; the catalog is the universe).
    ids: Vec<u32>,
    /// Cumulative weight through each rank.
    cum: Vec<f64>,
}

impl ZipfTable {
    fn new(catalog: &Catalog, theta: f64) -> ZipfTable {
        let ids: Vec<u32> = catalog.partitions().map(|p| p.0).collect();
        assert!(!ids.is_empty(), "catalog has no partitions to read");
        let mut cum = Vec::with_capacity(ids.len());
        let mut total = 0.0;
        for rank in 0..ids.len() {
            total += 1.0 / ((rank + 1) as f64).powf(theta);
            cum.push(total);
        }
        ZipfTable { ids, cum }
    }

    fn draw<R: Rng>(&self, rng: &mut R) -> u32 {
        let total = *self.cum.last().expect("non-empty table");
        let u = rng.gen_range(0.0..total);
        let rank = self.cum.partition_point(|&c| c <= u);
        self.ids[rank.min(self.ids.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;
    use wtpg_core::txn::TxnId;

    fn batch(txns: usize, seed: u64) -> (Catalog, Vec<TxnSpec>) {
        let pattern = Pattern::Two { num_hots: 8 };
        let catalog = pattern.catalog();
        let mut rng = StdRng::seed_from_u64(seed);
        let specs = (1..=txns as u64)
            .map(|id| TxnSpec::new(TxnId(id), pattern.draw(&mut rng)))
            .collect();
        (catalog, specs)
    }

    #[test]
    fn zero_fraction_is_a_byte_level_no_op() {
        let (catalog, baseline) = batch(60, 7);
        let mut mixed = baseline.clone();
        ReadMix::new(0.0).apply(&catalog, &mut mixed, 7);
        assert_eq!(mixed, baseline, "fraction 0 must not touch the batch");
    }

    #[test]
    fn same_seed_same_rewrite() {
        let (catalog, mut a) = batch(100, 11);
        let (_, mut b) = batch(100, 11);
        let mix = ReadMix::skewed(0.4, 0.9);
        mix.apply(&catalog, &mut a, 11);
        mix.apply(&catalog, &mut b, 11);
        assert_eq!(a, b, "the rewrite must be a pure function of the seed");
    }

    #[test]
    fn gate_is_independent_of_the_pattern_stream() {
        // Same seed, different patterns: the *set of converted ids* must
        // match, because the gate RNG is salted off the seed alone.
        let (c2, mut a) = batch(200, 3);
        let p1 = Pattern::One;
        let c1 = p1.catalog();
        let mut rng = StdRng::seed_from_u64(3);
        let mut b: Vec<TxnSpec> = (1..=200u64)
            .map(|id| TxnSpec::new(TxnId(id), p1.draw(&mut rng)))
            .collect();
        let mix = ReadMix::new(0.5);
        mix.apply(&c2, &mut a, 3);
        mix.apply(&c1, &mut b, 3);
        let readers = |v: &[TxnSpec]| {
            v.iter()
                .filter(|s| s.is_read_only())
                .map(|s| s.id.0)
                .collect::<Vec<_>>()
        };
        assert_eq!(readers(&a), readers(&b));
    }

    #[test]
    fn readers_scan_full_partitions() {
        let (catalog, mut specs) = batch(150, 5);
        ReadMix::new(0.5).apply(&catalog, &mut specs, 5);
        let readers: Vec<&TxnSpec> = specs.iter().filter(|s| s.is_read_only()).collect();
        let expected = ReadMix::new(0.5).expected_readers(150);
        assert!(
            (readers.len() as f64 - expected).abs() < 30.0,
            "got {} readers, expected ≈{expected}",
            readers.len()
        );
        for r in readers {
            assert!(!r.steps().is_empty() && r.steps().len() <= 2);
            for s in r.steps() {
                assert_eq!(
                    s.cost,
                    catalog.size(s.partition),
                    "a reader step is a full scan of its partition"
                );
                assert_eq!(s.cost, s.actual_cost);
            }
            if r.steps().len() == 2 {
                assert_ne!(r.steps()[0].partition, r.steps()[1].partition);
            }
        }
    }

    #[test]
    fn zipf_skews_reader_targets() {
        let (catalog, mut uniform) = batch(400, 13);
        let (_, mut skewed) = batch(400, 13);
        ReadMix::new(1.0).apply(&catalog, &mut uniform, 13);
        ReadMix::skewed(1.0, 1.2).apply(&catalog, &mut skewed, 13);
        let first_hits = |v: &[TxnSpec]| {
            v.iter()
                .flat_map(|s| s.steps())
                .filter(|s| s.partition.0 == 0)
                .count()
        };
        assert!(
            first_hits(&skewed) > first_hits(&uniform),
            "theta > 0 must concentrate reads on the lowest-ranked partition: \
             {} vs {}",
            first_hits(&skewed),
            first_hits(&uniform)
        );
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_fraction_rejected() {
        let _ = ReadMix::new(1.5);
    }
}
