//! Open-loop arrival schedules for the sustained-load harness.
//!
//! A closed-loop driver (the engine's workers, the net clients' pipelined
//! submit window) slows its offered load down whenever the system slows —
//! latency hides saturation. The open-loop harness instead fixes the
//! *arrival* process: transactions arrive at Poisson times with rate λ
//! regardless of how the system is doing, and an arrival that finds the
//! client's in-flight bound full is **shed** (counted, never submitted).
//! Shed rate is therefore the backpressure signal the SLO engine judges.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Exp};

/// Poisson arrival schedule: `n` arrival offsets in µs since run start,
/// nondecreasing, with exponential inter-arrival times of mean `1/λ`
/// (`lambda_tps` in arrivals per second). Deterministic in `seed`.
///
/// `lambda_tps` values at or below zero degenerate to a burst at t=0
/// (every offset zero) rather than panicking, so a misconfigured grid
/// cell fails loudly in its SLO verdict instead of crashing the driver.
pub fn poisson_arrivals_us(n: usize, lambda_tps: f64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0a55_0111_0ad5_ced5);
    let mut out = Vec::with_capacity(n);
    // NaN and non-positive rates both take the burst path.
    if lambda_tps.is_nan() || lambda_tps <= 0.0 {
        out.resize(n, 0);
        return out;
    }
    let exp = Exp::new(lambda_tps).expect("checked: λ > 0");
    let mut t_us = 0.0f64;
    for _ in 0..n {
        let dt_s: f64 = exp.sample(&mut rng);
        t_us += dt_s * 1e6;
        out.push(t_us as u64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule_and_monotone() {
        let a = poisson_arrivals_us(500, 1000.0, 42);
        let b = poisson_arrivals_us(500, 1000.0, 42);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "offsets nondecreasing");
        let c = poisson_arrivals_us(500, 1000.0, 43);
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn mean_rate_approaches_lambda() {
        // 10k arrivals at λ = 2000/s should span ~5s; the sample mean of
        // an exponential concentrates fast (σ/√n ≈ 1% here).
        let n = 10_000usize;
        let a = poisson_arrivals_us(n, 2000.0, 7);
        let span_s = *a.last().unwrap() as f64 / 1e6;
        let rate = n as f64 / span_s;
        assert!(
            (rate - 2000.0).abs() < 100.0,
            "empirical rate {rate:.1} too far from λ=2000"
        );
    }

    #[test]
    fn degenerate_lambda_is_a_burst_not_a_panic() {
        assert_eq!(poisson_arrivals_us(3, 0.0, 1), vec![0, 0, 0]);
        assert_eq!(poisson_arrivals_us(3, -1.0, 1), vec![0, 0, 0]);
        assert!(poisson_arrivals_us(0, 100.0, 1).is_empty());
    }

    #[test]
    fn round_robin_client_slices_stay_sorted() {
        // Client c of N takes arrivals[c], arrivals[c+N], … — the same
        // deal the runtime applies to specs. Each slice must itself be a
        // valid (sorted) schedule.
        let a = poisson_arrivals_us(1000, 5000.0, 11);
        for c in 0..4 {
            let slice: Vec<u64> = a.iter().skip(c).step_by(4).copied().collect();
            assert!(slice.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
