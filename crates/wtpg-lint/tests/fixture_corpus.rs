//! The fixture corpus proves each lint rule fires on known-bad input and
//! that the waiver mechanism silences justified occurrences, both through
//! the library API and through the installed binary's exit code.

use std::path::{Path, PathBuf};
use std::process::Command;

use wtpg_lint::{lint_file, Rule, RuleSet};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn findings_for(name: &str) -> Vec<wtpg_lint::Finding> {
    lint_file(&fixture(name), RuleSet::ALL).expect("fixture readable")
}

#[test]
fn determinism_fixture_fires() {
    let f = findings_for("bad_determinism.rs");
    assert!(f.iter().all(|f| f.rule == Rule::Determinism), "{f:?}");
    for token in ["HashMap", "HashSet", "SystemTime", "Instant", "thread_rng"] {
        assert!(
            f.iter().any(|f| f.message.contains(token)),
            "no finding for {token}: {f:?}"
        );
    }
}

#[test]
fn panic_safety_fixture_fires() {
    let f = findings_for("bad_panic_safety.rs");
    assert!(f.iter().all(|f| f.rule == Rule::PanicSafety), "{f:?}");
    for needle in ["unwrap()", "expect()", "slice index", "panic!", "unreachable!", "todo!"] {
        assert!(
            f.iter().any(|f| f.message.contains(needle)),
            "no finding for {needle}: {f:?}"
        );
    }
}

#[test]
fn api_docs_fixture_fires() {
    let f = findings_for("bad_api_docs.rs");
    let docs: Vec<_> = f.iter().filter(|f| f.rule == Rule::ApiDocs).collect();
    // Exactly the three undocumented pub fns; the documented one and the
    // pub(crate) one must not fire.
    assert_eq!(docs.len(), 3, "{f:?}");
}

#[test]
fn waived_fixture_is_clean() {
    let f = findings_for("waived_clean.rs");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn binary_exits_nonzero_on_bad_corpus_and_zero_on_waived() {
    let bin = env!("CARGO_BIN_EXE_wtpg-lint");
    let bad = Command::new(bin)
        .arg(fixture("bad_determinism.rs"))
        .arg(fixture("bad_panic_safety.rs"))
        .arg(fixture("bad_api_docs.rs"))
        .output()
        .expect("lint binary runs");
    assert!(!bad.status.success(), "bad corpus must fail the lint");

    let clean = Command::new(bin)
        .arg(fixture("waived_clean.rs"))
        .output()
        .expect("lint binary runs");
    assert!(
        clean.status.success(),
        "waived fixture must pass: {}",
        String::from_utf8_lossy(&clean.stdout)
    );
}
