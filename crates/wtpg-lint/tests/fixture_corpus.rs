//! The fixture corpus proves each lint rule fires on known-bad input and
//! that the waiver mechanism silences justified occurrences, both through
//! the library API and through the installed binary's exit code.

use std::path::{Path, PathBuf};
use std::process::Command;

use wtpg_lint::{lint_file, rules_for, Rule, RuleSet};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn findings_for(name: &str) -> Vec<wtpg_lint::Finding> {
    lint_file(&fixture(name), RuleSet::ALL).expect("fixture readable")
}

#[test]
fn determinism_fixture_fires() {
    let f = findings_for("bad_determinism.rs");
    assert!(f.iter().all(|f| f.rule == Rule::Determinism), "{f:?}");
    for token in ["HashMap", "HashSet", "SystemTime", "Instant", "thread_rng"] {
        assert!(
            f.iter().any(|f| f.message.contains(token)),
            "no finding for {token}: {f:?}"
        );
    }
}

#[test]
fn panic_safety_fixture_fires() {
    let f = findings_for("bad_panic_safety.rs");
    assert!(f.iter().all(|f| f.rule == Rule::PanicSafety), "{f:?}");
    for needle in ["unwrap()", "expect()", "slice index", "panic!", "unreachable!", "todo!"] {
        assert!(
            f.iter().any(|f| f.message.contains(needle)),
            "no finding for {needle}: {f:?}"
        );
    }
}

#[test]
fn api_docs_fixture_fires() {
    let f = findings_for("bad_api_docs.rs");
    let docs: Vec<_> = f.iter().filter(|f| f.rule == Rule::ApiDocs).collect();
    // Exactly the three undocumented pub fns; the documented one and the
    // pub(crate) one must not fire.
    assert_eq!(docs.len(), 3, "{f:?}");
}

#[test]
fn waived_fixture_is_clean() {
    let f = findings_for("waived_clean.rs");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn rt_scope_fixture_is_clean_under_engine_rules_only() {
    // The engine rule set: determinism off, panic-safety and api-docs on.
    let engine_rules = RuleSet {
        determinism: false,
        panic_safety: true,
        api_docs: true,
    };
    let clean = lint_file(&fixture("rt_scope.rs"), engine_rules).expect("fixture readable");
    assert!(clean.is_empty(), "{clean:?}");
    // Under the full rule set the same file has determinism findings
    // (Instant) and nothing else — proving the exemption is what keeps it
    // clean, not the file being trivially empty.
    let full = findings_for("rt_scope.rs");
    assert!(!full.is_empty(), "fixture must trip determinism under ALL");
    assert!(full.iter().all(|f| f.rule == Rule::Determinism), "{full:?}");
}

#[test]
fn workspace_policy_scopes_wtpg_rt() {
    // Engine sources: determinism exempt, panic-safety + api-docs enforced.
    for file in [
        "crates/wtpg-rt/src/engine.rs",
        "crates/wtpg-rt/src/queue.rs",
        "crates/wtpg-rt/src/lib.rs",
    ] {
        let r = rules_for(Path::new(file));
        assert!(!r.determinism, "{file}: determinism must be exempt");
        assert!(r.panic_safety, "{file}: panic-safety must be enforced");
        assert!(r.api_docs, "{file}: api-docs must be enforced");
    }
    // The simulator keeps the determinism rule.
    let sim = rules_for(Path::new("crates/wtpg-sim/src/machine.rs"));
    assert!(sim.determinism);
    // Core hot path keeps all three.
    let core = rules_for(Path::new("crates/wtpg-core/src/sched/chain.rs"));
    assert!(core.determinism && core.panic_safety && core.api_docs);
}

#[test]
fn obs_scope_fixture_is_clean_under_all_rules() {
    // The obs core rule set is ALL three rules; the fixture's `Instant`
    // phase names carry waivers. Unused waivers are themselves findings, so
    // emptiness proves the token fired *and* was suppressed.
    let f = findings_for("obs_scope.rs");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn workspace_policy_scopes_wtpg_obs() {
    // Event/histogram/sink code: all three rules.
    for file in [
        "crates/wtpg-obs/src/event.rs",
        "crates/wtpg-obs/src/hist.rs",
        "crates/wtpg-obs/src/jsonl.rs",
        "crates/wtpg-obs/src/summary.rs",
    ] {
        let r = rules_for(Path::new(file));
        assert!(r.determinism, "{file}: determinism must be enforced");
        assert!(r.panic_safety, "{file}: panic-safety must be enforced");
        assert!(r.api_docs, "{file}: api-docs must be enforced");
    }
    // The one sanctioned clock: wall.rs is determinism-exempt like the
    // engine it serves, but keeps panic-safety and api-docs.
    let wall = rules_for(Path::new("crates/wtpg-obs/src/wall.rs"));
    assert!(!wall.determinism, "wall.rs: determinism must be exempt");
    assert!(wall.panic_safety && wall.api_docs);
}

#[test]
fn net_scope_fixture_is_clean_under_actor_rules_only() {
    // The actor-loop rule set: determinism off, panic-safety + api-docs on.
    let actor_rules = RuleSet {
        determinism: false,
        panic_safety: true,
        api_docs: true,
    };
    let clean = lint_file(&fixture("net_scope.rs"), actor_rules).expect("fixture readable");
    assert!(clean.is_empty(), "{clean:?}");
    // Under the full rule set the same file trips determinism (Instant) and
    // nothing else — the exemption is what keeps it clean.
    let full = findings_for("net_scope.rs");
    assert!(!full.is_empty(), "fixture must trip determinism under ALL");
    assert!(full.iter().all(|f| f.rule == Rule::Determinism), "{full:?}");
}

#[test]
fn workspace_policy_scopes_wtpg_net() {
    // Actor loops and the socket transport: wall clocks by design, but
    // panic-safety and api-docs still enforced.
    for file in [
        "crates/wtpg-net/src/control.rs",
        "crates/wtpg-net/src/client.rs",
        "crates/wtpg-net/src/data.rs",
        "crates/wtpg-net/src/runtime.rs",
        "crates/wtpg-net/src/batch.rs",
        "crates/wtpg-net/src/tcp.rs",
    ] {
        let r = rules_for(Path::new(file));
        assert!(!r.determinism, "{file}: determinism must be exempt");
        assert!(r.panic_safety, "{file}: panic-safety must be enforced");
        assert!(r.api_docs, "{file}: api-docs must be enforced");
    }
    // The protocol layer keeps all three: codecs, message types, fault
    // plans and reports must be deterministic for replay-by-seed.
    for file in [
        "crates/wtpg-net/src/msg.rs",
        "crates/wtpg-net/src/codec.rs",
        "crates/wtpg-net/src/error.rs",
        "crates/wtpg-net/src/fault.rs",
        "crates/wtpg-net/src/report.rs",
        "crates/wtpg-net/src/transport.rs",
        "crates/wtpg-net/src/lib.rs",
    ] {
        let r = rules_for(Path::new(file));
        assert!(r.determinism, "{file}: determinism must be enforced");
        assert!(r.panic_safety, "{file}: panic-safety must be enforced");
        assert!(r.api_docs, "{file}: api-docs must be enforced");
    }
}

/// Runs the installed binary with `args`, returning (success, stdout).
fn run_bin(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_wtpg-lint"))
        .args(args)
        .output()
        .expect("lint binary runs");
    (out.status.success(), String::from_utf8_lossy(&out.stdout).into_owned())
}

fn fx(name: &str) -> String {
    fixture(name).to_string_lossy().into_owned()
}

#[test]
fn lock_order_fixture_fires_and_ordered_twin_is_clean() {
    let manifest = fx("locks/lint-locks.toml");
    let (ok, out) = run_bin(&["--pass", "locks", "--manifest", &manifest, &fx("locks/actor.rs")]);
    assert!(!ok, "lock-cycle fixture must fail the lint:\n{out}");
    assert!(out.contains("out of declared order"), "{out}");
    assert!(out.contains("call to `touch_ctl`"), "transitive inversion missing:\n{out}");
    assert!(out.contains("undeclared lock acquisition"), "{out}");
    let (ok, out) = run_bin(&["--pass", "locks", "--manifest", &manifest, &fx("locks/ordered.rs")]);
    assert!(ok, "rank-respecting fixture must pass:\n{out}");
}

#[test]
fn protocol_fixtures_fire_missing_arm_batch_recursion_and_idempotency() {
    let msg = fx("proto/msg.rs");
    let (ok, out) = run_bin(&["--pass", "protocol", "--msg", &msg, &fx("proto/control.rs")]);
    assert!(!ok, "control fixture must fail the lint:\n{out}");
    assert!(out.contains("`Msg::Pong`"), "missing-arm finding absent:\n{out}");
    assert!(out.contains("nested batches"), "batch-recursion finding absent:\n{out}");
    let (ok, out) = run_bin(&["--pass", "protocol", "--msg", &msg, &fx("proto/data.rs")]);
    assert!(!ok, "data fixture must fail the lint:\n{out}");
    assert!(out.contains("dedup structure"), "idempotency finding absent:\n{out}");
}

#[test]
fn taint_fixture_fires_across_the_call_graph() {
    let (core, wall) = (fx("taint/core.rs"), fx("taint/wall.rs"));
    let (ok, out) = run_bin(&["--pass", "taint", "--protected", "core.rs", &core, &wall]);
    assert!(!ok, "taint leak must fail the lint:\n{out}");
    assert!(out.contains("reaches nondeterministic"), "{out}");
    assert!(out.contains("now_us"), "{out}");
    // With nothing protected, the same pair is clean: the wall-clock read
    // is sanctioned where it lives.
    let (ok, out) = run_bin(&["--pass", "taint", "--protected", "no-such-file", &core, &wall]);
    assert!(ok, "unprotected pair must pass:\n{out}");
}

#[test]
fn schema_fixture_detects_drift_and_accepts_matching_lock() {
    let (msg, codec) = (fx("schema/msg.rs"), fx("schema/codec.rs"));
    let good = fx("schema/good.lock");
    let (ok, out) = run_bin(&["--pass", "schema", "--msg", &msg, "--codec", &codec, "--lock", &good]);
    assert!(ok, "matching lock must pass:\n{out}");
    let drift = fx("schema/drift.lock");
    let (ok, out) = run_bin(&["--pass", "schema", "--msg", &msg, "--codec", &codec, "--lock", &drift]);
    assert!(!ok, "drifted lock must fail the lint:\n{out}");
    assert!(out.contains("wire tag for `Msg::Pong`"), "{out}");
    assert!(out.contains("`MAX_FRAME`"), "{out}");
}

#[test]
fn json_output_is_wellformed_and_carries_rule_names() {
    let (ok, out) = run_bin(&["--format", "json", &fx("bad_determinism.rs")]);
    assert!(!ok);
    let t = out.trim();
    assert!(t.starts_with('[') && t.ends_with(']'), "{out}");
    assert!(t.contains("\"rule\":\"determinism\""), "{out}");
    assert!(t.contains("\"line\":"), "{out}");
    // Clean input yields an empty array, still exit 0.
    let (ok, out) = run_bin(&["--format", "json", &fx("waived_clean.rs")]);
    assert!(ok, "{out}");
    assert_eq!(out.trim(), "[]");
}

#[test]
fn binary_exits_nonzero_on_bad_corpus_and_zero_on_waived() {
    let bin = env!("CARGO_BIN_EXE_wtpg-lint");
    let bad = Command::new(bin)
        .arg(fixture("bad_determinism.rs"))
        .arg(fixture("bad_panic_safety.rs"))
        .arg(fixture("bad_api_docs.rs"))
        .output()
        .expect("lint binary runs");
    assert!(!bad.status.success(), "bad corpus must fail the lint");

    let clean = Command::new(bin)
        .arg(fixture("waived_clean.rs"))
        .output()
        .expect("lint binary runs");
    assert!(
        clean.status.success(),
        "waived fixture must pass: {}",
        String::from_utf8_lossy(&clean.stdout)
    );
}
