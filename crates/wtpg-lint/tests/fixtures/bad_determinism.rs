// Known-bad fixture: every construct the `determinism` rule must catch.
// This file is NOT compiled — it is input data for the lint's tests.

use std::collections::HashMap;
use std::collections::HashSet;
use std::time::SystemTime;
use std::time::Instant;

fn clock() -> u128 {
    let _ = Instant::now();
    SystemTime::now().elapsed().unwrap_or_default().as_nanos()
}

fn ambient_rng() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

fn hash_iteration(m: HashMap<u32, u32>, s: HashSet<u32>) -> u32 {
    m.values().sum::<u32>() + s.len() as u32
}
