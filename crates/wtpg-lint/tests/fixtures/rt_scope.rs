//! Fixture pinning the `wtpg-rt` scoping policy: this file is *clean* under
//! the engine's rule set (panic-safety + api-docs, determinism off) but has
//! determinism findings under `RuleSet::ALL`. An engine source file is
//! allowed wall clocks and OS threads; it is not allowed panics or
//! undocumented API.

use std::time::Instant;

/// Measures how long `f` takes — wall-clock reads are fine in the engine.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, u128) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_micros())
}

/// Joins a worker, converting a poisoned result without panicking.
pub fn join_worker(handle: std::thread::JoinHandle<u64>) -> u64 {
    handle
        .join()
        .expect("invariant: engine workers return errors instead of panicking")
}

/// Safe lookup: indexing is banned, `get` is the accepted form.
pub fn first(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap_or(0)
}
