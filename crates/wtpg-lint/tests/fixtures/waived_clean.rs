// All-waived fixture: every would-be finding carries a justified waiver,
// so the lint must report nothing for this file.
// This file is NOT compiled — it is input data for the lint's tests.

use std::collections::HashMap; // lint:allow(determinism) fixture: never iterated, keyed lookups only

fn trailing_waiver(x: Option<u32>) -> u32 {
    x.unwrap() // lint:allow(panic-safety) fixture: caller guarantees Some
}

// lint:allow(panic-safety) fixture: i bounded by the loop above
fn block_waiver(v: &[u32], i: usize) -> u32 {
    v[i] + v[i + 0]
}

fn invariant_expect(x: Option<u32>) -> u32 {
    x.expect("invariant: populated by new()")
}

// lint:allow(api-docs) fixture: internal helper exported for tests only
pub fn waived_pub_fn() {}
