//! Taint fixture: a protected file with no direct clock read. The leak is
//! the call into `wall.rs`'s `now_us`, which the taint pass propagates
//! along the call graph — a file-scoped deny list would miss it.

/// Stamps a record with a wall-clock timestamp via the shim.
pub fn stamp() -> u64 {
    now_us() + 1
}
