//! Taint fixture: the sanctioned clock shim. This file is *outside* the
//! protected set, so its direct `SystemTime` read is legal — but any
//! protected-side caller inherits the taint.

use std::time::SystemTime;

/// Microseconds since the epoch.
pub fn now_us() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}
