//! Lock-order fixture: one in-order nesting (clean), one inversion, one
//! transitive inversion through a helper, and one undeclared mutex. The
//! manifest next to this file declares `self.ctl` rank 0 and `self.store`
//! rank 1.

use std::sync::Mutex;

pub struct Actor {
    ctl: Mutex<u64>,
    store: Mutex<u64>,
    rogue: Mutex<u64>,
}

impl Actor {
    /// Legal nesting: ctl (rank 0) then store (rank 1).
    pub fn in_order(&self) -> u64 {
        let c = self.ctl.lock().expect("poisoned");
        let s = self.store.lock().expect("poisoned");
        *c + *s
    }

    /// Inverted nesting: store (rank 1) held while acquiring ctl (rank 0).
    pub fn inverted(&self) -> u64 {
        let s = self.store.lock().expect("poisoned");
        let c = self.ctl.lock().expect("poisoned");
        *s + *c
    }

    /// Holds store and calls a helper that acquires ctl: the same inversion,
    /// visible only through the call graph.
    pub fn indirect(&self) -> u64 {
        let s = self.store.lock().expect("poisoned");
        *s + self.touch_ctl()
    }

    fn touch_ctl(&self) -> u64 {
        *self.ctl.lock().expect("poisoned")
    }

    /// Acquires a mutex the manifest does not declare (fail-closed).
    pub fn undeclared(&self) -> u64 {
        *self.rogue.lock().expect("poisoned")
    }
}
