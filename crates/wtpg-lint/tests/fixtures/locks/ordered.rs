//! Lock-order fixture twin of `actor.rs` with only rank-respecting
//! acquisitions: the pass must exit clean on this file.

use std::sync::Mutex;

pub struct Actor {
    ctl: Mutex<u64>,
    store: Mutex<u64>,
}

impl Actor {
    /// Legal nesting: ctl (rank 0) then store (rank 1).
    pub fn in_order(&self) -> u64 {
        let c = self.ctl.lock().expect("poisoned");
        let s = self.store.lock().expect("poisoned");
        *c + *s
    }

    /// Sequential (non-nested) acquisitions: store released before ctl.
    pub fn sequential(&self) -> u64 {
        let s = self.store.lock().expect("poisoned");
        let total = *s;
        drop(s);
        let c = self.ctl.lock().expect("poisoned");
        total + *c
    }
}
