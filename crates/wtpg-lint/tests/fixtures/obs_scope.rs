//! Fixture pinning the `wtpg-obs` scoping policy: event/histogram code is
//! held to full determinism — ordered maps only, no clock reads — because
//! traces of deterministic runs must be byte-deterministic. The event model
//! reuses Chrome's `Instant` phase name, which collides with the banned
//! clock type; the sanctioned idiom is an inline waiver naming the
//! collision. (If the token stopped firing, the waivers below would be
//! reported as unused, so this fixture being clean proves both the rule and
//! the suppression.) Wall-clock reads are confined to `wall.rs`, which
//! `rules_for` exempts from determinism — asserted in fixture_corpus.rs.

use std::collections::BTreeMap;

/// A miniature event kind mirroring the trace model's phase names.
pub enum Kind {
    // lint:allow(determinism) Chrome trace phase name, not std::time::Instant
    /// A point event.
    Instant,
    /// A cumulative counter sample.
    Counter,
}

/// Folds phase occurrences per name, in deterministic (ordered) key order.
pub fn fold(kinds: &[Kind]) -> BTreeMap<&'static str, u64> {
    let mut out = BTreeMap::new();
    for k in kinds {
        let key = match k {
            Kind::Instant => "instant", // lint:allow(determinism) trace phase, not std::time::Instant
            Kind::Counter => "counter",
        };
        *out.entry(key).or_insert(0) += 1;
    }
    out
}
