//! Fixture pinning the `wtpg-obs` scoping policy: event/histogram code is
//! held to full determinism — ordered maps only, no clock reads — because
//! traces of deterministic runs must be byte-deterministic. The event model
//! reuses Chrome's `Instant` phase name, which collides with the banned
//! clock type; the v2 classifier recognizes an enum variant named `Instant`
//! and any `Path::Instant` not qualified by `time` as *not* the clock, so
//! no waiver is needed (v1 required one per occurrence). This fixture being
//! clean with zero waivers proves the classification. Wall-clock reads are
//! confined to `wall.rs`, which `rules_for` exempts from determinism —
//! asserted in fixture_corpus.rs.

use std::collections::BTreeMap;

/// A miniature event kind mirroring the trace model's phase names.
pub enum Kind {
    /// A point event.
    Instant,
    /// A cumulative counter sample.
    Counter,
}

/// Folds phase occurrences per name, in deterministic (ordered) key order.
pub fn fold(kinds: &[Kind]) -> BTreeMap<&'static str, u64> {
    let mut out = BTreeMap::new();
    for k in kinds {
        let key = match k {
            Kind::Instant => "instant",
            Kind::Counter => "counter",
        };
        *out.entry(key).or_insert(0) += 1;
    }
    out
}
