//! Protocol fixture actor violating idempotency: the redeliverable
//! `Access` handler applies the chunk before consulting the `marks`
//! dedup set, so a duplicate delivery applies the chunk twice.

impl Data {
    fn handle(&mut self, m: Msg) {
        match m {
            Msg::Ping => {}
            Msg::Pong => {}
            Msg::Batch(_) => {}
            Msg::Access => {
                self.store.apply_chunk(1);
                self.marks.insert(1);
            }
        }
    }
}
