//! Protocol fixture message set: a four-variant protocol mirroring the
//! real `Msg` shape (a redeliverable access, a batch wrapper).

/// Fixture protocol messages.
pub enum Msg {
    /// Liveness probe.
    Ping,
    /// Probe reply.
    Pong,
    /// A bulk access chunk (redeliverable).
    Access,
    /// A batched frame of sub-messages.
    Batch(Vec<Msg>),
}
