//! Protocol fixture actor, deliberately bad twice over: the loop never
//! names `Msg::Pong` (the wildcard arm swallows it), and the `Batch` arm
//! re-dispatches through `handle` without guarding against nested batches.

impl Control {
    fn handle(&mut self, m: Msg) {
        match m {
            Msg::Ping => self.reply(),
            Msg::Access => self.apply(),
            Msg::Batch(inner) => {
                for sub in inner {
                    self.handle(sub);
                }
            }
            _ => {}
        }
    }
}
