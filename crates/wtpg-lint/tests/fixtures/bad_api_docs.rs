// Known-bad fixture: `pub fn` items without doc comments.
// This file is NOT compiled — it is input data for the lint's tests.

pub fn no_doc_at_all() {}

#[inline]
pub fn attr_but_no_doc() {}

pub const fn const_without_doc() -> u32 {
    0
}

/// This one is documented and must NOT fire.
pub fn documented() {}

pub(crate) fn crate_visible_needs_no_doc() {}
