//! Schema fixture: a two-variant protocol with explicit wire tags.

/// Fixture protocol messages.
pub enum Msg {
    /// Probe carrying a sequence number.
    Ping { seq: u64 },
    /// Probe reply.
    Pong { seq: u64, ack: bool },
}

impl Msg {
    /// Wire tag byte.
    pub fn tag(&self) -> u8 {
        match self {
            Msg::Ping { .. } => 0,
            Msg::Pong { .. } => 1,
        }
    }
}
