//! Schema fixture codec ceilings.

/// Maximum frame bytes.
pub const MAX_FRAME: usize = 1 << 16;
/// Maximum steps per transaction.
pub const MAX_STEPS: u32 = 128;
/// Maximum messages per batch.
pub const MAX_BATCH: u32 = 64;
/// Maximum snapshot-exclusion entries per read order.
pub const MAX_EXCLUDE: u32 = 256;
