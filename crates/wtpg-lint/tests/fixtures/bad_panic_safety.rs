// Known-bad fixture: every construct the `panic-safety` rule must catch.
// This file is NOT compiled — it is input data for the lint's tests.

fn unwraps(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn undocumented_expect(x: Option<u32>) -> u32 {
    x.expect("should be there")
}

fn indexing(v: &[u32], i: usize) -> u32 {
    v[i]
}

fn chained_indexing(m: &std::collections::BTreeMap<u32, Vec<u32>>) -> u32 {
    m[&0][1]
}

fn panics() {
    panic!("boom");
}

fn unreachable_macro() {
    unreachable!();
}

fn todo_macro() {
    todo!()
}
