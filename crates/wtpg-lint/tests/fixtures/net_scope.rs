//! Fixture pinning the `wtpg-net` scoping policy: this file is *clean*
//! under the actor-loop rule set (panic-safety + api-docs, determinism off)
//! but has determinism findings under `RuleSet::ALL`. A control or client
//! actor is allowed wall clocks — redelivery deadlines and round-trip
//! timing are wall-clock by nature — but never panics or undocumented API;
//! the codec and fault-plan layer additionally keeps full determinism.

use std::time::Instant;

/// A redelivery deadline — control actors arm one per in-flight `Access`.
pub struct Deadline {
    /// When the unacknowledged order is resent.
    pub at: Instant,
}

/// Arms a redelivery deadline `delay_us` from now.
pub fn arm(delay_us: u64) -> Deadline {
    Deadline {
        at: Instant::now() + std::time::Duration::from_micros(delay_us),
    }
}

/// Joins an actor thread, surfacing its result without panicking.
pub fn join_actor(handle: std::thread::JoinHandle<u64>) -> u64 {
    handle
        .join()
        .expect("invariant: actors return errors instead of panicking")
}

/// Safe lookup of a peer link: indexing is banned, `get` is the form.
pub fn link(links: &[u64], node: usize) -> u64 {
    links.get(node).copied().unwrap_or(0)
}
