//! The item-outline parser: recursive descent over the token stream.
//!
//! Not a full AST — just the shapes the passes need:
//!
//! * functions with their qualified name (`Type::name` inside an `impl`),
//!   signature and body token ranges;
//! * `enum` declarations with variant names, field order, and lines;
//! * `const` items with their value token text;
//! * `match` expressions inside a body, split into arms with pattern and
//!   body token ranges.
//!
//! Brace matching over the lexed token stream is exact (strings and
//! comments are already gone), which is what makes the extraction reliable
//! without parsing types or expressions.

use crate::lex::Tok;

/// One `fn` item.
#[derive(Debug)]
pub struct FnItem {
    /// Simple name.
    pub name: String,
    /// `Type::name` for methods in an `impl` block, else the simple name.
    pub qual: String,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// Token range `[start, end)` of the signature: after the name, up to
    /// (excluding) the body's `{` or the terminating `;`.
    pub sig: (usize, usize),
    /// Token range `[start, end)` strictly inside the body braces
    /// (`start == end` for bodiless declarations).
    pub body: (usize, usize),
}

/// One variant of an `enum`.
#[derive(Debug)]
pub struct EnumVariant {
    /// Variant name.
    pub name: String,
    /// Field names in declaration order; tuple fields are `"0"`, `"1"`, …
    pub fields: Vec<String>,
    /// 0-based line of the variant name.
    pub line: usize,
}

/// One `enum` item.
#[derive(Debug)]
pub struct EnumItem {
    /// Enum name.
    pub name: String,
    /// Variants in declaration order.
    pub variants: Vec<EnumVariant>,
    /// Token range `[start, end)` strictly inside the enum's braces.
    pub body: (usize, usize),
}

/// One `const` item (module- or impl-level; consts inside fn bodies are
/// also collected, which is harmless for the passes that read these).
#[derive(Debug)]
pub struct ConstItem {
    /// Const name.
    pub name: String,
    /// The value expression, tokens joined with single spaces.
    pub value: String,
    /// 0-based line of the name.
    pub line: usize,
}

/// Everything the outline parser extracted from one file.
#[derive(Debug, Default)]
pub struct Outline {
    /// Functions, in source order.
    pub fns: Vec<FnItem>,
    /// Enums, in source order.
    pub enums: Vec<EnumItem>,
    /// Consts, in source order.
    pub consts: Vec<ConstItem>,
}

/// Index of the `}` matching the `{` at `open` (or the last token if the
/// stream is unbalanced — lexing guarantees balance for valid Rust).
pub fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Keywords that look like call targets but are not.
const KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "return", "loop", "fn", "let", "else", "in", "as", "move",
    "mut", "ref", "break", "continue", "unsafe", "async", "await", "dyn", "impl", "where",
];

/// True if `name` is a Rust keyword (so `if (x)` is not a call).
pub fn is_keyword(name: &str) -> bool {
    KEYWORDS.contains(&name)
}

impl Outline {
    /// Parses the outline of one file's token stream.
    pub fn parse(toks: &[Tok]) -> Outline {
        let mut out = Outline::default();
        let mut depth = 0i64;
        // (depth the impl block's `{` sits at, type name)
        let mut impl_stack: Vec<(i64, String)> = Vec::new();
        let mut pending_impl: Option<String> = None;
        let mut i = 0;
        while i < toks.len() {
            match toks[i].text.as_str() {
                "{" => {
                    depth += 1;
                    if let Some(name) = pending_impl.take() {
                        impl_stack.push((depth, name));
                    }
                    i += 1;
                }
                "}" => {
                    if impl_stack.last().is_some_and(|(d, _)| *d == depth) {
                        impl_stack.pop();
                    }
                    depth -= 1;
                    i += 1;
                }
                "impl" => {
                    pending_impl = Some(impl_type_name(toks, i + 1));
                    i += 1;
                }
                "enum" => {
                    i = parse_enum(toks, i, &mut out);
                }
                "const" => {
                    i = parse_const(toks, i, &mut out);
                }
                "fn" => {
                    i = parse_fn(toks, i, impl_stack.last().map(|(_, n)| n.as_str()), &mut out);
                }
                _ => i += 1,
            }
        }
        out
    }
}

/// The self-type of an `impl` header starting after the `impl` keyword:
/// first identifier after `for` when present (`impl Trait for Type`), else
/// the first identifier (`impl Type`, generics skipped).
fn impl_type_name(toks: &[Tok], from: usize) -> String {
    let mut first = None;
    let mut after_for = None;
    let mut saw_for = false;
    let mut angle = 0i64;
    for t in toks.iter().skip(from) {
        match t.text.as_str() {
            "{" => break,
            "<" => angle += 1,
            ">" => angle -= 1,
            "for" if angle == 0 => saw_for = true,
            w if angle == 0 && !w.is_empty() && toks_is_type_word(w) => {
                if saw_for {
                    if after_for.is_none() {
                        after_for = Some(w.to_string());
                    }
                } else if first.is_none() {
                    first = Some(w.to_string());
                }
            }
            _ => {}
        }
    }
    after_for.or(first).unwrap_or_default()
}

fn toks_is_type_word(w: &str) -> bool {
    w.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_') && !is_keyword(w)
}

/// Parses `fn name(...) ... { body }` (or a bodiless `;` declaration),
/// records it, and returns the index just past the signature (the body
/// tokens are *not* skipped so nested items and depth tracking still see
/// them — the caller's loop keeps walking).
fn parse_fn(toks: &[Tok], fn_idx: usize, impl_type: Option<&str>, out: &mut Outline) -> usize {
    let Some(name_tok) = toks.get(fn_idx + 1) else {
        return fn_idx + 1;
    };
    if !name_tok.is_word() {
        return fn_idx + 1;
    }
    let name = name_tok.text.clone();
    let sig_start = fn_idx + 2;
    // The signature ends at the first `{` or `;` at paren depth 0. Generic
    // bounds never contain braces, so this is exact in practice.
    let mut paren = 0i64;
    let mut j = sig_start;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" => paren += 1,
            ")" | "]" => paren -= 1,
            "{" if paren == 0 => break,
            ";" if paren == 0 => break,
            _ => {}
        }
        j += 1;
    }
    let body = if toks.get(j).is_some_and(|t| t.text == "{") {
        let close = match_brace(toks, j);
        (j + 1, close)
    } else {
        (j, j)
    };
    let qual = match impl_type {
        Some(t) if !t.is_empty() => format!("{t}::{name}"),
        _ => name.clone(),
    };
    out.fns.push(FnItem {
        name,
        qual,
        line: toks[fn_idx].line,
        sig: (sig_start, j),
        body,
    });
    j + 1
}

/// Parses `enum Name { Variant { a, b }, Tuple(X, Y), Unit, … }` and
/// returns the index just past the enum's closing brace.
fn parse_enum(toks: &[Tok], enum_idx: usize, out: &mut Outline) -> usize {
    let Some(name_tok) = toks.get(enum_idx + 1) else {
        return enum_idx + 1;
    };
    if !name_tok.is_word() {
        return enum_idx + 1;
    }
    let name = name_tok.text.clone();
    let mut j = enum_idx + 2;
    while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
        j += 1;
    }
    if toks.get(j).is_none_or(|t| t.text != "{") {
        return j; // `enum` in some other position; bail.
    }
    let close = match_brace(toks, j);
    let mut variants = Vec::new();
    let mut k = j + 1;
    while k < close {
        // Skip attributes `#[...]`.
        if toks[k].text == "#" && toks.get(k + 1).is_some_and(|t| t.text == "[") {
            let mut bd = 0i64;
            while k < close {
                match toks[k].text.as_str() {
                    "[" => bd += 1,
                    "]" => {
                        bd -= 1;
                        if bd == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            continue;
        }
        if toks[k].text == "," {
            k += 1;
            continue;
        }
        if !toks[k].is_word() {
            k += 1;
            continue;
        }
        let vname = toks[k].text.clone();
        let vline = toks[k].line;
        let mut fields = Vec::new();
        k += 1;
        match toks.get(k).map(|t| t.text.as_str()) {
            Some("{") => {
                let vclose = match_brace(toks, k);
                // Named fields: `ident :` at depth 1 of this brace.
                let mut bd = 0i64;
                let mut m = k;
                while m < vclose {
                    match toks[m].text.as_str() {
                        "{" | "(" | "[" => bd += 1,
                        "}" | ")" | "]" => bd -= 1,
                        ":" if bd == 1 => {
                            if let Some(prev) = toks.get(m - 1) {
                                if prev.is_word() {
                                    fields.push(prev.text.clone());
                                }
                            }
                        }
                        _ => {}
                    }
                    m += 1;
                }
                k = vclose + 1;
            }
            Some("(") => {
                // Tuple fields: count comma-separated types at depth 1.
                let mut bd = 0i64;
                let mut count = 0usize;
                let mut saw_any = false;
                let mut m = k;
                loop {
                    match toks.get(m).map(|t| t.text.as_str()) {
                        Some("(") | Some("[") | Some("{") => bd += 1,
                        Some(")") | Some("]") | Some("}") => {
                            bd -= 1;
                            if bd == 0 {
                                m += 1;
                                break;
                            }
                        }
                        Some(",") if bd == 1 => count += 1,
                        Some(_) if bd == 1 => saw_any = true,
                        None => break,
                        _ => {}
                    }
                    m += 1;
                }
                if saw_any {
                    count += 1;
                }
                for f in 0..count {
                    fields.push(f.to_string());
                }
                k = m;
            }
            _ => {}
        }
        variants.push(EnumVariant {
            name: vname,
            fields,
            line: vline,
        });
    }
    out.enums.push(EnumItem {
        name,
        variants,
        body: (j + 1, close),
    });
    close + 1
}

/// Parses `const NAME: Ty = value;` and returns the index past the `;`.
fn parse_const(toks: &[Tok], const_idx: usize, out: &mut Outline) -> usize {
    let Some(name_tok) = toks.get(const_idx + 1) else {
        return const_idx + 1;
    };
    // `const fn` — not a const item.
    if !name_tok.is_word() || name_tok.text == "fn" {
        return const_idx + 1;
    }
    let name = name_tok.text.clone();
    let line = name_tok.line;
    let mut j = const_idx + 2;
    // Skip to `=` at depth 0 (the type may contain brackets).
    let mut bd = 0i64;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => bd += 1,
            ")" | "]" | "}" => bd -= 1,
            "=" if bd == 0 => break,
            ";" if bd == 0 => return j + 1, // associated const without value
            _ => {}
        }
        j += 1;
    }
    let vstart = j + 1;
    let mut k = vstart;
    while k < toks.len() {
        match toks[k].text.as_str() {
            "(" | "[" | "{" => bd += 1,
            ")" | "]" | "}" => bd -= 1,
            ";" if bd == 0 => break,
            _ => {}
        }
        k += 1;
    }
    let value = toks[vstart..k.min(toks.len())]
        .iter()
        .map(|t| t.text.as_str())
        .collect::<Vec<_>>()
        .join(" ");
    out.consts.push(ConstItem { name, value, line });
    k + 1
}

/// One arm of a `match`.
#[derive(Debug)]
pub struct MatchArm {
    /// Token range `[start, end)` of the pattern (before `=>`), guard
    /// included.
    pub pat: (usize, usize),
    /// Token range `[start, end)` of the arm body (inside braces for block
    /// bodies, up to the arm-separating `,` otherwise).
    pub body: (usize, usize),
    /// 0-based line the pattern starts on.
    pub line: usize,
}

/// One `match` expression.
#[derive(Debug)]
pub struct MatchExpr {
    /// Token range `[start, end)` of the scrutinee.
    pub scrutinee: (usize, usize),
    /// The arms, in order.
    pub arms: Vec<MatchArm>,
    /// 0-based line of the `match` keyword.
    pub line: usize,
}

/// Extracts every `match` expression (outer and nested) inside the token
/// range `[start, end)`.
pub fn matches_in(toks: &[Tok], range: (usize, usize)) -> Vec<MatchExpr> {
    let mut out = Vec::new();
    let mut i = range.0;
    while i < range.1.min(toks.len()) {
        if toks[i].text != "match" {
            i += 1;
            continue;
        }
        // Scrutinee: up to the first `{` at paren depth 0 (struct literals
        // are not allowed in match scrutinees without parens, so this `{`
        // is the match block).
        let mut paren = 0i64;
        let mut j = i + 1;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "{" if paren == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= toks.len() {
            break;
        }
        let close = match_brace(toks, j);
        let arms = parse_arms(toks, j + 1, close);
        out.push(MatchExpr {
            scrutinee: (i + 1, j),
            arms,
            line: toks[i].line,
        });
        // Continue *inside* the block so nested matches are found too.
        i = j + 1;
    }
    out
}

/// Parses the arms between a match block's braces `[start, end)`.
fn parse_arms(toks: &[Tok], start: usize, end: usize) -> Vec<MatchArm> {
    let mut arms = Vec::new();
    let mut i = start;
    while i < end {
        if toks[i].text == "," {
            i += 1;
            continue;
        }
        let pat_start = i;
        // Pattern (and optional guard): up to `=>` at depth 0 relative to
        // the arm — patterns may contain `{ .. }`, `( .. )`, `[ .. ]`.
        let mut bd = 0i64;
        let mut j = i;
        while j < end {
            match toks[j].text.as_str() {
                "(" | "[" | "{" => bd += 1,
                ")" | "]" | "}" => bd -= 1,
                "=>" if bd == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= end {
            break; // trailing tokens with no arrow — not an arm
        }
        let pat = (pat_start, j);
        let line = toks[pat_start].line;
        let body_first = j + 1;
        let body;
        let next_i;
        if toks.get(body_first).is_some_and(|t| t.text == "{") {
            let bclose = match_brace(toks, body_first);
            body = (body_first + 1, bclose);
            next_i = bclose + 1;
        } else {
            // Expression body: up to `,` at depth 0, or the block's end.
            let mut bd2 = 0i64;
            let mut k = body_first;
            while k < end {
                match toks[k].text.as_str() {
                    "(" | "[" | "{" => bd2 += 1,
                    ")" | "]" | "}" => bd2 -= 1,
                    "," if bd2 == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            body = (body_first, k);
            next_i = k;
        }
        arms.push(MatchArm { pat, body, line });
        i = next_i;
    }
    arms
}

/// A call site found inside a body range.
#[derive(Debug)]
pub struct CallSite {
    /// The callee's simple name (last path segment).
    pub name: String,
    /// 0-based line of the call.
    pub line: usize,
    /// Call form: `self.name(...)`, bare `name(...)`, or `Path::name(...)`.
    pub via_self: bool,
}

/// Extracts call sites from `[start, end)`. Only the three resolvable
/// forms produce calls — `self.name(…)`, bare `name(…)`, and
/// `Path::name(…)` — because a general method call `x.name(…)` cannot be
/// resolved without types and would wire unrelated same-named methods
/// together. Macros (`name!(…)`) are excluded.
pub fn calls_in(toks: &[Tok], range: (usize, usize)) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in range.0..range.1.min(toks.len()) {
        if !toks[i].is_word() || is_keyword(&toks[i].text) {
            continue;
        }
        if toks.get(i + 1).is_none_or(|t| t.text != "(") {
            continue;
        }
        // Exclude macro invocations `name!(`.
        // (The `!` sits between the name and `(`, so this form never gets
        // here; `name !` with a space still tokenizes the same way.)
        let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
        match prev {
            Some(".") => {
                // Method call: resolvable only on `self`.
                let recv = i.checked_sub(2).map(|p| toks[p].text.as_str());
                if recv == Some("self") {
                    out.push(CallSite {
                        name: toks[i].text.clone(),
                        line: toks[i].line,
                        via_self: true,
                    });
                }
            }
            Some("::") => {
                out.push(CallSite {
                    name: toks[i].text.clone(),
                    line: toks[i].line,
                    via_self: false,
                });
            }
            Some("fn") => {} // a definition, not a call
            _ => {
                out.push(CallSite {
                    name: toks[i].text.clone(),
                    line: toks[i].line,
                    via_self: false,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::{lex, mark_test_regions, tokenize};

    fn outline(src: &str) -> (Vec<Tok>, Outline) {
        let mut lines = lex(src);
        mark_test_regions(&mut lines);
        let toks = tokenize(&lines);
        let o = Outline::parse(&toks);
        (toks, o)
    }

    #[test]
    fn fns_and_impls_are_qualified() {
        let src = "fn free() { a(); }\nimpl Foo {\n    fn method(&self) -> u32 { 1 }\n}\nimpl Bar for Baz { fn trait_m(&self) {} }\n";
        let (_, o) = outline(src);
        let quals: Vec<&str> = o.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, ["free", "Foo::method", "Baz::trait_m"]);
    }

    #[test]
    fn enum_variants_and_fields_parse() {
        let src = "pub enum Msg {\n    Submit { client: u32, txn: TxnId },\n    Shutdown,\n    Batch(Vec<Msg>),\n}\n";
        let (_, o) = outline(src);
        assert_eq!(o.enums.len(), 1);
        let e = &o.enums[0];
        assert_eq!(e.name, "Msg");
        assert_eq!(e.variants.len(), 3);
        assert_eq!(e.variants[0].name, "Submit");
        assert_eq!(e.variants[0].fields, ["client", "txn"]);
        assert_eq!(e.variants[1].name, "Shutdown");
        assert!(e.variants[1].fields.is_empty());
        assert_eq!(e.variants[2].fields, ["0"]);
    }

    #[test]
    fn consts_capture_shift_expressions() {
        let (_, o) = outline("pub const MAX_FRAME: usize = 1 << 20;\nconst N: u32 = 4096;\n");
        assert_eq!(o.consts[0].name, "MAX_FRAME");
        assert_eq!(o.consts[0].value, "1 << 20");
        assert_eq!(o.consts[1].value, "4096");
    }

    #[test]
    fn match_arms_split_patterns_and_bodies() {
        let src = "fn f(m: Msg) {\n    match m {\n        Msg::Batch(inner) => {\n            for s in inner { self.handle(s); }\n        }\n        Msg::Shutdown => stop(),\n        other => fail(other),\n    }\n}\n";
        let (toks, o) = outline(src);
        let ms = matches_in(&toks, o.fns[0].body);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].arms.len(), 3);
        let pat0: Vec<&str> = toks[ms[0].arms[0].pat.0..ms[0].arms[0].pat.1]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(pat0, ["Msg", "::", "Batch", "(", "inner", ")"]);
    }

    #[test]
    fn calls_resolve_self_bare_and_path_only() {
        let src = "fn f(&self) {\n    self.drive(t);\n    helper(1);\n    Wall::now_us();\n    other.method(2);\n    vec.push(3);\n    assert!(x);\n}\n";
        let (toks, o) = outline(src);
        let calls: Vec<String> = calls_in(&toks, o.fns[0].body)
            .into_iter()
            .map(|c| c.name)
            .collect();
        assert_eq!(calls, ["drive", "helper", "now_us"]);
    }
}
