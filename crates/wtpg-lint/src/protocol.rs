//! Pass 2: protocol exhaustiveness & idempotency for the net actor loops.
//!
//! Three checks per actor file (`control.rs`, `data.rs`, `client.rs`):
//!
//! 1. **Exhaustiveness** — every variant of `enum Msg` (parsed from
//!    `msg.rs`) must be *named* in some match-arm pattern of the file, or
//!    explicitly waived (`lint:allow(protocol: Grant, Reject) reason`).
//!    Wildcard arms deliberately don't count: when a variant is added to
//!    the protocol, every actor must make a conscious decision about it.
//! 2. **Batch recursion** — a `Msg::Batch` arm whose body re-dispatches
//!    through the enclosing handler must contain a nested-batch guard
//!    (some mention of `Msg::Batch` in the body — the
//!    `debug_assert!(!matches!(sub, Msg::Batch(_)))` idiom); otherwise a
//!    malicious or buggy peer nesting batches recurses unboundedly.
//! 3. **Idempotency** — handlers for redeliverable messages must consult
//!    their dedup structure before any side effect, because the
//!    redelivery timer can deliver a message twice. The structure names
//!    are pinned per actor below and cross-checked by the runtime tests.

use crate::outline::{calls_in, matches_in};
use crate::lex::Tok;
use crate::{Finding, Rule, SourceFile};

/// One idempotency obligation: the handler for `variant` must touch one of
/// `dedup` before any of `effects`.
pub struct DedupRule {
    /// `Msg` variant the obligation applies to.
    pub variant: &'static str,
    /// Dedup-structure tokens (field names) that must appear first.
    pub dedup: &'static [&'static str],
    /// Side-effect tokens that must not precede the dedup check.
    pub effects: &'static [&'static str],
}

/// Control actor: `completed`/`chunk_cursor` gate `step_complete` and
/// `progress` (see `wtpg-net/src/control.rs`).
const CONTROL_DEDUP: &[DedupRule] = &[
    DedupRule {
        variant: "AccessDone",
        dedup: &["completed"],
        effects: &["step_complete"],
    },
    DedupRule {
        variant: "StatsDelta",
        dedup: &["completed", "chunk_cursor"],
        effects: &["progress"],
    },
];

/// Data actor: applied-marks gate chunk application.
const DATA_DEDUP: &[DedupRule] = &[DedupRule {
    variant: "Access",
    dedup: &["marks"],
    effects: &["apply_chunk"],
}];

/// Client: the inflight map gates latency recording.
const CLIENT_DEDUP: &[DedupRule] = &[DedupRule {
    variant: "Commit",
    dedup: &["inflight"],
    effects: &["latencies_us", "ctrl_rtts_us"],
}];

/// The actor files of the net runtime, by file-name suffix, with their
/// idempotency obligations.
const ACTOR_FILES: &[(&str, &[DedupRule])] = &[
    ("control.rs", CONTROL_DEDUP),
    ("data.rs", DATA_DEDUP),
    ("client.rs", CLIENT_DEDUP),
];

/// `Msg`-variant names appearing as `Msg::X` sequences in `[start, end)`.
fn msg_variants_in(toks: &[Tok], range: (usize, usize)) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let end = range.1.min(toks.len());
    let mut i = range.0;
    while i + 2 < end {
        if toks[i].text == "Msg" && toks[i + 1].text == "::" && toks[i + 2].is_word() {
            out.push((toks[i + 2].text.clone(), toks[i + 2].line));
            i += 3;
            continue;
        }
        i += 1;
    }
    out
}

/// Runs the protocol pass over the `wtpg-net` crate's files: finds
/// `enum Msg` in `msg.rs` and checks every actor file against it.
pub fn check_net(files: &mut [SourceFile], out: &mut Vec<Finding>) {
    let variants: Vec<String> = match files
        .iter()
        .find(|f| f.path.to_string_lossy().replace('\\', "/").ends_with("/msg.rs"))
        .and_then(|f| f.outline.enums.iter().find(|e| e.name == "Msg"))
    {
        Some(e) => e.variants.iter().map(|v| v.name.clone()).collect(),
        None => return, // no protocol enum — nothing to check
    };
    check_actors(&variants, files, out);
}

/// Checks every actor file (matched by file-name suffix) against the
/// given `Msg` variant list. Split from [`check_net`] so fixtures can
/// supply their own enum.
pub fn check_actors(variants: &[String], files: &mut [SourceFile], out: &mut Vec<Finding>) {
    for sf in files.iter_mut() {
        let path = sf.path.to_string_lossy().replace('\\', "/");
        let Some((_, dedup)) = ACTOR_FILES
            .iter()
            .find(|(name, _)| path.ends_with(&format!("/{name}")) || path == *name)
        else {
            continue;
        };
        check_file(variants, sf, dedup, out);
    }
}

fn check_file(
    variants: &[String],
    sf: &mut SourceFile,
    dedup_rules: &[DedupRule],
    out: &mut Vec<Finding>,
) {
    sf.mark_ran(Rule::Protocol);
    let mut emits: Vec<(usize, String, String)> = Vec::new();

    // Walk every match arm in every fn; collect the variants named in
    // patterns (constructions in arm bodies don't count).
    let mut matched: Vec<String> = Vec::new();
    let mut anchor: Option<usize> = None;
    for fun in &sf.outline.fns {
        for m in matches_in(&sf.tokens, fun.body) {
            for arm in &m.arms {
                let named = msg_variants_in(&sf.tokens, arm.pat);
                if !named.is_empty() && anchor.is_none() {
                    anchor = Some(m.line);
                }
                for (v, _) in &named {
                    if !matched.contains(v) {
                        matched.push(v.clone());
                    }
                }
                // Batch recursion: re-dispatch without a nested-batch guard.
                if named.iter().any(|(v, _)| v == "Batch") {
                    let recurses = calls_in(&sf.tokens, arm.body)
                        .iter()
                        .any(|c| c.name == fun.name);
                    let guarded = !msg_variants_in(&sf.tokens, arm.body).is_empty();
                    if recurses && !guarded {
                        emits.push((
                            arm.line,
                            "Batch".to_string(),
                            format!(
                                "`Msg::Batch` arm re-dispatches via `{}` without guarding against nested batches",
                                fun.name
                            ),
                        ));
                    }
                }
                // Idempotency: dedup structure before side effects.
                for rule in dedup_rules {
                    if !named.iter().any(|(v, _)| v == rule.variant) {
                        continue;
                    }
                    let body = &sf.tokens[arm.body.0..arm.body.1.min(sf.tokens.len())];
                    let eff = body
                        .iter()
                        .position(|t| rule.effects.contains(&t.text.as_str()));
                    let ded = body
                        .iter()
                        .position(|t| rule.dedup.contains(&t.text.as_str()));
                    if let Some(e) = eff {
                        if ded.is_none_or(|d| d > e) {
                            emits.push((
                                arm.line,
                                rule.variant.to_string(),
                                format!(
                                    "handler for redeliverable `Msg::{}` must consult its dedup structure ({}) before side effects (`{}`)",
                                    rule.variant,
                                    rule.dedup.join("/"),
                                    body[e].text
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }

    match anchor {
        Some(line) => {
            for v in variants {
                if !matched.contains(v) {
                    emits.push((
                        line,
                        v.clone(),
                        format!(
                            "actor loop never names `Msg::{v}` in a match pattern (wildcards don't count) — handle it or waive with `lint:allow(protocol: {v})`"
                        ),
                    ));
                }
            }
        }
        None => {
            emits.push((
                0,
                String::new(),
                "actor file has no match naming any `Msg` variant".to_string(),
            ));
        }
    }

    for (line, key, msg) in emits {
        sf.emit(out, line, Rule::Protocol, &key, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn variants() -> Vec<String> {
        ["Ping", "Pong", "Access", "Batch"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    fn run(file: &str, src: &str) -> Vec<Finding> {
        let mut files = vec![SourceFile::parse(&PathBuf::from(file), src)];
        let mut out = Vec::new();
        check_actors(&variants(), &mut files, &mut out);
        out
    }

    #[test]
    fn missing_variant_fires_and_waiver_with_detail_covers() {
        let src = "impl A { fn handle(&mut self, m: Msg) {\n    match m {\n        Msg::Ping => self.pong(),\n        Msg::Pong => {}\n        Msg::Access => {}\n        Msg::Batch(_) => {}\n        _ => {}\n    }\n} }\n";
        assert!(run("x/control.rs", src).is_empty(), "{:?}", run("x/control.rs", src));
        let missing = "impl A { fn handle(&mut self, m: Msg) {\n    match m {\n        Msg::Ping => {}\n        Msg::Access => {}\n        Msg::Batch(_) => {}\n        _ => {}\n    }\n} }\n";
        let f = run("x/control.rs", missing);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("Msg::Pong"), "{f:?}");
        let waived = "impl A {\n    // lint:allow(protocol: Pong) pong is send-only for this actor\n    fn handle(&mut self, m: Msg) {\n    match m {\n        Msg::Ping => {}\n        Msg::Access => {}\n        Msg::Batch(_) => {}\n        _ => {}\n    }\n} }\n";
        assert!(run("x/control.rs", waived).is_empty(), "{:?}", run("x/control.rs", waived));
    }

    #[test]
    fn unguarded_batch_recursion_fires() {
        let bad = "impl A { fn handle(&mut self, m: Msg) {\n    match m {\n        Msg::Ping => {}\n        Msg::Pong => {}\n        Msg::Access => {}\n        Msg::Batch(inner) => {\n            for s in inner { self.handle(s); }\n        }\n    }\n} }\n";
        let f = run("x/control.rs", bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("nested batches"), "{f:?}");
        let good = "impl A { fn handle(&mut self, m: Msg) {\n    match m {\n        Msg::Ping => {}\n        Msg::Pong => {}\n        Msg::Access => {}\n        Msg::Batch(inner) => {\n            for s in inner { debug_assert!(!matches!(s, Msg::Batch(_))); self.handle(s); }\n        }\n    }\n} }\n";
        assert!(run("x/control.rs", good).is_empty(), "{:?}", run("x/control.rs", good));
    }

    #[test]
    fn side_effect_before_dedup_fires() {
        let bad = "impl D { fn handle(&mut self, m: Msg) {\n    match m {\n        Msg::Ping => {}\n        Msg::Pong => {}\n        Msg::Batch(_) => {}\n        Msg::Access => {\n            self.store.apply_chunk(1);\n            self.marks.insert(1);\n        }\n    }\n} }\n";
        let f = run("x/data.rs", bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("dedup"), "{f:?}");
        let good = "impl D { fn handle(&mut self, m: Msg) {\n    match m {\n        Msg::Ping => {}\n        Msg::Pong => {}\n        Msg::Batch(_) => {}\n        Msg::Access => {\n            if self.marks.contains(&1) { return; }\n            self.store.apply_chunk(1);\n        }\n    }\n} }\n";
        assert!(run("x/data.rs", good).is_empty(), "{:?}", run("x/data.rs", good));
    }

    #[test]
    fn non_actor_files_are_skipped() {
        assert!(run("x/msg.rs", "fn f() {}\n").is_empty());
    }
}
