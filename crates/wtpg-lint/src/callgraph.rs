//! An approximate intra-crate call graph over the outline.
//!
//! Resolution is by simple name: a call site `drive(…)`, `self.drive(…)`
//! or `Path::drive(…)` is wired to *every* function named `drive` in the
//! same crate. That over-approximates (two unrelated `new`s get merged)
//! but never misses an intra-crate edge for the three resolvable call
//! forms, which is the right bias for taint propagation and lock-order
//! checking. General method calls (`x.drive(…)`) are deliberately *not*
//! edges — see [`crate::outline::calls_in`].

use std::collections::BTreeMap;

use crate::lex::Tok;
use crate::outline::{calls_in, Outline};

/// One function node of the crate-wide graph.
pub struct FnNode {
    /// Index of the owning file in the crate's file list.
    pub file: usize,
    /// Index of the fn in that file's outline.
    pub fn_idx: usize,
    /// Qualified name (`Type::name` or `name`).
    pub qual: String,
    /// Callees, as indices into [`CallGraph::nodes`].
    pub callees: Vec<usize>,
}

/// The per-crate call graph.
pub struct CallGraph {
    /// All functions of the crate, in (file, fn) order.
    pub nodes: Vec<FnNode>,
    /// Simple name → node indices bearing that name.
    pub by_name: BTreeMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph for one crate's files (`(tokens, outline)` pairs,
    /// in the crate's file order).
    pub fn build(files: &[(&[Tok], &Outline)]) -> CallGraph {
        let mut nodes = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (fi, (_, outline)) in files.iter().enumerate() {
            for (gi, f) in outline.fns.iter().enumerate() {
                by_name.entry(f.name.clone()).or_default().push(nodes.len());
                nodes.push(FnNode {
                    file: fi,
                    fn_idx: gi,
                    qual: f.qual.clone(),
                    callees: Vec::new(),
                });
            }
        }
        let mut idx_of: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for (ni, n) in nodes.iter().enumerate() {
            idx_of.insert((n.file, n.fn_idx), ni);
        }
        for (fi, (toks, outline)) in files.iter().enumerate() {
            for (gi, f) in outline.fns.iter().enumerate() {
                let Some(&ni) = idx_of.get(&(fi, gi)) else {
                    continue;
                };
                let mut callees = Vec::new();
                for call in calls_in(toks, f.body) {
                    if let Some(targets) = by_name.get(&call.name) {
                        for &t in targets {
                            if t != ni && !callees.contains(&t) {
                                callees.push(t);
                            }
                        }
                    }
                }
                nodes[ni].callees = callees;
            }
        }
        CallGraph { nodes, by_name }
    }

    /// Every node reachable from `start` (excluding `start` itself unless
    /// it sits on a cycle).
    pub fn reachable(&self, start: usize) -> Vec<usize> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = self.nodes[start].callees.clone();
        let mut out = Vec::new();
        while let Some(n) = stack.pop() {
            if seen[n] {
                continue;
            }
            seen[n] = true;
            out.push(n);
            stack.extend(self.nodes[n].callees.iter().copied());
        }
        out
    }

    /// Node index of the fn at (file, fn_idx), if present.
    pub fn node_at(&self, file: usize, fn_idx: usize) -> Option<usize> {
        self.nodes
            .iter()
            .position(|n| n.file == file && n.fn_idx == fn_idx)
    }
}
