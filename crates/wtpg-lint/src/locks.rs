//! Pass 1: lock-order analysis against the declared hierarchy.
//!
//! The manifest (`lint-locks.toml`) declares lock *classes* — a name, a
//! rank, the file whose `.lock()` sites belong to it, and optionally the
//! receiver expression (`self.state`) to disambiguate several mutexes in
//! one file. Legal nesting acquires strictly increasing ranks (control
//! mutex → submission queue → node store); acquiring a class of rank ≤ any
//! held rank — including a second lock of the same class or rank, the
//! "two same-rank store locks" deadlock shape — is a finding, whether the
//! acquisition is in the function itself or anywhere in its (approximate,
//! intra-crate) call graph.
//!
//! What counts as *held*: a `let`-bound guard — a statement whose
//! right-hand side is a `.lock()` chain post-processed only by
//! `expect`/`unwrap`/`unwrap_or_else`/`?` — from its binding until
//! `drop(name)` or the end of the function. Expression-position locks
//! (`self.nodes[i].lock().expect(…).apply(…)` tail calls, `if let Ok(g) =
//! m.lock()`) are temporaries: they are checked against the held set at
//! the acquisition point but conservatively not tracked as held. A
//! function whose signature returns a `MutexGuard` (`ControlNode::locked`)
//! is treated as an acquisition of its first acquired class at every call
//! site.
//!
//! Fail-closed: a `.lock()` site that no manifest class covers is itself a
//! finding — new mutexes must be declared (or waived with
//! `lint:allow(lock-order)`).

use crate::callgraph::CallGraph;
use crate::lex::Tok;
use crate::outline::{is_keyword, Outline};
use crate::{Finding, Rule, SourceFile};

/// One declared lock class.
#[derive(Debug)]
pub struct LockClass {
    /// Class name, used in findings and waiver detail keys.
    pub name: String,
    /// Acquisition rank: legal nesting is strictly increasing.
    pub rank: u32,
    /// Path suffix of the file whose `.lock()` sites this class covers.
    pub file: String,
    /// Receiver expression (`self.state`); empty matches any receiver in
    /// the file.
    pub recv: String,
}

/// The parsed manifest.
#[derive(Debug)]
pub struct LockManifest {
    /// Declared classes, in file order.
    pub classes: Vec<LockClass>,
}

#[derive(Default)]
struct ClassBuilder {
    name: Option<String>,
    rank: Option<u32>,
    file: Option<String>,
    recv: String,
}

impl ClassBuilder {
    fn build(self, at_line: usize) -> Result<LockClass, String> {
        Ok(LockClass {
            name: self
                .name
                .ok_or(format!("[[lock]] before line {at_line} has no `name`"))?,
            rank: self
                .rank
                .ok_or(format!("[[lock]] before line {at_line} has no `rank`"))?,
            file: self
                .file
                .ok_or(format!("[[lock]] before line {at_line} has no `file`"))?,
            recv: self.recv,
        })
    }
}

fn unquote(v: &str) -> Result<String, String> {
    let v = v.trim();
    v.strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(|v| v.to_string())
        .ok_or(format!("expected a quoted string, got `{v}`"))
}

impl LockManifest {
    /// Parses the `lint-locks.toml` subset: `#` comments and `[[lock]]`
    /// tables with `name`/`rank`/`file`/`recv` keys.
    pub fn parse(text: &str) -> Result<LockManifest, String> {
        let mut classes: Vec<LockClass> = Vec::new();
        let mut cur: Option<ClassBuilder> = None;
        let mut lno = 0;
        for (i, raw) in text.lines().enumerate() {
            lno = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[lock]]" {
                if let Some(b) = cur.take() {
                    classes.push(b.build(lno)?);
                }
                cur = Some(ClassBuilder::default());
                continue;
            }
            let Some(b) = cur.as_mut() else {
                return Err(format!("line {lno}: key outside a [[lock]] table"));
            };
            let Some((k, v)) = line.split_once('=') else {
                return Err(format!("line {lno}: expected `key = value`"));
            };
            match k.trim() {
                "name" => b.name = Some(unquote(v)?),
                "file" => b.file = Some(unquote(v)?),
                "recv" => b.recv = unquote(v)?,
                "rank" => {
                    b.rank = Some(
                        v.trim()
                            .parse()
                            .map_err(|_| format!("line {lno}: bad rank `{}`", v.trim()))?,
                    )
                }
                other => return Err(format!("line {lno}: unknown key `{other}`")),
            }
        }
        if let Some(b) = cur.take() {
            classes.push(b.build(lno + 1)?);
        }
        if classes.is_empty() {
            return Err("no [[lock]] entries".to_string());
        }
        Ok(LockManifest { classes })
    }

    /// The class covering a `.lock()` site in `path_slash` with receiver
    /// `recv`, if declared.
    fn class_for(&self, path_slash: &str, recv: &str) -> Option<usize> {
        self.classes.iter().position(|c| {
            path_slash.ends_with(&c.file) && (c.recv.is_empty() || c.recv == recv)
        })
    }
}

/// Is `toks[i]` the `lock` of a `.lock()` acquisition?
fn is_acquire(toks: &[Tok], i: usize) -> bool {
    toks[i].text == "lock"
        && i >= 1
        && toks[i - 1].text == "."
        && toks.get(i + 1).is_some_and(|t| t.text == "(")
        && toks.get(i + 2).is_some_and(|t| t.text == ")")
}

/// The receiver expression before the `.` at `dot_idx`, rebuilt by walking
/// left over idents, `self`, `.`/`::`/`?` and balanced `(…)`/`[…]` groups
/// (collapsed to `(..)`/`[..]`). Stops at anything else, so
/// `let g = self.state.lock()` yields `self.state`.
fn receiver_before(toks: &[Tok], dot_idx: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot_idx as i64 - 1;
    while j >= 0 {
        let t = toks[j as usize].text.as_str();
        if t == ")" || t == "]" {
            let (open, collapsed) = if t == ")" { ("(", "(..)") } else { ("[", "[..]") };
            let close = t;
            let mut depth = 1i64;
            let mut k = j - 1;
            while k >= 0 && depth > 0 {
                let u = toks[k as usize].text.as_str();
                if u == close {
                    depth += 1;
                } else if u == open {
                    depth -= 1;
                }
                k -= 1;
            }
            parts.push(collapsed.to_string());
            j = k;
            continue;
        }
        if t == "." || t == "::" || t == "?" || toks[j as usize].is_word() {
            if toks[j as usize].is_word() && is_keyword(t) {
                break;
            }
            parts.push(t.to_string());
            j -= 1;
            continue;
        }
        break;
    }
    parts.reverse();
    parts.concat()
}

/// Index of the `)` matching the `(` at `open`.
fn close_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Guard-preserving chain methods: the only post-processing that still
/// yields a `MutexGuard` binding.
const GUARD_CHAIN: &[&str] = &["expect", "unwrap", "unwrap_or_else"];

/// Does the token range `[from, to)` consist only of guard-preserving
/// chain steps (`.expect(…)`, `.unwrap()`, `.unwrap_or_else(…)`, `?`)?
/// Anything else — a field access, `.clone()` — means the statement binds
/// derived data, not the guard.
fn chain_extends_to(toks: &[Tok], from: usize, to: usize) -> bool {
    let mut j = from;
    loop {
        if j >= to {
            return j == to;
        }
        let t = toks[j].text.as_str();
        if t == "?" {
            j += 1;
            continue;
        }
        if t == "."
            && toks
                .get(j + 1)
                .is_some_and(|t| GUARD_CHAIN.contains(&t.text.as_str()))
            && toks.get(j + 2).is_some_and(|t| t.text == "(")
        {
            j = close_paren(toks, j + 2) + 1;
            continue;
        }
        return false;
    }
}

/// One pending violation, pre-`emit`: `(file, line, key, message)`.
type Emit = (usize, usize, String, String);

/// Runs the lock-order pass over one crate's files.
pub fn check(files: &mut [SourceFile], manifest: &LockManifest, out: &mut Vec<Finding>) {
    let parts: Vec<(&[Tok], &Outline)> = files
        .iter()
        .map(|sf| (sf.tokens.as_slice(), &sf.outline))
        .collect();
    let cg = CallGraph::build(&parts);
    let n = cg.nodes.len();

    // Direct acquisition classes per fn, undeclared sites, guard-returners.
    let mut direct: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut guard_class: Vec<Option<usize>> = vec![None; n];
    let mut emits: Vec<Emit> = Vec::new();
    for (ni, node) in cg.nodes.iter().enumerate() {
        let sf = &files[node.file];
        let path = sf.path.to_string_lossy().replace('\\', "/");
        let fun = &sf.outline.fns[node.fn_idx];
        for i in fun.body.0..fun.body.1.min(sf.tokens.len()) {
            if !is_acquire(&sf.tokens, i) {
                continue;
            }
            let recv = receiver_before(&sf.tokens, i - 1);
            match manifest.class_for(&path, &recv) {
                Some(c) => {
                    if !direct[ni].contains(&c) {
                        direct[ni].push(c);
                    }
                }
                None => emits.push((
                    node.file,
                    sf.tokens[i].line,
                    recv.clone(),
                    format!(
                        "undeclared lock acquisition (receiver `{recv}`) — add a [[lock]] class to lint-locks.toml"
                    ),
                )),
            }
        }
        let sig_has_guard = sf.tokens[fun.sig.0..fun.sig.1.min(sf.tokens.len())]
            .iter()
            .any(|t| t.text == "MutexGuard");
        if sig_has_guard {
            guard_class[ni] = direct[ni].first().copied();
        }
    }

    // Transitive acquisition classes per fn.
    let mut trans: Vec<Vec<usize>> = vec![Vec::new(); n];
    for ni in 0..n {
        let mut set = direct[ni].clone();
        for r in cg.reachable(ni) {
            for &c in &direct[r] {
                if !set.contains(&c) {
                    set.push(c);
                }
            }
        }
        trans[ni] = set;
    }

    // Simulate each fn's body linearly.
    for (ni, node) in cg.nodes.iter().enumerate() {
        simulate(
            files, &cg, manifest, &direct, &trans, &guard_class, ni, node.file, &mut emits,
        );
    }

    for sf in files.iter_mut() {
        sf.mark_ran(Rule::LockOrder);
    }
    for (fi, line, key, msg) in emits {
        files[fi].emit(out, line, Rule::LockOrder, &key, msg);
    }
}

/// Checks acquiring `class` while `held` locks are live; records a
/// violation for each held class of rank ≥ the new class's rank.
fn record_conflicts(
    manifest: &LockManifest,
    held: &[(String, usize)],
    class: usize,
    fi: usize,
    line: usize,
    via: Option<&str>,
    emits: &mut Vec<Emit>,
) {
    for (_, hc) in held {
        let (c, h) = (&manifest.classes[class], &manifest.classes[*hc]);
        if c.rank > h.rank {
            continue;
        }
        let msg = match via {
            Some(callee) => format!(
                "call to `{callee}` acquires lock class `{}` (rank {}) while holding `{}` (rank {}) — out of declared order",
                c.name, c.rank, h.name, h.rank
            ),
            None => format!(
                "acquires lock class `{}` (rank {}) while holding `{}` (rank {}) — out of declared order",
                c.name, c.rank, h.name, h.rank
            ),
        };
        emits.push((fi, line, c.name.clone(), msg));
    }
}

#[allow(clippy::too_many_arguments)]
fn simulate(
    files: &[SourceFile],
    cg: &CallGraph,
    manifest: &LockManifest,
    _direct: &[Vec<usize>],
    trans: &[Vec<usize>],
    guard_class: &[Option<usize>],
    ni: usize,
    fi: usize,
    emits: &mut Vec<Emit>,
) {
    let node = &cg.nodes[ni];
    let sf = &files[fi];
    let toks = &sf.tokens;
    let path = sf.path.to_string_lossy().replace('\\', "/");
    let fun = &sf.outline.fns[node.fn_idx];
    let (start, end) = (fun.body.0, fun.body.1.min(toks.len()));

    let mut held: Vec<(String, usize)> = Vec::new();
    // Binding name of a `let` statement awaiting its `;`.
    let mut pending_let: Option<String> = None;
    // Last acquisition chain: (class, token index just past the chain).
    let mut last_chain: Option<(usize, usize)> = None;

    let mut i = start;
    while i < end {
        let t = toks[i].text.as_str();
        if t == "let" {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.text == "mut") {
                j += 1;
            }
            pending_let = match (toks.get(j), toks.get(j + 1)) {
                (Some(name), Some(next))
                    if name.is_word()
                        && !is_keyword(&name.text)
                        && (next.text == ":" || next.text == "=") =>
                {
                    Some(name.text.clone())
                }
                _ => None,
            };
            last_chain = None;
            i += 1;
            continue;
        }
        if t == "drop"
            && toks.get(i + 1).is_some_and(|t| t.text == "(")
            && toks.get(i + 2).is_some_and(|t| t.is_word())
            && toks.get(i + 3).is_some_and(|t| t.text == ")")
        {
            let name = toks[i + 2].text.clone();
            held.retain(|(h, _)| *h != name);
            i += 4;
            continue;
        }
        if t == ";" {
            if let (Some(name), Some((class, chain_end))) = (&pending_let, &last_chain) {
                if chain_extends_to(toks, *chain_end, i) {
                    held.push((name.clone(), *class));
                }
            }
            pending_let = None;
            last_chain = None;
            i += 1;
            continue;
        }
        if is_acquire(toks, i) {
            let recv = receiver_before(toks, i - 1);
            if let Some(c) = manifest.class_for(&path, &recv) {
                record_conflicts(manifest, &held, c, fi, toks[i].line, None, emits);
                last_chain = Some((c, i + 3));
            }
            i += 3; // past `lock ( )`
            continue;
        }
        // Resolvable call site: check the callee's transitive acquisitions
        // against the held set; a MutexGuard-returning callee acts as an
        // acquisition chain for `let` binding purposes.
        if toks[i].is_word()
            && !is_keyword(t)
            && toks.get(i + 1).is_some_and(|t| t.text == "(")
        {
            let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
            let resolvable = match prev {
                Some(".") => i >= 2 && toks[i - 2].text == "self",
                Some("fn") => false,
                _ => true,
            };
            if resolvable {
                if let Some(targets) = cg.by_name.get(t) {
                    let line = toks[i].line;
                    let mut flagged: Vec<usize> = Vec::new();
                    for &tgt in targets {
                        if tgt == ni {
                            continue;
                        }
                        for &c in &trans[tgt] {
                            if flagged.contains(&c) {
                                continue;
                            }
                            let before = emits.len();
                            record_conflicts(
                                manifest,
                                &held,
                                c,
                                fi,
                                line,
                                Some(&cg.nodes[tgt].qual),
                                emits,
                            );
                            if emits.len() > before {
                                flagged.push(c);
                            }
                        }
                        if let Some(gc) = guard_class[tgt] {
                            last_chain = Some((gc, close_paren(toks, i + 1) + 1));
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    const MANIFEST: &str = r#"
[[lock]]
name = "alpha"
rank = 0
file = "locks_test.rs"
recv = "self.a"

[[lock]]
name = "beta"
rank = 1
file = "locks_test.rs"
recv = "self.b"
"#;

    fn run(src: &str) -> Vec<Finding> {
        let m = LockManifest::parse(MANIFEST).expect("manifest parses");
        let mut files = vec![SourceFile::parse(&PathBuf::from("locks_test.rs"), src)];
        let mut out = Vec::new();
        check(&mut files, &m, &mut out);
        out
    }

    #[test]
    fn ordered_nesting_is_clean() {
        let src = "impl S { fn f(&self) {\n    let g = self.a.lock().unwrap();\n    let h = self.b.lock().unwrap();\n    drop(h); drop(g);\n} }\n";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn inverted_nesting_fires() {
        let src = "impl S { fn f(&self) {\n    let g = self.b.lock().unwrap();\n    let h = self.a.lock().unwrap();\n} }\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`alpha`"), "{f:?}");
        assert!(f[0].message.contains("`beta`"), "{f:?}");
    }

    #[test]
    fn double_same_class_fires() {
        let src = "impl S { fn f(&self) {\n    let g = self.a.lock().unwrap();\n    let h = self.a.lock().unwrap();\n} }\n";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = "impl S { fn f(&self) {\n    let g = self.b.lock().unwrap();\n    drop(g);\n    let h = self.a.lock().unwrap();\n} }\n";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn derived_binding_is_not_a_guard() {
        // Binds a length, not the guard — the lock is a temporary.
        let src = "impl S { fn f(&self) {\n    let len = self.b.lock().unwrap().items.len();\n    let g = self.a.lock().unwrap();\n} }\n";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn violation_through_call_graph_fires() {
        let src = "impl S {\n    fn low(&self) { let g = self.a.lock().unwrap(); }\n    fn f(&self) {\n        let h = self.b.lock().unwrap();\n        self.low();\n    }\n}\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("call to `S::low`"), "{f:?}");
    }

    #[test]
    fn undeclared_receiver_fires() {
        let src = "impl S { fn f(&self) { let g = self.other.lock().unwrap(); } }\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("undeclared"), "{f:?}");
        assert!(f[0].message.contains("self.other"), "{f:?}");
    }

    #[test]
    fn manifest_rejects_missing_keys() {
        assert!(LockManifest::parse("[[lock]]\nname = \"x\"\n").is_err());
        assert!(LockManifest::parse("rank = 1\n").is_err());
    }
}
