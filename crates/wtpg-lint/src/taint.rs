//! Pass 3: call-graph determinism taint.
//!
//! The old determinism rule was a per-file deny list: exempt files
//! (`wall.rs`, the net actor loops, `tcp.rs`) could do anything, and a
//! protected file calling into them was invisible. This pass keeps the
//! same *seeds* — `SystemTime`, clock `Instant`, `thread_rng`,
//! hash-ordered collections — but propagates them along the approximate
//! intra-crate call graph:
//!
//! 1. every seed token in a *protected* file is a direct finding (same
//!    message the per-line rule used, so existing waivers keep working);
//! 2. a function is *tainted* if its own tokens contain a seed or if it
//!    calls (by any resolvable form) a tainted function;
//! 3. a protected function calling a tainted function that lives in an
//!    *exempt* file is a finding at the call site — the leak the per-file
//!    rule could never see.
//!
//! Only the three resolvable call forms (`self.f(…)`, `f(…)`,
//! `Path::f(…)`) propagate (see [`crate::outline::calls_in`]); general
//! method calls would wire unrelated same-named methods together.
//! Cross-crate calls are not modeled — each crate's protection boundary
//! is checked within that crate.

use std::path::Path;

use crate::callgraph::CallGraph;
use crate::lex::Tok;
use crate::outline::{calls_in, Outline};
use crate::{Finding, Rule, SourceFile};

/// Tokens that seed determinism taint. Word-exact matched on the token
/// stream; `Instant` is additionally path-qualified (see [`direct_seeds`]).
pub const SEED_TOKENS: &[&str] = &["HashMap", "HashSet", "SystemTime", "Instant", "thread_rng"];

/// Classifies the token at `i`: returns the canonical seed name if it is a
/// determinism seed. `Instant` is the subtle one — the observer has an
/// `EventKind::Instant` trace phase that is not a clock — so a qualified
/// `X::Instant` seeds only when the path segment before it is `time`, and
/// a bare `Instant` on the declaration line of an enum variant named
/// `Instant` is the variant, not the type.
fn seed_at(toks: &[Tok], i: usize, outline: &Outline) -> Option<&'static str> {
    let text = toks[i].text.as_str();
    let canon = SEED_TOKENS.iter().find(|s| **s == text)?;
    if text == "Instant" {
        if i >= 1 && toks[i - 1].text == "::" {
            if i >= 2 && toks[i - 2].text == "time" {
                return Some(canon);
            }
            return None;
        }
        let line = toks[i].line;
        let declared_variant = outline.enums.iter().any(|e| {
            e.variants
                .iter()
                .any(|v| v.name == "Instant" && v.line == line)
        });
        if declared_variant {
            return None;
        }
    }
    Some(canon)
}

/// Every seed occurrence in the token stream, as `(0-based line, token)`.
/// Shared with the per-line determinism rule so file-level and taint-level
/// checks agree on what a seed is.
pub fn direct_seeds(toks: &[Tok], outline: &Outline) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if let Some(canon) = seed_at(toks, i, outline) {
            out.push((toks[i].line, canon.to_string()));
        }
    }
    out
}

/// A tainted function's witness: where the seed actually is.
#[derive(Clone)]
struct Witness {
    file: usize,
    line: usize,
    token: String,
}

/// Runs the taint pass over one crate's files. `protected` decides which
/// files are determinism-protected (the workspace driver passes
/// `rules_for(path).determinism`); the rest are exempt but still
/// propagate taint.
pub fn check(files: &mut [SourceFile], protected: &dyn Fn(&Path) -> bool, out: &mut Vec<Finding>) {
    let prot: Vec<bool> = files.iter().map(|sf| protected(&sf.path)).collect();
    if !prot.iter().any(|&b| b) {
        return;
    }
    let parts: Vec<(&[Tok], &Outline)> = files
        .iter()
        .map(|sf| (sf.tokens.as_slice(), &sf.outline))
        .collect();
    let cg = CallGraph::build(&parts);

    // Direct seeds per function (signature + body — a clock-typed
    // parameter taints the fn just like a clock read).
    let n = cg.nodes.len();
    let mut tainted: Vec<Option<Witness>> = vec![None; n];
    for (ni, node) in cg.nodes.iter().enumerate() {
        let sf = &files[node.file];
        let fun = &sf.outline.fns[node.fn_idx];
        for range in [fun.sig, fun.body] {
            for i in range.0..range.1.min(sf.tokens.len()) {
                if let Some(canon) = seed_at(&sf.tokens, i, &sf.outline) {
                    tainted[ni] = Some(Witness {
                        file: node.file,
                        line: sf.tokens[i].line,
                        token: canon.to_string(),
                    });
                    break;
                }
            }
            if tainted[ni].is_some() {
                break;
            }
        }
    }
    // Fixpoint: a caller of a tainted fn inherits its witness.
    loop {
        let mut changed = false;
        for ni in 0..n {
            if tainted[ni].is_some() {
                continue;
            }
            let hit = cg.nodes[ni]
                .callees
                .iter()
                .find_map(|&c| tainted[c].clone());
            if let Some(w) = hit {
                tainted[ni] = Some(w);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Collect findings first (emit needs &mut files).
    let mut emits: Vec<(usize, usize, String, String)> = Vec::new();
    for (fi, sf) in files.iter().enumerate() {
        if !prot[fi] {
            continue;
        }
        // 1. Direct seeds anywhere in the protected file (module level
        //    included), deduped per (line, token).
        let mut seen: Vec<(usize, String)> = Vec::new();
        for (line, tok) in direct_seeds(&sf.tokens, &sf.outline) {
            if seen.contains(&(line, tok.clone())) {
                continue;
            }
            seen.push((line, tok.clone()));
            emits.push((
                fi,
                line,
                tok.clone(),
                format!("nondeterministic construct `{tok}`"),
            ));
        }
        // 2. Calls from this file's fns into tainted fns of exempt files.
        for (gi, fun) in sf.outline.fns.iter().enumerate() {
            if cg.node_at(fi, gi).is_none() {
                continue;
            }
            for call in calls_in(&sf.tokens, fun.body) {
                let Some(targets) = cg.by_name.get(&call.name) else {
                    continue;
                };
                for &t in targets {
                    let tn = &cg.nodes[t];
                    if prot[tn.file] {
                        continue; // its own direct finding covers it
                    }
                    if let Some(w) = &tainted[t] {
                        let wfile = files[w.file]
                            .path
                            .file_name()
                            .map(|f| f.to_string_lossy().into_owned())
                            .unwrap_or_default();
                        emits.push((
                            fi,
                            call.line,
                            call.name.clone(),
                            format!(
                                "call to `{}` reaches nondeterministic `{}` ({}:{})",
                                tn.qual,
                                w.token,
                                wfile,
                                w.line + 1
                            ),
                        ));
                        break;
                    }
                }
            }
        }
    }
    for (fi, sf) in files.iter_mut().enumerate() {
        if prot[fi] {
            sf.mark_ran(Rule::Determinism);
        }
    }
    for (fi, line, key, msg) in emits {
        files[fi].emit(out, line, Rule::Determinism, &key, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sf(name: &str, src: &str) -> SourceFile {
        SourceFile::parse(&PathBuf::from(name), src)
    }

    #[test]
    fn taint_leaks_across_files_through_calls() {
        let clock = "pub fn now_ms() -> u64 { SystemTime::now().into() }\n\
                     pub fn mid() -> u64 { now_ms() + 1 }\n\
                     pub fn pure() -> u64 { 7 }\n";
        let user = "pub fn tick() -> u64 { mid() }\npub fn fine() -> u64 { pure() }\n";
        let mut files = vec![sf("exempt/clock.rs", clock), sf("prot/user.rs", user)];
        let mut out = Vec::new();
        check(&mut files, &|p| p.to_string_lossy().contains("prot/"), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("mid"), "{out:?}");
        assert!(out[0].message.contains("SystemTime"), "{out:?}");
        assert!(out[0].file.ends_with("user.rs"));
    }

    #[test]
    fn direct_seed_in_protected_file_fires_once() {
        let mut files = vec![sf("prot/a.rs", "fn f() { let t = Instant::now(); }\n")];
        let mut out = Vec::new();
        check(&mut files, &|_| true, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("Instant"));
    }

    #[test]
    fn clean_exempt_helper_is_callable() {
        let helper = "pub fn shift(x: u64) -> u64 { x << 1 }\n";
        let user = "pub fn twice(x: u64) -> u64 { shift(shift(x)) }\n";
        let mut files = vec![sf("exempt/h.rs", helper), sf("prot/u.rs", user)];
        let mut out = Vec::new();
        check(&mut files, &|p| p.to_string_lossy().contains("prot/"), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
