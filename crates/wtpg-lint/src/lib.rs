//! Repo-specific static analysis for the WTPG workspace.
//!
//! v2 is built around a dependency-free token stream ([`lex`]) and item
//! outline ([`outline`]) — functions, enums, consts, match arms and call
//! sites, no full AST — feeding an approximate intra-crate call graph
//! ([`callgraph`]). On top of that sit three per-line rules and four
//! workspace passes:
//!
//! Per-line rules (scoped per crate by [`rules_for`], see DESIGN.md §10/§15):
//!
//! - `determinism` — no `HashMap`/`HashSet` (iteration order is
//!   platform-dependent), no `SystemTime`/`std::time::Instant`
//!   (wall-clock reads), no ambient `thread_rng`. Applied to `wtpg-core`,
//!   `wtpg-sim`, `wtpg-workload`, `wtpg-graph`, `wtpg-lint`, `wtpg-mvcc`,
//!   `wtpg-obs` (minus `wall.rs`, the engine-only clock) and `wtpg-net`'s
//!   protocol layer. An `Instant` token qualified by a non-`time` path — such as the
//!   observer's `EventKind::Instant` trace phase — is recognized as not
//!   being the clock type and does not fire.
//! - `panic-safety` — no `unwrap()`, undocumented `expect()`, panic-family
//!   macros, or possibly-panicking slice indexing on the scheduler hot
//!   path (`wtpg-core/src/wtpg.rs`, `estimate.rs`, `sched/*`) or anywhere
//!   in `wtpg-rt`/`wtpg-obs`/`wtpg-net` (a worker panic while holding the
//!   control mutex poisons the whole engine). The accepted documented form
//!   is `expect("invariant: ...")`.
//! - `api-docs` — every `pub fn` carries a doc comment.
//!
//! Workspace passes (run by [`lint_workspace`], each with its own module):
//!
//! - [`locks`] — lock-order analysis against the checked-in
//!   `lint-locks.toml` hierarchy (control mutex → submission queue → node
//!   store), propagated through the call graph; undeclared `.lock()` sites
//!   are findings (fail-closed).
//! - [`protocol`] — `Msg` exhaustiveness, `Batch`-recursion guards and
//!   dedup-before-side-effect checks for the `wtpg-net` actor loops.
//! - [`taint`] — call-graph determinism taint replacing the old per-file
//!   deny list: seeds (`SystemTime`, clock `Instant`, `thread_rng`,
//!   hash-ordered collections) propagate along intra-crate calls, and a
//!   determinism-protected function calling into a tainted exempt-file
//!   function is a finding even though its own file is clean.
//! - [`schema`] — wire-schema stability: `msg.rs`/`codec.rs` are parsed
//!   and diffed against the checked-in `wire-schema.lock` (tags, field
//!   order, `MAX_FRAME`/`MAX_STEPS`/`MAX_BATCH`); drift is a finding until
//!   the lock is regenerated deliberately (`--write-schema-lock`).
//!
//! Findings are suppressed with an inline waiver comment carrying a reason:
//!
//! ```text
//! let x = v[i]; // lint:allow(panic-safety) i < v.len() checked above
//! ```
//!
//! A waiver on its own line covers the *next* item: if that item opens a
//! brace block (for example an `fn`), the waiver covers the whole block, so
//! one waiver can cover an index-heavy function with a locally provable
//! bound. A waiver may scope itself to specific findings with a detail
//! list — `lint:allow(protocol: Grant, Reject) reason` waives only those
//! `Msg` variants. Waivers that suppress nothing are themselves findings —
//! stale waivers must not accumulate. `schema` findings are deliberately
//! not waivable: drift is fixed by regenerating the lock, never waived.

pub mod callgraph;
pub mod lex;
pub mod locks;
pub mod outline;
pub mod protocol;
pub mod schema;
pub mod taint;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use lex::{LineInfo, Tok};
use outline::Outline;

/// The rule a finding belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rule {
    /// Platform-stable execution: no hash-ordered collections or clocks.
    Determinism,
    /// No panics on the scheduler hot path.
    PanicSafety,
    /// Every `pub fn` documented.
    ApiDocs,
    /// Lock acquisitions out of the declared `lint-locks.toml` order.
    LockOrder,
    /// Actor-loop protocol checks: `Msg` exhaustiveness, `Batch` recursion
    /// guards, dedup-before-side-effect for redeliverable messages.
    Protocol,
    /// Wire-schema drift against `wire-schema.lock`. Not waivable.
    Schema,
    /// Problems with the waiver mechanism itself (unknown rule, missing
    /// reason, waiver that suppresses nothing).
    Waiver,
}

impl Rule {
    /// The name used in `lint:allow(<name>)` waivers and in output.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::PanicSafety => "panic-safety",
            Rule::ApiDocs => "api-docs",
            Rule::LockOrder => "lock-order",
            Rule::Protocol => "protocol",
            Rule::Schema => "schema",
            Rule::Waiver => "waiver",
        }
    }

    /// Parses a waiver rule name. `waiver` itself is not waivable, and
    /// neither is `schema` (drift is fixed by regenerating the lock).
    pub fn parse(name: &str) -> Option<Rule> {
        match name {
            "determinism" => Some(Rule::Determinism),
            "panic-safety" => Some(Rule::PanicSafety),
            "api-docs" => Some(Rule::ApiDocs),
            "lock-order" => Some(Rule::LockOrder),
            "protocol" => Some(Rule::Protocol),
            _ => None,
        }
    }
}

/// One lint finding, pointing at a file/line.
#[derive(Clone, Debug)]
pub struct Finding {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule that fired.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Renders findings as a machine-readable JSON array for CI artifacts
/// (`wtpg-lint --format json`). Dependency-free: the four fields are
/// escaped by hand.
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut s = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n  {\"file\":\"");
        s.push_str(&json_escape(&f.file.to_string_lossy().replace('\\', "/")));
        s.push_str("\",\"line\":");
        s.push_str(&f.line.to_string());
        s.push_str(",\"rule\":\"");
        s.push_str(f.rule.name());
        s.push_str("\",\"message\":\"");
        s.push_str(&json_escape(&f.message));
        s.push_str("\"}");
    }
    if !findings.is_empty() {
        s.push('\n');
    }
    s.push(']');
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Which per-line rules to apply to a file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuleSet {
    /// Apply the `determinism` rule.
    pub determinism: bool,
    /// Apply the `panic-safety` rule.
    pub panic_safety: bool,
    /// Apply the `api-docs` rule.
    pub api_docs: bool,
}

impl RuleSet {
    /// All rules on — used for explicit path arguments and fixtures.
    pub const ALL: RuleSet = RuleSet {
        determinism: true,
        panic_safety: true,
        api_docs: true,
    };
}

/// A parsed `lint:allow(...)` waiver.
struct Waiver {
    line: usize,
    rule: Option<Rule>,
    /// Optional finding keys (`lint:allow(protocol: Grant, Reject)`): when
    /// non-empty, the waiver only suppresses findings with a matching key.
    details: Vec<String>,
    reason: String,
    /// Line range (inclusive) this waiver covers.
    covers: (usize, usize),
    used: bool,
}

const WAIVER_TAG: &str = "lint:allow(";

fn parse_waivers(lines: &[LineInfo]) -> (Vec<Waiver>, Vec<(usize, String)>) {
    let mut waivers = Vec::new();
    let mut errors = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        // Doc comments are documentation, not directives: a rustdoc line
        // quoting the waiver syntax must not register as a waiver.
        let c = line.comment.trim_start();
        if c.starts_with("///") || c.starts_with("//!") {
            continue;
        }
        let Some(tag) = line.comment.find(WAIVER_TAG) else {
            continue;
        };
        let rest = &line.comment[tag + WAIVER_TAG.len()..];
        let Some(close) = rest.find(')') else {
            errors.push((i, "malformed waiver: missing ')'".to_string()));
            continue;
        };
        let inner = rest[..close].trim();
        let (rule_name, details): (&str, Vec<String>) = match inner.split_once(':') {
            Some((r, d)) => (
                r.trim(),
                d.split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect(),
            ),
            None => (inner, Vec::new()),
        };
        let reason = rest[close + 1..].trim().to_string();
        let rule = Rule::parse(rule_name);
        if rule.is_none() {
            errors.push((i, format!("waiver names unknown rule '{rule_name}'")));
        }
        if reason.is_empty() {
            errors.push((i, "waiver has no reason".to_string()));
        }
        let covers = if line.code.trim().is_empty() {
            standalone_coverage(lines, i)
        } else {
            (i, i)
        };
        waivers.push(Waiver {
            line: i,
            rule,
            details,
            reason,
            covers,
            used: false,
        });
    }
    (waivers, errors)
}

/// Coverage of a standalone waiver line: the next item. Attribute lines are
/// skipped when locating the item's first line; if the item opens a brace
/// block the coverage extends to the matching close, otherwise to the
/// terminating `;`.
fn standalone_coverage(lines: &[LineInfo], waiver_line: usize) -> (usize, usize) {
    let mut j = waiver_line + 1;
    while j < lines.len() {
        let t = lines[j].code.trim();
        if t.is_empty() || t.starts_with("#[") {
            j += 1;
        } else {
            break;
        }
    }
    if j >= lines.len() {
        return (waiver_line, waiver_line);
    }
    let start = j;
    let mut depth: i64 = 0;
    let mut opened = false;
    for (k, line) in lines.iter().enumerate().skip(start) {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                ';' if !opened && depth == 0 => return (start, k),
                _ => {}
            }
        }
        if opened && depth <= 0 {
            return (start, k);
        }
    }
    (start, lines.len().saturating_sub(1))
}

/// One fully lexed + outlined source file, with its waivers. Every pass
/// emits findings through [`SourceFile::emit`] so waivers apply uniformly,
/// and records the rules it ran with [`SourceFile::mark_ran`] so unused
/// waivers are only reported for rules that actually ran here.
pub struct SourceFile {
    /// Path findings are reported against.
    pub path: PathBuf,
    /// Lexed lines (code/comment split, `#[cfg(test)]` regions marked).
    pub lines: Vec<LineInfo>,
    /// Token stream of the non-test code.
    pub tokens: Vec<Tok>,
    /// Item outline parsed from the tokens.
    pub outline: Outline,
    waivers: Vec<Waiver>,
    waiver_errors: Vec<(usize, String)>,
    ran: Vec<Rule>,
}

impl SourceFile {
    /// Lexes, outlines and waiver-parses `source`.
    pub fn parse(path: &Path, source: &str) -> SourceFile {
        let mut lines = lex::lex(source);
        lex::mark_test_regions(&mut lines);
        let tokens = lex::tokenize(&lines);
        let outline = Outline::parse(&tokens);
        let (waivers, waiver_errors) = parse_waivers(&lines);
        SourceFile {
            path: path.to_path_buf(),
            lines,
            tokens,
            outline,
            waivers,
            waiver_errors,
            ran: Vec::new(),
        }
    }

    /// Reads and parses one file from disk.
    pub fn read(path: &Path) -> io::Result<SourceFile> {
        let source = fs::read_to_string(path)?;
        Ok(SourceFile::parse(path, &source))
    }

    /// Records that `rule` ran on this file (so its unused waivers are
    /// reported by [`SourceFile::finish`]).
    pub fn mark_ran(&mut self, rule: Rule) {
        if !self.ran.contains(&rule) {
            self.ran.push(rule);
        }
    }

    /// Emits one finding at 0-based `line0` unless a waiver covers it. A
    /// waiver matches when its rule matches, `line0` is in its coverage,
    /// and its detail list is empty or contains `key` (the pass-specific
    /// finding key: the banned token, lock class, or `Msg` variant).
    pub fn emit(&mut self, out: &mut Vec<Finding>, line0: usize, rule: Rule, key: &str, message: String) {
        for w in self.waivers.iter_mut() {
            if w.rule == Some(rule)
                && line0 >= w.covers.0
                && line0 <= w.covers.1
                && (w.details.is_empty() || w.details.iter().any(|d| d == key))
            {
                w.used = true;
                return;
            }
        }
        out.push(Finding {
            file: self.path.clone(),
            line: line0 + 1,
            rule,
            message,
        });
    }

    /// Reports waiver-mechanism findings: malformed waivers, and waivers
    /// for a rule that ran here but suppressed nothing. Call once, after
    /// every pass has run.
    pub fn finish(&mut self, out: &mut Vec<Finding>) {
        for (line, msg) in self.waiver_errors.drain(..) {
            out.push(Finding {
                file: self.path.clone(),
                line: line + 1,
                rule: Rule::Waiver,
                message: msg,
            });
        }
        for w in &self.waivers {
            // A waiver for a rule that did not run on this file is not
            // "unused" — only report waivers whose rule ran here and
            // suppressed nothing.
            let applicable = w.rule.is_some_and(|r| self.ran.contains(&r));
            if applicable && !w.used && !w.reason.is_empty() {
                out.push(Finding {
                    file: self.path.clone(),
                    line: w.line + 1,
                    rule: Rule::Waiver,
                    message: format!(
                        "unused waiver for `{}` — nothing to suppress",
                        w.rule.map(Rule::name).unwrap_or("?")
                    ),
                });
            }
        }
    }
}

/// Panic-family macros banned by the panic-safety rule.
const PANIC_MACROS: &[&str] = &["panic!(", "unreachable!(", "todo!(", "unimplemented!("];

/// True if `code` contains `ident[` — a possibly-panicking index expression.
/// Array/slice *types* and attributes are not preceded by an identifier
/// character, so they do not match.
fn has_index_expr(code: &str) -> bool {
    let chars: Vec<char> = code.chars().collect();
    for i in 1..chars.len() {
        if chars[i] == '[' {
            let p = chars[i - 1];
            if p.is_alphanumeric() || p == '_' || p == ')' || p == ']' {
                return true;
            }
        }
    }
    false
}

/// Is this line the start of a `pub fn` item (not `pub(crate)`)?
fn is_pub_fn(code: &str) -> bool {
    let t = code.trim_start();
    let Some(rest) = t.strip_prefix("pub ") else {
        return false;
    };
    let rest = rest.trim_start();
    for qual in ["fn ", "const fn ", "async fn ", "unsafe fn "] {
        if rest.starts_with(qual) {
            return true;
        }
    }
    false
}

/// Does the `pub fn` at `lines[at]` have a doc comment (or `#[doc]`)
/// directly above it, allowing intervening attribute lines?
fn has_doc_above(lines: &[LineInfo], at: usize) -> bool {
    let mut j = at;
    while j > 0 {
        j -= 1;
        let raw = lines[j].raw.trim();
        if raw.starts_with("#[doc") {
            return true;
        }
        if raw.starts_with("///") || raw.starts_with("/**") || raw.ends_with("*/") {
            return true;
        }
        // Attributes and plain comments between the doc and the item do not
        // detach the doc comment.
        if raw.starts_with("#[") || raw.starts_with("//") {
            continue;
        }
        return false;
    }
    false
}

/// Runs the three per-line rules on one parsed file. The determinism rule
/// is token-based (shared with the taint pass's seed classifier), so a
/// qualified non-clock `Instant` — `EventKind::Instant` — does not fire.
fn run_line_rules(sf: &mut SourceFile, rules: RuleSet, out: &mut Vec<Finding>) {
    let mut seeds: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    if rules.determinism {
        sf.mark_ran(Rule::Determinism);
        for (line, tok) in taint::direct_seeds(&sf.tokens, &sf.outline) {
            let v = seeds.entry(line).or_default();
            if !v.contains(&tok) {
                v.push(tok);
            }
        }
    }
    if rules.panic_safety {
        sf.mark_ran(Rule::PanicSafety);
    }
    if rules.api_docs {
        sf.mark_ran(Rule::ApiDocs);
    }
    let mut cands: Vec<(usize, Rule, String, String)> = Vec::new();
    for (i, line) in sf.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if let Some(toks) = seeds.get(&i) {
            for t in toks {
                cands.push((
                    i,
                    Rule::Determinism,
                    t.clone(),
                    format!("nondeterministic construct `{t}`"),
                ));
            }
        }
        if rules.panic_safety {
            if line.code.contains(".unwrap()") {
                cands.push((
                    i,
                    Rule::PanicSafety,
                    String::new(),
                    "call to unwrap() on the hot path".to_string(),
                ));
            }
            if line.code.contains(".expect(") && !line.raw.contains(".expect(\"invariant:") {
                cands.push((
                    i,
                    Rule::PanicSafety,
                    String::new(),
                    "expect() without an `invariant:` justification".to_string(),
                ));
            }
            for mac in PANIC_MACROS {
                if line.code.contains(mac) {
                    cands.push((
                        i,
                        Rule::PanicSafety,
                        String::new(),
                        format!("panic-family macro `{}...`", mac),
                    ));
                }
            }
            if has_index_expr(&line.code) {
                cands.push((
                    i,
                    Rule::PanicSafety,
                    String::new(),
                    "possibly-panicking slice index".to_string(),
                ));
            }
        }
        if rules.api_docs && is_pub_fn(&line.code) && !has_doc_above(&sf.lines, i) {
            cands.push((
                i,
                Rule::ApiDocs,
                String::new(),
                "pub fn without a doc comment".to_string(),
            ));
        }
    }
    for (line, rule, key, msg) in cands {
        sf.emit(out, line, rule, &key, msg);
    }
}

/// Lints `source` with the per-line rules, reporting findings against
/// `path`. Test code (`#[cfg(test)]` regions) is exempt from every rule.
pub fn lint_source(path: &Path, source: &str, rules: RuleSet) -> Vec<Finding> {
    let mut sf = SourceFile::parse(path, source);
    let mut findings = Vec::new();
    run_line_rules(&mut sf, rules, &mut findings);
    sf.finish(&mut findings);
    findings
}

/// Lints one file from disk with the per-line rules.
pub fn lint_file(path: &Path, rules: RuleSet) -> io::Result<Vec<Finding>> {
    let source = fs::read_to_string(path)?;
    Ok(lint_source(path, &source, rules))
}

/// Recursively collects `.rs` files under `dir`, sorted for stable output.
pub fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&d)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for p in entries {
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// The crate a `crates/<name>/src/...` path belongs to, if any.
fn crate_of(path_slash: &str) -> Option<&str> {
    let i = path_slash.find("crates/")?;
    let rest = &path_slash[i + "crates/".len()..];
    let (name, tail) = rest.split_once('/')?;
    tail.starts_with("src/").then_some(name)
}

/// The workspace policy: which per-line rules apply to which file.
///
/// Known crates carry an explicit policy; **unknown** crates under
/// `crates/` get [`RuleSet::ALL`] (fail-closed — a new crate is fully
/// linted until a policy is written for it, never silently skipped):
///
/// - `determinism`: all of `wtpg-core`, `wtpg-sim`, `wtpg-workload`,
///   `wtpg-graph` and `wtpg-lint` (the lint's own output must be
///   platform-stable) — but **not** `wtpg-rt`, whose wall clocks and
///   free-running threads are the point (its runs are checked by replay
///   certification instead). `wtpg-obs` event/histogram/sink code is also
///   held to determinism (traces of deterministic runs must be
///   byte-deterministic); its sanctioned clock sources are `wall.rs` (the
///   µs epoch the engine stamps events with) and `wclock.rs` (the window
///   flusher sleeping on that same epoch) — both exempt like the engine
///   they serve, and both only *producing* timestamps: the snapshot and
///   merge code they feed stays under the determinism rule.
/// - `panic-safety`: `wtpg-core/src/wtpg.rs`, `estimate.rs`, `sched/*`, and
///   all of `wtpg-rt/src` (a panic on an engine thread poisons shared locks),
///   `wtpg-obs/src` (observers are called from those same threads) and
///   `wtpg-net/src` (a panicking actor deadlocks every peer waiting on it).
/// - `api-docs`: all of `wtpg-core/src`, `wtpg-rt/src`, `wtpg-obs/src`,
///   `wtpg-net/src` and `wtpg-lint/src`.
/// - `wtpg-net` splits on determinism: the pure protocol layer (`msg.rs`,
///   `codec.rs`, `fault.rs` decisions, `report.rs`) must be deterministic —
///   the wire format and fault schedules are replayable by seed — while the
///   actor loops (`control.rs`, `client.rs`, `data.rs`, `runtime.rs`), the
///   flush-window coalescer (`batch.rs`) and the socket transport
///   (`tcp.rs`) run on wall clocks and OS threads by design, certified by
///   replay like the engine. The taint pass still reaches into the exempt
///   files: a protocol-layer function calling a tainted actor-side helper
///   is a finding.
/// - `wtpg-bench` and `wtpg-cli` are measurement/driver tooling: they read
///   wall clocks to time real runs and report through the CLI, so no
///   per-line rule applies (their correctness is covered by tier-1 tests).
pub fn rules_for(path: &Path) -> RuleSet {
    let s = path.to_string_lossy().replace('\\', "/");
    let Some(krate) = crate_of(&s) else {
        return RuleSet::default();
    };
    match krate {
        "wtpg-core" => RuleSet {
            determinism: true,
            panic_safety: s.ends_with("/wtpg.rs") || s.ends_with("/estimate.rs") || s.contains("/sched/"),
            api_docs: true,
        },
        "wtpg-sim" | "wtpg-workload" | "wtpg-graph" => RuleSet {
            determinism: true,
            panic_safety: false,
            api_docs: false,
        },
        "wtpg-rt" => RuleSet {
            determinism: false,
            panic_safety: true,
            api_docs: true,
        },
        "wtpg-obs" => RuleSet {
            determinism: !(s.ends_with("/wall.rs") || s.ends_with("/wclock.rs")),
            panic_safety: true,
            api_docs: true,
        },
        "wtpg-net" => {
            let wall_clock = [
                "/tcp.rs",
                "/control.rs",
                "/client.rs",
                "/data.rs",
                "/runtime.rs",
                "/batch.rs",
            ]
            .iter()
            .any(|f| s.ends_with(f));
            RuleSet {
                determinism: !wall_clock,
                panic_safety: true,
                api_docs: true,
            }
        }
        "wtpg-mvcc" => RuleSet {
            // Version chains, snapshot certification, and the shared GC
            // cells are pure bookkeeping over seal sequences — no clocks,
            // no ambient randomness, everything replayable.
            determinism: true,
            panic_safety: true,
            api_docs: true,
        },
        "wtpg-dur" => RuleSet {
            // The durability layer does real file I/O and wall-clock-free
            // recovery; its replay workers are OS threads by design.
            determinism: false,
            panic_safety: true,
            api_docs: true,
        },
        "wtpg-lint" => RuleSet {
            determinism: true,
            panic_safety: false,
            api_docs: true,
        },
        "wtpg-bench" | "wtpg-cli" => RuleSet::default(),
        // Fail closed: a crate without an explicit policy is fully linted.
        _ => RuleSet::ALL,
    }
}

/// Reads the workspace member list from `<root>/Cargo.toml`, expanding
/// `<dir>/*` globs against the directory, so the lint's coverage derives
/// from the same source of truth cargo uses: adding a crate to the
/// workspace adds it to the lint, with [`RuleSet::ALL`] until a policy
/// exists for it.
pub fn workspace_members(root: &Path) -> io::Result<Vec<String>> {
    let text = fs::read_to_string(root.join("Cargo.toml"))?;
    let mut entries: Vec<String> = Vec::new();
    let mut in_members = false;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if !in_members {
            if let Some(rest) = line.strip_prefix("members") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    collect_quoted(rest, &mut entries);
                    if rest.contains(']') {
                        break;
                    }
                    in_members = true;
                }
            }
            continue;
        }
        collect_quoted(line, &mut entries);
        if line.contains(']') {
            break;
        }
    }
    let mut out = Vec::new();
    for m in entries {
        if let Some(prefix) = m.strip_suffix("/*") {
            let dir = root.join(prefix);
            let mut names: Vec<String> = fs::read_dir(&dir)?
                .filter_map(|e| e.ok())
                .filter(|e| e.path().is_dir())
                .filter_map(|e| e.file_name().into_string().ok())
                .collect();
            names.sort();
            out.extend(names.into_iter().map(|n| format!("{prefix}/{n}")));
        } else {
            out.push(m);
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

/// Pulls every double-quoted string out of `s`.
fn collect_quoted(s: &str, out: &mut Vec<String>) {
    let mut rest = s;
    while let Some(a) = rest.find('"') {
        let tail = &rest[a + 1..];
        let Some(b) = tail.find('"') else { break };
        out.push(tail[..b].to_string());
        rest = &tail[b + 1..];
    }
}

/// Lints the whole workspace rooted at `root`: per-line rules under the
/// [`rules_for`] policy, plus the four workspace passes — determinism
/// taint (which owns the determinism rule here, adding call-graph
/// propagation to the direct token scan), lock-order against
/// `lint-locks.toml`, and the `wtpg-net` protocol and wire-schema passes.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let manifest_path = root.join("lint-locks.toml");
    let manifest = match fs::read_to_string(&manifest_path) {
        Ok(text) => match locks::LockManifest::parse(&text) {
            Ok(m) => Some(m),
            Err(e) => {
                findings.push(Finding {
                    file: manifest_path.clone(),
                    line: 1,
                    rule: Rule::LockOrder,
                    message: format!("bad lock manifest: {e}"),
                });
                None
            }
        },
        Err(_) => {
            findings.push(Finding {
                file: manifest_path.clone(),
                line: 1,
                rule: Rule::LockOrder,
                message: "missing lint-locks.toml (the declared lock hierarchy)".to_string(),
            });
            None
        }
    };
    for member in workspace_members(root)? {
        let src = root.join(&member).join("src");
        if !src.is_dir() {
            continue;
        }
        let mut sfs = Vec::new();
        for file in rust_files(&src)? {
            sfs.push(SourceFile::read(&file)?);
        }
        for sf in &mut sfs {
            let mut rules = rules_for(&sf.path);
            // The taint pass owns determinism in workspace runs: it emits
            // the same direct-seed findings plus call-graph propagation.
            rules.determinism = false;
            run_line_rules(sf, rules, &mut findings);
        }
        taint::check(&mut sfs, &|p| rules_for(p).determinism, &mut findings);
        if let Some(m) = &manifest {
            locks::check(&mut sfs, m, &mut findings);
        }
        if member.ends_with("wtpg-net") {
            protocol::check_net(&mut sfs, &mut findings);
            schema::check_against_lock(&sfs, &root.join("wire-schema.lock"), &mut findings);
        }
        for sf in &mut sfs {
            sf.finish(&mut findings);
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        lint_source(Path::new("test.rs"), src, RuleSet::ALL)
    }

    #[test]
    fn clean_source_has_no_findings() {
        let src = "/// Doc.\npub fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0)\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn determinism_tokens_fire() {
        let f = lint("use std::collections::HashMap;\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Determinism);
    }

    #[test]
    fn determinism_word_boundary() {
        assert!(lint("struct HashMapLike;\n").is_empty());
    }

    #[test]
    fn clock_instant_fires_but_trace_phase_instant_does_not() {
        // Bare `Instant` and `std::time::Instant` are the clock type.
        assert_eq!(lint("fn f() { let t = Instant::now(); }\n").len(), 1);
        assert_eq!(lint("use std::time::Instant;\n").len(), 1);
        // `EventKind::Instant` (qualified by a non-`time` path) is the
        // observer's trace-phase marker, not a clock.
        assert!(lint("fn f(k: EventKind) { if let EventKind::Instant { .. } = k {} }\n").is_empty());
        // A variant *named* Instant declared in this file is not a clock.
        assert!(lint("enum EventKind { Span, Instant { name: u32 } }\n").is_empty());
    }

    #[test]
    fn tokens_in_strings_and_comments_ignored() {
        assert!(lint("// HashMap is banned\nconst S: &str = \"HashMap\";\n").is_empty());
    }

    #[test]
    fn unwrap_fires_and_waiver_suppresses() {
        let f = lint("fn f() { x.unwrap(); }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::PanicSafety);
        let w = lint("fn f() { x.unwrap(); } // lint:allow(panic-safety) x set above\n");
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn invariant_expect_is_accepted() {
        assert!(lint("fn f() { x.expect(\"invariant: set in new\"); }\n").is_empty());
        let f = lint("fn f() { x.expect(\"oops\"); }\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn index_expression_fires() {
        let f = lint("fn f() { let y = v[i]; }\n");
        assert_eq!(f.len(), 1);
        assert!(lint("fn f(v: &[u32; 4]) {}\n").is_empty());
    }

    #[test]
    fn standalone_waiver_covers_whole_fn() {
        let src = "// lint:allow(panic-safety) indices bounded by construction\n\
                   fn f(v: &Vec<u32>) -> u32 {\n    v[0] + v[1]\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn waiver_details_scope_to_finding_keys() {
        // A detailed determinism waiver only covers the named token.
        let src = "// lint:allow(determinism: HashSet) interned upstream\n\
                   fn f() {\n    let s = HashSet::new();\n    let m = HashMap::new();\n}\n";
        let f = lint(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("HashMap"), "{f:?}");
    }

    #[test]
    fn unused_waiver_is_reported() {
        let f = lint("// lint:allow(panic-safety) nothing here\nfn f() {}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Waiver);
    }

    #[test]
    fn doc_comments_quoting_waiver_syntax_are_not_waivers() {
        // A rustdoc line quoting the waiver idiom must neither waive
        // anything nor count as a malformed/unused waiver.
        let src = "/// Suppress with `lint:allow(panic-safety)` inline.\n\
                   //! Or even `lint:allow(bogus-rule)`.\n\
                   fn f() { v.unwrap(); }\n";
        let f = lint(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::PanicSafety);
    }

    #[test]
    fn waiver_without_reason_is_reported() {
        let f = lint("fn f() { x.unwrap() } // lint:allow(panic-safety)\n");
        assert!(f.iter().any(|f| f.rule == Rule::Waiver), "{f:?}");
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn f() { x.unwrap(); }\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn pub_fn_without_doc_fires() {
        let f = lint("pub fn undocumented() {}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::ApiDocs);
        assert!(lint("/// Doc.\npub fn documented() {}\n").is_empty());
        assert!(lint("pub(crate) fn internal() {}\n").is_empty());
    }

    #[test]
    fn doc_above_attributes_counts() {
        assert!(lint("/// Doc.\n#[inline]\npub fn f() {}\n").is_empty());
    }

    #[test]
    fn raw_strings_are_stripped() {
        assert!(lint("const S: &str = r#\"HashMap .unwrap()\"#;\n").is_empty());
    }

    #[test]
    fn json_output_escapes_and_round_trips_shape() {
        let f = vec![Finding {
            file: PathBuf::from("a\\b.rs"),
            line: 3,
            rule: Rule::Schema,
            message: "tag \"x\" drifted".to_string(),
        }];
        let j = findings_to_json(&f);
        assert!(j.starts_with('[') && j.ends_with(']'), "{j}");
        assert!(j.contains("\"rule\":\"schema\""), "{j}");
        assert!(j.contains("tag \\\"x\\\" drifted"), "{j}");
        assert_eq!(findings_to_json(&[]), "[]");
    }

    #[test]
    fn unknown_crates_fail_closed() {
        assert_eq!(
            rules_for(Path::new("crates/wtpg-future/src/lib.rs")),
            RuleSet::ALL
        );
        assert_eq!(
            rules_for(Path::new("crates/wtpg-bench/src/lib.rs")),
            RuleSet::default()
        );
        // Non-src paths (tests, fixtures) carry no per-line rules.
        assert_eq!(
            rules_for(Path::new("crates/wtpg-rt/tests/lock_order.rs")),
            RuleSet::default()
        );
    }
}
