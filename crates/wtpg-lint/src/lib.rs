//! Repo-specific static analysis for the WTPG workspace.
//!
//! Three rules, each scoped to the crates where its guarantee is load-bearing
//! (see DESIGN.md §10):
//!
//! - `determinism` — no `HashMap`/`HashSet` (iteration order is
//!   platform-dependent), no `SystemTime`/`Instant` (wall-clock reads), no
//!   ambient `thread_rng` in `wtpg-core`, `wtpg-sim`, `wtpg-workload`,
//!   `wtpg-graph`, `wtpg-obs` (minus `wall.rs`, the engine-only clock), and
//!   `wtpg-net`'s protocol layer (codec, message types, fault plans,
//!   reports — the wire format and fault schedules replay by seed).
//!   Every experiment depends on bit-identical trajectories, and traces of
//!   deterministic runs must themselves be byte-deterministic.
//!   `wtpg-rt` is *exempt*: a real-time engine reads wall clocks and lets
//!   thread interleavings vary by design — its determinism story is replay
//!   certification of the recorded history, not bit-identical trajectories.
//!   `wtpg-net`'s actor loops and TCP transport are exempt the same way.
//! - `panic-safety` — no `unwrap()`, undocumented `expect()`, panic-family
//!   macros, or possibly-panicking slice indexing in the scheduler hot path
//!   (`wtpg-core/src/wtpg.rs`, `estimate.rs`, `sched/*`) or anywhere in
//!   `wtpg-rt/src` (a worker panic while holding the control mutex poisons
//!   the whole engine). The accepted documented form is
//!   `expect("invariant: ...")`.
//! - `api-docs` — every `pub fn` in `wtpg-core/src` and `wtpg-rt/src`
//!   carries a doc comment.
//!
//! Findings are suppressed with an inline waiver comment carrying a reason:
//!
//! ```text
//! let x = v[i]; // lint:allow(panic-safety) i < v.len() checked above
//! ```
//!
//! A waiver on its own line covers the *next* item: if that item opens a
//! brace block (for example an `fn`), the waiver covers the whole block, so
//! one waiver can cover an index-heavy function with a locally provable
//! bound. Waivers that suppress nothing are themselves findings — stale
//! waivers must not accumulate.
//!
//! The scanner is intentionally a line-oriented lexer, not a parser: it
//! strips string literals and comments (tracking nested block comments and
//! raw strings), skips `#[cfg(test)]` blocks, and pattern-matches tokens.
//! That is exactly enough for these rules and keeps the tool dependency-free.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The rule a finding belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rule {
    /// Platform-stable execution: no hash-ordered collections or clocks.
    Determinism,
    /// No panics on the scheduler hot path.
    PanicSafety,
    /// Every `pub fn` documented.
    ApiDocs,
    /// Problems with the waiver mechanism itself (unknown rule, missing
    /// reason, waiver that suppresses nothing).
    Waiver,
}

impl Rule {
    /// The name used in `lint:allow(<name>)` waivers and in output.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::PanicSafety => "panic-safety",
            Rule::ApiDocs => "api-docs",
            Rule::Waiver => "waiver",
        }
    }

    /// Parses a waiver rule name. `waiver` itself is not waivable.
    pub fn parse(name: &str) -> Option<Rule> {
        match name {
            "determinism" => Some(Rule::Determinism),
            "panic-safety" => Some(Rule::PanicSafety),
            "api-docs" => Some(Rule::ApiDocs),
            _ => None,
        }
    }
}

/// One lint finding, pointing at a file/line.
#[derive(Clone, Debug)]
pub struct Finding {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule that fired.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Which rules to apply to a file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuleSet {
    /// Apply the `determinism` rule.
    pub determinism: bool,
    /// Apply the `panic-safety` rule.
    pub panic_safety: bool,
    /// Apply the `api-docs` rule.
    pub api_docs: bool,
}

impl RuleSet {
    /// All rules on — used for explicit path arguments and fixtures.
    pub const ALL: RuleSet = RuleSet {
        determinism: true,
        panic_safety: true,
        api_docs: true,
    };

    fn enabled(self, rule: Rule) -> bool {
        match rule {
            Rule::Determinism => self.determinism,
            Rule::PanicSafety => self.panic_safety,
            Rule::ApiDocs => self.api_docs,
            Rule::Waiver => true,
        }
    }

    fn any(self) -> bool {
        self.determinism || self.panic_safety || self.api_docs
    }
}

/// One source line after lexing: executable code with strings/comments
/// removed, the comment text (for waiver parsing), and the raw line.
#[derive(Debug)]
struct LineInfo {
    code: String,
    comment: String,
    raw: String,
    in_test: bool,
}

/// Lexer state carried across lines.
enum LexState {
    Normal,
    BlockComment { depth: usize },
    RawString { hashes: usize },
}

/// Strips string literals and comments, producing per-line code/comment
/// views. Block comments may nest (Rust allows it); raw strings may span
/// lines. Char literals and lifetimes are disambiguated heuristically.
fn lex(source: &str) -> Vec<LineInfo> {
    let mut out = Vec::new();
    let mut state = LexState::Normal;
    for raw in source.lines() {
        let mut code = String::new();
        let mut comment = String::new();
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            match state {
                LexState::BlockComment { ref mut depth } => {
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        *depth -= 1;
                        i += 2;
                        if *depth == 0 {
                            state = LexState::Normal;
                        }
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        *depth += 1;
                        i += 2;
                    } else {
                        comment.push(chars[i]);
                        i += 1;
                    }
                }
                LexState::RawString { hashes } => {
                    if chars[i] == '"' {
                        let mut ok = true;
                        for k in 0..hashes {
                            if chars.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            code.push('"');
                            i += 1 + hashes;
                            state = LexState::Normal;
                            continue;
                        }
                    }
                    i += 1;
                }
                LexState::Normal => {
                    let c = chars[i];
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        comment.push_str(&raw[byte_offset(raw, i)..]);
                        break;
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = LexState::BlockComment { depth: 1 };
                        i += 2;
                    } else if c == 'r' && !prev_is_ident(&chars, i) {
                        if let Some(hashes) = raw_string_hashes(&chars, i + 1) {
                            code.push('"');
                            i += 2 + hashes;
                            state = LexState::RawString { hashes };
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    } else if c == '"' {
                        // Ordinary string literal: skip to the closing quote,
                        // honouring escapes. Unterminated ⇒ rest of line.
                        code.push('"');
                        i += 1;
                        while i < chars.len() {
                            if chars[i] == '\\' {
                                i += 2;
                            } else if chars[i] == '"' {
                                code.push('"');
                                i += 1;
                                break;
                            } else {
                                i += 1;
                            }
                        }
                    } else if c == '\'' {
                        // Char literal vs lifetime: a char literal closes
                        // with ' after one (possibly escaped) character.
                        if chars.get(i + 1) == Some(&'\\') {
                            // Escaped char literal: skip to closing quote.
                            i += 2;
                            while i < chars.len() && chars[i] != '\'' {
                                i += 1;
                            }
                            i += 1;
                            code.push_str("' '");
                        } else if chars.get(i + 2) == Some(&'\'') {
                            code.push_str("' '");
                            i += 3;
                        } else {
                            // Lifetime: keep the tick, it is inert.
                            code.push('\'');
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        out.push(LineInfo {
            code,
            comment,
            raw: raw.to_string(),
            in_test: false,
        });
    }
    out
}

fn byte_offset(s: &str, char_idx: usize) -> usize {
    s.char_indices()
        .nth(char_idx)
        .map(|(b, _)| b)
        .unwrap_or(s.len())
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// If `chars[from..]` begins `#*"` (a raw-string opener after `r`), returns
/// the hash count.
fn raw_string_hashes(chars: &[char], from: usize) -> Option<usize> {
    let mut hashes = 0;
    let mut i = from;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) == Some(&'"') {
        Some(hashes)
    } else {
        None
    }
}

/// Marks lines inside `#[cfg(test)]` items: from the attribute through the
/// matching close brace (or trailing `;` for brace-less items).
fn mark_test_regions(lines: &mut [LineInfo]) {
    let mut depth: i64 = 0;
    let mut test_until_depth: Option<i64> = None;
    let mut pending = false;
    for line in lines.iter_mut() {
        let mut this_in_test = test_until_depth.is_some();
        if line.code.contains("#[cfg(test)]") && test_until_depth.is_none() {
            pending = true;
        }
        if pending {
            this_in_test = true;
        }
        let mut end_after = false;
        let mut pending_done_by_semi = false;
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending && test_until_depth.is_none() {
                        test_until_depth = Some(depth - 1);
                        pending = false;
                    }
                }
                '}' => {
                    depth -= 1;
                    if let Some(d) = test_until_depth {
                        if depth <= d {
                            end_after = true;
                        }
                    }
                }
                // `#[cfg(test)] use ...;` — brace-less item ends here.
                ';' if pending && test_until_depth.is_none() => {
                    pending_done_by_semi = true;
                }
                _ => {}
            }
        }
        line.in_test = this_in_test;
        if end_after {
            test_until_depth = None;
        }
        if pending_done_by_semi {
            pending = false;
        }
    }
}

/// A parsed `lint:allow(...)` waiver.
struct Waiver {
    line: usize,
    rule: Option<Rule>,
    reason: String,
    /// Line range (inclusive) this waiver covers.
    covers: (usize, usize),
    used: bool,
}

const WAIVER_TAG: &str = "lint:allow(";

fn parse_waivers(lines: &[LineInfo]) -> (Vec<Waiver>, Vec<(usize, String)>) {
    let mut waivers = Vec::new();
    let mut errors = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let Some(tag) = line.comment.find(WAIVER_TAG) else {
            continue;
        };
        let rest = &line.comment[tag + WAIVER_TAG.len()..];
        let Some(close) = rest.find(')') else {
            errors.push((i, "malformed waiver: missing ')'".to_string()));
            continue;
        };
        let rule_name = rest[..close].trim();
        let reason = rest[close + 1..].trim().to_string();
        let rule = Rule::parse(rule_name);
        if rule.is_none() {
            errors.push((i, format!("waiver names unknown rule '{rule_name}'")));
        }
        if reason.is_empty() {
            errors.push((i, "waiver has no reason".to_string()));
        }
        let covers = if line.code.trim().is_empty() {
            standalone_coverage(lines, i)
        } else {
            (i, i)
        };
        waivers.push(Waiver {
            line: i,
            rule,
            reason,
            covers,
            used: false,
        });
    }
    (waivers, errors)
}

/// Coverage of a standalone waiver line: the next item. Attribute lines are
/// skipped when locating the item's first line; if the item opens a brace
/// block the coverage extends to the matching close, otherwise to the
/// terminating `;`.
fn standalone_coverage(lines: &[LineInfo], waiver_line: usize) -> (usize, usize) {
    let mut j = waiver_line + 1;
    while j < lines.len() {
        let t = lines[j].code.trim();
        if t.is_empty() || t.starts_with("#[") {
            j += 1;
        } else {
            break;
        }
    }
    if j >= lines.len() {
        return (waiver_line, waiver_line);
    }
    let start = j;
    let mut depth: i64 = 0;
    let mut opened = false;
    for (k, line) in lines.iter().enumerate().skip(start) {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                ';' if !opened && depth == 0 => return (start, k),
                _ => {}
            }
        }
        if opened && depth <= 0 {
            return (start, k);
        }
    }
    (start, lines.len().saturating_sub(1))
}

/// Tokens banned by the determinism rule. Word-boundary matched.
const DETERMINISM_TOKENS: &[&str] = &["HashMap", "HashSet", "SystemTime", "Instant", "thread_rng"];

/// Panic-family macros banned by the panic-safety rule.
const PANIC_MACROS: &[&str] = &["panic!(", "unreachable!(", "todo!(", "unimplemented!("];

/// True if `hay` contains `token` delimited by non-identifier characters.
fn contains_word(hay: &str, token: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(token) {
        let at = from + pos;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = hay[at + token.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = at + token.len();
    }
    false
}

/// True if `code` contains `ident[` — a possibly-panicking index expression.
/// Array/slice *types* and attributes are not preceded by an identifier
/// character, so they do not match.
fn has_index_expr(code: &str) -> bool {
    let chars: Vec<char> = code.chars().collect();
    for i in 1..chars.len() {
        if chars[i] == '[' {
            let p = chars[i - 1];
            if p.is_alphanumeric() || p == '_' || p == ')' || p == ']' {
                return true;
            }
        }
    }
    false
}

/// Is this line the start of a `pub fn` item (not `pub(crate)`)?
fn is_pub_fn(code: &str) -> bool {
    let t = code.trim_start();
    let Some(rest) = t.strip_prefix("pub ") else {
        return false;
    };
    let rest = rest.trim_start();
    for qual in ["fn ", "const fn ", "async fn ", "unsafe fn "] {
        if rest.starts_with(qual) {
            return true;
        }
    }
    false
}

/// Does the `pub fn` at `lines[at]` have a doc comment (or `#[doc]`)
/// directly above it, allowing intervening attribute lines?
fn has_doc_above(lines: &[LineInfo], at: usize) -> bool {
    let mut j = at;
    while j > 0 {
        j -= 1;
        let raw = lines[j].raw.trim();
        if raw.starts_with("#[doc") {
            return true;
        }
        if raw.starts_with("///") || raw.starts_with("/**") || raw.ends_with("*/") {
            return true;
        }
        // Attributes and plain comments between the doc and the item do not
        // detach the doc comment.
        if raw.starts_with("#[") || raw.starts_with("//") {
            continue;
        }
        return false;
    }
    false
}

/// Lints `source`, reporting findings against `path`. Test code
/// (`#[cfg(test)]` regions) is exempt from every rule.
pub fn lint_source(path: &Path, source: &str, rules: RuleSet) -> Vec<Finding> {
    let mut lines = lex(source);
    mark_test_regions(&mut lines);
    let (mut waivers, waiver_errors) = parse_waivers(&lines);
    let mut findings = Vec::new();

    let emit = |findings: &mut Vec<Finding>,
                    waivers: &mut Vec<Waiver>,
                    line: usize,
                    rule: Rule,
                    message: String| {
        for w in waivers.iter_mut() {
            if w.rule == Some(rule) && line >= w.covers.0 && line <= w.covers.1 {
                w.used = true;
                return;
            }
        }
        findings.push(Finding {
            file: path.to_path_buf(),
            line: line + 1,
            rule,
            message,
        });
    };

    for (i, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if rules.determinism {
            for token in DETERMINISM_TOKENS {
                if contains_word(&line.code, token) {
                    emit(
                        &mut findings,
                        &mut waivers,
                        i,
                        Rule::Determinism,
                        format!("nondeterministic construct `{token}`"),
                    );
                }
            }
        }
        if rules.panic_safety {
            if line.code.contains(".unwrap()") {
                emit(
                    &mut findings,
                    &mut waivers,
                    i,
                    Rule::PanicSafety,
                    "call to unwrap() on the hot path".to_string(),
                );
            }
            if line.code.contains(".expect(") && !line.raw.contains(".expect(\"invariant:") {
                emit(
                    &mut findings,
                    &mut waivers,
                    i,
                    Rule::PanicSafety,
                    "expect() without an `invariant:` justification".to_string(),
                );
            }
            for mac in PANIC_MACROS {
                if line.code.contains(mac) {
                    emit(
                        &mut findings,
                        &mut waivers,
                        i,
                        Rule::PanicSafety,
                        format!("panic-family macro `{}...`", mac),
                    );
                }
            }
            if has_index_expr(&line.code) {
                emit(
                    &mut findings,
                    &mut waivers,
                    i,
                    Rule::PanicSafety,
                    "possibly-panicking slice index".to_string(),
                );
            }
        }
        if rules.api_docs && is_pub_fn(&line.code) && !has_doc_above(&lines, i) {
            emit(
                &mut findings,
                &mut waivers,
                i,
                Rule::ApiDocs,
                "pub fn without a doc comment".to_string(),
            );
        }
    }

    for (line, msg) in waiver_errors {
        findings.push(Finding {
            file: path.to_path_buf(),
            line: line + 1,
            rule: Rule::Waiver,
            message: msg,
        });
    }
    if rules.any() {
        for w in &waivers {
            // A waiver for a rule not applied to this file is not "unused" —
            // only report waivers whose rule ran here and suppressed nothing.
            let applicable = w.rule.is_some_and(|r| rules.enabled(r));
            if applicable && !w.used && !w.reason.is_empty() {
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line: w.line + 1,
                    rule: Rule::Waiver,
                    message: format!(
                        "unused waiver for `{}` — nothing to suppress",
                        w.rule.map(Rule::name).unwrap_or("?")
                    ),
                });
            }
        }
    }
    findings
}

/// Lints one file from disk.
pub fn lint_file(path: &Path, rules: RuleSet) -> io::Result<Vec<Finding>> {
    let source = fs::read_to_string(path)?;
    Ok(lint_source(path, &source, rules))
}

/// Recursively collects `.rs` files under `dir`, sorted for stable output.
pub fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&d)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for p in entries {
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// The workspace policy: which rules apply to which file.
///
/// - `determinism`: all of `wtpg-core`, `wtpg-sim`, `wtpg-workload`,
///   `wtpg-graph` sources — but **not** `wtpg-rt`, whose wall clocks and
///   free-running threads are the point (its runs are checked by replay
///   certification instead). `wtpg-obs` event/histogram/sink code is also
///   held to determinism (traces of deterministic runs must be
///   byte-deterministic); its single sanctioned clock lives in `wall.rs`,
///   which is exempt like the engine it serves.
/// - `panic-safety`: `wtpg-core/src/wtpg.rs`, `estimate.rs`, `sched/*`, and
///   all of `wtpg-rt/src` (a panic on an engine thread poisons shared locks),
///   `wtpg-obs/src` (observers are called from those same threads) and
///   `wtpg-net/src` (a panicking actor deadlocks every peer waiting on it).
/// - `api-docs`: all of `wtpg-core/src`, `wtpg-rt/src`, `wtpg-obs/src` and
///   `wtpg-net/src`.
/// - `wtpg-net` splits on determinism: the pure protocol layer (`msg.rs`,
///   `codec.rs`, `fault.rs` decisions, `report.rs`) must be deterministic —
///   the wire format and fault schedules are replayable by seed — while the
///   actor loops (`control.rs`, `client.rs`, `data.rs`, `runtime.rs`), the
///   flush-window coalescer (`batch.rs`) and the socket transport
///   (`tcp.rs`) run on wall clocks and OS threads by design, certified by
///   replay like the engine.
pub fn rules_for(path: &Path) -> RuleSet {
    let s = path.to_string_lossy().replace('\\', "/");
    let in_crate = |name: &str| s.contains(&format!("crates/{name}/src/"));
    let net_wall_clock = [
        "/tcp.rs",
        "/control.rs",
        "/client.rs",
        "/data.rs",
        "/runtime.rs",
        "/batch.rs",
    ]
    .iter()
    .any(|f| s.ends_with(f));
    let determinism = ["wtpg-core", "wtpg-sim", "wtpg-workload", "wtpg-graph"]
        .iter()
        .any(|c| in_crate(c))
        || (in_crate("wtpg-obs") && !s.ends_with("/wall.rs"))
        || (in_crate("wtpg-net") && !net_wall_clock);
    let api_docs = in_crate("wtpg-core")
        || in_crate("wtpg-rt")
        || in_crate("wtpg-obs")
        || in_crate("wtpg-net");
    let panic_safety = in_crate("wtpg-rt")
        || in_crate("wtpg-obs")
        || in_crate("wtpg-net")
        || (in_crate("wtpg-core")
            && (s.ends_with("/wtpg.rs") || s.ends_with("/estimate.rs") || s.contains("/sched/")));
    RuleSet {
        determinism,
        panic_safety,
        api_docs,
    }
}

/// Lints the whole workspace rooted at `root` under the scoping policy.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for krate in [
        "wtpg-core",
        "wtpg-sim",
        "wtpg-workload",
        "wtpg-graph",
        "wtpg-rt",
        "wtpg-obs",
        "wtpg-net",
    ] {
        let src = root.join("crates").join(krate).join("src");
        for file in rust_files(&src)? {
            let rules = rules_for(&file);
            findings.extend(lint_file(&file, rules)?);
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        lint_source(Path::new("test.rs"), src, RuleSet::ALL)
    }

    #[test]
    fn clean_source_has_no_findings() {
        let src = "/// Doc.\npub fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0)\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn determinism_tokens_fire() {
        let f = lint("use std::collections::HashMap;\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Determinism);
    }

    #[test]
    fn determinism_word_boundary() {
        assert!(lint("struct HashMapLike;\n").is_empty());
    }

    #[test]
    fn tokens_in_strings_and_comments_ignored() {
        assert!(lint("// HashMap is banned\nconst S: &str = \"HashMap\";\n").is_empty());
    }

    #[test]
    fn unwrap_fires_and_waiver_suppresses() {
        let f = lint("fn f() { x.unwrap(); }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::PanicSafety);
        let w = lint("fn f() { x.unwrap(); } // lint:allow(panic-safety) x set above\n");
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn invariant_expect_is_accepted() {
        assert!(lint("fn f() { x.expect(\"invariant: set in new\"); }\n").is_empty());
        let f = lint("fn f() { x.expect(\"oops\"); }\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn index_expression_fires() {
        let f = lint("fn f() { let y = v[i]; }\n");
        assert_eq!(f.len(), 1);
        assert!(lint("fn f(v: &[u32; 4]) {}\n").is_empty());
    }

    #[test]
    fn standalone_waiver_covers_whole_fn() {
        let src = "// lint:allow(panic-safety) indices bounded by construction\n\
                   fn f(v: &Vec<u32>) -> u32 {\n    v[0] + v[1]\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn unused_waiver_is_reported() {
        let f = lint("// lint:allow(panic-safety) nothing here\nfn f() {}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Waiver);
    }

    #[test]
    fn waiver_without_reason_is_reported() {
        let f = lint("fn f() { x.unwrap() } // lint:allow(panic-safety)\n");
        assert!(f.iter().any(|f| f.rule == Rule::Waiver), "{f:?}");
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn f() { x.unwrap(); }\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn pub_fn_without_doc_fires() {
        let f = lint("pub fn undocumented() {}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::ApiDocs);
        assert!(lint("/// Doc.\npub fn documented() {}\n").is_empty());
        assert!(lint("pub(crate) fn internal() {}\n").is_empty());
    }

    #[test]
    fn doc_above_attributes_counts() {
        assert!(lint("/// Doc.\n#[inline]\npub fn f() {}\n").is_empty());
    }

    #[test]
    fn raw_strings_are_stripped() {
        assert!(lint("const S: &str = r#\"HashMap .unwrap()\"#;\n").is_empty());
    }
}
