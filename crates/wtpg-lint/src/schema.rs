//! Pass 4: wire-schema stability.
//!
//! Parses `enum Msg` and `fn tag` from `msg.rs` and the
//! `MAX_FRAME`/`MAX_STEPS`/`MAX_BATCH` consts from `codec.rs`, and diffs
//! the result against the checked-in `wire-schema.lock` snapshot. Any
//! drift — a variant's wire tag, its field order, a variant added,
//! removed or reordered, or a codec ceiling — is a finding until the lock
//! is regenerated deliberately (`wtpg-lint --write-schema-lock`), making
//! codec drift a lint failure instead of a runtime proptest catch. These
//! findings are not waivable by design.
//!
//! The lock format is line-oriented and shared with `wtpg-net`'s golden
//! test (single source of truth):
//!
//! ```text
//! max_frame = 1048576
//! max_steps = 4096
//! max_batch = 4096
//! msg Submit = 0 [client, txn, step, spec]
//! msg Shutdown = 9 []
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use crate::outline::matches_in;
use crate::{Finding, Rule, SourceFile};

/// One message variant's wire shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsgSchema {
    /// Variant name.
    pub name: String,
    /// Wire tag byte.
    pub tag: u64,
    /// Field names in wire (declaration) order; tuple fields are `"0"`, …
    pub fields: Vec<String>,
}

/// The full wire schema: codec ceilings plus every variant in declaration
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSchema {
    /// `codec::MAX_FRAME`.
    pub max_frame: u64,
    /// `codec::MAX_STEPS`.
    pub max_steps: u64,
    /// `codec::MAX_BATCH`.
    pub max_batch: u64,
    /// `codec::MAX_EXCLUDE`.
    pub max_exclude: u64,
    /// Variants in declaration order.
    pub msgs: Vec<MsgSchema>,
}

/// Source lines (0-based) for anchoring drift findings at the code side.
struct SchemaLines {
    enum_line: usize,
    variant_lines: Vec<(String, usize)>,
    frame_line: usize,
    steps_line: usize,
    batch_line: usize,
    exclude_line: usize,
}

/// Evaluates a const value expression: a plain integer or `a << b`.
fn eval_const(value: &str) -> Option<u64> {
    let parts: Vec<&str> = value.split_whitespace().collect();
    match parts.as_slice() {
        [a] => a.parse().ok(),
        [a, "<<", b] => {
            let a: u64 = a.parse().ok()?;
            let b: u32 = b.parse().ok()?;
            a.checked_shl(b)
        }
        _ => None,
    }
}

fn const_of(sf: &SourceFile, name: &str) -> Result<(u64, usize), String> {
    let c = sf
        .outline
        .consts
        .iter()
        .find(|c| c.name == name)
        .ok_or(format!("no `const {name}`"))?;
    let v = eval_const(&c.value).ok_or(format!("cannot evaluate `{name} = {}`", c.value))?;
    Ok((v, c.line))
}

/// Extracts the current wire schema from parsed `msg.rs` and `codec.rs`.
fn extract(msg: &SourceFile, codec: &SourceFile) -> Result<(WireSchema, SchemaLines), String> {
    let e = msg
        .outline
        .enums
        .iter()
        .find(|e| e.name == "Msg")
        .ok_or("no `enum Msg` in msg.rs")?;
    let tag_fn = msg
        .outline
        .fns
        .iter()
        .find(|f| f.name == "tag")
        .ok_or("no `fn tag` in msg.rs")?;
    let ms = matches_in(&msg.tokens, tag_fn.body);
    let m = ms.first().ok_or("`fn tag` has no match")?;
    let mut tags: Vec<(String, u64)> = Vec::new();
    for arm in &m.arms {
        let pat = &msg.tokens[arm.pat.0..arm.pat.1.min(msg.tokens.len())];
        let name = pat
            .windows(3)
            .find(|w| w[0].text == "Msg" && w[1].text == "::" && w[2].is_word())
            .map(|w| w[2].text.clone());
        let Some(name) = name else { continue };
        let body = &msg.tokens[arm.body.0..arm.body.1.min(msg.tokens.len())];
        let Some(tag) = body.iter().find_map(|t| t.text.parse::<u64>().ok()) else {
            continue;
        };
        tags.push((name, tag));
    }
    let mut msgs = Vec::new();
    let mut variant_lines = Vec::new();
    let enum_line = msg
        .tokens
        .get(e.body.0)
        .map(|t| t.line.saturating_sub(1))
        .unwrap_or(0);
    for v in &e.variants {
        let tag = tags
            .iter()
            .find(|(n, _)| *n == v.name)
            .map(|(_, t)| *t)
            .ok_or(format!("`fn tag` has no arm for `Msg::{}`", v.name))?;
        variant_lines.push((v.name.clone(), v.line));
        msgs.push(MsgSchema {
            name: v.name.clone(),
            tag,
            fields: v.fields.clone(),
        });
    }
    let (max_frame, frame_line) = const_of(codec, "MAX_FRAME")?;
    let (max_steps, steps_line) = const_of(codec, "MAX_STEPS")?;
    let (max_batch, batch_line) = const_of(codec, "MAX_BATCH")?;
    let (max_exclude, exclude_line) = const_of(codec, "MAX_EXCLUDE")?;
    Ok((
        WireSchema {
            max_frame,
            max_steps,
            max_batch,
            max_exclude,
            msgs,
        },
        SchemaLines {
            enum_line,
            variant_lines,
            frame_line,
            steps_line,
            batch_line,
            exclude_line,
        },
    ))
}

/// Renders a schema in the lock format, with a regeneration header.
pub fn render(ws: &WireSchema) -> String {
    let mut s = String::new();
    s.push_str("# wire-schema.lock — the pinned wtpg-net wire protocol.\n");
    s.push_str("# One line per Msg variant, in declaration order: `msg <Name> = <tag> [fields…]`,\n");
    s.push_str("# plus the codec's frame/step/batch ceilings. wtpg-lint's schema pass and\n");
    s.push_str("# wtpg-net's golden test both consume this file; regenerate it deliberately\n");
    s.push_str("# with: cargo run -p wtpg-lint -- --write-schema-lock\n");
    s.push_str(&format!("max_frame = {}\n", ws.max_frame));
    s.push_str(&format!("max_steps = {}\n", ws.max_steps));
    s.push_str(&format!("max_batch = {}\n", ws.max_batch));
    s.push_str(&format!("max_exclude = {}\n", ws.max_exclude));
    for m in &ws.msgs {
        s.push_str(&format!("msg {} = {} [{}]\n", m.name, m.tag, m.fields.join(", ")));
    }
    s
}

/// Parses the lock format back into a schema. Shared with `wtpg-net`'s
/// golden test.
pub fn parse_lock(text: &str) -> Result<WireSchema, String> {
    let mut max_frame = None;
    let mut max_steps = None;
    let mut max_batch = None;
    let mut max_exclude = None;
    let mut msgs = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("msg ") {
            let (name, rest) = rest
                .split_once('=')
                .ok_or(format!("line {lno}: expected `msg Name = tag [fields]`"))?;
            let rest = rest.trim();
            let (tag_s, fields_s) = rest
                .split_once('[')
                .ok_or(format!("line {lno}: expected `[fields]`"))?;
            let tag = tag_s
                .trim()
                .parse()
                .map_err(|_| format!("line {lno}: bad tag `{}`", tag_s.trim()))?;
            let fields_s = fields_s
                .strip_suffix(']')
                .ok_or(format!("line {lno}: missing `]`"))?;
            let fields = fields_s
                .split(',')
                .map(|f| f.trim().to_string())
                .filter(|f| !f.is_empty())
                .collect();
            msgs.push(MsgSchema {
                name: name.trim().to_string(),
                tag,
                fields,
            });
            continue;
        }
        let (k, v) = line
            .split_once('=')
            .ok_or(format!("line {lno}: expected `key = value`"))?;
        let v: u64 = v
            .trim()
            .parse()
            .map_err(|_| format!("line {lno}: bad value `{}`", v.trim()))?;
        match k.trim() {
            "max_frame" => max_frame = Some(v),
            "max_steps" => max_steps = Some(v),
            "max_batch" => max_batch = Some(v),
            "max_exclude" => max_exclude = Some(v),
            other => return Err(format!("line {lno}: unknown key `{other}`")),
        }
    }
    Ok(WireSchema {
        max_frame: max_frame.ok_or("lock has no max_frame")?,
        max_steps: max_steps.ok_or("lock has no max_steps")?,
        max_batch: max_batch.ok_or("lock has no max_batch")?,
        max_exclude: max_exclude.ok_or("lock has no max_exclude")?,
        msgs,
    })
}

fn finding(file: &Path, line0: usize, message: String) -> Finding {
    Finding {
        file: file.to_path_buf(),
        line: line0 + 1,
        rule: Rule::Schema,
        message,
    }
}

/// Diffs the current schema against the locked one, anchoring findings at
/// the code side (`msg.rs` variant lines, `codec.rs` const lines).
fn diff(
    cur: &WireSchema,
    lines: &SchemaLines,
    locked: &WireSchema,
    msg_path: &Path,
    codec_path: &Path,
    out: &mut Vec<Finding>,
) {
    const BUMP: &str = "regenerate wire-schema.lock deliberately (--write-schema-lock) if this protocol change is intended";
    for (field, cur_v, lock_v, line) in [
        ("MAX_FRAME", cur.max_frame, locked.max_frame, lines.frame_line),
        ("MAX_STEPS", cur.max_steps, locked.max_steps, lines.steps_line),
        ("MAX_BATCH", cur.max_batch, locked.max_batch, lines.batch_line),
        (
            "MAX_EXCLUDE",
            cur.max_exclude,
            locked.max_exclude,
            lines.exclude_line,
        ),
    ] {
        if cur_v != lock_v {
            out.push(finding(
                codec_path,
                line,
                format!("`{field}` is {cur_v} but wire-schema.lock pins {lock_v} — {BUMP}"),
            ));
        }
    }
    let cur_names: Vec<&str> = cur.msgs.iter().map(|m| m.name.as_str()).collect();
    let lock_names: Vec<&str> = locked.msgs.iter().map(|m| m.name.as_str()).collect();
    if cur_names != lock_names {
        out.push(finding(
            msg_path,
            lines.enum_line,
            format!(
                "Msg variant set/order changed: code has [{}], wire-schema.lock pins [{}] — {BUMP}",
                cur_names.join(", "),
                lock_names.join(", ")
            ),
        ));
    }
    for m in &cur.msgs {
        let Some(l) = locked.msgs.iter().find(|l| l.name == m.name) else {
            continue; // covered by the set/order finding
        };
        let line = lines
            .variant_lines
            .iter()
            .find(|(n, _)| *n == m.name)
            .map(|(_, l)| *l)
            .unwrap_or(lines.enum_line);
        if m.tag != l.tag {
            out.push(finding(
                msg_path,
                line,
                format!(
                    "wire tag for `Msg::{}` is {} but wire-schema.lock pins {} — {BUMP}",
                    m.name, m.tag, l.tag
                ),
            ));
        }
        if m.fields != l.fields {
            out.push(finding(
                msg_path,
                line,
                format!(
                    "field order for `Msg::{}` is [{}] but wire-schema.lock pins [{}] — {BUMP}",
                    m.name,
                    m.fields.join(", "),
                    l.fields.join(", ")
                ),
            ));
        }
    }
}

/// Runs the schema pass: locate `msg.rs`/`codec.rs` among `files`, extract
/// the current schema, and diff it against `lock_path`. Missing or
/// unparsable inputs are findings (fail-closed).
pub fn check_against_lock(files: &[SourceFile], lock_path: &Path, out: &mut Vec<Finding>) {
    let by_suffix = |suffix: &str| {
        files.iter().find(|f| {
            f.path
                .to_string_lossy()
                .replace('\\', "/")
                .ends_with(suffix)
        })
    };
    let (Some(msg), Some(codec)) = (by_suffix("/msg.rs"), by_suffix("/codec.rs")) else {
        return; // not the net crate layout
    };
    let (cur, lines) = match extract(msg, codec) {
        Ok(x) => x,
        Err(e) => {
            out.push(finding(&msg.path, 0, format!("cannot extract wire schema: {e}")));
            return;
        }
    };
    let locked = match fs::read_to_string(lock_path) {
        Ok(text) => match parse_lock(&text) {
            Ok(l) => l,
            Err(e) => {
                out.push(finding(lock_path, 0, format!("bad wire-schema.lock: {e}")));
                return;
            }
        },
        Err(_) => {
            out.push(finding(
                lock_path,
                0,
                "missing wire-schema.lock — generate it with `wtpg-lint --write-schema-lock`"
                    .to_string(),
            ));
            return;
        }
    };
    diff(&cur, &lines, &locked, &msg.path, &codec.path, out);
}

/// Extracts the current schema from `msg.rs`/`codec.rs` paths and renders
/// the lock text (the `--write-schema-lock` path).
pub fn render_current(msg_path: &Path, codec_path: &Path) -> Result<String, String> {
    let read = |p: &Path| -> Result<SourceFile, String> {
        let src = fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
        Ok(SourceFile::parse(p, &src))
    };
    let msg = read(msg_path)?;
    let codec = read(codec_path)?;
    let (cur, _) = extract(&msg, &codec)?;
    Ok(render(&cur))
}

/// The conventional locations of the schema inputs under a workspace root.
pub fn net_paths(root: &Path) -> (PathBuf, PathBuf, PathBuf) {
    (
        root.join("crates/wtpg-net/src/msg.rs"),
        root.join("crates/wtpg-net/src/codec.rs"),
        root.join("wire-schema.lock"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSG: &str = "pub enum Msg {\n    Ping { a: u32, b: u32 },\n    Pong,\n    Batch(Vec<Msg>),\n}\nimpl Msg {\n    pub fn tag(&self) -> u8 {\n        match self {\n            Msg::Ping { .. } => 0,\n            Msg::Pong => 1,\n            Msg::Batch(_) => 2,\n        }\n    }\n}\n";
    const CODEC: &str = "pub const MAX_FRAME: usize = 1 << 20;\npub const MAX_STEPS: u32 = 4096;\npub const MAX_BATCH: u32 = 4096;\npub const MAX_EXCLUDE: u32 = 65536;\n";

    fn current() -> (WireSchema, SchemaLines) {
        let msg = SourceFile::parse(Path::new("x/msg.rs"), MSG);
        let codec = SourceFile::parse(Path::new("x/codec.rs"), CODEC);
        extract(&msg, &codec).expect("extracts")
    }

    #[test]
    fn extract_reads_tags_fields_and_consts() {
        let (ws, _) = current();
        assert_eq!(ws.max_frame, 1 << 20);
        assert_eq!(ws.msgs.len(), 3);
        assert_eq!(ws.msgs[0].name, "Ping");
        assert_eq!(ws.msgs[0].tag, 0);
        assert_eq!(ws.msgs[0].fields, ["a", "b"]);
        assert_eq!(ws.msgs[2].fields, ["0"]);
    }

    #[test]
    fn render_parse_round_trips() {
        let (ws, _) = current();
        let text = render(&ws);
        let back = parse_lock(&text).expect("parses");
        assert_eq!(back, ws);
    }

    #[test]
    fn drift_is_detected() {
        let (ws, lines) = current();
        let mut locked = ws.clone();
        locked.msgs[1].tag = 9; // Pong drifts
        locked.max_frame = 4096;
        let mut out = Vec::new();
        diff(&ws, &lines, &locked, Path::new("x/msg.rs"), Path::new("x/codec.rs"), &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().any(|f| f.message.contains("MAX_FRAME")), "{out:?}");
        assert!(
            out.iter().any(|f| f.message.contains("`Msg::Pong`")),
            "{out:?}"
        );
        let mut clean = Vec::new();
        diff(&ws, &lines, &ws, Path::new("m"), Path::new("c"), &mut clean);
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn variant_reorder_is_detected() {
        let (ws, lines) = current();
        let mut locked = ws.clone();
        locked.msgs.swap(0, 1);
        let mut out = Vec::new();
        diff(&ws, &lines, &locked, Path::new("m"), Path::new("c"), &mut out);
        assert!(
            out.iter().any(|f| f.message.contains("set/order")),
            "{out:?}"
        );
    }
}
