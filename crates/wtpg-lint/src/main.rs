//! `wtpg-lint` entry point.
//!
//! - `cargo run -p wtpg-lint` — lints the workspace under the scoping policy
//!   in [`wtpg_lint::rules_for`]; exits non-zero on any unwaived finding.
//! - `cargo run -p wtpg-lint -- <path>...` — lints the given files or
//!   directories with **all** rules enabled (used by the fixture corpus).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use wtpg_lint::{lint_file, lint_workspace, rust_files, Finding, RuleSet};

/// The workspace root: this binary is always built in-tree, two levels below.
fn workspace_root() -> PathBuf {
    let mut d = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    d.pop();
    d.pop();
    d
}

fn lint_paths(args: &[String]) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for arg in args {
        let p = Path::new(arg);
        if p.is_dir() {
            for file in rust_files(p)? {
                findings.extend(lint_file(&file, RuleSet::ALL)?);
            }
        } else {
            findings.extend(lint_file(p, RuleSet::ALL)?);
        }
    }
    Ok(findings)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = if args.is_empty() {
        lint_workspace(&workspace_root())
    } else {
        lint_paths(&args)
    };
    match result {
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                println!("wtpg-lint: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("wtpg-lint: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("wtpg-lint: i/o error: {e}");
            ExitCode::from(2)
        }
    }
}
