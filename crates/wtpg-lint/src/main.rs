//! `wtpg-lint` entry point.
//!
//! - `cargo run -p wtpg-lint` — lints the workspace: per-line rules under
//!   the scoping policy in [`wtpg_lint::rules_for`] plus the four v2
//!   passes (lock-order, protocol, taint, wire-schema); exits non-zero on
//!   any unwaived finding.
//! - `--format json` — emit findings as a JSON array (CI artifact).
//! - `--write-schema-lock` — regenerate `wire-schema.lock` from
//!   `msg.rs`/`codec.rs` (the deliberate protocol-bump path).
//! - `cargo run -p wtpg-lint -- <path>...` — lints the given files or
//!   directories with **all** per-line rules enabled (fixture corpus).
//! - `--pass locks --manifest <toml> <path>...` — run only the lock-order
//!   pass with an explicit manifest (fixture corpus).
//! - `--pass schema --msg <rs> --codec <rs> --lock <lock>` — run only the
//!   schema pass against an explicit lock (fixture corpus).
//! - `--pass protocol --msg <rs> <actor>...` — run only the protocol pass
//!   with an explicit `Msg` enum (fixture corpus).
//! - `--pass taint --protected <substr> <path>...` — run only the
//!   determinism-taint pass; files whose path contains the substring are
//!   the protected set (fixture corpus).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use wtpg_lint::{
    findings_to_json, lint_file, lint_workspace, locks, protocol, rust_files, schema, taint,
    Finding, RuleSet, SourceFile,
};

/// The workspace root: this binary is always built in-tree, two levels below.
fn workspace_root() -> PathBuf {
    let mut d = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    d.pop();
    d.pop();
    d
}

fn lint_paths(args: &[String]) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for arg in args {
        let p = Path::new(arg);
        if p.is_dir() {
            for file in rust_files(p)? {
                findings.extend(lint_file(&file, RuleSet::ALL)?);
            }
        } else {
            findings.extend(lint_file(p, RuleSet::ALL)?);
        }
    }
    Ok(findings)
}

fn read_files(paths: &[String]) -> std::io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    for arg in paths {
        let p = Path::new(arg);
        if p.is_dir() {
            for file in rust_files(p)? {
                out.push(SourceFile::read(&file)?);
            }
        } else {
            out.push(SourceFile::read(p)?);
        }
    }
    Ok(out)
}

/// Pulls `--flag value` out of `args`, returning the value.
fn take_opt(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        return None;
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn run_pass(pass: &str, mut args: Vec<String>) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    match pass {
        "locks" => {
            let manifest_path = take_opt(&mut args, "--manifest")
                .ok_or("--pass locks needs --manifest <toml>")?;
            let text = std::fs::read_to_string(&manifest_path)
                .map_err(|e| format!("{manifest_path}: {e}"))?;
            let manifest = locks::LockManifest::parse(&text)?;
            let mut files = read_files(&args).map_err(|e| e.to_string())?;
            locks::check(&mut files, &manifest, &mut findings);
            for sf in &mut files {
                sf.finish(&mut findings);
            }
        }
        "schema" => {
            let msg = take_opt(&mut args, "--msg").ok_or("--pass schema needs --msg <rs>")?;
            let codec =
                take_opt(&mut args, "--codec").ok_or("--pass schema needs --codec <rs>")?;
            let lock = take_opt(&mut args, "--lock").ok_or("--pass schema needs --lock <file>")?;
            let files = read_files(&[msg, codec]).map_err(|e| e.to_string())?;
            schema::check_against_lock(&files, Path::new(&lock), &mut findings);
        }
        "protocol" => {
            let msg = take_opt(&mut args, "--msg").ok_or("--pass protocol needs --msg <rs>")?;
            let msg_sf = SourceFile::read(Path::new(&msg)).map_err(|e| e.to_string())?;
            let variants: Vec<String> = msg_sf
                .outline
                .enums
                .iter()
                .find(|e| e.name == "Msg")
                .map(|e| e.variants.iter().map(|v| v.name.clone()).collect())
                .ok_or("--pass protocol: no `enum Msg` in the --msg file")?;
            let mut files = read_files(&args).map_err(|e| e.to_string())?;
            protocol::check_actors(&variants, &mut files, &mut findings);
            for sf in &mut files {
                sf.finish(&mut findings);
            }
        }
        "taint" => {
            let pat = take_opt(&mut args, "--protected")
                .ok_or("--pass taint needs --protected <path-substring>")?;
            let mut files = read_files(&args).map_err(|e| e.to_string())?;
            taint::check(
                &mut files,
                &|p: &Path| p.to_string_lossy().replace('\\', "/").contains(&pat),
                &mut findings,
            );
            for sf in &mut files {
                sf.finish(&mut findings);
            }
        }
        other => return Err(format!("unknown pass `{other}`")),
    }
    Ok(findings)
}

fn write_schema_lock(root: &Path) -> Result<(), String> {
    let (msg, codec, lock) = schema::net_paths(root);
    let text = schema::render_current(&msg, &codec)?;
    std::fs::write(&lock, text).map_err(|e| format!("{}: {e}", lock.display()))?;
    println!("wtpg-lint: wrote {}", lock.display());
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = {
        let before = args.len();
        args.retain(|a| a != "--format" && a != "json");
        // `--format json` is two tokens; anything else after --format is an
        // error surfaced as an unknown path below.
        before != args.len()
    };
    if args.iter().any(|a| a == "--write-schema-lock") {
        return match write_schema_lock(&workspace_root()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("wtpg-lint: {e}");
                ExitCode::from(2)
            }
        };
    }
    let result: Result<Vec<Finding>, String> = if let Some(pass) = take_opt(&mut args, "--pass") {
        run_pass(&pass, args)
    } else if args.is_empty() {
        lint_workspace(&workspace_root()).map_err(|e| e.to_string())
    } else {
        lint_paths(&args).map_err(|e| e.to_string())
    };
    match result {
        Ok(findings) => {
            if json {
                println!("{}", findings_to_json(&findings));
            } else {
                for f in &findings {
                    println!("{f}");
                }
            }
            if findings.is_empty() {
                if !json {
                    println!("wtpg-lint: clean");
                }
                ExitCode::SUCCESS
            } else {
                eprintln!("wtpg-lint: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("wtpg-lint: {e}");
            ExitCode::from(2)
        }
    }
}
