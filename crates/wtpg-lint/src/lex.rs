//! Lexing: the line-oriented string/comment stripper (v1) and the token
//! stream built on top of it (v2).
//!
//! The line lexer strips string literals and comments (tracking nested
//! block comments and raw strings across lines) and produces per-line
//! code/comment views; `#[cfg(test)]` regions are marked so every rule and
//! pass can skip test code. The token stream then splits the surviving
//! code into identifier/number words and punctuation, each token tagged
//! with its 0-based line — just enough structure for the outline parser,
//! and still dependency-free.

/// One source line after lexing: executable code with strings/comments
/// removed, the comment text (for waiver parsing), and the raw line.
#[derive(Debug)]
pub struct LineInfo {
    /// Code with string literals collapsed and comments removed.
    pub code: String,
    /// The comment text of the line (waivers live here).
    pub comment: String,
    /// The raw line as written.
    pub raw: String,
    /// Inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// Lexer state carried across lines.
enum LexState {
    Normal,
    BlockComment { depth: usize },
    RawString { hashes: usize },
}

/// Strips string literals and comments, producing per-line code/comment
/// views. Block comments may nest (Rust allows it); raw strings may span
/// lines. Char literals and lifetimes are disambiguated heuristically.
pub fn lex(source: &str) -> Vec<LineInfo> {
    let mut out = Vec::new();
    let mut state = LexState::Normal;
    for raw in source.lines() {
        let mut code = String::new();
        let mut comment = String::new();
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            match state {
                LexState::BlockComment { ref mut depth } => {
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        *depth -= 1;
                        i += 2;
                        if *depth == 0 {
                            state = LexState::Normal;
                        }
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        *depth += 1;
                        i += 2;
                    } else {
                        comment.push(chars[i]);
                        i += 1;
                    }
                }
                LexState::RawString { hashes } => {
                    if chars[i] == '"' {
                        let mut ok = true;
                        for k in 0..hashes {
                            if chars.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            code.push('"');
                            i += 1 + hashes;
                            state = LexState::Normal;
                            continue;
                        }
                    }
                    i += 1;
                }
                LexState::Normal => {
                    let c = chars[i];
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        comment.push_str(&raw[byte_offset(raw, i)..]);
                        break;
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = LexState::BlockComment { depth: 1 };
                        i += 2;
                    } else if c == 'r' && !prev_is_ident(&chars, i) {
                        if let Some(hashes) = raw_string_hashes(&chars, i + 1) {
                            code.push('"');
                            i += 2 + hashes;
                            state = LexState::RawString { hashes };
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    } else if c == '"' {
                        // Ordinary string literal: skip to the closing quote,
                        // honouring escapes. Unterminated ⇒ rest of line.
                        code.push('"');
                        i += 1;
                        while i < chars.len() {
                            if chars[i] == '\\' {
                                i += 2;
                            } else if chars[i] == '"' {
                                code.push('"');
                                i += 1;
                                break;
                            } else {
                                i += 1;
                            }
                        }
                    } else if c == '\'' {
                        // Char literal vs lifetime: a char literal closes
                        // with ' after one (possibly escaped) character.
                        if chars.get(i + 1) == Some(&'\\') {
                            // Escaped char literal: skip to closing quote.
                            i += 2;
                            while i < chars.len() && chars[i] != '\'' {
                                i += 1;
                            }
                            i += 1;
                            code.push_str("' '");
                        } else if chars.get(i + 2) == Some(&'\'') {
                            code.push_str("' '");
                            i += 3;
                        } else {
                            // Lifetime: keep the tick, it is inert.
                            code.push('\'');
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        out.push(LineInfo {
            code,
            comment,
            raw: raw.to_string(),
            in_test: false,
        });
    }
    out
}

fn byte_offset(s: &str, char_idx: usize) -> usize {
    s.char_indices()
        .nth(char_idx)
        .map(|(b, _)| b)
        .unwrap_or(s.len())
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// If `chars[from..]` begins `#*"` (a raw-string opener after `r`), returns
/// the hash count.
fn raw_string_hashes(chars: &[char], from: usize) -> Option<usize> {
    let mut hashes = 0;
    let mut i = from;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) == Some(&'"') {
        Some(hashes)
    } else {
        None
    }
}

/// Marks lines inside `#[cfg(test)]` items: from the attribute through the
/// matching close brace (or trailing `;` for brace-less items).
pub fn mark_test_regions(lines: &mut [LineInfo]) {
    let mut depth: i64 = 0;
    let mut test_until_depth: Option<i64> = None;
    let mut pending = false;
    for line in lines.iter_mut() {
        let mut this_in_test = test_until_depth.is_some();
        if line.code.contains("#[cfg(test)]") && test_until_depth.is_none() {
            pending = true;
        }
        if pending {
            this_in_test = true;
        }
        let mut end_after = false;
        let mut pending_done_by_semi = false;
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending && test_until_depth.is_none() {
                        test_until_depth = Some(depth - 1);
                        pending = false;
                    }
                }
                '}' => {
                    depth -= 1;
                    if let Some(d) = test_until_depth {
                        if depth <= d {
                            end_after = true;
                        }
                    }
                }
                // `#[cfg(test)] use ...;` — brace-less item ends here.
                ';' if pending && test_until_depth.is_none() => {
                    pending_done_by_semi = true;
                }
                _ => {}
            }
        }
        line.in_test = this_in_test;
        if end_after {
            test_until_depth = None;
        }
        if pending_done_by_semi {
            pending = false;
        }
    }
}

/// One token of the non-test code: an identifier/number word or a single
/// punctuation mark (with `::`, `->`, `=>`, `<<` kept whole), tagged with
/// its 0-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// The token text.
    pub text: String,
    /// 0-based line the token starts on.
    pub line: usize,
}

impl Tok {
    /// True if the token is an identifier or number word.
    pub fn is_word(&self) -> bool {
        self.text
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
    }
}

/// Splits the lexed non-test code into a token stream. String literals are
/// already collapsed to `"` pairs by [`lex`], so no token ever comes from
/// inside a string; whole `#[cfg(test)]` regions are dropped (they are
/// brace-balanced, so the stream stays balanced).
pub fn tokenize(lines: &[LineInfo]) -> Vec<Tok> {
    let mut out = Vec::new();
    for (lineno, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() || c == '"' {
                i += 1;
                continue;
            }
            if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Tok {
                    text: chars[start..i].iter().collect(),
                    line: lineno,
                });
                continue;
            }
            let pair: Option<&str> = match (c, chars.get(i + 1)) {
                (':', Some(':')) => Some("::"),
                ('-', Some('>')) => Some("->"),
                ('=', Some('>')) => Some("=>"),
                ('<', Some('<')) => Some("<<"),
                _ => None,
            };
            if let Some(p) = pair {
                out.push(Tok {
                    text: p.to_string(),
                    line: lineno,
                });
                i += 2;
            } else {
                out.push(Tok {
                    text: c.to_string(),
                    line: lineno,
                });
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<String> {
        let mut lines = lex(src);
        mark_test_regions(&mut lines);
        tokenize(&lines).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn words_and_punct_split() {
        assert_eq!(
            toks("fn f(x: u32) -> u32 { x << 2 }"),
            ["fn", "f", "(", "x", ":", "u32", ")", "->", "u32", "{", "x", "<<", "2", "}"]
        );
    }

    #[test]
    fn paths_and_arrows_stay_whole() {
        assert_eq!(
            toks("Msg::Batch(_) => 10,"),
            ["Msg", "::", "Batch", "(", "_", ")", "=>", "10", ","]
        );
    }

    #[test]
    fn strings_and_comments_yield_no_tokens() {
        assert_eq!(toks("let s = \"HashMap .lock()\"; // Instant"), ["let", "s", "=", ";"]);
    }

    #[test]
    fn test_regions_are_dropped_balanced() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests { fn b() { if x { } } }\nfn c() {}\n";
        assert_eq!(toks(src), ["fn", "a", "(", ")", "{", "}", "fn", "c", "(", ")", "{", "}"]);
    }
}
