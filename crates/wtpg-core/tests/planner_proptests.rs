//! Property tests for the general-WTPG planner: heuristics against the
//! exhaustive oracle on random (non-chain) conflict graphs.

use proptest::prelude::*;
use std::collections::BTreeSet;

use wtpg_core::planner::{exhaustive, greedy, local_search};
use wtpg_core::txn::TxnId;
use wtpg_core::work::Work;
use wtpg_core::wtpg::Wtpg;

/// Random WTPG with up to `max_n` transactions and ≤ 10 conflicting edges
/// (the oracle is exponential), a few pre-resolved low→high.
fn arb_wtpg(max_n: usize) -> impl Strategy<Value = Wtpg> {
    (2..=max_n)
        .prop_flat_map(move |n| {
            let t0 = proptest::collection::vec(0u64..40, n);
            let edges = proptest::collection::vec(
                (0..n, 0..n, 0u64..40, 0u64..40, prop::bool::ANY),
                0..=10,
            );
            (t0, edges)
        })
        .prop_map(|(t0, raw)| {
            let mut g = Wtpg::new();
            for (i, &w) in t0.iter().enumerate() {
                g.add_txn(TxnId(i as u64 + 1), Work::from_units(w)).unwrap();
            }
            let mut seen = BTreeSet::new();
            for (x, y, wab, wba, resolve) in raw {
                let (a, b) = if x < y { (x, y) } else { (y, x) };
                if a == b || !seen.insert((a, b)) {
                    continue;
                }
                let (ta, tb) = (TxnId(a as u64 + 1), TxnId(b as u64 + 1));
                g.add_or_merge_conflict(ta, tb, Work::from_units(wab), Work::from_units(wba))
                    .unwrap();
                if resolve {
                    // Low→high resolutions can never create a cycle.
                    g.resolve(ta, tb).unwrap();
                }
            }
            g
        })
}

proptest! {
    /// Heuristic plans are valid (acyclic, complete) and never beat the
    /// oracle; local search never loses to greedy.
    #[test]
    fn heuristics_bracketed_by_oracle(g in arb_wtpg(8)) {
        let oracle = exhaustive(&g);
        let gr = greedy(&g);
        let ls = local_search(&g);
        prop_assert!(gr.critical_path >= oracle.critical_path);
        prop_assert!(ls.critical_path >= oracle.critical_path);
        prop_assert!(ls.critical_path <= gr.critical_path);
        // Completeness: every conflicting pair is oriented exactly one way,
        // every precedence edge is kept.
        for plan in [&oracle, &gr, &ls] {
            for (a, b, _, _) in g.conflict_edges() {
                prop_assert!(plan.orients(a, b) ^ plan.orients(b, a));
            }
            for (a, b, _) in g.precedence_edges() {
                prop_assert!(plan.orients(a, b));
            }
        }
    }

    /// Applying a plan's orientation to the WTPG yields exactly the plan's
    /// critical path and stays acyclic.
    #[test]
    fn plans_evaluate_to_their_claimed_critical_path(g in arb_wtpg(8)) {
        for plan in [greedy(&g), local_search(&g)] {
            let mut overlay = g.clone();
            for (a, b, _, _) in g.conflict_edges() {
                let (from, to) = if plan.orients(a, b) { (a, b) } else { (b, a) };
                overlay.resolve(from, to).unwrap();
            }
            let cp = overlay.critical_path();
            prop_assert_eq!(cp, Some(plan.critical_path));
        }
    }

    /// On chain-form WTPGs the local-search heuristic matches the exact
    /// chain optimum (chains are easy; the heuristic should not miss).
    #[test]
    fn local_search_is_exact_on_chains(
        r in proptest::collection::vec(0u64..40, 2..8),
        weights in proptest::collection::vec((0u64..40, 0u64..40), 7),
    ) {
        let n = r.len();
        let mut g = Wtpg::new();
        for (i, &w) in r.iter().enumerate() {
            g.add_txn(TxnId(i as u64 + 1), Work::from_units(w)).unwrap();
        }
        for (i, &(wab, wba)) in weights.iter().enumerate().take(n - 1) {
            g.add_or_merge_conflict(
                TxnId(i as u64 + 1),
                TxnId(i as u64 + 2),
                Work::from_units(wab),
                Work::from_units(wba),
            )
            .unwrap();
        }
        let comps = wtpg_core::chain::chain_components(&g).expect("built as a chain");
        let exact: u64 = comps
            .iter()
            .map(|c| wtpg_core::chain::threshold::solve(&c.problem).critical_path)
            .max()
            .unwrap_or(0);
        let ls = local_search(&g);
        prop_assert!(ls.critical_path.units() >= exact);
        // Local search with single flips is exact on paths in practice; we
        // assert it against the oracle (not just the chain DP) to keep the
        // test honest about what single-flip search guarantees.
        let oracle = exhaustive(&g);
        prop_assert_eq!(oracle.critical_path.units(), exact);
    }
}
