//! Scheduler-level property tests: every lock-based scheduler must produce
//! conflict-serializable, strict, deadlock-free executions and eventually
//! finish every transaction, on randomly generated BAT workloads.
//!
//! The driver here is deliberately untimed (one step completes per grant) —
//! the timed shared-nothing machine lives in `wtpg-sim`. What this exercises
//! is the *protocol*: admission/rejection, blocking, delaying, retries,
//! resolution bookkeeping, and commit wakeups.

use proptest::prelude::*;

use wtpg_core::history::{Event, History};
use wtpg_core::sched::{
    Admission, AslScheduler, C2plScheduler, ChainScheduler, GWtpgScheduler, KWtpgScheduler,
    LockOutcome, NodcScheduler, Scheduler,
};
use wtpg_core::time::Tick;
use wtpg_core::txn::{AccessMode, StepSpec, TxnId, TxnSpec};
use wtpg_core::work::Work;

/// A random BAT: 1–4 steps over a small partition set, costs 0.2–5 objects.
fn arb_spec(id: u64, num_parts: u32) -> impl Strategy<Value = TxnSpec> {
    proptest::collection::vec((0..num_parts, prop::bool::ANY, 1u64..=25), 1..=4).prop_map(
        move |steps| {
            let steps = steps
                .into_iter()
                .map(|(p, write, fifths)| {
                    let cost = Work::from_units(fifths * 200); // 0.2 .. 5 objects
                    let mode = if write {
                        AccessMode::Write
                    } else {
                        AccessMode::Read
                    };
                    StepSpec::new(wtpg_core::partition::PartitionId(p), mode, cost)
                })
                .collect();
            TxnSpec::new(TxnId(id), steps)
        },
    )
}

fn arb_workload(max_txns: usize, num_parts: u32) -> impl Strategy<Value = Vec<TxnSpec>> {
    (1..=max_txns).prop_flat_map(move |n| {
        (0..n as u64)
            .map(|id| arb_spec(id + 1, num_parts))
            .collect::<Vec<_>>()
    })
}

/// Drives every transaction to commit through `sched`, retrying rejections
/// and delays round-robin. Returns the recorded history.
///
/// Panics if the workload fails to converge — i.e. the scheduler livelocked
/// or deadlocked.
fn drive(sched: &mut dyn Scheduler, mut todo: Vec<TxnSpec>) -> History {
    #[derive(Clone)]
    enum St {
        NotAdmitted(TxnSpec),
        Running(TxnSpec, usize), // next step
    }
    let mut hist = History::new();
    let mut states: Vec<St> = todo.drain(..).map(St::NotAdmitted).collect();
    let mut now = Tick(0);
    let total = states.len();
    let mut done = 0usize;
    let mut rounds = 0usize;
    while done < total {
        rounds += 1;
        assert!(
            rounds < 200 * total + 200,
            "{} did not converge: {}/{} done",
            sched.name(),
            done,
            total
        );
        let mut next: Vec<St> = Vec::new();
        for st in states {
            now += 1;
            match st {
                St::NotAdmitted(spec) => {
                    let (adm, _) = sched.on_arrive(&spec, now).unwrap();
                    match adm {
                        Admission::Admitted => {
                            hist.push(now, Event::Admitted(spec.id));
                            next.push(St::Running(spec, 0));
                        }
                        Admission::Rejected => {
                            hist.push(now, Event::Rejected(spec.id));
                            next.push(St::NotAdmitted(spec));
                        }
                    }
                }
                St::Running(spec, step) => {
                    let id = spec.id;
                    match sched.on_request(id, step, now).unwrap().0 {
                        LockOutcome::Granted => {
                            let s = spec.steps()[step];
                            hist.push(
                                now,
                                Event::Granted {
                                    txn: id,
                                    step,
                                    partition: s.partition,
                                    mode: s.mode,
                                },
                            );
                            sched.on_progress(id, s.actual_cost).unwrap();
                            hist.push(
                                now,
                                Event::Progress {
                                    txn: id,
                                    amount: s.actual_cost,
                                },
                            );
                            sched.on_step_complete(id, step).unwrap();
                            if step + 1 == spec.len() {
                                sched.on_commit(id, now).unwrap();
                                hist.push(now, Event::Committed(id));
                                done += 1;
                            } else {
                                next.push(St::Running(spec, step + 1));
                            }
                        }
                        LockOutcome::Blocked | LockOutcome::Delayed => {
                            next.push(St::Running(spec, step));
                        }
                    }
                }
            }
        }
        states = next;
    }
    hist
}

fn check_strict_scheduler(sched: &mut dyn Scheduler, workload: Vec<TxnSpec>) {
    let n = workload.len();
    let hist = drive(sched, workload);
    assert_eq!(
        hist.committed().len(),
        n,
        "{}: all must commit",
        sched.name()
    );
    hist.check_conflict_serializable()
        .unwrap_or_else(|e| panic!("{}: {e}", sched.name()));
    hist.check_strictness()
        .unwrap_or_else(|e| panic!("{}: {e}", sched.name()));
    hist.check_lock_exclusion()
        .unwrap_or_else(|e| panic!("{}: {e}", sched.name()));
    assert_eq!(sched.active_txns(), 0);
    assert!(sched.wtpg().is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn c2pl_is_serializable_and_live(w in arb_workload(10, 6)) {
        check_strict_scheduler(&mut C2plScheduler::new(), w);
    }

    #[test]
    fn asl_is_serializable_and_live(w in arb_workload(10, 6)) {
        check_strict_scheduler(&mut AslScheduler::new(), w);
    }

    #[test]
    fn chain_is_serializable_and_live(w in arb_workload(10, 6)) {
        check_strict_scheduler(&mut ChainScheduler::new(5000), w);
    }

    #[test]
    fn k2_is_serializable_and_live(w in arb_workload(10, 6)) {
        check_strict_scheduler(&mut KWtpgScheduler::new(2, 5000), w);
    }

    #[test]
    fn gwtpg_is_serializable_and_live(w in arb_workload(10, 6)) {
        check_strict_scheduler(&mut GWtpgScheduler::new(5000), w);
    }

    #[test]
    fn k1_and_k4_also_work(w in arb_workload(8, 5)) {
        check_strict_scheduler(&mut KWtpgScheduler::new(1, 5000), w.clone());
        check_strict_scheduler(&mut KWtpgScheduler::new(4, 5000), w);
    }

    #[test]
    fn hybrids_are_serializable_and_live(w in arb_workload(8, 5)) {
        check_strict_scheduler(&mut C2plScheduler::chain_c2pl(), w.clone());
        check_strict_scheduler(&mut C2plScheduler::k_c2pl(2), w);
    }

    /// NODC finishes everything (it never blocks) but gives no isolation —
    /// only strictness of the driver protocol is expected to hold.
    #[test]
    fn nodc_always_finishes(w in arb_workload(10, 6)) {
        let n = w.len();
        let mut s = NodcScheduler::new();
        let hist = drive(&mut s, w);
        prop_assert_eq!(hist.committed().len(), n);
        hist.check_strictness().unwrap();
    }

    /// A high-contention single-partition workload: everyone fights over one
    /// granule. This maximises chains of blocking and rejection churn.
    #[test]
    fn hot_single_partition_converges(nw in 2usize..8, costs in proptest::collection::vec(1u64..=5, 2..8)) {
        let n = nw.min(costs.len());
        let specs: Vec<TxnSpec> = (0..n)
            .map(|i| {
                TxnSpec::new(
                    TxnId(i as u64 + 1),
                    vec![StepSpec::write(0, costs[i] as f64)],
                )
            })
            .collect();
        check_strict_scheduler(&mut ChainScheduler::new(5000), specs.clone());
        check_strict_scheduler(&mut KWtpgScheduler::new(2, 5000), specs.clone());
        check_strict_scheduler(&mut GWtpgScheduler::new(5000), specs.clone());
        check_strict_scheduler(&mut AslScheduler::new(), specs.clone());
        check_strict_scheduler(&mut C2plScheduler::new(), specs);
    }
}

/// The Figure 1 workload through every scheduler — a deterministic smoke
/// test of the full protocol on the paper's own example.
#[test]
fn figure1_workload_all_schedulers() {
    let specs = vec![
        TxnSpec::new(
            TxnId(1),
            vec![
                StepSpec::read(0, 1.0),
                StepSpec::read(1, 3.0),
                StepSpec::write(0, 1.0),
            ],
        ),
        TxnSpec::new(
            TxnId(2),
            vec![StepSpec::read(2, 1.0), StepSpec::write(0, 1.0)],
        ),
        TxnSpec::new(
            TxnId(3),
            vec![StepSpec::write(2, 1.0), StepSpec::read(3, 3.0)],
        ),
    ];
    check_strict_scheduler(&mut ChainScheduler::new(5000), specs.clone());
    check_strict_scheduler(&mut KWtpgScheduler::new(2, 5000), specs.clone());
    check_strict_scheduler(&mut AslScheduler::new(), specs.clone());
    check_strict_scheduler(&mut C2plScheduler::new(), specs.clone());
    check_strict_scheduler(&mut C2plScheduler::chain_c2pl(), specs.clone());
    check_strict_scheduler(&mut C2plScheduler::k_c2pl(2), specs);
}
