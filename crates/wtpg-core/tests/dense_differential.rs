//! Differential tests for the slot-arena WTPG: drive the dense
//! implementation and a deliberately naive, map-based reference over the
//! same 200 randomly generated graphs and demand identical answers for
//! `critical_path`, `would_deadlock`, and `eq_estimate` (the overlay
//! estimator against the retained clone-based `eq_estimate_naive`).
//!
//! The references here are independent re-derivations from the paper's
//! definitions, written for obviousness rather than speed — they only ever
//! touch the public `Wtpg` API, so any divergence points at the arena.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wtpg_core::estimate::{eq_estimate, eq_estimate_naive};
use wtpg_core::{TxnId, Work, Wtpg};

/// Longest `T0 → Tf` path from first principles: `dist(v)` starts at
/// `w(T0→v)` and precedence edges are relaxed `n` times (Bellman-style, no
/// topological order needed on a DAG); `None` on a precedence cycle.
fn ref_critical_path(g: &Wtpg) -> Option<Work> {
    let ids: Vec<TxnId> = g.txn_ids().collect();
    let edges = g.precedence_edges();
    for &(a, b, _) in &edges {
        if ref_reaches(g, b, a) {
            return None;
        }
    }
    let mut dist: BTreeMap<TxnId, Work> = ids
        .iter()
        .map(|&t| (t, g.t0_weight(t).unwrap()))
        .collect();
    for _ in 0..ids.len() {
        for &(a, b, w) in &edges {
            let cand = dist[&a] + w;
            if cand > dist[&b] {
                dist.insert(b, cand);
            }
        }
    }
    Some(dist.values().copied().max().unwrap_or(Work::ZERO))
}

/// Plain recursive reachability over `precedence_successors`.
fn ref_reaches(g: &Wtpg, from: TxnId, to: TxnId) -> bool {
    fn go(g: &Wtpg, at: TxnId, to: TxnId, seen: &mut BTreeSet<TxnId>) -> bool {
        if at == to {
            return true;
        }
        if !seen.insert(at) {
            return false;
        }
        g.precedence_successors(at)
            .into_iter()
            .any(|s| go(g, s, to, seen))
    }
    go(g, from, to, &mut BTreeSet::new())
}

/// `would_deadlock` re-derived: adding `from → to` closes a cycle iff `to`
/// already reaches `from`; self-edges always deadlock; edges touching an
/// unknown transaction never do.
fn ref_would_deadlock(g: &Wtpg, from: TxnId, to: TxnId) -> bool {
    if from == to {
        return true;
    }
    if !g.contains(from) || !g.contains(to) {
        return false;
    }
    ref_reaches(g, to, from)
}

/// A random WTPG: `n` transactions, random `T0` weights, and for each pair
/// either a conflicting edge, an (acyclicity-checked) precedence edge, or
/// nothing.
fn random_wtpg(rng: &mut StdRng, n: u64) -> Wtpg {
    let mut g = Wtpg::new();
    for i in 1..=n {
        g.add_txn(TxnId(i), Work::from_units(rng.gen_range(0u64..20_000)))
            .unwrap();
    }
    for a in 1..=n {
        for b in (a + 1)..=n {
            match rng.gen_range(0u32..10) {
                0..=2 => {
                    let w_ab = Work::from_units(rng.gen_range(1u64..10_000));
                    let w_ba = Work::from_units(rng.gen_range(1u64..10_000));
                    g.add_or_merge_conflict(TxnId(a), TxnId(b), w_ab, w_ba)
                        .unwrap();
                }
                3..=4 => {
                    let (f, t) = if rng.gen_bool(0.5) {
                        (TxnId(a), TxnId(b))
                    } else {
                        (TxnId(b), TxnId(a))
                    };
                    let w_ab = Work::from_units(rng.gen_range(1u64..10_000));
                    let w_ba = Work::from_units(rng.gen_range(1u64..10_000));
                    g.add_or_merge_conflict(TxnId(a), TxnId(b), w_ab, w_ba)
                        .unwrap();
                    if !g.would_deadlock(f, t) {
                        g.resolve(f, t).unwrap();
                    }
                }
                _ => {}
            }
        }
    }
    // Retire a few transactions so some runs exercise recycled slots.
    if rng.gen_bool(0.3) {
        for _ in 0..rng.gen_range(1u64..=2) {
            let victim = TxnId(rng.gen_range(1..=n));
            let _ = g.remove_txn(victim);
        }
    }
    g
}

#[test]
fn dense_wtpg_matches_naive_reference_on_random_graphs() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for case in 0..200u64 {
        let n = rng.gen_range(2u64..12);
        let g = random_wtpg(&mut rng, n);

        assert_eq!(
            g.critical_path(),
            ref_critical_path(&g),
            "critical_path diverged, case {case}:\n{}",
            g.to_dot()
        );

        // would_deadlock over every ordered pair, plus ids that were never
        // admitted (or were retired).
        for a in 0..=(n + 1) {
            for b in 0..=(n + 1) {
                let (from, to) = (TxnId(a), TxnId(b));
                assert_eq!(
                    g.would_deadlock(from, to),
                    ref_would_deadlock(&g, from, to),
                    "would_deadlock({from:?}, {to:?}) diverged, case {case}:\n{}",
                    g.to_dot()
                );
            }
        }

        // eq_estimate: the overlay vs the retained clone-based algorithm,
        // for several random requests with random implied-resolution sets
        // (sometimes including unknown or self ids — both must agree on the
        // degenerate contracts too).
        for _ in 0..8 {
            let txn = TxnId(rng.gen_range(1..=n + 1));
            let mut implied = Vec::new();
            for other in 1..=(n + 1) {
                if rng.gen_bool(0.4) {
                    implied.push(TxnId(other));
                }
            }
            assert_eq!(
                eq_estimate(&g, txn, &implied),
                eq_estimate_naive(&g, txn, &implied),
                "eq_estimate({txn:?}, {implied:?}) diverged, case {case}:\n{}",
                g.to_dot()
            );
        }
    }
}
