//! Property tests for the WTPG and the `E(q)` estimator, checked against
//! straightforward reference implementations built on `wtpg-graph`.

use proptest::prelude::*;
use std::collections::BTreeSet;

use wtpg_core::estimate::{eq_estimate, EqValue};
use wtpg_core::txn::TxnId;
use wtpg_core::work::Work;
use wtpg_core::wtpg::Wtpg;
use wtpg_graph::{longest_path, DiGraph};

/// A randomly built WTPG scenario: node T0-weights, conflicting edges with
/// both weights, and a subset of them resolved (acyclically, in id order so
/// cycles are impossible).
#[derive(Clone, Debug)]
struct Scenario {
    t0: Vec<u64>,
    /// (a, b, w_ab, w_ba, resolve_down) with a < b.
    edges: Vec<(usize, usize, u64, u64, Option<bool>)>,
}

fn arb_scenario(max_n: usize) -> impl Strategy<Value = Scenario> {
    (2..=max_n)
        .prop_flat_map(move |n| {
            let t0 = proptest::collection::vec(0u64..50, n);
            let edges = proptest::collection::vec(
                (
                    0..n,
                    0..n,
                    0u64..50,
                    0u64..50,
                    prop_oneof![Just(None), Just(Some(true)), Just(Some(false))],
                ),
                0..n * 2,
            );
            (t0, edges)
        })
        .prop_map(|(t0, raw)| {
            let mut seen = BTreeSet::new();
            let mut edges = Vec::new();
            for (x, y, wab, wba, res) in raw {
                let (a, b) = if x < y { (x, y) } else { (y, x) };
                if a == b || !seen.insert((a, b)) {
                    continue;
                }
                edges.push((a, b, wab, wba, res));
            }
            Scenario { t0, edges }
        })
}

fn build(s: &Scenario) -> Wtpg {
    let mut g = Wtpg::new();
    for (i, &w) in s.t0.iter().enumerate() {
        g.add_txn(TxnId(i as u64 + 1), Work::from_units(w)).unwrap();
    }
    for &(a, b, wab, wba, res) in &s.edges {
        let (ta, tb) = (TxnId(a as u64 + 1), TxnId(b as u64 + 1));
        g.add_or_merge_conflict(ta, tb, Work::from_units(wab), Work::from_units(wba))
            .unwrap();
        match res {
            // Resolving low→high only can never create a cycle.
            Some(true) => g.resolve(ta, tb).unwrap(),
            Some(false) => g.resolve(tb, ta).unwrap(),
            None => {}
        }
    }
    g
}

/// Reference critical path: rebuild the precedence graph in `wtpg-graph`
/// with explicit T0/Tf nodes and run the generic longest-path.
fn reference_critical_path(g: &Wtpg) -> Option<u64> {
    let mut dg: DiGraph<&str, u64> = DiGraph::new();
    let t0 = dg.add_node("T0");
    let tf = dg.add_node("Tf");
    let mut nodes = std::collections::BTreeMap::new();
    for t in g.txn_ids() {
        let n = dg.add_node("T");
        nodes.insert(t, n);
        dg.add_edge(t0, n, g.t0_weight(t).unwrap().units());
        dg.add_edge(n, tf, 0);
    }
    for (a, b, w) in g.precedence_edges() {
        dg.add_edge(nodes[&a], nodes[&b], w.units());
    }
    longest_path(&dg, t0, |&w| w).ok()?.distance(tf)
}

proptest! {
    /// Some resolutions are "up" (high→low id), which can create cycles; the
    /// builder must therefore tolerate cyclic scenarios, and critical_path
    /// must agree with the reference on both cyclic and acyclic cases.
    #[test]
    fn critical_path_matches_reference(s in arb_scenario(10)) {
        let g = build(&s);
        let reference = reference_critical_path(&g);
        let ours = g.critical_path().map(|w| w.units());
        prop_assert_eq!(ours, reference);
    }

    /// before() and after() are adjoint and never contain the node itself
    /// (on acyclic precedence graphs).
    #[test]
    fn before_after_adjoint(s in arb_scenario(10)) {
        let g = build(&s);
        if g.has_cycle() {
            return Ok(());
        }
        for t in g.txn_ids() {
            let before = g.before(t);
            prop_assert!(!before.contains(&t));
            for &p in &before {
                prop_assert!(g.after(p).contains(&t));
            }
        }
    }

    /// Removing a transaction removes every trace of it and cannot create
    /// cycles or grow the critical path beyond... (removal only removes
    /// paths, so the critical path never increases).
    #[test]
    fn removal_shrinks_critical_path(s in arb_scenario(10), victim in 0usize..10) {
        let mut g = build(&s);
        if g.has_cycle() {
            return Ok(());
        }
        let before_cp = g.critical_path().unwrap().units();
        let ids: Vec<TxnId> = g.txn_ids().collect();
        let victim = ids[victim % ids.len()];
        g.remove_txn(victim).unwrap();
        prop_assert!(!g.contains(victim));
        for t in g.txn_ids() {
            prop_assert!(!g.conflict_partners(t).contains(&victim));
            prop_assert!(!g.precedence_successors(t).contains(&victim));
            prop_assert!(!g.precedence_predecessors(t).contains(&victim));
        }
        let after_cp = g.critical_path().expect("still acyclic").units();
        prop_assert!(after_cp <= before_cp);
    }

    /// A finite E(q) is always ≥ the current critical path: granting only
    /// *adds* constraints, and even the no-grant estimate may exceed the
    /// bare critical path because Step 2 resolves conflicts that are already
    /// implied transitively (before(T) → after(T)). With no implied
    /// resolutions the estimate is always finite on an acyclic WTPG.
    #[test]
    fn eq_dominates_current_critical_path(s in arb_scenario(8)) {
        let g = build(&s);
        if g.has_cycle() {
            return Ok(());
        }
        let cp = g.critical_path().unwrap();
        let ids: Vec<TxnId> = g.txn_ids().collect();
        for &t in ids.iter().take(4) {
            match eq_estimate(&g, t, &[]) {
                EqValue::Finite(v) => prop_assert!(v >= cp, "{v:?} < {cp:?}"),
                EqValue::Infinite => prop_assert!(false, "no-grant estimate must be finite"),
            }
            let partners = g.conflict_partners(t);
            if let Some(&other) = partners.first() {
                match eq_estimate(&g, t, &[other]) {
                    EqValue::Finite(v) => prop_assert!(v >= cp),
                    EqValue::Infinite => {}
                }
            }
        }
    }

    /// The estimator never mutates the WTPG.
    #[test]
    fn eq_is_pure(s in arb_scenario(8)) {
        let g = build(&s);
        let dot_before = g.to_dot();
        let ids: Vec<TxnId> = g.txn_ids().collect();
        for &t in &ids {
            let partners = g.conflict_partners(t);
            let _ = eq_estimate(&g, t, &partners);
        }
        prop_assert_eq!(g.to_dot(), dot_before);
    }

    /// Weight decrement with a floor is monotone and respects the floor.
    #[test]
    fn decrement_respects_floor(start in 0u64..100, amount in 0u64..100, floor in 0u64..100) {
        let mut g = Wtpg::new();
        g.add_txn(TxnId(1), Work::from_units(start)).unwrap();
        g.decrement_t0_weight(TxnId(1), Work::from_units(amount), Work::from_units(floor)).unwrap();
        let w = g.t0_weight(TxnId(1)).unwrap().units();
        prop_assert!(w <= start.max(floor));
        prop_assert!(w >= start.saturating_sub(amount).min(start));
        prop_assert!(w >= floor.min(start.max(floor)));
        if floor <= start.saturating_sub(amount) {
            prop_assert_eq!(w, start.saturating_sub(amount));
        }
    }
}
