//! Failure injection: random mid-flight aborts must leave every scheduler
//! in a consistent state — remaining transactions finish, locks are freed,
//! the WTPG holds only live transactions, and the surviving history stays
//! serializable.

use proptest::prelude::*;

use wtpg_core::sched::{
    Admission, AslScheduler, C2plScheduler, ChainScheduler, KWtpgScheduler, LockOutcome, Scheduler,
};
use wtpg_core::time::Tick;
use wtpg_core::txn::{AccessMode, StepSpec, TxnId, TxnSpec};
use wtpg_core::work::Work;

fn arb_specs(n: usize, parts: u32) -> impl Strategy<Value = Vec<TxnSpec>> {
    proptest::collection::vec(
        proptest::collection::vec((0..parts, prop::bool::ANY, 1u64..=4), 1..=3),
        2..=n,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, steps)| {
                TxnSpec::new(
                    TxnId(i as u64 + 1),
                    steps
                        .into_iter()
                        .map(|(p, w, objs)| {
                            let mode = if w {
                                AccessMode::Write
                            } else {
                                AccessMode::Read
                            };
                            StepSpec::new(
                                wtpg_core::partition::PartitionId(p),
                                mode,
                                Work::from_objects(objs),
                            )
                        })
                        .collect(),
                )
            })
            .collect()
    })
}

/// Drives the workload, aborting the transaction whose index matches
/// `victim` the first time one of its steps is granted. Everyone else must
/// still commit.
fn drive_with_abort(sched: &mut dyn Scheduler, specs: Vec<TxnSpec>, victim: usize) {
    let victim_id = specs[victim % specs.len()].id;
    let total = specs.len();
    let mut done = 0usize;
    let mut aborted = false;
    #[derive(Clone)]
    enum St {
        Pending(TxnSpec),
        Running(TxnSpec, usize),
    }
    let mut states: Vec<St> = specs.into_iter().map(St::Pending).collect();
    let mut now = Tick(0);
    let mut rounds = 0;
    while done < total {
        rounds += 1;
        assert!(rounds < 500 * total, "{}: stuck after abort", sched.name());
        let mut next = Vec::new();
        for st in states {
            now += 1;
            match st {
                St::Pending(spec) => match sched.on_arrive(&spec, now).unwrap().0 {
                    Admission::Admitted => next.push(St::Running(spec, 0)),
                    Admission::Rejected => next.push(St::Pending(spec)),
                },
                St::Running(spec, step) => {
                    let id = spec.id;
                    match sched.on_request(id, step, now).unwrap().0 {
                        LockOutcome::Granted => {
                            if id == victim_id && !aborted {
                                // Crash mid-step: abort without progress.
                                sched.on_abort(id, now).unwrap();
                                aborted = true;
                                done += 1; // the victim counts as finished
                                continue;
                            }
                            let s = spec.steps()[step];
                            sched.on_progress(id, s.actual_cost).unwrap();
                            sched.on_step_complete(id, step).unwrap();
                            if step + 1 == spec.len() {
                                sched.on_commit(id, now).unwrap();
                                done += 1;
                            } else {
                                next.push(St::Running(spec, step + 1));
                            }
                        }
                        _ => next.push(St::Running(spec, step)),
                    }
                }
            }
        }
        states = next;
    }
    assert_eq!(
        sched.active_txns(),
        0,
        "{}: stragglers after drain",
        sched.name()
    );
    assert!(sched.wtpg().is_empty(), "{}: WTPG not empty", sched.name());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn abort_mid_flight_is_survivable(specs in arb_specs(8, 5), victim in 0usize..8) {
        drive_with_abort(&mut C2plScheduler::new(), specs.clone(), victim);
        drive_with_abort(&mut ChainScheduler::new(5000), specs.clone(), victim);
        drive_with_abort(&mut KWtpgScheduler::new(2, 5000), specs.clone(), victim);
        drive_with_abort(&mut AslScheduler::new(), specs, victim);
    }
}

/// Aborting a transaction that holds the hot lock must wake the others:
/// deterministic regression for the release path.
#[test]
fn abort_releases_the_hot_lock() {
    let mut s = C2plScheduler::new();
    let a = TxnSpec::new(TxnId(1), vec![StepSpec::write(0, 2.0)]);
    let b = TxnSpec::new(TxnId(2), vec![StepSpec::write(0, 1.0)]);
    s.on_arrive(&a, Tick(0)).unwrap();
    s.on_arrive(&b, Tick(0)).unwrap();
    assert_eq!(
        s.on_request(TxnId(1), 0, Tick(1)).unwrap().0,
        LockOutcome::Granted
    );
    assert_eq!(
        s.on_request(TxnId(2), 0, Tick(2)).unwrap().0,
        LockOutcome::Blocked
    );
    let res = s.on_abort(TxnId(1), Tick(3)).unwrap();
    assert_eq!(res.freed, vec![wtpg_core::partition::PartitionId(0)]);
    assert_eq!(
        s.on_request(TxnId(2), 0, Tick(4)).unwrap().0,
        LockOutcome::Granted
    );
    assert!(!s.wtpg().contains(TxnId(1)));
}

/// Aborting an unknown transaction is a protocol error, not UB.
#[test]
fn abort_unknown_txn_errors() {
    let mut s = KWtpgScheduler::new(2, 5000);
    assert!(s.on_abort(TxnId(42), Tick(0)).is_err());
}
