//! Property tests for the chain optimisers: the paper's appendix DP and the
//! production threshold DP must both match the exhaustive oracle.

use proptest::prelude::*;

use wtpg_core::chain::{brute, paper_dp, threshold, ChainProblem};
use wtpg_core::wtpg::Dir;

fn arb_problem(max_nodes: usize, max_w: u64) -> impl Strategy<Value = ChainProblem> {
    (1..=max_nodes).prop_flat_map(move |n| {
        let r = proptest::collection::vec(0..max_w, n);
        let a = proptest::collection::vec(0..max_w, n - 1);
        let b = proptest::collection::vec(0..max_w, n - 1);
        (r, a, b).prop_map(|(r, a, b)| ChainProblem::new(r, a, b))
    })
}

fn arb_forced_problem(max_nodes: usize, max_w: u64) -> impl Strategy<Value = ChainProblem> {
    (1..=max_nodes).prop_flat_map(move |n| {
        let r = proptest::collection::vec(0..max_w, n);
        let a = proptest::collection::vec(0..max_w, n - 1);
        let b = proptest::collection::vec(0..max_w, n - 1);
        let forced = proptest::collection::vec(
            prop_oneof![Just(None), Just(Some(Dir::Down)), Just(Some(Dir::Up))],
            n - 1,
        );
        (r, a, b, forced).prop_map(|(r, a, b, f)| ChainProblem::with_forced(r, a, b, f))
    })
}

proptest! {
    /// The paper's O(N²) DP finds the same optimum as exhaustive search on
    /// fully unresolved chains.
    #[test]
    fn paper_dp_matches_oracle(p in arb_problem(12, 50)) {
        let dp = paper_dp::solve(&p);
        let oracle = brute::solve(&p);
        prop_assert_eq!(dp.critical_path, oracle.critical_path, "{:?}", p);
        // The returned orientation must actually achieve the reported value.
        prop_assert_eq!(p.critical_path(&dp.orient), dp.critical_path);
    }

    /// The threshold DP matches the oracle on unconstrained chains.
    #[test]
    fn threshold_matches_oracle(p in arb_problem(12, 50)) {
        let t = threshold::solve(&p);
        let oracle = brute::solve(&p);
        prop_assert_eq!(t.critical_path, oracle.critical_path, "{:?}", p);
        prop_assert_eq!(p.critical_path(&t.orient), t.critical_path);
    }

    /// …and on chains with forced (already resolved) edges.
    #[test]
    fn threshold_matches_oracle_with_forced_edges(p in arb_forced_problem(12, 50)) {
        let t = threshold::solve(&p);
        let oracle = brute::solve(&p);
        prop_assert_eq!(t.critical_path, oracle.critical_path, "{:?}", p);
        prop_assert!(p.respects_forced(&t.orient));
        prop_assert_eq!(p.critical_path(&t.orient), t.critical_path);
    }

    /// The *faithful* transcription (paper pseudocode verbatim, including its
    /// `Rcomp` curr slip) never overestimates the optimum — it can only drop
    /// path terms.
    #[test]
    fn faithful_paper_dp_never_overestimates(p in arb_problem(12, 50)) {
        let dp = paper_dp::solve_faithful(&p);
        let oracle = brute::solve(&p);
        prop_assert!(dp.critical_path <= oracle.critical_path, "{:?}", p);
    }

    /// Zero-heavy chains (many equal optima) still agree on the value.
    #[test]
    fn optimisers_agree_on_sparse_weights(p in arb_problem(10, 3)) {
        let dp = paper_dp::solve(&p);
        let t = threshold::solve(&p);
        let oracle = brute::solve(&p);
        prop_assert_eq!(dp.critical_path, oracle.critical_path, "{:?}", p);
        prop_assert_eq!(t.critical_path, oracle.critical_path, "{:?}", p);
    }

    /// The optimum is monotone: raising any weight can never shorten the
    /// optimal critical path.
    #[test]
    fn optimum_is_monotone_in_weights(p in arb_problem(10, 30), bump in 1u64..10) {
        let base = threshold::solve(&p).critical_path;
        let mut p2 = p.clone();
        if !p2.a.is_empty() {
            p2.a[0] += bump;
        } else {
            p2.r[0] += bump;
        }
        let bumped = threshold::solve(&p2).critical_path;
        prop_assert!(bumped >= base);
    }

    /// Lower bound: the optimum is at least max(r).
    #[test]
    fn optimum_at_least_max_r(p in arb_problem(12, 50)) {
        let t = threshold::solve(&p);
        prop_assert!(t.critical_path >= p.r.iter().copied().max().unwrap());
    }
}
