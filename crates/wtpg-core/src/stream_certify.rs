//! Streaming certification: the replay checks of [`certify_history`]
//! (see [`crate::certify`]) applied incrementally, event by event, with
//! **prefix retirement** so certifying a run never needs the whole
//! history in memory.
//!
//! [`StreamingCertifier`] accepts declarations ([`declare`]) and history
//! events ([`feed`]) as they happen and maintains exactly the state the
//! whole-history replay would have at that point:
//!
//! - a fresh [`SchedCore`] replaying every admission/grant/progress/
//!   commit, with the same per-event protocol, exclusion, deadlock,
//!   chain-form, K-bound and `E(q)` checks as [`certify_history`];
//! - the event-level lock-exclusion ledger of
//!   [`History::check_lock_exclusion`], updated per grant;
//! - the strictness automaton of [`History::check_strictness`];
//! - an incremental **serialization graph** (SGT): conflict edges are
//!   added per grant from the per-partition frontier (last writer plus
//!   readers since), and each new edge is cycle-checked immediately.
//!
//! The serialization graph covers *all granted* transactions, not just
//! the eventually-committed ones the whole-history check filters to —
//! strictly stronger, and identical on complete runs where every
//! admitted BAT commits (the paper's no-abort discipline).
//!
//! # Prefix retirement
//!
//! [`retire_prefix`] prunes the SGT: any **committed** node with zero
//! in-degree is removed, repeatedly. This is sound because conflict
//! edges always point *from* the frontier *to* the newly granted
//! transaction — a committed transaction can gain out-edges (it may
//! still sit in a frontier) but never another in-edge, so once its
//! in-degree is zero no future cycle can route through it. Out-edges
//! from retired nodes are dropped on sight for the same reason.
//! Retirement also releases the retired transactions' specs and
//! strictness entries, so the certifier's footprint is bounded by the
//! *live* transaction population, not the run length — this is what
//! makes million-transaction open-loop cells certifiable on the fly.
//!
//! Note that commit-time-only retirement would be **unsound**: a cycle
//! may pass through a committed transaction `u` when an in-edge `x → u`
//! predates the commit and an out-edge `u → v` postdates it. The
//! zero-in-degree condition is the correct retirement criterion.
//!
//! [`certify_history`]: crate::certify::certify_history
//! [`declare`]: StreamingCertifier::declare
//! [`feed`]: StreamingCertifier::feed
//! [`retire_prefix`]: StreamingCertifier::retire_prefix
//! [`History::check_lock_exclusion`]: crate::history::History::check_lock_exclusion
//! [`History::check_strictness`]: crate::history::History::check_strictness

use std::collections::{BTreeMap, BTreeSet};

use crate::certify::{CertifyMode, CertifyReport, CertifyViolation};
use crate::chain::form::chain_components;
use crate::error::CoreError;
use crate::estimate::eq_estimate_naive;
use crate::history::Event;
use crate::partition::PartitionId;
use crate::sched::SchedCore;
use crate::time::Tick;
use crate::txn::{AccessMode, TxnId, TxnSpec};

fn violation(at: usize, tick: Tick, what: impl Into<String>) -> CertifyViolation {
    CertifyViolation {
        at,
        tick,
        what: what.into(),
    }
}

fn core_err(at: usize, tick: Tick, ctx: &str, e: CoreError) -> CertifyViolation {
    violation(at, tick, format!("{ctx}: {e}"))
}

/// Strictness automaton state of one transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TxnPhase {
    Admitted,
    Committed,
}

/// One node of the incremental serialization graph.
#[derive(Clone, Debug, Default)]
struct SgNode {
    committed: bool,
    out: BTreeSet<TxnId>,
    indeg: usize,
}

/// Per-partition conflict frontier: the transitive-reduction sources for
/// the next grant's edges (same scheme as
/// [`History::check_conflict_serializable`](crate::history::History::check_conflict_serializable)).
#[derive(Clone, Debug, Default)]
struct Frontier {
    writer: Option<TxnId>,
    readers: Vec<TxnId>,
}

/// Incremental replay certifier with prefix retirement (module docs).
#[derive(Clone, Debug)]
pub struct StreamingCertifier {
    mode: CertifyMode,
    core: SchedCore,
    specs: BTreeMap<TxnId, TxnSpec>,
    report: CertifyReport,
    /// Events fed so far — the `at` index of the next violation.
    at: usize,
    last_version: u64,
    phase: BTreeMap<TxnId, TxnPhase>,
    held: BTreeMap<PartitionId, BTreeMap<TxnId, AccessMode>>,
    frontiers: BTreeMap<PartitionId, Frontier>,
    nodes: BTreeMap<TxnId, SgNode>,
    retired: usize,
}

impl StreamingCertifier {
    /// A fresh certifier for one run under `mode`.
    pub fn new(mode: CertifyMode) -> StreamingCertifier {
        StreamingCertifier {
            mode,
            core: SchedCore::new(),
            specs: BTreeMap::new(),
            report: CertifyReport::default(),
            at: 0,
            last_version: 0,
            phase: BTreeMap::new(),
            held: BTreeMap::new(),
            frontiers: BTreeMap::new(),
            nodes: BTreeMap::new(),
            retired: 0,
        }
    }

    /// Registers a transaction's declaration. Must happen before the
    /// transaction's `Admitted` event is fed; re-declaring the same id
    /// replaces the spec.
    pub fn declare(&mut self, spec: TxnSpec) {
        self.specs.insert(spec.id, spec);
    }

    /// Events fed so far.
    pub fn events_fed(&self) -> usize {
        self.at
    }

    /// Serialization-graph nodes retired so far.
    pub fn retired(&self) -> usize {
        self.retired
    }

    /// Serialization-graph nodes currently tracked (live + committed but
    /// not yet retirable).
    pub fn live_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// True when `from` can reach `to` along conflict edges.
    fn reaches(&self, from: TxnId, to: TxnId) -> bool {
        let mut stack = vec![from];
        let mut seen = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(node) = self.nodes.get(&n) {
                stack.extend(node.out.iter().copied());
            }
        }
        false
    }

    /// Adds conflict edge `u → v`, cycle-checking immediately. Edges from
    /// retired sources are dropped (see module docs on soundness).
    fn add_edge(&mut self, u: TxnId, v: TxnId, at: usize, tick: Tick) -> Result<(), CertifyViolation> {
        if u == v || !self.nodes.contains_key(&u) {
            return Ok(());
        }
        let fresh = self
            .nodes
            .entry(u)
            .or_default()
            .out
            .insert(v);
        if !fresh {
            return Ok(());
        }
        self.nodes.entry(v).or_default().indeg += 1;
        if self.reaches(v, u) {
            return Err(violation(
                at,
                tick,
                format!("serialization graph cycle closed by conflict edge {u} → {v}"),
            ));
        }
        Ok(())
    }

    /// Frontier + SGT update for one grant.
    fn sg_grant(
        &mut self,
        txn: TxnId,
        partition: PartitionId,
        mode: AccessMode,
        at: usize,
        tick: Tick,
    ) -> Result<(), CertifyViolation> {
        self.nodes.entry(txn).or_default();
        let f = self.frontiers.entry(partition).or_default();
        let writer = f.writer;
        let readers = if mode == AccessMode::Write {
            std::mem::take(&mut f.readers)
        } else {
            Vec::new()
        };
        if let Some(w) = writer {
            self.add_edge(w, txn, at, tick)?;
        }
        match mode {
            AccessMode::Write => {
                for r in readers {
                    self.add_edge(r, txn, at, tick)?;
                }
                let f = self.frontiers.entry(partition).or_default();
                f.writer = Some(txn);
            }
            AccessMode::Read => {
                self.frontiers.entry(partition).or_default().readers.push(txn);
            }
        }
        Ok(())
    }

    /// Event-level exclusion ledger (mirrors `check_lock_exclusion`).
    fn exclusion_grant(
        &mut self,
        txn: TxnId,
        partition: PartitionId,
        mode: AccessMode,
        at: usize,
        tick: Tick,
    ) -> Result<(), CertifyViolation> {
        let g = self.held.entry(partition).or_default();
        for (&other, &m) in g.iter() {
            if other != txn && m.conflicts_with(mode) {
                return Err(violation(
                    at,
                    tick,
                    format!("{txn} granted {mode:?} on {partition} while {other} holds {m:?}"),
                ));
            }
        }
        let slot = g.entry(txn).or_insert(mode);
        if mode == AccessMode::Write {
            *slot = AccessMode::Write;
        }
        Ok(())
    }

    /// Strictness automaton step (mirrors `check_strictness`).
    fn strictness(&mut self, e: &Event, at: usize, tick: Tick) -> Result<(), CertifyViolation> {
        match *e {
            Event::Admitted(t) => {
                self.phase.insert(t, TxnPhase::Admitted);
            }
            Event::Rejected(t) => {
                self.phase.remove(&t);
            }
            Event::Granted { txn, .. }
            | Event::Progress { txn, .. }
            | Event::StepCompleted { txn, .. } => match self.phase.get(&txn) {
                Some(TxnPhase::Committed) => {
                    return Err(violation(at, tick, format!("{txn} active after commit")));
                }
                None => {
                    return Err(violation(at, tick, format!("{txn} active without admission")));
                }
                Some(TxnPhase::Admitted) => {}
            },
            Event::Committed(t) => {
                if !self.phase.contains_key(&t) {
                    return Err(violation(
                        at,
                        tick,
                        format!("{t} committed without admission"),
                    ));
                }
                self.phase.insert(t, TxnPhase::Committed);
            }
        }
        Ok(())
    }

    /// Feeds one history event, running every per-event check the
    /// whole-history replay would run at this position.
    ///
    /// # Errors
    /// The first [`CertifyViolation`], with `at` set to this event's index
    /// in the fed sequence. A failed certifier should be discarded.
    pub fn feed(&mut self, tick: Tick, event: Event) -> Result<(), CertifyViolation> {
        let at = self.at;
        self.at += 1;
        self.report.events += 1;
        self.strictness(&event, at, tick)?;
        if self.mode == CertifyMode::Exempt {
            // NODC claims no lock discipline; strictness is everything.
            match event {
                Event::Granted { .. } => self.report.grants += 1,
                Event::Committed(_) => self.report.commits += 1,
                _ => {}
            }
            return Ok(());
        }
        let structural = !matches!(event, Event::Progress { .. });
        match event {
            Event::Admitted(txn) => {
                let spec = self
                    .specs
                    .get(&txn)
                    .cloned()
                    .ok_or_else(|| violation(at, tick, format!("{txn} admitted without a spec")))?;
                self.core
                    .arrive(&spec)
                    .map_err(|e| core_err(at, tick, "replaying admission", e))?;
                match self.mode {
                    CertifyMode::Chain if chain_components(self.core.wtpg()).is_err() => {
                        return Err(violation(
                            at,
                            tick,
                            format!("{txn} admitted into a non-chain WTPG"),
                        ));
                    }
                    CertifyMode::KConflict(k) if !self.core.locks.k_constraint_ok(&spec, k) => {
                        return Err(violation(
                            at,
                            tick,
                            format!("{txn} admitted past the K = {k} conflict bound"),
                        ));
                    }
                    _ => {}
                }
            }
            Event::Rejected(_) => {
                // Rolled back by the scheduler; nothing to replay.
            }
            Event::Granted {
                txn,
                step,
                partition,
                mode: access,
            } => {
                self.report.grants += 1;
                let spec_step = self
                    .core
                    .request_step(txn, step)
                    .map_err(|e| core_err(at, tick, "replaying request", e))?;
                if spec_step.partition != partition || spec_step.mode != access {
                    return Err(violation(
                        at,
                        tick,
                        format!(
                            "{txn} step {step} granted {access:?} on {partition} but declared \
                             {:?} on {}",
                            spec_step.mode, spec_step.partition
                        ),
                    ));
                }
                if self.core.locks.is_blocked(txn, partition, access) {
                    return Err(violation(
                        at,
                        tick,
                        format!("{txn} granted {access:?} on {partition} while blocked"),
                    ));
                }
                let implied = self.core.implied_resolutions(txn, partition, access);
                if self.core.grant_would_deadlock(txn, &implied) {
                    return Err(violation(
                        at,
                        tick,
                        format!("grant of {txn} step {step} closes a precedence cycle"),
                    ));
                }
                if let CertifyMode::KConflict(_) = self.mode {
                    self.report.eq_checks += 1;
                    let my_eq = eq_estimate_naive(self.core.wtpg(), txn, &implied);
                    if my_eq.is_infinite() {
                        return Err(violation(
                            at,
                            tick,
                            format!("{txn} step {step} granted with E(q) = ∞"),
                        ));
                    }
                    let lost = self
                        .core
                        .locks
                        .conflicting_declarations(txn, partition, access)
                        .into_iter()
                        .any(|d| {
                            let their_implied =
                                self.core.implied_resolutions(d.txn, partition, d.mode);
                            eq_estimate_naive(self.core.wtpg(), d.txn, &their_implied) < my_eq
                        });
                    if lost {
                        self.report.eq_losses += 1;
                    }
                }
                self.core
                    .grant(txn, step, spec_step, &implied)
                    .map_err(|e| core_err(at, tick, "replaying grant", e))?;
                if self.core.wtpg().has_cycle() {
                    return Err(violation(
                        at,
                        tick,
                        format!("WTPG cyclic after granting {txn} step {step}"),
                    ));
                }
                self.exclusion_grant(txn, partition, access, at, tick)?;
                self.sg_grant(txn, partition, access, at, tick)?;
            }
            Event::Progress { txn, amount } => {
                self.core
                    .progress(txn, amount)
                    .map_err(|e| core_err(at, tick, "replaying progress", e))?;
            }
            Event::StepCompleted { txn, step } => {
                self.core
                    .step_complete(txn, step)
                    .map_err(|e| core_err(at, tick, "replaying step completion", e))?;
            }
            Event::Committed(txn) => {
                self.report.commits += 1;
                let a = self
                    .core
                    .txns
                    .get(&txn)
                    .ok_or_else(|| violation(at, tick, format!("{txn} committed while inactive")))?;
                if a.next_step != a.spec.len() {
                    return Err(violation(
                        at,
                        tick,
                        format!(
                            "{txn} committed after {} of {} steps",
                            a.next_step,
                            a.spec.len()
                        ),
                    ));
                }
                self.core
                    .commit(txn)
                    .map_err(|e| core_err(at, tick, "replaying commit", e))?;
                for g in self.held.values_mut() {
                    g.remove(&txn);
                }
                if let Some(n) = self.nodes.get_mut(&txn) {
                    n.committed = true;
                }
            }
        }
        let version = self.core.wtpg().version();
        if version < self.last_version {
            return Err(violation(
                at,
                tick,
                format!(
                    "WTPG version moved backwards: {} → {version}",
                    self.last_version
                ),
            ));
        }
        self.last_version = version;
        if structural {
            if let Err(what) = self.core.wtpg().check_invariants() {
                return Err(violation(at, tick, format!("WTPG invariant: {what}")));
            }
        }
        Ok(())
    }

    /// Retires the certified prefix: removes committed zero-in-degree
    /// serialization-graph nodes (cascading) and releases their specs and
    /// strictness entries. Returns the number of transactions retired by
    /// this call. Sound per the module docs; call as often as you like —
    /// once per telemetry window is the intended cadence.
    pub fn retire_prefix(&mut self) -> usize {
        let mut queue: Vec<TxnId> = self
            .nodes
            .iter()
            .filter(|(_, n)| n.committed && n.indeg == 0)
            .map(|(&t, _)| t)
            .collect();
        let mut count = 0usize;
        while let Some(t) = queue.pop() {
            let Some(node) = self.nodes.remove(&t) else {
                continue;
            };
            count += 1;
            self.specs.remove(&t);
            self.phase.remove(&t);
            for succ in node.out {
                if let Some(s) = self.nodes.get_mut(&succ) {
                    s.indeg = s.indeg.saturating_sub(1);
                    if s.committed && s.indeg == 0 {
                        queue.push(succ);
                    }
                }
            }
        }
        // Committed transactions that never took a grant (no SGT node)
        // still hold spec/phase entries; those retire unconditionally.
        let nodes = &self.nodes;
        let stale: Vec<TxnId> = self
            .phase
            .iter()
            .filter(|(t, p)| **p == TxnPhase::Committed && !nodes.contains_key(t))
            .map(|(&t, _)| t)
            .collect();
        for t in stale {
            self.phase.remove(&t);
            self.specs.remove(&t);
            count += 1;
        }
        self.retired += count;
        count
    }

    /// Completes certification. Every check is per-event, so this only
    /// hands back the accumulated [`CertifyReport`].
    ///
    /// # Errors
    /// None today; `Result` keeps room for end-of-run checks.
    pub fn finish(self) -> Result<CertifyReport, CertifyViolation> {
        Ok(self.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certify::certify_history;
    use crate::history::History;
    use crate::sched::{Admission, LockOutcome, Scheduler};
    use crate::txn::StepSpec;

    /// Drives `count` two-step transactions over a rolling partition
    /// window through `sched`, recording the history like the simulator.
    fn drive<S: Scheduler>(
        mut sched: S,
        count: u64,
    ) -> (History, BTreeMap<TxnId, TxnSpec>, CertifyMode) {
        let mut h = History::new();
        let mut specs = BTreeMap::new();
        let mut now = Tick(0);
        let mut pending: Vec<(TxnId, usize, usize)> = Vec::new();
        for i in 0..count {
            let base = (i % 7) as u32;
            let t = TxnSpec::new(
                TxnId(i + 1),
                vec![StepSpec::write(base, 2.0), StepSpec::read(base + 1, 1.0)],
            );
            specs.insert(t.id, t.clone());
            now += 1;
            // Retry rejected admissions immediately at later ticks.
            loop {
                match sched.on_arrive(&t, now).expect("arrive").0 {
                    Admission::Admitted => {
                        h.push(now, Event::Admitted(t.id));
                        pending.push((t.id, 0, t.len()));
                        break;
                    }
                    Admission::Rejected => {
                        h.push(now, Event::Rejected(t.id));
                        // Drain one step of everyone to free capacity.
                        now += 1;
                        pending = pump(&mut sched, &specs, &mut h, pending, now);
                        now += 1;
                    }
                }
            }
            now += 1;
            pending = pump(&mut sched, &specs, &mut h, pending, now);
        }
        while !pending.is_empty() {
            now += 1;
            pending = pump(&mut sched, &specs, &mut h, pending, now);
        }
        (h, specs, sched.certify_mode())
    }

    fn pump<S: Scheduler>(
        sched: &mut S,
        specs: &BTreeMap<TxnId, TxnSpec>,
        h: &mut History,
        pending: Vec<(TxnId, usize, usize)>,
        now: Tick,
    ) -> Vec<(TxnId, usize, usize)> {
        let mut next = Vec::new();
        for (id, step, len) in pending {
            match sched.on_request(id, step, now).expect("request").0 {
                LockOutcome::Granted => {
                    let s = specs[&id].steps()[step];
                    h.push(
                        now,
                        Event::Granted {
                            txn: id,
                            step,
                            partition: s.partition,
                            mode: s.mode,
                        },
                    );
                    sched.on_progress(id, s.cost).expect("progress");
                    h.push(
                        now,
                        Event::Progress {
                            txn: id,
                            amount: s.cost,
                        },
                    );
                    sched.on_step_complete(id, step).expect("step");
                    h.push(now, Event::StepCompleted { txn: id, step });
                    if step + 1 == len {
                        sched.on_commit(id, now).expect("commit");
                        h.push(now, Event::Committed(id));
                    } else {
                        next.push((id, step + 1, len));
                    }
                }
                _ => next.push((id, step, len)),
            }
        }
        next
    }

    /// Streaming (with aggressive retirement) and whole-history replay
    /// produce identical reports on real runs.
    #[test]
    fn streaming_equals_whole_history_on_real_runs() {
        let runs: Vec<(History, BTreeMap<TxnId, TxnSpec>, CertifyMode)> = vec![
            drive(crate::sched::ChainScheduler::new(5000), 40),
            drive(crate::sched::KWtpgScheduler::new(2, 5000), 40),
            drive(crate::sched::C2plScheduler::new(), 40),
        ];
        for (h, specs, mode) in runs {
            let whole = certify_history(&h, &specs, mode).expect("whole-history certifies");
            let mut sc = StreamingCertifier::new(mode);
            for spec in specs.values() {
                sc.declare(spec.clone());
            }
            let mut max_live = 0usize;
            for (i, &(tick, e)) in h.events().iter().enumerate() {
                sc.feed(tick, e).expect("streaming certifies");
                if i % 16 == 0 {
                    sc.retire_prefix();
                }
                max_live = max_live.max(sc.live_nodes());
            }
            sc.retire_prefix();
            assert!(sc.retired() > 0, "retirement engaged");
            assert_eq!(sc.live_nodes(), 0, "everything committed retires");
            assert!(
                max_live < 40,
                "live graph stays below run length ({max_live})"
            );
            let streamed = sc.finish().expect("finish");
            assert_eq!(streamed, whole);
        }
    }

    /// The corrupted histories the whole-history replay rejects are
    /// rejected by the streaming path too, at the same event.
    #[test]
    fn streaming_rejects_corrupted_histories() {
        let mut h = History::new();
        let mut specs = BTreeMap::new();
        for id in [1u64, 2] {
            let t = TxnSpec::new(TxnId(id), vec![StepSpec::write(0, 1.0)]);
            specs.insert(t.id, t);
            h.push(Tick(0), Event::Admitted(TxnId(id)));
        }
        h.push(
            Tick(1),
            Event::Granted {
                txn: TxnId(1),
                step: 0,
                partition: PartitionId(0),
                mode: AccessMode::Write,
            },
        );
        h.push(
            Tick(2),
            Event::Granted {
                txn: TxnId(2),
                step: 0,
                partition: PartitionId(0),
                mode: AccessMode::Write,
            },
        );
        let whole = certify_history(&h, &specs, CertifyMode::General).expect_err("conflicting");
        let mut sc = StreamingCertifier::new(CertifyMode::General);
        for spec in specs.values() {
            sc.declare(spec.clone());
        }
        let mut streamed = None;
        for &(tick, e) in h.events() {
            if let Err(v) = sc.feed(tick, e) {
                streamed = Some(v);
                break;
            }
        }
        let streamed = streamed.expect("streaming rejects too");
        assert_eq!(streamed.at, whole.at);
        assert!(streamed.what.contains("while blocked"), "{streamed}");
    }

    /// The SGT machinery itself: committed nodes with live in-edges must
    /// survive retirement (the unsound commit-time-only scheme would drop
    /// them), and a cycle closed later is still caught.
    #[test]
    fn retirement_keeps_committed_nodes_with_in_edges() {
        let mut sc = StreamingCertifier::new(CertifyMode::General);
        // Hand-build the graph: live x → committed u; u still in a
        // frontier, so a later u → v edge must see u.
        let (x, u, v) = (TxnId(1), TxnId(2), TxnId(3));
        sc.nodes.entry(x).or_default();
        sc.nodes.entry(u).or_default();
        sc.add_edge(x, u, 0, Tick(0)).expect("x→u");
        if let Some(n) = sc.nodes.get_mut(&u) {
            n.committed = true;
        }
        assert_eq!(sc.retire_prefix(), 0, "u has an in-edge; must stay");
        assert!(sc.nodes.contains_key(&u));
        sc.nodes.entry(v).or_default();
        sc.add_edge(u, v, 1, Tick(1)).expect("u→v");
        // Closing v → x → u completes a cycle through committed u.
        let err = sc.add_edge(v, x, 2, Tick(2)).expect_err("cycle via committed node");
        assert!(err.what.contains("cycle"), "{err}");
        // Once x commits and retires, u's in-degree drops and both go.
        let mut sc2 = StreamingCertifier::new(CertifyMode::General);
        sc2.nodes.entry(x).or_default();
        sc2.nodes.entry(u).or_default();
        sc2.add_edge(x, u, 0, Tick(0)).expect("x→u");
        for t in [x, u] {
            if let Some(n) = sc2.nodes.get_mut(&t) {
                n.committed = true;
            }
        }
        assert_eq!(sc2.retire_prefix(), 2, "cascading retirement");
        assert_eq!(sc2.live_nodes(), 0);
        // Edges from the retired u are dropped on sight.
        sc2.nodes.entry(v).or_default();
        sc2.add_edge(u, v, 1, Tick(1)).expect("retired source ignored");
        assert_eq!(sc2.nodes.get(&v).map(|n| n.indeg), Some(0));
    }

    /// Exempt mode streams strictness only, and retires committed entries.
    #[test]
    fn exempt_streaming_checks_strictness_only() {
        let mut sc = StreamingCertifier::new(CertifyMode::Exempt);
        sc.feed(Tick(0), Event::Admitted(TxnId(1))).expect("admit");
        sc.feed(
            Tick(1),
            Event::Granted {
                txn: TxnId(1),
                step: 0,
                partition: PartitionId(0),
                mode: AccessMode::Write,
            },
        )
        .expect("grant (no exclusion check)");
        sc.feed(Tick(2), Event::Committed(TxnId(1))).expect("commit");
        let err = sc
            .feed(
                Tick(3),
                Event::Granted {
                    txn: TxnId(1),
                    step: 1,
                    partition: PartitionId(0),
                    mode: AccessMode::Write,
                },
            )
            .expect_err("active after commit");
        assert!(err.what.contains("after commit"), "{err}");
    }
}
