//! Cautious two-phase locking (paper §4.1, after Nishio et al.), plus the
//! Experiment-4 hybrids CHAIN-C2PL and K2-C2PL.
//!
//! C2PL is strict 2PL with deadlock *prediction* instead of detection: it
//! maintains the (unweighted) transaction precedence graph and grants a lock
//! request iff it is not blocked and does not close a precedence cycle; a
//! dangerous request is delayed, never aborted. The hybrids add only the
//! structural admission constraints of CHAIN / K-WTPG — no weights — and
//! serve as lower bounds isolating how much of the WTPG schedulers' benefit
//! comes from structure alone (paper §4.4).
//!
//! Control saving: deadlock predictions are pure functions of the lock
//! table and the precedence edges, so each verdict is cached per
//! `(txn, step)` stamped with the WTPG [`version`](Wtpg::version) it was
//! computed against — the same §3.4 scheme CHAIN and K-WTPG use for `W` and
//! `E(q)`. Arrivals and commits bump the version; a grant changes the lock
//! table *without* necessarily bumping it, so any grant also wipes the
//! cache (mirroring K-WTPG's `granted_edges` condition). A hit therefore
//! only ever replays a verdict computed against the identical lock/WTPG
//! state, which is what makes reuse sound for a predictor whose false
//! "safe" answer would be a real deadlock. Hits skip the graph traversal
//! and report zero `deadlock_tests` to the control-node cost model; retry
//! storms of delayed requests are the common beneficiary.

use std::collections::BTreeMap;

use wtpg_obs::ControlStats;

use crate::chain::form::is_chain_form;
use crate::error::CoreError;
use crate::time::Tick;
use crate::txn::{TxnId, TxnSpec};
use crate::work::Work;
use crate::wtpg::Wtpg;

use super::common::SchedCore;
use super::{Admission, CommitResult, ControlOps, LockOutcome, Scheduler};

/// Optional structural admission constraint (the hybrids of §4.4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Constraint {
    None,
    ChainForm,
    KConflict(usize),
}

/// The cautious two-phase-lock scheduler, optionally constrained.
#[derive(Clone, Debug)]
pub struct C2plScheduler {
    core: SchedCore,
    constraint: Constraint,
    name: &'static str,
    /// Cached deadlock verdicts keyed by the request they score, each
    /// stamped with the WTPG version it was computed against.
    dd_cache: BTreeMap<(TxnId, usize), (u64, bool)>,
    /// WTPG version at the last cache invalidation check.
    seen_version: u64,
    /// A grant changed the lock table since the last invalidation check.
    granted_any: bool,
    /// Cumulative control-plane statistics (cache behaviour, causes).
    stats: ControlStats,
}

impl C2plScheduler {
    /// Plain C2PL.
    pub fn new() -> C2plScheduler {
        C2plScheduler::with_constraint(Constraint::None, "C2PL")
    }

    /// CHAIN-C2PL: C2PL plus the chain-form admission constraint.
    pub fn chain_c2pl() -> C2plScheduler {
        C2plScheduler::with_constraint(Constraint::ChainForm, "CHAIN-C2PL")
    }

    /// K*-C2PL: C2PL plus the K-conflict admission constraint.
    pub fn k_c2pl(k: usize) -> C2plScheduler {
        C2plScheduler::with_constraint(Constraint::KConflict(k), "K2-C2PL")
    }

    fn with_constraint(constraint: Constraint, name: &'static str) -> C2plScheduler {
        C2plScheduler {
            core: SchedCore::new(),
            constraint,
            name,
            dd_cache: BTreeMap::new(),
            seen_version: 0,
            granted_any: false,
            stats: ControlStats::default(),
        }
    }

    /// Expires every cached verdict when the WTPG version moved (arrival,
    /// commit, new precedence edge) or any grant changed the lock table.
    fn maybe_invalidate(&mut self) {
        let ver = self.core.wtpg.version();
        if self.granted_any || ver != self.seen_version {
            self.dd_cache.clear();
            self.seen_version = ver;
            self.granted_any = false;
        }
    }
}

impl Default for C2plScheduler {
    fn default() -> Self {
        C2plScheduler::new()
    }
}

impl Scheduler for C2plScheduler {
    fn name(&self) -> &str {
        self.name
    }

    fn on_arrive(
        &mut self,
        spec: &TxnSpec,
        _now: Tick,
    ) -> Result<(Admission, ControlOps), CoreError> {
        self.core.arrive(spec)?;
        let ok = match self.constraint {
            Constraint::None => true,
            Constraint::ChainForm => is_chain_form(&self.core.wtpg),
            Constraint::KConflict(k) => self.core.locks.k_constraint_ok(&spec.clone(), k),
        };
        if ok {
            Ok((Admission::Admitted, ControlOps::NONE))
        } else {
            self.core.rollback_arrival(spec.id);
            match self.constraint {
                Constraint::ChainForm => self.stats.aborts_non_chain += 1,
                Constraint::KConflict(_) => self.stats.aborts_k_conflict += 1,
                Constraint::None => {}
            }
            Ok((Admission::Rejected, ControlOps::NONE))
        }
    }

    fn on_request(
        &mut self,
        txn: TxnId,
        step: usize,
        _now: Tick,
    ) -> Result<(LockOutcome, ControlOps), CoreError> {
        let s = self.core.request_step(txn, step)?;
        if self.core.locks.is_blocked(txn, s.partition, s.mode) {
            return Ok((LockOutcome::Blocked, ControlOps::NONE));
        }
        self.maybe_invalidate();
        let ver = self.core.wtpg.version();
        let implied = self.core.implied_resolutions(txn, s.partition, s.mode);
        let cached = self
            .dd_cache
            .get(&(txn, step))
            .and_then(|&(stamp, d)| (stamp == ver).then_some(d));
        let dangerous = match cached {
            Some(d) => {
                self.stats.dd_cache_hits += 1;
                d
            }
            None => {
                self.stats.dd_cache_misses += 1;
                let d = self.core.grant_would_deadlock(txn, &implied);
                self.dd_cache.insert((txn, step), (ver, d));
                d
            }
        };
        let ops = ControlOps {
            // A cache hit replays the stored verdict without the traversal.
            deadlock_tests: cached.is_none() as u32,
            ..ControlOps::NONE
        };
        if dangerous {
            self.stats.delays_deadlock += 1;
            return Ok((LockOutcome::Delayed, ops));
        }
        self.core.grant(txn, step, s, &implied)?;
        self.granted_any = true;
        Ok((LockOutcome::Granted, ops))
    }

    fn on_progress(&mut self, txn: TxnId, amount: Work) -> Result<(), CoreError> {
        self.core.progress(txn, amount)
    }

    fn on_step_complete(&mut self, txn: TxnId, step: usize) -> Result<(), CoreError> {
        self.core.step_complete(txn, step)
    }

    fn on_commit(&mut self, txn: TxnId, _now: Tick) -> Result<CommitResult, CoreError> {
        let freed = self.core.commit(txn)?;
        // The removal bumped the version (expiring survivors' entries); drop
        // the committed transaction's own entries so the map doesn't grow.
        self.dd_cache.retain(|&(t, _), _| t != txn);
        Ok(CommitResult {
            freed,
            ops: ControlOps::NONE,
        })
    }

    fn on_abort(&mut self, txn: TxnId, _now: Tick) -> Result<CommitResult, CoreError> {
        let freed = self.core.abort(txn)?;
        self.dd_cache.retain(|&(t, _), _| t != txn);
        Ok(CommitResult {
            freed,
            ops: ControlOps::NONE,
        })
    }

    fn active_txns(&self) -> usize {
        self.core.active_txns()
    }

    fn wtpg(&self) -> &Wtpg {
        self.core.wtpg()
    }

    fn obs_stats(&self) -> ControlStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::StepSpec;

    fn t(id: u64, steps: Vec<StepSpec>) -> TxnSpec {
        TxnSpec::new(TxnId(id), steps)
    }

    #[test]
    fn grants_unblocked_nonconflicting_request() {
        let mut s = C2plScheduler::new();
        let a = t(1, vec![StepSpec::write(0, 1.0)]);
        assert_eq!(s.on_arrive(&a, Tick(0)).unwrap().0, Admission::Admitted);
        assert_eq!(
            s.on_request(TxnId(1), 0, Tick(0)).unwrap().0,
            LockOutcome::Granted
        );
    }

    #[test]
    fn blocks_on_held_conflicting_lock() {
        let mut s = C2plScheduler::new();
        let a = t(1, vec![StepSpec::write(0, 1.0)]);
        let b = t(2, vec![StepSpec::write(0, 1.0)]);
        s.on_arrive(&a, Tick(0)).unwrap();
        s.on_request(TxnId(1), 0, Tick(0)).unwrap();
        s.on_arrive(&b, Tick(1)).unwrap();
        assert_eq!(
            s.on_request(TxnId(2), 0, Tick(1)).unwrap().0,
            LockOutcome::Blocked
        );
        // After T1 commits, T2 can go.
        s.on_progress(TxnId(1), Work::from_objects(1)).unwrap();
        s.on_step_complete(TxnId(1), 0).unwrap();
        let res = s.on_commit(TxnId(1), Tick(5)).unwrap();
        assert_eq!(res.freed, vec![crate::partition::PartitionId(0)]);
        assert_eq!(
            s.on_request(TxnId(2), 0, Tick(5)).unwrap().0,
            LockOutcome::Granted
        );
    }

    /// The classic upgrade / crossing deadlock: T1 writes A then B, T2
    /// writes B then A. C2PL must *predict* the cycle and delay rather than
    /// let both proceed into a deadlock.
    #[test]
    fn predicts_crossing_deadlock() {
        let mut s = C2plScheduler::new();
        let a = t(1, vec![StepSpec::write(0, 1.0), StepSpec::write(1, 1.0)]);
        let b = t(2, vec![StepSpec::write(1, 1.0), StepSpec::write(0, 1.0)]);
        s.on_arrive(&a, Tick(0)).unwrap();
        s.on_arrive(&b, Tick(0)).unwrap();
        // T1 takes A: resolves (T1,T2) as T1→T2 (T2 declared A).
        assert_eq!(
            s.on_request(TxnId(1), 0, Tick(0)).unwrap().0,
            LockOutcome::Granted
        );
        // T2 asks for B: granting would imply T2→T1 — predicted deadlock.
        assert_eq!(
            s.on_request(TxnId(2), 0, Tick(1)).unwrap().0,
            LockOutcome::Delayed
        );
        // T1 can take B and finish.
        s.on_progress(TxnId(1), Work::from_objects(1)).unwrap();
        s.on_step_complete(TxnId(1), 0).unwrap();
        assert_eq!(
            s.on_request(TxnId(1), 1, Tick(2)).unwrap().0,
            LockOutcome::Granted
        );
        s.on_progress(TxnId(1), Work::from_objects(1)).unwrap();
        s.on_step_complete(TxnId(1), 1).unwrap();
        s.on_commit(TxnId(1), Tick(3)).unwrap();
        // Now T2 is free.
        assert_eq!(
            s.on_request(TxnId(2), 0, Tick(4)).unwrap().0,
            LockOutcome::Granted
        );
    }

    #[test]
    fn chain_c2pl_rejects_degree_three() {
        let mut s = C2plScheduler::chain_c2pl();
        // Hub transaction conflicts with three others — fine to admit the
        // first three (star builds up), reject the one that creates degree 3.
        s.on_arrive(&t(1, vec![StepSpec::write(0, 1.0)]), Tick(0))
            .unwrap();
        s.on_arrive(
            &t(2, vec![StepSpec::write(0, 1.0), StepSpec::write(1, 1.0)]),
            Tick(0),
        )
        .unwrap();
        s.on_arrive(
            &t(3, vec![StepSpec::write(1, 1.0), StepSpec::write(2, 1.0)]),
            Tick(0),
        )
        .unwrap();
        // T4 conflicts with T3 on partition 2 → chain T1–T2–T3–T4: OK.
        let (adm, _) = s
            .on_arrive(&t(4, vec![StepSpec::write(2, 1.0)]), Tick(0))
            .unwrap();
        assert_eq!(adm, Admission::Admitted);
        // T5 also writes partition 1 → conflicts with T2 AND T3, both already
        // interior: degree violation.
        let (adm, _) = s
            .on_arrive(&t(5, vec![StepSpec::write(1, 1.0)]), Tick(0))
            .unwrap();
        assert_eq!(adm, Admission::Rejected);
        assert_eq!(s.active_txns(), 4);
    }

    #[test]
    fn k_c2pl_enforces_k() {
        let mut s = C2plScheduler::k_c2pl(1);
        s.on_arrive(&t(1, vec![StepSpec::write(0, 1.0)]), Tick(0))
            .unwrap();
        s.on_arrive(&t(2, vec![StepSpec::write(0, 1.0)]), Tick(0))
            .unwrap();
        // A third writer of partition 0 makes everyone conflict twice: reject.
        let (adm, _) = s
            .on_arrive(&t(3, vec![StepSpec::write(0, 1.0)]), Tick(0))
            .unwrap();
        assert_eq!(adm, Admission::Rejected);
        assert_eq!(s.name(), "K2-C2PL");
    }

    #[test]
    fn rejected_arrival_leaves_no_trace() {
        let mut s = C2plScheduler::k_c2pl(0);
        s.on_arrive(&t(1, vec![StepSpec::write(0, 1.0)]), Tick(0))
            .unwrap();
        let (adm, _) = s
            .on_arrive(&t(2, vec![StepSpec::write(0, 1.0)]), Tick(0))
            .unwrap();
        assert_eq!(adm, Admission::Rejected);
        assert!(!s.wtpg().contains(TxnId(2)));
        // Re-arrival after the blocker leaves succeeds.
        s.on_request(TxnId(1), 0, Tick(0)).unwrap();
        s.on_progress(TxnId(1), Work::from_objects(1)).unwrap();
        s.on_step_complete(TxnId(1), 0).unwrap();
        s.on_commit(TxnId(1), Tick(1)).unwrap();
        let (adm, _) = s
            .on_arrive(&t(2, vec![StepSpec::write(0, 1.0)]), Tick(2))
            .unwrap();
        assert_eq!(adm, Admission::Admitted);
    }

    /// The §3.4-style control saving on C2PL: a delayed request retried
    /// against unchanged lock/WTPG state replays the cached verdict (zero
    /// `deadlock_tests`), while any grant or commit wipes the cache.
    #[test]
    fn deadlock_verdicts_are_cached_across_retries() {
        let mut s = C2plScheduler::new();
        let a = t(1, vec![StepSpec::write(0, 1.0), StepSpec::write(1, 1.0)]);
        let b = t(2, vec![StepSpec::write(1, 1.0), StepSpec::write(0, 1.0)]);
        s.on_arrive(&a, Tick(0)).unwrap();
        s.on_arrive(&b, Tick(0)).unwrap();
        s.on_request(TxnId(1), 0, Tick(0)).unwrap();
        // First prediction for T2 computes (cache was wiped by T1's grant).
        let (out, ops) = s.on_request(TxnId(2), 0, Tick(1)).unwrap();
        assert_eq!(out, LockOutcome::Delayed);
        assert_eq!(ops.deadlock_tests, 1);
        // Retry with nothing changed: served from the cache.
        let (out, ops) = s.on_request(TxnId(2), 0, Tick(2)).unwrap();
        assert_eq!(out, LockOutcome::Delayed);
        assert_eq!(ops.deadlock_tests, 0);
        let stats = s.obs_stats();
        assert_eq!(stats.dd_cache_hits, 1);
        assert!(stats.dd_cache_misses >= 2); // T1's grant + T2's first try
        assert_eq!(stats.delays_deadlock, 2);
        // Drive T1 to commit; the version bump expires T2's cached verdict
        // and the fresh prediction now grants.
        s.on_progress(TxnId(1), Work::from_objects(1)).unwrap();
        s.on_step_complete(TxnId(1), 0).unwrap();
        s.on_request(TxnId(1), 1, Tick(3)).unwrap();
        s.on_progress(TxnId(1), Work::from_objects(1)).unwrap();
        s.on_step_complete(TxnId(1), 1).unwrap();
        s.on_commit(TxnId(1), Tick(4)).unwrap();
        let (out, ops) = s.on_request(TxnId(2), 0, Tick(5)).unwrap();
        assert_eq!(out, LockOutcome::Granted);
        assert_eq!(ops.deadlock_tests, 1);
        assert_eq!(s.obs_stats().dd_cache_hits, 1);
    }

    #[test]
    fn out_of_order_request_is_a_protocol_error() {
        let mut s = C2plScheduler::new();
        let a = t(1, vec![StepSpec::write(0, 1.0), StepSpec::write(1, 1.0)]);
        s.on_arrive(&a, Tick(0)).unwrap();
        assert!(matches!(
            s.on_request(TxnId(1), 1, Tick(0)),
            Err(CoreError::OutOfOrder { .. })
        ));
    }
}
