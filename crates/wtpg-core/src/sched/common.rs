//! Shared scheduler plumbing: the lock table, the WTPG, and the per-
//! transaction execution state, with the grant/commit/progress mechanics
//! every lock-based scheduler shares.

use std::collections::BTreeMap;

use crate::error::CoreError;
use crate::lock::LockTable;
use crate::partition::PartitionId;
use crate::txn::{StepSpec, TxnId, TxnSpec};
use crate::work::Work;
use crate::wtpg::Wtpg;

/// Execution state of one admitted transaction.
#[derive(Clone, Debug)]
pub(crate) struct ActiveTxn {
    pub spec: TxnSpec,
    /// Index of the next step to *request*.
    pub next_step: usize,
    /// Step currently granted and executing, if any.
    pub current: Option<usize>,
    /// Declared work already consumed within the current step (capped at the
    /// step's declared cost — erroneous declarations must not over-decrement
    /// the `T0` weight).
    pub declared_progress: Work,
}

/// The state shared by every lock-based scheduler: lock table + WTPG +
/// transaction registry, with the paper's weight bookkeeping built in.
#[derive(Clone, Debug, Default)]
pub struct SchedCore {
    pub(crate) locks: LockTable,
    pub(crate) wtpg: Wtpg,
    pub(crate) txns: BTreeMap<TxnId, ActiveTxn>,
    /// WTPG version at the start of the most recent [`Self::arrive`], so a
    /// rejected admission can roll the version back along with the state.
    pre_arrival_version: u64,
}

impl SchedCore {
    /// Fresh, empty state.
    pub fn new() -> SchedCore {
        SchedCore::default()
    }

    /// Number of admitted, uncommitted transactions.
    pub fn active_txns(&self) -> usize {
        self.txns.len()
    }

    /// The live WTPG.
    pub fn wtpg(&self) -> &Wtpg {
        &self.wtpg
    }

    /// The lock table.
    pub fn locks(&self) -> &LockTable {
        &self.locks
    }

    /// Declares `spec` everywhere: lock table declarations, WTPG node with
    /// `w(T0→T) = due(s_0)`, and the conflict edges its arrival induces.
    ///
    /// The caller can still [`Self::rollback_arrival`] if an admission
    /// constraint fails afterwards.
    pub(crate) fn arrive(&mut self, spec: &TxnSpec) -> Result<(), CoreError> {
        if self.txns.contains_key(&spec.id) {
            return Err(CoreError::DuplicateTxn(spec.id));
        }
        self.pre_arrival_version = self.wtpg.version();
        self.locks.declare(spec);
        self.wtpg.add_txn(spec.id, spec.total_declared())?;
        let conflicts = self.locks.arrival_conflicts(spec);
        self.wtpg.ingest_arrival(spec.id, &conflicts)?;
        self.txns.insert(
            spec.id,
            ActiveTxn {
                spec: spec.clone(),
                next_step: 0,
                current: None,
                declared_progress: Work::ZERO,
            },
        );
        Ok(())
    }

    /// Undoes [`Self::arrive`] after a failed admission test. The WTPG is
    /// back in its pre-arrival logical state, so its version is restored
    /// too — schedulers' version-keyed caches stay warm across rejections.
    pub(crate) fn rollback_arrival(&mut self, txn: TxnId) {
        self.locks.undeclare(txn);
        let _ = self.wtpg.remove_txn(txn);
        self.txns.remove(&txn);
        self.wtpg.restore_version(self.pre_arrival_version);
    }

    pub(crate) fn active(&self, txn: TxnId) -> Result<&ActiveTxn, CoreError> {
        self.txns.get(&txn).ok_or(CoreError::UnknownTxn(txn))
    }

    /// The declared step a request refers to, validating order.
    pub(crate) fn request_step(&self, txn: TxnId, step: usize) -> Result<StepSpec, CoreError> {
        let a = self.active(txn)?;
        if step >= a.spec.len() {
            return Err(CoreError::BadStep { txn, step });
        }
        if step != a.next_step {
            return Err(CoreError::OutOfOrder {
                txn,
                expected: a.next_step,
                got: step,
            });
        }
        a.spec
            .steps()
            .get(step)
            .copied()
            .ok_or(CoreError::BadStep { txn, step })
    }

    /// Transactions whose outstanding declarations on `p` conflict with a
    /// `mode` access by `txn` — granting the request implies `txn → other`
    /// for each of them. Deduplicated, ascending.
    pub(crate) fn implied_resolutions(
        &self,
        txn: TxnId,
        p: PartitionId,
        mode: crate::txn::AccessMode,
    ) -> Vec<TxnId> {
        let mut v: Vec<TxnId> = self
            .locks
            .conflicting_declarations(txn, p, mode)
            .into_iter()
            .map(|d| d.txn)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// True if applying the implied resolutions of a grant would close a
    /// precedence cycle — the deadlock prediction shared by C2PL and K-WTPG.
    ///
    /// Every implied edge emanates from `txn`, so a cycle through any of
    /// them must re-enter `txn` through *existing* edges: it exists iff some
    /// implied target already precedes `txn`. One backward reachability pass
    /// answers that without cloning the WTPG (this sits on C2PL's hottest
    /// path when the machine is driven into overload).
    pub(crate) fn grant_would_deadlock(&self, txn: TxnId, implied: &[TxnId]) -> bool {
        if implied.is_empty() {
            return false;
        }
        if implied.contains(&txn) {
            return true;
        }
        let before = self.wtpg.before(txn);
        implied.iter().any(|other| before.contains(other))
    }

    /// Performs the grant: takes the lock, resolves the implied conflicting
    /// edges into `txn → other`, and updates execution state.
    pub(crate) fn grant(
        &mut self,
        txn: TxnId,
        step: usize,
        spec_step: StepSpec,
        implied: &[TxnId],
    ) -> Result<(), CoreError> {
        self.locks
            .grant(txn, step, spec_step.partition, spec_step.mode)?;
        for &other in implied {
            if self.wtpg.contains(other) {
                self.wtpg.resolve(txn, other)?;
            }
        }
        let a = self.txns.get_mut(&txn).ok_or(CoreError::UnknownTxn(txn))?;
        a.current = Some(step);
        a.next_step = step + 1;
        a.declared_progress = Work::ZERO;
        Ok(())
    }

    /// Progress bookkeeping: decrement `w(T0→txn)` by the *declared*
    /// equivalent of `amount` actual work, never past the `due` of the steps
    /// still to come (§3.1; the clamp matters only under Experiment 4's
    /// erroneous declarations).
    pub(crate) fn progress(&mut self, txn: TxnId, amount: Work) -> Result<(), CoreError> {
        let a = self.txns.get_mut(&txn).ok_or(CoreError::UnknownTxn(txn))?;
        let Some(step) = a.current else {
            return Err(CoreError::BadStep {
                txn,
                step: usize::MAX,
            });
        };
        let declared_cost = a
            .spec
            .steps()
            .get(step)
            .ok_or(CoreError::BadStep { txn, step })?
            .cost;
        let before = a.declared_progress.min(declared_cost);
        a.declared_progress += amount;
        let after = a.declared_progress.min(declared_cost);
        let decrement = after - before;
        let floor = if step + 1 < a.spec.len() {
            a.spec.due(step + 1)
        } else {
            Work::ZERO
        };
        self.wtpg.decrement_t0_weight(txn, decrement, floor)
    }

    /// Step completion: the remaining declared work is now exactly the `due`
    /// of the next step (zero after the last).
    pub(crate) fn step_complete(&mut self, txn: TxnId, step: usize) -> Result<(), CoreError> {
        let a = self.txns.get_mut(&txn).ok_or(CoreError::UnknownTxn(txn))?;
        if a.current != Some(step) {
            return Err(CoreError::BadStep { txn, step });
        }
        a.current = None;
        let remaining = if step + 1 < a.spec.len() {
            a.spec.due(step + 1)
        } else {
            Work::ZERO
        };
        self.wtpg.set_t0_weight(txn, remaining)
    }

    /// Commit: release every lock, remove the node from the WTPG.
    pub(crate) fn commit(&mut self, txn: TxnId) -> Result<Vec<PartitionId>, CoreError> {
        let a = self.txns.remove(&txn).ok_or(CoreError::UnknownTxn(txn))?;
        debug_assert_eq!(
            a.next_step,
            a.spec.len(),
            "{txn} committed before requesting every step"
        );
        let freed = self.locks.release_all(txn);
        self.wtpg.remove_txn(txn)?;
        Ok(freed)
    }

    /// Mid-flight abort: like a commit, but legal at any point of the step
    /// protocol. Outstanding declarations, held locks and WTPG edges all
    /// disappear; partially resolved orders simply lose their constraints.
    pub(crate) fn abort(&mut self, txn: TxnId) -> Result<Vec<PartitionId>, CoreError> {
        self.txns.remove(&txn).ok_or(CoreError::UnknownTxn(txn))?;
        let freed = self.locks.release_all(txn);
        self.wtpg.remove_txn(txn)?;
        Ok(freed)
    }
}
