//! K-WTPG — the K-conflict WTPG scheduler (paper §3.3, CC2).
//!
//! Local optimisation: a lock request `q` is granted only when it has the
//! smallest `E(q)` — the critical path of the present schedule if `q` were
//! granted — among the conflicting declarations `C(q)`. A request that would
//! deadlock (`E(q) = ∞`) is delayed. The *K-conflict* constraint bounds
//! `|C(q)| ≤ K` by rejecting, at start, any transaction whose declaration
//! (or a peer's) would conflict with more than `K` others, keeping the
//! per-request cost at `O(K · max(n, e))`.
//!
//! Control saving (§3.4): cached `E` values are reused until a transaction
//! starts or commits, a new precedence edge appears, or `keeptime` elapses.
//! Starts, commits and new edges all bump [`Wtpg::version`], so each cache
//! entry is stamped with the version it was computed against and a stale
//! stamp misses; a grant whose implied resolutions were all already
//! resolved bumps nothing but still invalidates (the paper's condition is
//! the grant, not the edge), and the `keeptime` horizon needs a clock.
//! Estimates run through one reusable [`EqScratch`] overlay, so the hot
//! path neither clones the graph nor reallocates per request.
//!
//! ## Liveness deviation from the paper
//!
//! CC2 as specified can livelock: requests `q1` of `T1` and `q2` of `T2` on
//! *different* granules can each lose the `E` comparison to the other
//! transaction's declaration, and if nothing else is executing the weights
//! never change, so both are delayed forever (found by property testing;
//! CHAIN cannot exhibit this because `W` totally orders every conflicting
//! pair). This implementation adds an aging guard: a request that has lost
//! the comparison [`STARVATION_LIMIT`] consecutive times is granted anyway,
//! provided it does not deadlock. The guard never fires in the paper's
//! experiments at their operating points; it exists to make the scheduler
//! live on adversarial inputs.

use std::collections::BTreeMap;

use wtpg_obs::ControlStats;

use crate::error::CoreError;
use crate::estimate::{eq_estimate_with, EqScratch, EqValue};
use crate::time::Tick;
use crate::txn::{TxnId, TxnSpec};
use crate::work::Work;
use crate::wtpg::Wtpg;

use super::common::SchedCore;
use super::{Admission, CommitResult, ControlOps, LockOutcome, Scheduler};

/// Consecutive lost `E` comparisons after which a deadlock-free request is
/// granted regardless (liveness guard; see the module docs).
pub const STARVATION_LIMIT: u32 = 16;

/// The K-WTPG scheduler. The paper evaluates K = 2 ("K2").
#[derive(Clone, Debug)]
pub struct KWtpgScheduler {
    core: SchedCore,
    k: usize,
    /// Control-saving period, in ms.
    keeptime: u64,
    /// Cached `E` values keyed by the request they score (txn, step), each
    /// stamped with the WTPG version it was computed against.
    cache: BTreeMap<(TxnId, usize), (u64, EqValue)>,
    last_compute: Tick,
    /// WTPG version at the last cache invalidation check, so a structural
    /// change resets the `keeptime` window exactly as §3.4's "new edge /
    /// start / commit" conditions do.
    seen_version: u64,
    /// A grant carried implied resolutions (§3.4 condition 3). Set even
    /// when every implied pair was already resolved — the paper invalidates
    /// on the grant itself, and an all-idempotent grant bumps no version.
    granted_edges: bool,
    /// Reusable overlay buffers for `eq_estimate_with`.
    scratch: EqScratch,
    /// Consecutive comparison losses per outstanding request.
    starved: BTreeMap<(TxnId, usize), u32>,
    /// Cumulative control-plane statistics (cache behaviour, causes).
    stats: ControlStats,
}

impl KWtpgScheduler {
    /// Creates a K-WTPG scheduler with conflict bound `k` and control-saving
    /// period `keeptime` (ms).
    pub fn new(k: usize, keeptime: u64) -> KWtpgScheduler {
        KWtpgScheduler {
            core: SchedCore::new(),
            k,
            keeptime,
            cache: BTreeMap::new(),
            last_compute: Tick::ZERO,
            seen_version: 0,
            granted_edges: false,
            scratch: EqScratch::new(),
            starved: BTreeMap::new(),
            stats: ControlStats::default(),
        }
    }

    /// The configured K.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Expires the whole cache when the WTPG changed structurally since the
    /// last check (§3.4 conditions 1–3: start, commit, new precedence edge —
    /// all of which bump [`Wtpg::version`]) or once `keeptime` has elapsed
    /// (condition 4). Either clear restarts the `keeptime` window, so the
    /// periodic refresh is anchored at the last invalidation like the
    /// paper's scheme; the per-entry version stamps in [`Self::eq_for`]
    /// additionally keep any single stale value from ever being reused.
    fn maybe_invalidate(&mut self, now: Tick) {
        let ver = self.core.wtpg.version();
        if self.granted_edges
            || ver != self.seen_version
            || now.saturating_since(self.last_compute) >= self.keeptime
        {
            if !self.cache.is_empty() {
                self.stats.eq_cache_invalidations += 1;
            }
            self.cache.clear();
            self.last_compute = now;
            self.seen_version = ver;
            self.granted_edges = false;
        }
    }

    /// `E` for the (possibly hypothetical) request of `txn`'s step on the
    /// given partition/mode, through the cache. An entry hits only when its
    /// version stamp matches the live WTPG. Returns the value and whether a
    /// fresh computation happened.
    fn eq_for(
        &mut self,
        txn: TxnId,
        step: usize,
        partition: crate::partition::PartitionId,
        mode: crate::txn::AccessMode,
    ) -> (EqValue, bool) {
        let ver = self.core.wtpg.version();
        if let Some(&(stamp, v)) = self.cache.get(&(txn, step)) {
            if stamp == ver {
                self.stats.eq_cache_hits += 1;
                return (v, false);
            }
        }
        self.stats.eq_cache_misses += 1;
        let implied = self.core.implied_resolutions(txn, partition, mode);
        let v = eq_estimate_with(&mut self.scratch, &self.core.wtpg, txn, &implied);
        self.cache.insert((txn, step), (ver, v));
        (v, true)
    }
}

impl Scheduler for KWtpgScheduler {
    fn name(&self) -> &str {
        "K-WTPG"
    }

    fn on_arrive(
        &mut self,
        spec: &TxnSpec,
        _now: Tick,
    ) -> Result<(Admission, ControlOps), CoreError> {
        self.core.arrive(spec)?;
        if !self.core.locks.k_constraint_ok(spec, self.k) {
            self.core.rollback_arrival(spec.id);
            self.stats.aborts_k_conflict += 1;
            return Ok((Admission::Rejected, ControlOps::NONE));
        }
        // An admitted arrival bumps the WTPG version, which is what expires
        // the cached E values (§3.4 condition 1).
        Ok((Admission::Admitted, ControlOps::NONE))
    }

    fn on_request(
        &mut self,
        txn: TxnId,
        step: usize,
        now: Tick,
    ) -> Result<(LockOutcome, ControlOps), CoreError> {
        let s = self.core.request_step(txn, step)?;
        if self.core.locks.is_blocked(txn, s.partition, s.mode) {
            return Ok((LockOutcome::Blocked, ControlOps::NONE));
        }
        self.maybe_invalidate(now);
        let mut evals = 0u32;
        let (my_eq, fresh) = self.eq_for(txn, step, s.partition, s.mode);
        evals += fresh as u32;
        if my_eq.is_infinite() {
            // Step 2 of CC2: a deadlock-causing request is delayed.
            self.stats.delays_deadlock += 1;
            let ops = ControlOps {
                eq_evals: evals,
                ..ControlOps::NONE
            };
            return Ok((LockOutcome::Delayed, ops));
        }
        // Step 3: q wins only with the smallest E among C(q) — unless it has
        // starved long enough that the liveness guard overrides the loss.
        let starving = self
            .starved
            .get(&(txn, step))
            .is_some_and(|&c| c >= STARVATION_LIMIT);
        let mut wins = true;
        if !starving {
            let competitors = self
                .core
                .locks
                .conflicting_declarations(txn, s.partition, s.mode);
            for d in competitors {
                let (their_eq, fresh) = self.eq_for(d.txn, d.step, s.partition, d.mode);
                evals += fresh as u32;
                if their_eq < my_eq {
                    wins = false;
                    break;
                }
            }
        }
        let ops = ControlOps {
            eq_evals: evals,
            ..ControlOps::NONE
        };
        if !wins {
            self.stats.delays_minimality += 1;
            *self.starved.entry((txn, step)).or_insert(0) += 1;
            return Ok((LockOutcome::Delayed, ops));
        }
        self.starved.remove(&(txn, step));
        let implied = self.core.implied_resolutions(txn, s.partition, s.mode);
        let new_edges = !implied.is_empty();
        self.core.grant(txn, step, s, &implied)?;
        if new_edges {
            // §3.4 condition 3: the grant resolved conflicting edges into
            // precedence edges, invalidating cached E.
            self.granted_edges = true;
        }
        Ok((LockOutcome::Granted, ops))
    }

    fn on_progress(&mut self, txn: TxnId, amount: Work) -> Result<(), CoreError> {
        self.core.progress(txn, amount)
    }

    fn on_step_complete(&mut self, txn: TxnId, step: usize) -> Result<(), CoreError> {
        self.core.step_complete(txn, step)
    }

    fn on_commit(&mut self, txn: TxnId, _now: Tick) -> Result<CommitResult, CoreError> {
        let freed = self.core.commit(txn)?;
        self.starved.retain(|&(t, _), _| t != txn);
        // The removal bumped the version (expiring survivors' entries); drop
        // the committed transaction's own entries so the map doesn't grow.
        self.cache.retain(|&(t, _), _| t != txn);
        Ok(CommitResult {
            freed,
            ops: ControlOps::NONE,
        })
    }

    fn on_abort(&mut self, txn: TxnId, _now: Tick) -> Result<CommitResult, CoreError> {
        let freed = self.core.abort(txn)?;
        self.starved.retain(|&(t, _), _| t != txn);
        self.cache.retain(|&(t, _), _| t != txn);
        Ok(CommitResult {
            freed,
            ops: ControlOps::NONE,
        })
    }

    fn active_txns(&self) -> usize {
        self.core.active_txns()
    }

    fn wtpg(&self) -> &Wtpg {
        self.core.wtpg()
    }

    fn certify_mode(&self) -> crate::certify::CertifyMode {
        crate::certify::CertifyMode::KConflict(self.k)
    }

    fn obs_stats(&self) -> ControlStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::StepSpec;

    fn t(id: u64, steps: Vec<StepSpec>) -> TxnSpec {
        TxnSpec::new(TxnId(id), steps)
    }

    #[test]
    fn grants_cheapest_conflicting_request() {
        let mut s = KWtpgScheduler::new(2, 5000);
        // T1 is huge (10 objects after its hot write), T2 tiny: T2's grant of
        // the hot partition gives a shorter critical path, so T1 is delayed
        // when both compete.
        let t1 = t(1, vec![StepSpec::write(0, 1.0), StepSpec::write(1, 10.0)]);
        let t2 = t(2, vec![StepSpec::write(0, 1.0)]);
        s.on_arrive(&t1, Tick(0)).unwrap();
        s.on_arrive(&t2, Tick(0)).unwrap();
        // E(T1's request): resolving T1→T2 gives path T0→T1→T2: 11 + 1 = 12.
        // E(T2's request): T0→T2→T1: 1 + 11 = 12 … equal? T2→T1 weight =
        // due of T1's conflicting step = 11, T1→T2 weight = due of T2's = 1.
        // E(T1) = max(11, 11+1)=12;  E(T2) = max(1+11, …)=12 → tie: grant.
        let (out, ops) = s.on_request(TxnId(2), 0, Tick(1)).unwrap();
        assert_eq!(out, LockOutcome::Granted);
        assert_eq!(ops.eq_evals, 2);
    }

    #[test]
    fn delays_costlier_request() {
        let mut s = KWtpgScheduler::new(2, 5000);
        // T1's remaining work after the conflict is big; T2's is small.
        // w(T2→T1) = due(T1 step on P0) = 12, w(T1→T2) = due(T2 step) = 1.
        let t1 = t(1, vec![StepSpec::write(0, 2.0), StepSpec::write(1, 10.0)]);
        let t2 = t(2, vec![StepSpec::read(5, 3.0), StepSpec::write(0, 1.0)]);
        s.on_arrive(&t1, Tick(0)).unwrap();
        s.on_arrive(&t2, Tick(0)).unwrap();
        // E(T1 on P0): T1→T2 ⇒ critical = max(T0→T1=12, T0→T1→T2 = 12+1=13)
        // E(T2 on P0): T2→T1 ⇒ critical = max(T0→T2=4, 4+12=16)
        // T1 wins, T2 would lose.
        let (out, _) = s.on_request(TxnId(1), 0, Tick(1)).unwrap();
        assert_eq!(out, LockOutcome::Granted);
    }

    #[test]
    fn loser_is_delayed() {
        let mut s = KWtpgScheduler::new(2, 5000);
        let t1 = t(1, vec![StepSpec::write(0, 2.0), StepSpec::write(1, 10.0)]);
        let t2 = t(2, vec![StepSpec::read(5, 3.0), StepSpec::write(0, 1.0)]);
        s.on_arrive(&t1, Tick(0)).unwrap();
        s.on_arrive(&t2, Tick(0)).unwrap();
        // T2 must first take its non-conflicting read on P5 (granted: no
        // competitors), then its conflicting write on P0 loses to T1's
        // cheaper continuation.
        assert_eq!(
            s.on_request(TxnId(2), 0, Tick(1)).unwrap().0,
            LockOutcome::Granted
        );
        s.on_progress(TxnId(2), Work::from_objects(3)).unwrap();
        s.on_step_complete(TxnId(2), 0).unwrap();
        // Now E(T2 on P0) = max(1, 1+12) = 13 vs E(T1 on P0) = 13 — tie now
        // because T2's T0 weight dropped to 1. Drop T1's weight by progress?
        // T1 hasn't started, so its declared dues are unchanged.
        // E(T2)=max(T0→T2=1, T0→T2→T1: 1+12=13)=13; E(T1)=max(12, 12+1)=13.
        // Tie → grant T2.
        assert_eq!(
            s.on_request(TxnId(2), 1, Tick(2)).unwrap().0,
            LockOutcome::Granted
        );
    }

    #[test]
    fn k_constraint_rejects_over_conflicted_arrivals() {
        let mut s = KWtpgScheduler::new(2, 5000);
        for id in 1..=3u64 {
            let spec = t(id, vec![StepSpec::write(0, 1.0)]);
            assert_eq!(s.on_arrive(&spec, Tick(0)).unwrap().0, Admission::Admitted);
        }
        // Fourth writer of the hot partition: each declaration would now
        // conflict with 3 > K = 2 others.
        let spec = t(4, vec![StepSpec::write(0, 1.0)]);
        assert_eq!(s.on_arrive(&spec, Tick(0)).unwrap().0, Admission::Rejected);
        assert_eq!(s.active_txns(), 3);
    }

    #[test]
    fn k_wtpg_accepts_non_chain_wtpg() {
        // A star: T2 conflicts with T1 and T3 on different granules plus T4 —
        // degree 3 is fine for K-WTPG (K counts per-granule declarations).
        let mut s = KWtpgScheduler::new(2, 5000);
        s.on_arrive(&t(1, vec![StepSpec::write(0, 1.0)]), Tick(0))
            .unwrap();
        s.on_arrive(
            &t(
                2,
                vec![
                    StepSpec::write(0, 1.0),
                    StepSpec::write(1, 1.0),
                    StepSpec::write(2, 1.0),
                ],
            ),
            Tick(0),
        )
        .unwrap();
        s.on_arrive(&t(3, vec![StepSpec::write(1, 1.0)]), Tick(0))
            .unwrap();
        let (adm, _) = s
            .on_arrive(&t(4, vec![StepSpec::write(2, 1.0)]), Tick(0))
            .unwrap();
        assert_eq!(adm, Admission::Admitted);
        assert_eq!(s.active_txns(), 4);
    }

    #[test]
    fn deadlock_causing_request_is_delayed() {
        let mut s = KWtpgScheduler::new(2, 5000);
        let t1 = t(1, vec![StepSpec::write(0, 1.0), StepSpec::write(1, 1.0)]);
        let t2 = t(2, vec![StepSpec::write(1, 1.0), StepSpec::write(0, 1.0)]);
        s.on_arrive(&t1, Tick(0)).unwrap();
        s.on_arrive(&t2, Tick(0)).unwrap();
        // T1 takes P0 (resolves T1→T2).
        assert_eq!(
            s.on_request(TxnId(1), 0, Tick(1)).unwrap().0,
            LockOutcome::Granted
        );
        // T2 asking for P1 implies T2→T1: cycle → E = ∞ → delayed.
        assert_eq!(
            s.on_request(TxnId(2), 0, Tick(2)).unwrap().0,
            LockOutcome::Delayed
        );
    }

    #[test]
    fn cache_reuse_within_keeptime() {
        let mut s = KWtpgScheduler::new(2, 5000);
        let t1 = t(1, vec![StepSpec::write(0, 5.0)]);
        let t2 = t(2, vec![StepSpec::write(0, 1.0)]);
        s.on_arrive(&t1, Tick(0)).unwrap();
        s.on_arrive(&t2, Tick(0)).unwrap();
        // T1 requests: E(T1) = max(5, 5+1) = 6; E(T2) = 1+5 = 6 → tie, T1
        // would win… make T1 lose instead: E comparisons need strict <.
        // Either way, the first request computes 2 fresh E values.
        let (_, ops) = s.on_request(TxnId(1), 0, Tick(1)).unwrap();
        assert_eq!(ops.eq_evals, 2);
    }

    /// The liveness guard: a request that keeps losing the `E` comparison
    /// (because its cheaper competitor never actually shows up) is granted
    /// after [`STARVATION_LIMIT`] consecutive losses.
    ///
    /// First-step conflicts always tie (`E` is symmetric in that case), so
    /// the strict loss needs a third transaction: T3 holds P6 and T2 must
    /// write P6 last, giving T2's grant on P0 the longer tail
    /// `T3 → T2 → T1` while T1's hypothetical grant only carries
    /// `T3 → T2` — so T2 strictly loses against the never-arriving T1.
    #[test]
    fn starvation_guard_eventually_grants() {
        let mut s = KWtpgScheduler::new(3, 0); // keeptime 0: recompute always
        let t3 = t(3, vec![StepSpec::write(6, 20.0)]);
        s.on_arrive(&t3, Tick(0)).unwrap();
        assert_eq!(
            s.on_request(TxnId(3), 0, Tick(0)).unwrap().0,
            LockOutcome::Granted
        );
        let t1 = t(1, vec![StepSpec::write(0, 1.0), StepSpec::write(1, 2.0)]);
        let t2 = t(
            2,
            vec![
                StepSpec::read(5, 1.0),
                StepSpec::write(0, 1.0),
                StepSpec::write(6, 5.0),
            ],
        );
        s.on_arrive(&t1, Tick(0)).unwrap();
        s.on_arrive(&t2, Tick(0)).unwrap();
        // Drive T2 through its unconflicted first step.
        assert_eq!(
            s.on_request(TxnId(2), 0, Tick(1)).unwrap().0,
            LockOutcome::Granted
        );
        s.on_progress(TxnId(2), Work::from_objects(1)).unwrap();
        s.on_step_complete(TxnId(2), 0).unwrap();
        // Now E(T2 grants P0) = T0→T3→T2→T1 = 20+5+3 = 28, but
        // E(T1 hypothetical) = T0→T3→T2 = 25: T2 loses every round until the
        // starvation guard overrides.
        let mut losses = 0;
        let mut now = Tick(2);
        loop {
            let (out, _) = s.on_request(TxnId(2), 1, now).unwrap();
            now += 1;
            match out {
                LockOutcome::Granted => break,
                LockOutcome::Delayed => losses += 1,
                LockOutcome::Blocked => panic!("nothing holds P0"),
            }
            assert!(losses < STARVATION_LIMIT + 5, "guard never fired");
        }
        assert!(
            losses >= STARVATION_LIMIT,
            "guard fired early: only {losses} losses"
        );
    }

    #[test]
    fn commit_clears_cache() {
        let mut s = KWtpgScheduler::new(2, 1_000_000);
        let t1 = t(1, vec![StepSpec::write(0, 1.0)]);
        let t2 = t(2, vec![StepSpec::write(0, 1.0)]);
        s.on_arrive(&t1, Tick(0)).unwrap();
        s.on_arrive(&t2, Tick(0)).unwrap();
        let (out, ops) = s.on_request(TxnId(1), 0, Tick(1)).unwrap();
        assert_eq!(out, LockOutcome::Granted);
        assert!(ops.eq_evals >= 1);
        s.on_progress(TxnId(1), Work::from_objects(1)).unwrap();
        s.on_step_complete(TxnId(1), 0).unwrap();
        s.on_commit(TxnId(1), Tick(2)).unwrap();
        // T2 now computes a fresh E (cache invalidated by the commit).
        let (out, ops) = s.on_request(TxnId(2), 0, Tick(3)).unwrap();
        assert_eq!(out, LockOutcome::Granted);
        assert_eq!(ops.eq_evals, 1);
    }
}
