//! The schedulers: the paper's two WTPG schedulers, its three baselines, and
//! the Experiment-4 hybrids, all behind one event-driven [`Scheduler`] trait.
//!
//! | name | paper | strategy |
//! |---|---|---|
//! | [`ChainScheduler`] | CC1, "CHAIN" (§3.2) | global optimisation: enforce the full SR-order with the shortest critical path; chain-form WTPGs only |
//! | [`KWtpgScheduler`] | CC2, "K-WTPG" (§3.3) | local optimisation: grant the conflicting request with the smallest `E(q)`; K-conflict constraint |
//! | [`AslScheduler`] | ASL (§4.1, after Tay) | atomic static locking: start only with all locks in hand |
//! | [`C2plScheduler`] | C2PL (§4.1, after Nishio) | cautious strict 2PL: grant unless blocked or deadlock-predicted; never aborts |
//! | [`NodcScheduler`] | NODC (§4.1) | grants everything — the resource-contention-only upper bound |
//! | [`C2plScheduler::chain_c2pl`] | CHAIN-C2PL (§4.4) | C2PL plus the chain-form admission constraint (no weights) |
//! | [`C2plScheduler::k_c2pl`] | K2-C2PL (§4.4) | C2PL plus the K-conflict admission constraint (no weights) |
//! | [`GWtpgScheduler`] | — (our extension) | CHAIN's global strategy on arbitrary conflict graphs via the heuristic planner |
//!
//! The driver (simulator or application) owns retry policy: a `Rejected`
//! admission or `Delayed` request is resubmitted after a fixed delay, a
//! `Blocked` request is retried when a commit frees its partition — exactly
//! the paper's "resubmitted after a fixed delay" discipline.

mod asl;
mod c2pl;
mod chain_sched;
mod common;
mod gwtpg;
mod kwtpg;
mod nodc;

pub use asl::AslScheduler;
pub use c2pl::C2plScheduler;
pub use chain_sched::ChainScheduler;
pub use common::SchedCore;
pub use gwtpg::GWtpgScheduler;
pub use kwtpg::KWtpgScheduler;
pub use nodc::NodcScheduler;

use crate::error::CoreError;
use crate::partition::PartitionId;
use crate::time::Tick;
use crate::txn::{TxnId, TxnSpec};
use crate::work::Work;
use crate::wtpg::Wtpg;

/// Outcome of a transaction's start request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Admission {
    /// The transaction was admitted: its declarations are registered and it
    /// may start requesting step locks.
    Admitted,
    /// The transaction was turned away (structural constraint violated, or
    /// ASL could not take every lock). Nothing was registered; resubmit the
    /// same spec after a delay.
    Rejected,
}

/// Outcome of a step lock request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockOutcome {
    /// The lock is held; ship the transaction to the data node.
    Granted,
    /// A conflicting lock is *held* by another transaction — retry when the
    /// partition is freed by a commit.
    Blocked,
    /// The scheduler chose to wait (inconsistent with CHAIN's `W`, lost the
    /// `E(q)` comparison, or deadlock predicted) — retry after a fixed delay.
    Delayed,
}

/// Control-node work performed while handling an event, in units the
/// simulator prices with the paper's `ddtime` / `chaintime` / `kwtpgtime`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ControlOps {
    /// Deadlock predictions (C2PL-style cycle tests).
    pub deadlock_tests: u32,
    /// Full-SR-order optimisations (CHAIN's `W`).
    pub chain_opts: u32,
    /// `E(q)` evaluations actually computed (cache misses).
    pub eq_evals: u32,
}

impl ControlOps {
    /// No control work.
    pub const NONE: ControlOps = ControlOps {
        deadlock_tests: 0,
        chain_opts: 0,
        eq_evals: 0,
    };

    /// Component-wise sum.
    pub fn merge(self, other: ControlOps) -> ControlOps {
        ControlOps {
            deadlock_tests: self.deadlock_tests + other.deadlock_tests,
            chain_opts: self.chain_opts + other.chain_opts,
            eq_evals: self.eq_evals + other.eq_evals,
        }
    }
}

/// Result of a commit: which partitions were freed (for waking blocked
/// requests) and the control work performed.
#[derive(Clone, Debug, Default)]
pub struct CommitResult {
    /// Partitions whose locks were released.
    pub freed: Vec<PartitionId>,
    /// Control work.
    pub ops: ControlOps,
}

/// A concurrency-control scheduler for bulk-access transactions.
///
/// The driver must respect the protocol: admit before requesting, request
/// steps in declared order, report progress and step completion for granted
/// steps, and commit only after the last step completes. Protocol violations
/// surface as [`CoreError`]s; scheduling outcomes (blocked/delayed/rejected)
/// are ordinary values.
pub trait Scheduler {
    /// Short identifier ("CHAIN", "K2", "ASL", …) used in reports.
    fn name(&self) -> &str;

    /// A new transaction arrives, declaring all steps and I/O demands.
    fn on_arrive(
        &mut self,
        spec: &TxnSpec,
        now: Tick,
    ) -> Result<(Admission, ControlOps), CoreError>;

    /// The transaction requests the lock for its next step.
    fn on_request(
        &mut self,
        txn: TxnId,
        step: usize,
        now: Tick,
    ) -> Result<(LockOutcome, ControlOps), CoreError>;

    /// A data node finished `amount` of bulk work for `txn`'s current step —
    /// the per-object weight-adjustment message (§3.1).
    fn on_progress(&mut self, txn: TxnId, amount: Work) -> Result<(), CoreError>;

    /// The current step's bulk operation finished entirely.
    fn on_step_complete(&mut self, txn: TxnId, step: usize) -> Result<(), CoreError>;

    /// The transaction commits: release locks, drop it from the WTPG.
    fn on_commit(&mut self, txn: TxnId, now: Tick) -> Result<CommitResult, CoreError>;

    /// The transaction is cancelled mid-flight (user abort, node failure):
    /// release everything it holds and forget it. The paper's model never
    /// aborts a running BAT — "a bulk-operation is too expensive to abort" —
    /// but an embeddable scheduler must survive one; the default
    /// implementation mirrors a commit without requiring the step protocol
    /// to have finished.
    fn on_abort(&mut self, txn: TxnId, now: Tick) -> Result<CommitResult, CoreError>;

    /// Number of admitted, uncommitted transactions.
    fn active_txns(&self) -> usize;

    /// Read access to the WTPG (empty for schedulers that keep none).
    fn wtpg(&self) -> &Wtpg;

    /// Which guarantees a recorded history of this scheduler must satisfy —
    /// drives [`crate::certify::certify_history`]. The default claims the
    /// lock-based baseline guarantees; schedulers with stronger (CHAIN,
    /// K-WTPG) or deliberately absent (NODC) guarantees override it.
    fn certify_mode(&self) -> crate::certify::CertifyMode {
        crate::certify::CertifyMode::General
    }

    /// Cumulative control-plane statistics: §3.4 cache behaviour (`W`
    /// reuses, `E(q)` hits/misses/invalidations, deadlock-prediction cache)
    /// and abort/delay causes. Drivers snapshot this around each call and
    /// emit [`wtpg_obs`] counter events for whatever changed. The default
    /// (all zeros) suits schedulers with nothing to report (NODC).
    fn obs_stats(&self) -> wtpg_obs::ControlStats {
        wtpg_obs::ControlStats::default()
    }
}
