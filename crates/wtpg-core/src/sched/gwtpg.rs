//! G-WTPG — our extension scheduler: CHAIN's *global* strategy without the
//! chain-form restriction.
//!
//! The paper ties global optimisation to chain-form WTPGs because the
//! general problem is NP-hard (Theorem 3). G-WTPG instead computes the full
//! SR-order `W` with the heuristic planner
//! ([`crate::planner::local_search`]) over *any* conflict graph, admits
//! every transaction, and grants exactly like CHAIN: only requests whose
//! implied resolutions agree with `W`.
//!
//! This isolates the paper's Figure-8 question — is CHAIN's hot-set
//! weakness its *strategy* (predicting the future globally) or its
//! *admission constraint* (rejecting non-chains)? The `ablate-gwtpg`
//! harness target answers: with the constraint gone, the global strategy
//! closes most of the gap to K-WTPG.
//!
//! Liveness mirrors CHAIN: `W` totally orders every conflicting pair and is
//! acyclic, so the W-minimal actionable transaction can always proceed.
//! Control cost is charged like CHAIN's (`chaintime` per recomputation); a
//! deployment would price the heuristic planner higher — see DESIGN.md §8.

use std::collections::BTreeSet;

use crate::error::CoreError;
use crate::planner;
use crate::time::Tick;
use crate::txn::{TxnId, TxnSpec};
use crate::work::Work;
use crate::wtpg::Wtpg;

use wtpg_obs::ControlStats;

use super::common::SchedCore;
use super::{Admission, CommitResult, ControlOps, LockOutcome, Scheduler};

/// Default K-conflict admission bound: far looser than chain form (which is
/// K ≤ 2 *and* path-shaped) but keeps the planner's input bounded — an
/// unbounded conflict graph makes the NP-hard optimisation intractable in
/// overload, which is the very reason the paper constrains CHAIN.
pub const DEFAULT_CONFLICT_BOUND: usize = 6;

/// Above this many unresolved conflicting edges the local-search refinement
/// is skipped and the greedy plan used directly.
const LOCAL_SEARCH_EDGE_LIMIT: usize = 64;

/// The G-WTPG scheduler (extension; not in the paper).
#[derive(Clone, Debug)]
pub struct GWtpgScheduler {
    core: SchedCore,
    keeptime: u64,
    bound: usize,
    w_order: Option<BTreeSet<(TxnId, TxnId)>>,
    last_compute: Tick,
    dirty: bool,
    /// Cumulative control-plane statistics (plan reuse, causes).
    stats: ControlStats,
}

impl GWtpgScheduler {
    /// Creates a G-WTPG scheduler with the given control-saving period (ms)
    /// and the default conflict bound.
    pub fn new(keeptime: u64) -> GWtpgScheduler {
        GWtpgScheduler::with_bound(keeptime, DEFAULT_CONFLICT_BOUND)
    }

    /// Creates a G-WTPG scheduler with an explicit K-conflict admission
    /// bound.
    pub fn with_bound(keeptime: u64, bound: usize) -> GWtpgScheduler {
        GWtpgScheduler {
            core: SchedCore::new(),
            keeptime,
            bound,
            w_order: None,
            last_compute: Tick::ZERO,
            dirty: true,
            stats: ControlStats::default(),
        }
    }

    fn ensure_w(&mut self, now: Tick) -> u32 {
        let stale = now.saturating_since(self.last_compute) >= self.keeptime;
        if self.w_order.is_some() && !self.dirty && !stale {
            self.stats.w_reuses += 1;
            return 0;
        }
        self.stats.w_recomputes += 1;
        let plan = if self.core.wtpg.conflict_edges().len() <= LOCAL_SEARCH_EDGE_LIMIT {
            planner::local_search(&self.core.wtpg)
        } else {
            planner::greedy(&self.core.wtpg)
        };
        self.w_order = Some(plan.order);
        self.last_compute = now;
        self.dirty = false;
        1
    }
}

impl Scheduler for GWtpgScheduler {
    fn name(&self) -> &str {
        "G-WTPG"
    }

    fn on_arrive(
        &mut self,
        spec: &TxnSpec,
        _now: Tick,
    ) -> Result<(Admission, ControlOps), CoreError> {
        // No *shape* constraint — only the generous K-conflict bound that
        // keeps the planner's input tractable.
        self.core.arrive(spec)?;
        if !self.core.locks.k_constraint_ok(spec, self.bound) {
            self.core.rollback_arrival(spec.id);
            self.stats.aborts_k_conflict += 1;
            return Ok((Admission::Rejected, ControlOps::NONE));
        }
        self.dirty = true;
        Ok((Admission::Admitted, ControlOps::NONE))
    }

    fn on_request(
        &mut self,
        txn: TxnId,
        step: usize,
        now: Tick,
    ) -> Result<(LockOutcome, ControlOps), CoreError> {
        let s = self.core.request_step(txn, step)?;
        if self.core.locks.is_blocked(txn, s.partition, s.mode) {
            return Ok((LockOutcome::Blocked, ControlOps::NONE));
        }
        let chain_opts = self.ensure_w(now);
        let ops = ControlOps {
            chain_opts,
            ..ControlOps::NONE
        };
        let implied = self.core.implied_resolutions(txn, s.partition, s.mode);
        let Some(w) = self.w_order.as_ref() else {
            return Err(CoreError::Invariant("ensure_w must populate the W order"));
        };
        if implied.iter().any(|&other| !w.contains(&(txn, other))) {
            self.stats.delays_minimality += 1;
            return Ok((LockOutcome::Delayed, ops));
        }
        self.core.grant(txn, step, s, &implied)?;
        Ok((LockOutcome::Granted, ops))
    }

    fn on_progress(&mut self, txn: TxnId, amount: Work) -> Result<(), CoreError> {
        self.core.progress(txn, amount)
    }

    fn on_step_complete(&mut self, txn: TxnId, step: usize) -> Result<(), CoreError> {
        self.core.step_complete(txn, step)
    }

    fn on_commit(&mut self, txn: TxnId, _now: Tick) -> Result<CommitResult, CoreError> {
        let freed = self.core.commit(txn)?;
        self.dirty = true;
        Ok(CommitResult {
            freed,
            ops: ControlOps::NONE,
        })
    }

    fn on_abort(&mut self, txn: TxnId, _now: Tick) -> Result<CommitResult, CoreError> {
        let freed = self.core.abort(txn)?;
        self.dirty = true;
        Ok(CommitResult {
            freed,
            ops: ControlOps::NONE,
        })
    }

    fn active_txns(&self) -> usize {
        self.core.active_txns()
    }

    fn wtpg(&self) -> &Wtpg {
        self.core.wtpg()
    }

    fn obs_stats(&self) -> ControlStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::StepSpec;

    fn t(id: u64, steps: Vec<StepSpec>) -> TxnSpec {
        TxnSpec::new(TxnId(id), steps)
    }

    #[test]
    fn admits_non_chain_wtpgs() {
        let mut s = GWtpgScheduler::new(5000);
        // The star CHAIN rejects: T1 conflicts with T2, T3 and T4.
        s.on_arrive(
            &t(
                1,
                vec![
                    StepSpec::write(0, 1.0),
                    StepSpec::write(1, 1.0),
                    StepSpec::write(2, 1.0),
                ],
            ),
            Tick(0),
        )
        .unwrap();
        for (id, p) in [(2u64, 0u32), (3, 1), (4, 2)] {
            let (adm, _) = s
                .on_arrive(&t(id, vec![StepSpec::write(p, 1.0)]), Tick(0))
                .unwrap();
            assert_eq!(adm, Admission::Admitted);
        }
        assert_eq!(s.active_txns(), 4);
    }

    #[test]
    fn follows_heuristic_w_like_chain_follows_its_w() {
        let mut s = GWtpgScheduler::new(5000);
        // Figure 1: should behave exactly like CHAIN (chain-form input).
        let t1 = t(
            1,
            vec![
                StepSpec::read(0, 1.0),
                StepSpec::read(1, 3.0),
                StepSpec::write(0, 1.0),
            ],
        );
        let t2 = t(2, vec![StepSpec::read(2, 1.0), StepSpec::write(0, 1.0)]);
        let t3 = t(3, vec![StepSpec::write(2, 1.0), StepSpec::read(3, 3.0)]);
        for spec in [&t1, &t2, &t3] {
            s.on_arrive(spec, Tick(0)).unwrap();
        }
        // Example 3.3: T2's first step must be delayed (W = {T1→T2, T3→T2}).
        assert_eq!(
            s.on_request(TxnId(2), 0, Tick(1)).unwrap().0,
            LockOutcome::Delayed
        );
        assert_eq!(
            s.on_request(TxnId(3), 0, Tick(1)).unwrap().0,
            LockOutcome::Granted
        );
    }

    #[test]
    fn completes_a_hot_star_without_deadlock() {
        let mut s = GWtpgScheduler::new(5000);
        let specs: Vec<TxnSpec> = (1..=5u64)
            .map(|id| t(id, vec![StepSpec::write(0, 1.0)]))
            .collect();
        for spec in &specs {
            s.on_arrive(spec, Tick(0)).unwrap();
        }
        let mut done = 0;
        let mut rounds = 0;
        let mut pending: Vec<&TxnSpec> = specs.iter().collect();
        let mut now = Tick(1);
        while done < specs.len() {
            rounds += 1;
            assert!(rounds < 100, "G-WTPG stalled");
            let mut next = Vec::new();
            for spec in pending {
                now += 1;
                match s.on_request(spec.id, 0, now).unwrap().0 {
                    LockOutcome::Granted => {
                        s.on_progress(spec.id, Work::from_objects(1)).unwrap();
                        s.on_step_complete(spec.id, 0).unwrap();
                        s.on_commit(spec.id, now).unwrap();
                        done += 1;
                    }
                    _ => next.push(spec),
                }
            }
            pending = next;
        }
        assert!(s.wtpg().is_empty());
    }
}
