//! NODC — "NO Data Contention" (paper §4.1): grants any lock at any time.
//!
//! Not a correct concurrency control at all; it exists to expose the pure
//! resource-contention ceiling of the machine, against which the useful
//! resource utilisation of the real schedulers is measured (Figure 7's
//! discussion). Histories it produces are generally *not* serializable.

use std::collections::BTreeMap;

use crate::error::CoreError;
use crate::time::Tick;
use crate::txn::{TxnId, TxnSpec};
use crate::work::Work;
use crate::wtpg::Wtpg;

use super::{Admission, CommitResult, ControlOps, LockOutcome, Scheduler};

/// The no-data-contention pseudo-scheduler.
#[derive(Clone, Debug, Default)]
pub struct NodcScheduler {
    /// Next-step bookkeeping only; no locks, no WTPG.
    txns: BTreeMap<TxnId, (usize, usize)>, // txn → (next step, total steps)
    empty_wtpg: Wtpg,
}

impl NodcScheduler {
    /// Fresh scheduler.
    pub fn new() -> NodcScheduler {
        NodcScheduler::default()
    }
}

impl Scheduler for NodcScheduler {
    fn name(&self) -> &str {
        "NODC"
    }

    fn on_arrive(
        &mut self,
        spec: &TxnSpec,
        _now: Tick,
    ) -> Result<(Admission, ControlOps), CoreError> {
        if self.txns.contains_key(&spec.id) {
            return Err(CoreError::DuplicateTxn(spec.id));
        }
        self.txns.insert(spec.id, (0, spec.len()));
        Ok((Admission::Admitted, ControlOps::NONE))
    }

    fn on_request(
        &mut self,
        txn: TxnId,
        step: usize,
        _now: Tick,
    ) -> Result<(LockOutcome, ControlOps), CoreError> {
        let (next, total) = self.txns.get_mut(&txn).ok_or(CoreError::UnknownTxn(txn))?;
        if step >= *total {
            return Err(CoreError::BadStep { txn, step });
        }
        if step != *next {
            return Err(CoreError::OutOfOrder {
                txn,
                expected: *next,
                got: step,
            });
        }
        *next = step + 1;
        Ok((LockOutcome::Granted, ControlOps::NONE))
    }

    fn on_progress(&mut self, txn: TxnId, _amount: Work) -> Result<(), CoreError> {
        self.txns
            .contains_key(&txn)
            .then_some(())
            .ok_or(CoreError::UnknownTxn(txn))
    }

    fn on_step_complete(&mut self, txn: TxnId, _step: usize) -> Result<(), CoreError> {
        self.txns
            .contains_key(&txn)
            .then_some(())
            .ok_or(CoreError::UnknownTxn(txn))
    }

    fn on_commit(&mut self, txn: TxnId, _now: Tick) -> Result<CommitResult, CoreError> {
        self.txns.remove(&txn).ok_or(CoreError::UnknownTxn(txn))?;
        Ok(CommitResult::default())
    }

    fn on_abort(&mut self, txn: TxnId, _now: Tick) -> Result<CommitResult, CoreError> {
        self.txns.remove(&txn).ok_or(CoreError::UnknownTxn(txn))?;
        Ok(CommitResult::default())
    }

    fn active_txns(&self) -> usize {
        self.txns.len()
    }

    fn wtpg(&self) -> &Wtpg {
        &self.empty_wtpg
    }

    /// NODC deliberately violates exclusion and serializability — only the
    /// protocol-shape checks apply.
    fn certify_mode(&self) -> crate::certify::CertifyMode {
        crate::certify::CertifyMode::Exempt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::StepSpec;

    #[test]
    fn everything_is_granted_immediately() {
        let mut s = NodcScheduler::new();
        for id in 1..=10u64 {
            let spec = TxnSpec::new(TxnId(id), vec![StepSpec::write(0, 1.0)]);
            assert_eq!(s.on_arrive(&spec, Tick(0)).unwrap().0, Admission::Admitted);
            assert_eq!(
                s.on_request(TxnId(id), 0, Tick(0)).unwrap().0,
                LockOutcome::Granted
            );
        }
        assert_eq!(s.active_txns(), 10);
        for id in 1..=10u64 {
            s.on_progress(TxnId(id), Work::from_objects(1)).unwrap();
            s.on_step_complete(TxnId(id), 0).unwrap();
            s.on_commit(TxnId(id), Tick(1)).unwrap();
        }
        assert_eq!(s.active_txns(), 0);
    }

    #[test]
    fn still_enforces_driver_protocol() {
        let mut s = NodcScheduler::new();
        let spec = TxnSpec::new(
            TxnId(1),
            vec![StepSpec::write(0, 1.0), StepSpec::write(1, 1.0)],
        );
        s.on_arrive(&spec, Tick(0)).unwrap();
        assert!(matches!(
            s.on_request(TxnId(1), 1, Tick(0)),
            Err(CoreError::OutOfOrder { .. })
        ));
        assert!(matches!(
            s.on_commit(TxnId(9), Tick(0)),
            Err(CoreError::UnknownTxn(_))
        ));
    }
}
