//! Atomic static locking (paper §4.1, after Tay): a transaction starts iff
//! it can take *every* declared lock at its start, atomically; otherwise it
//! is turned away and resubmitted later. Admitted transactions never block —
//! there are no chains of blocking and no deadlocks — but whole-transaction
//! admission is very conservative, which is exactly what Experiment 2's hot
//! set punishes ("ASL keeps a WTPG to be a set of isolated points").

use wtpg_obs::ControlStats;

use crate::error::CoreError;
use crate::time::Tick;
use crate::txn::{TxnId, TxnSpec};
use crate::work::Work;
use crate::wtpg::Wtpg;

use super::common::SchedCore;
use super::{Admission, CommitResult, ControlOps, LockOutcome, Scheduler};

/// The ASL scheduler.
#[derive(Clone, Debug, Default)]
pub struct AslScheduler {
    core: SchedCore,
    /// Cumulative control-plane statistics (lock-denied rejections).
    stats: ControlStats,
}

impl AslScheduler {
    /// Fresh scheduler.
    pub fn new() -> AslScheduler {
        AslScheduler::default()
    }
}

impl Scheduler for AslScheduler {
    fn name(&self) -> &str {
        "ASL"
    }

    fn on_arrive(
        &mut self,
        spec: &TxnSpec,
        _now: Tick,
    ) -> Result<(Admission, ControlOps), CoreError> {
        // Test-and-grab must be atomic: check against held locks only, then
        // take everything. Other admitted transactions hold all their locks
        // already, so declarations never linger in the table under ASL.
        if !self.core.locks.can_lock_all(spec) {
            self.stats.aborts_lock_denied += 1;
            return Ok((Admission::Rejected, ControlOps::NONE));
        }
        self.core.arrive(spec)?;
        debug_assert!(
            self.core.wtpg.conflict_partners(spec.id).is_empty()
                && self.core.wtpg.precedence_predecessors(spec.id).is_empty(),
            "ASL admission implies an isolated WTPG node"
        );
        self.core.locks.grant_all(spec)?;
        Ok((Admission::Admitted, ControlOps::NONE))
    }

    fn on_request(
        &mut self,
        txn: TxnId,
        step: usize,
        _now: Tick,
    ) -> Result<(LockOutcome, ControlOps), CoreError> {
        // All locks are already held; this only advances execution state.
        let s = self.core.request_step(txn, step)?;
        debug_assert!(!self.core.locks.is_blocked(txn, s.partition, s.mode));
        let a = self
            .core
            .txns
            .get_mut(&txn)
            .ok_or(CoreError::UnknownTxn(txn))?;
        a.current = Some(step);
        a.next_step = step + 1;
        a.declared_progress = Work::ZERO;
        Ok((LockOutcome::Granted, ControlOps::NONE))
    }

    fn on_progress(&mut self, txn: TxnId, amount: Work) -> Result<(), CoreError> {
        self.core.progress(txn, amount)
    }

    fn on_step_complete(&mut self, txn: TxnId, step: usize) -> Result<(), CoreError> {
        self.core.step_complete(txn, step)
    }

    fn on_commit(&mut self, txn: TxnId, _now: Tick) -> Result<CommitResult, CoreError> {
        let freed = self.core.commit(txn)?;
        Ok(CommitResult {
            freed,
            ops: ControlOps::NONE,
        })
    }

    fn on_abort(&mut self, txn: TxnId, _now: Tick) -> Result<CommitResult, CoreError> {
        let freed = self.core.abort(txn)?;
        Ok(CommitResult {
            freed,
            ops: ControlOps::NONE,
        })
    }

    fn active_txns(&self) -> usize {
        self.core.active_txns()
    }

    fn wtpg(&self) -> &Wtpg {
        self.core.wtpg()
    }

    fn obs_stats(&self) -> ControlStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::StepSpec;

    fn t(id: u64, steps: Vec<StepSpec>) -> TxnSpec {
        TxnSpec::new(TxnId(id), steps)
    }

    #[test]
    fn admits_when_all_locks_free() {
        let mut s = AslScheduler::new();
        let a = t(1, vec![StepSpec::read(0, 1.0), StepSpec::write(1, 2.0)]);
        assert_eq!(s.on_arrive(&a, Tick(0)).unwrap().0, Admission::Admitted);
        assert_eq!(
            s.on_request(TxnId(1), 0, Tick(0)).unwrap().0,
            LockOutcome::Granted
        );
    }

    #[test]
    fn rejects_on_any_conflicting_held_lock() {
        let mut s = AslScheduler::new();
        s.on_arrive(&t(1, vec![StepSpec::write(0, 1.0)]), Tick(0))
            .unwrap();
        // T2 needs the same partition exclusively: turned away entirely.
        let b = t(2, vec![StepSpec::read(5, 1.0), StepSpec::write(0, 1.0)]);
        assert_eq!(s.on_arrive(&b, Tick(1)).unwrap().0, Admission::Rejected);
        assert_eq!(s.active_txns(), 1);
        assert!(!s.wtpg().contains(TxnId(2)));
    }

    #[test]
    fn shared_readers_coexist() {
        let mut s = AslScheduler::new();
        s.on_arrive(&t(1, vec![StepSpec::read(0, 1.0)]), Tick(0))
            .unwrap();
        assert_eq!(
            s.on_arrive(&t(2, vec![StepSpec::read(0, 1.0)]), Tick(0))
                .unwrap()
                .0,
            Admission::Admitted
        );
        assert_eq!(s.active_txns(), 2);
    }

    #[test]
    fn wtpg_stays_isolated_points() {
        let mut s = AslScheduler::new();
        s.on_arrive(&t(1, vec![StepSpec::write(0, 1.0)]), Tick(0))
            .unwrap();
        s.on_arrive(&t(2, vec![StepSpec::write(1, 1.0)]), Tick(0))
            .unwrap();
        s.on_arrive(&t(3, vec![StepSpec::read(2, 1.0)]), Tick(0))
            .unwrap();
        let g = s.wtpg();
        for id in [1u64, 2, 3] {
            assert!(g.conflict_partners(TxnId(id)).is_empty());
            assert!(g.precedence_successors(TxnId(id)).is_empty());
        }
    }

    #[test]
    fn full_lifecycle_and_readmission() {
        let mut s = AslScheduler::new();
        let a = t(1, vec![StepSpec::write(0, 1.0)]);
        let b = t(2, vec![StepSpec::write(0, 1.0)]);
        s.on_arrive(&a, Tick(0)).unwrap();
        assert_eq!(s.on_arrive(&b, Tick(0)).unwrap().0, Admission::Rejected);
        s.on_request(TxnId(1), 0, Tick(0)).unwrap();
        s.on_progress(TxnId(1), Work::from_objects(1)).unwrap();
        s.on_step_complete(TxnId(1), 0).unwrap();
        let res = s.on_commit(TxnId(1), Tick(3)).unwrap();
        assert_eq!(res.freed.len(), 1);
        assert_eq!(s.on_arrive(&b, Tick(4)).unwrap().0, Admission::Admitted);
    }
}
