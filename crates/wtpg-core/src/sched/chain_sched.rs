//! CHAIN — the Chain-WTPG scheduler (paper §3.2, CC1).
//!
//! Global optimisation: keep the WTPG chain-form, compute the full SR-order
//! `W` whose resolution gives the shortest critical path (per path component,
//! with already-resolved edges forced), and grant a lock request only when
//! the resolutions it implies are consistent with `W`. Transactions that
//! would break chain form are aborted at start (before doing any work) and
//! resubmitted by the driver.
//!
//! Control saving (§3.4): `W` is recomputed only when the WTPG's structural
//! [`version`](Wtpg::version) moved past the one `W` was computed at — a
//! transaction started or committed, or a foreign precedence edge appeared —
//! or when `keeptime` has elapsed (the `T0` weights drift as objects are
//! processed, so a periodic refresh keeps `W` honest even without membership
//! changes). The scheduler's own grants resolve edges *consistent with `W`
//! by construction*, so after a grant the cached order is re-pinned to the
//! post-grant version instead of being recomputed.

use std::collections::BTreeSet;

use wtpg_obs::ControlStats;

use crate::chain::{chain_components, threshold};
use crate::error::CoreError;
use crate::time::Tick;
use crate::txn::{TxnId, TxnSpec};
use crate::work::Work;
use crate::wtpg::{Dir, Wtpg};

use super::common::SchedCore;
use super::{Admission, CommitResult, ControlOps, LockOutcome, Scheduler};

/// The CHAIN scheduler.
#[derive(Clone, Debug)]
pub struct ChainScheduler {
    core: SchedCore,
    /// Control-saving period, in ms (paper Table 1 `keeptime`).
    keeptime: u64,
    /// The cached full SR-order: the set of oriented pairs `(from, to)`.
    w_order: Option<BTreeSet<(TxnId, TxnId)>>,
    last_compute: Tick,
    /// WTPG structural version `w_order` is valid for.
    w_version: u64,
    /// Cumulative control-plane statistics (recomputes, reuses, causes).
    stats: ControlStats,
}

impl ChainScheduler {
    /// Creates a CHAIN scheduler with the given control-saving period (ms).
    pub fn new(keeptime: u64) -> ChainScheduler {
        ChainScheduler {
            core: SchedCore::new(),
            keeptime,
            w_order: None,
            last_compute: Tick::ZERO,
            w_version: 0,
            stats: ControlStats::default(),
        }
    }

    /// Recomputes `W` if the §3.4 conditions require it; returns the number
    /// of optimisations performed (0 or 1).
    fn ensure_w(&mut self, now: Tick) -> Result<u32, CoreError> {
        let stale = now.saturating_since(self.last_compute) >= self.keeptime;
        if self.w_order.is_some() && self.w_version == self.core.wtpg.version() && !stale {
            self.stats.w_reuses += 1;
            return Ok(0);
        }
        self.stats.w_recomputes += 1;
        let comps = chain_components(&self.core.wtpg)
            .map_err(|_| CoreError::Invariant("CHAIN admission must keep the WTPG chain-form"))?;
        let mut order = BTreeSet::new();
        for comp in comps {
            let sol = threshold::solve(&comp.problem);
            for (i, &dir) in sol.orient.iter().enumerate() {
                // lint:allow(panic-safety) orient has nodes.len()-1 entries, i+1 is in bounds
                let (x, y) = (comp.nodes[i], comp.nodes[i + 1]);
                match dir {
                    Dir::Down => order.insert((x, y)),
                    Dir::Up => order.insert((y, x)),
                };
            }
        }
        self.w_order = Some(order);
        self.last_compute = now;
        self.w_version = self.core.wtpg.version();
        Ok(1)
    }

    /// The most recently computed `W`, for inspection by examples/tests.
    pub fn current_w(&self) -> Option<&BTreeSet<(TxnId, TxnId)>> {
        self.w_order.as_ref()
    }
}

impl Scheduler for ChainScheduler {
    fn name(&self) -> &str {
        "CHAIN"
    }

    fn on_arrive(
        &mut self,
        spec: &TxnSpec,
        _now: Tick,
    ) -> Result<(Admission, ControlOps), CoreError> {
        self.core.arrive(spec)?;
        if chain_components(&self.core.wtpg).is_err() {
            self.core.rollback_arrival(spec.id);
            self.stats.aborts_non_chain += 1;
            return Ok((Admission::Rejected, ControlOps::NONE));
        }
        // The arrival bumped the WTPG version; w_order is now stale.
        Ok((Admission::Admitted, ControlOps::NONE))
    }

    fn on_request(
        &mut self,
        txn: TxnId,
        step: usize,
        now: Tick,
    ) -> Result<(LockOutcome, ControlOps), CoreError> {
        let s = self.core.request_step(txn, step)?;
        if self.core.locks.is_blocked(txn, s.partition, s.mode) {
            return Ok((LockOutcome::Blocked, ControlOps::NONE));
        }
        let chain_opts = self.ensure_w(now)?;
        let ops = ControlOps {
            chain_opts,
            ..ControlOps::NONE
        };
        let implied = self.core.implied_resolutions(txn, s.partition, s.mode);
        let Some(w) = self.w_order.as_ref() else {
            return Err(CoreError::Invariant("ensure_w must populate the W order"));
        };
        // Step 3 of CC1: the grant must not make the schedule inconsistent
        // with W — every implied resolution txn → other must agree with it.
        if implied.iter().any(|&other| !w.contains(&(txn, other))) {
            self.stats.delays_minimality += 1;
            return Ok((LockOutcome::Delayed, ops));
        }
        self.core.grant(txn, step, s, &implied)?;
        // The grant's resolutions all agree with W, so the cached order is
        // still the optimum: re-pin it to the post-grant version (§3.4 reuse).
        self.w_version = self.core.wtpg.version();
        Ok((LockOutcome::Granted, ops))
    }

    fn on_progress(&mut self, txn: TxnId, amount: Work) -> Result<(), CoreError> {
        self.core.progress(txn, amount)
    }

    fn on_step_complete(&mut self, txn: TxnId, step: usize) -> Result<(), CoreError> {
        self.core.step_complete(txn, step)
    }

    fn on_commit(&mut self, txn: TxnId, _now: Tick) -> Result<CommitResult, CoreError> {
        // The removal bumps the WTPG version, invalidating w_order.
        let freed = self.core.commit(txn)?;
        Ok(CommitResult {
            freed,
            ops: ControlOps::NONE,
        })
    }

    fn on_abort(&mut self, txn: TxnId, _now: Tick) -> Result<CommitResult, CoreError> {
        let freed = self.core.abort(txn)?;
        Ok(CommitResult {
            freed,
            ops: ControlOps::NONE,
        })
    }

    fn active_txns(&self) -> usize {
        self.core.active_txns()
    }

    fn wtpg(&self) -> &Wtpg {
        self.core.wtpg()
    }

    fn certify_mode(&self) -> crate::certify::CertifyMode {
        crate::certify::CertifyMode::Chain
    }

    fn obs_stats(&self) -> ControlStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::StepSpec;

    fn t(id: u64, steps: Vec<StepSpec>) -> TxnSpec {
        TxnSpec::new(TxnId(id), steps)
    }

    /// The paper's Figure 1 / Example 3.3 scenario: with
    /// W = {T1→T2, T3→T2}, CHAIN delays T2's first step r2(C:1) because
    /// granting it would resolve (T2,T3) into T2→T3, inconsistent with W.
    #[test]
    fn example_3_3_delays_inconsistent_request() {
        let mut s = ChainScheduler::new(5000);
        // A=P0, B=P1, C=P2, D=P3, as in Figure 1.
        let t1 = t(
            1,
            vec![
                StepSpec::read(0, 1.0),
                StepSpec::read(1, 3.0),
                StepSpec::write(0, 1.0),
            ],
        );
        let t2 = t(2, vec![StepSpec::read(2, 1.0), StepSpec::write(0, 1.0)]);
        let t3 = t(3, vec![StepSpec::write(2, 1.0), StepSpec::read(3, 3.0)]);
        assert_eq!(s.on_arrive(&t1, Tick(0)).unwrap().0, Admission::Admitted);
        assert_eq!(s.on_arrive(&t2, Tick(0)).unwrap().0, Admission::Admitted);
        assert_eq!(s.on_arrive(&t3, Tick(0)).unwrap().0, Admission::Admitted);
        let (out, ops) = s.on_request(TxnId(2), 0, Tick(1)).unwrap();
        assert_eq!(out, LockOutcome::Delayed);
        assert_eq!(ops.chain_opts, 1);
        // W must orient T3 before T2 and T1 before T2.
        let w = s.current_w().unwrap();
        assert!(w.contains(&(TxnId(1), TxnId(2))));
        assert!(w.contains(&(TxnId(3), TxnId(2))));
        // T3's conflicting step is consistent with W and goes through.
        assert_eq!(
            s.on_request(TxnId(3), 0, Tick(1)).unwrap().0,
            LockOutcome::Granted
        );
        // T1's first step too.
        assert_eq!(
            s.on_request(TxnId(1), 0, Tick(1)).unwrap().0,
            LockOutcome::Granted
        );
    }

    #[test]
    fn rejects_chain_form_violation() {
        let mut s = ChainScheduler::new(5000);
        s.on_arrive(&t(1, vec![StepSpec::write(0, 1.0)]), Tick(0))
            .unwrap();
        s.on_arrive(
            &t(2, vec![StepSpec::write(0, 1.0), StepSpec::write(1, 1.0)]),
            Tick(0),
        )
        .unwrap();
        s.on_arrive(&t(3, vec![StepSpec::write(1, 1.0)]), Tick(0))
            .unwrap();
        // T4 writing both partition 0 and 1 would give T2 conflict degree > 2.
        let (adm, _) = s
            .on_arrive(
                &t(4, vec![StepSpec::write(0, 1.0), StepSpec::write(1, 1.0)]),
                Tick(0),
            )
            .unwrap();
        assert_eq!(adm, Admission::Rejected);
        assert_eq!(s.active_txns(), 3);
    }

    #[test]
    fn control_saving_reuses_w_within_keeptime() {
        let mut s = ChainScheduler::new(5000);
        let t1 = t(1, vec![StepSpec::write(0, 5.0), StepSpec::write(1, 5.0)]);
        let t2 = t(2, vec![StepSpec::write(2, 5.0)]);
        s.on_arrive(&t1, Tick(0)).unwrap();
        s.on_arrive(&t2, Tick(0)).unwrap();
        let (_, ops) = s.on_request(TxnId(1), 0, Tick(10)).unwrap();
        assert_eq!(ops.chain_opts, 1); // first computation
        let (_, ops) = s.on_request(TxnId(2), 0, Tick(20)).unwrap();
        assert_eq!(ops.chain_opts, 0); // reused: no start/commit, within keeptime
                                       // Past keeptime: recompute.
        s.on_progress(TxnId(1), Work::from_objects(1)).unwrap();
        s.on_step_complete(TxnId(1), 0).unwrap();
        let (_, ops) = s.on_request(TxnId(1), 1, Tick(6000)).unwrap();
        assert_eq!(ops.chain_opts, 1);
    }

    #[test]
    fn commit_invalidates_w() {
        let mut s = ChainScheduler::new(1_000_000);
        let t1 = t(1, vec![StepSpec::write(0, 1.0)]);
        let t2 = t(2, vec![StepSpec::write(1, 1.0)]);
        s.on_arrive(&t1, Tick(0)).unwrap();
        s.on_arrive(&t2, Tick(0)).unwrap();
        let (_, ops) = s.on_request(TxnId(1), 0, Tick(1)).unwrap();
        assert_eq!(ops.chain_opts, 1);
        s.on_progress(TxnId(1), Work::from_objects(1)).unwrap();
        s.on_step_complete(TxnId(1), 0).unwrap();
        s.on_commit(TxnId(1), Tick(2)).unwrap();
        let (_, ops) = s.on_request(TxnId(2), 0, Tick(3)).unwrap();
        assert_eq!(ops.chain_opts, 1); // commit forced a recomputation
    }

    #[test]
    fn follows_w_to_completion_without_deadlock() {
        let mut s = ChainScheduler::new(5000);
        let t1 = t(
            1,
            vec![
                StepSpec::read(0, 1.0),
                StepSpec::read(1, 3.0),
                StepSpec::write(0, 1.0),
            ],
        );
        let t2 = t(2, vec![StepSpec::read(2, 1.0), StepSpec::write(0, 1.0)]);
        let t3 = t(3, vec![StepSpec::write(2, 1.0), StepSpec::read(3, 3.0)]);
        for spec in [&t1, &t2, &t3] {
            s.on_arrive(spec, Tick(0)).unwrap();
        }
        // Drive to completion with a simple retry loop; every transaction
        // must finish (no deadlock, no starvation in this small scenario).
        let mut pending: Vec<TxnSpec> = vec![t1, t2, t3];
        let mut now = Tick(1);
        let mut guard = 0;
        while !pending.is_empty() {
            guard += 1;
            assert!(guard < 100, "scenario did not converge");
            let mut next_round = Vec::new();
            for spec in pending {
                let id = spec.id;
                let step = self_next_step(&s, id);
                match s.on_request(id, step, now).unwrap().0 {
                    LockOutcome::Granted => {
                        let cost = spec.steps()[step].actual_cost;
                        s.on_progress(id, cost).unwrap();
                        s.on_step_complete(id, step).unwrap();
                        if step + 1 == spec.len() {
                            s.on_commit(id, now).unwrap();
                        } else {
                            next_round.push(spec);
                        }
                    }
                    _ => next_round.push(spec),
                }
                now += 1;
            }
            pending = next_round;
        }
        assert_eq!(s.active_txns(), 0);
    }

    fn self_next_step(s: &ChainScheduler, id: TxnId) -> usize {
        s.core.txns[&id].next_step
    }
}
