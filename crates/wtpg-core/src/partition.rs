//! Partition catalog and shared-nothing placement.
//!
//! The paper assumes every relation is range-partitioned across all nodes
//! (§2.1), each partition is the locking granule (§2.2), and in the
//! simulation model a partition lives on the data node with
//! `node = partition mod NumNodes` (§4.1, Figure 5).

use crate::work::Work;

/// How bulk data is spread over the machine's data nodes.
///
/// The paper's evaluation uses [`Placement::Modulo`] (range partitioning,
/// `node = partition mod NumNodes`), which minimises messages but leaves a
/// single BAT's load on one node. Its §4.3 discussion proposes the
/// alternative this crate implements as an extension:
/// [`Placement::Declustered`] spreads every partition over *all* nodes, so
/// one bulk operation runs on the whole machine in parallel
/// (intra-transaction parallelism) at the price of message overhead the
/// paper's short-transaction service cannot afford.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Placement {
    /// One partition per node: `node = partition mod NumNodes` (§4.1).
    #[default]
    Modulo,
    /// Every partition striped across all nodes; a step's work fans out to
    /// every node and the step finishes when all stripes do.
    Declustered,
}

/// Identifier of one partition — the paper's locking granule. A lock on a
/// partition acts as a predicate lock over its range.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PartitionId(pub u32);

impl std::fmt::Display for PartitionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// The partition catalog: sizes (in objects) of every partition, plus the
/// machine's placement rule.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Catalog {
    sizes: Vec<Work>,
    num_nodes: u32,
    #[cfg_attr(feature = "serde", serde(default))]
    placement: Placement,
}

impl Catalog {
    /// Builds a catalog of `sizes.len()` partitions over `num_nodes` data
    /// nodes with the paper's modulo placement.
    ///
    /// # Panics
    /// Panics if `num_nodes == 0`.
    pub fn new(sizes: Vec<Work>, num_nodes: u32) -> Catalog {
        assert!(
            num_nodes > 0,
            "a shared-nothing machine needs at least one node"
        );
        Catalog {
            sizes,
            num_nodes,
            placement: Placement::Modulo,
        }
    }

    /// Returns this catalog with a different placement policy.
    pub fn with_placement(mut self, placement: Placement) -> Catalog {
        self.placement = placement;
        self
    }

    /// The placement policy in force.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Builds a catalog of `num_parts` uniform partitions of `size_objects`
    /// objects each — the shape of the paper's Experiment 1.
    pub fn uniform(num_parts: u32, size_objects: u64, num_nodes: u32) -> Catalog {
        Catalog::new(
            vec![Work::from_objects(size_objects); num_parts as usize],
            num_nodes,
        )
    }

    /// Number of partitions (`NumParts`).
    pub fn num_parts(&self) -> u32 {
        self.sizes.len() as u32
    }

    /// Number of data-processing nodes (`NumNodes`).
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Size of partition `p`, in work units.
    ///
    /// # Panics
    /// Panics if `p` is out of range.
    pub fn size(&self, p: PartitionId) -> Work {
        self.sizes[p.0 as usize]
    }

    /// True if `p` names a partition of this catalog.
    pub fn contains(&self, p: PartitionId) -> bool {
        (p.0 as usize) < self.sizes.len()
    }

    /// The data node storing partition `p`: `node = partition mod NumNodes`
    /// (paper §4.1).
    pub fn node_of(&self, p: PartitionId) -> u32 {
        p.0 % self.num_nodes
    }

    /// Iterator over all partition ids.
    pub fn partitions(&self) -> impl Iterator<Item = PartitionId> + '_ {
        (0..self.num_parts()).map(PartitionId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_catalog() {
        let c = Catalog::uniform(16, 5, 8);
        assert_eq!(c.num_parts(), 16);
        assert_eq!(c.num_nodes(), 8);
        assert_eq!(c.size(PartitionId(3)), Work::from_objects(5));
        assert!(c.contains(PartitionId(15)));
        assert!(!c.contains(PartitionId(16)));
    }

    #[test]
    fn modulo_placement() {
        let c = Catalog::uniform(16, 5, 8);
        assert_eq!(c.node_of(PartitionId(0)), 0);
        assert_eq!(c.node_of(PartitionId(7)), 7);
        assert_eq!(c.node_of(PartitionId(8)), 0);
        assert_eq!(c.node_of(PartitionId(15)), 7);
    }

    #[test]
    fn heterogeneous_sizes() {
        // Experiment 2: 8 read-only partitions of size 5 + hot partitions of size 1.
        let mut sizes = vec![Work::from_objects(5); 8];
        sizes.extend(vec![Work::from_objects(1); 4]);
        let c = Catalog::new(sizes, 8);
        assert_eq!(c.num_parts(), 12);
        assert_eq!(c.size(PartitionId(0)), Work::from_objects(5));
        assert_eq!(c.size(PartitionId(8)), Work::from_objects(1));
    }

    #[test]
    fn partitions_iterator_covers_all() {
        let c = Catalog::uniform(4, 1, 2);
        let ids: Vec<u32> = c.partitions().map(|p| p.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = Catalog::uniform(4, 1, 0);
    }

    #[test]
    fn placement_defaults_to_modulo() {
        let c = Catalog::uniform(4, 1, 2);
        assert_eq!(c.placement(), Placement::Modulo);
        let d = c.with_placement(Placement::Declustered);
        assert_eq!(d.placement(), Placement::Declustered);
        // node_of stays meaningful (the home node) under either policy.
        assert_eq!(d.node_of(PartitionId(3)), 1);
    }
}
