//! The K-WTPG contention estimator `E(q)` (paper §3.3).
//!
//! `E(q)` scores a lock request `q` of transaction `T` by the critical path
//! the *present* schedule would have if `q` were granted:
//!
//! 1. Overlay the WTPG with the resolutions granting `q` implies
//!    (`T → T'` for every `T'` holding a conflicting declaration on the
//!    granule). A contradiction or cycle is a (future) deadlock: `E(q) = ∞`.
//! 2. Resolve every conflicting edge `(Ti, Tj)` with `Ti ∈ before(T)` and
//!    `Tj ∈ after(T)` into `Ti → Tj` — those orders are implied by
//!    transitivity through `T`.
//! 3. Delete the remaining conflicting edges and return the length of the
//!    critical path from `T0` to `Tf`.
//!
//! Complexity is `O(max(n, e))`: one DFS for the before/after sets plus one
//! topological pass for the critical path.

use crate::txn::TxnId;
use crate::work::Work;
use crate::wtpg::Wtpg;

/// The value of `E(q)`: either a finite critical-path length or ∞ (deadlock).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EqValue {
    /// Granting `q` keeps the schedule deadlock-free; the payload is the
    /// estimated critical path.
    Finite(Work),
    /// Granting `q` would (eventually) deadlock.
    Infinite,
}

impl EqValue {
    /// True for the ∞ case.
    pub fn is_infinite(self) -> bool {
        matches!(self, EqValue::Infinite)
    }
}

impl PartialOrd for EqValue {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EqValue {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use EqValue::*;
        match (self, other) {
            (Finite(a), Finite(b)) => a.cmp(b),
            (Finite(_), Infinite) => std::cmp::Ordering::Less,
            (Infinite, Finite(_)) => std::cmp::Ordering::Greater,
            (Infinite, Infinite) => std::cmp::Ordering::Equal,
        }
    }
}

/// Computes `E(q)` for a hypothetical grant to `txn` that would resolve the
/// conflicting edges listed in `implied` as `txn → other`.
///
/// The WTPG is not mutated — the overlay is applied to a clone (live WTPGs
/// hold only the active transactions, so the clone is small).
pub fn eq_estimate(wtpg: &Wtpg, txn: TxnId, implied: &[TxnId]) -> EqValue {
    let mut overlay = wtpg.clone();
    // Step 1: apply the implied resolutions; any of them closing a directed
    // cycle (including contradicting an existing precedence edge) means the
    // grant would deadlock.
    for &other in implied {
        if other == txn || !overlay.contains(other) {
            continue;
        }
        if overlay.would_deadlock(txn, other) {
            return EqValue::Infinite;
        }
        if overlay.resolve(txn, other).is_err() {
            return EqValue::Infinite;
        }
    }
    // Step 2: orders implied by transitivity through txn.
    let before = overlay.before(txn);
    let after = overlay.after(txn);
    for (a, b, _, _) in overlay.conflict_edges() {
        let (from, to) = if before.contains(&a) && after.contains(&b) {
            (a, b)
        } else if before.contains(&b) && after.contains(&a) {
            (b, a)
        } else {
            continue;
        };
        if overlay.resolve(from, to).is_err() {
            return EqValue::Infinite;
        }
    }
    // Step 3: remaining conflicting edges are ignored by critical_path().
    match overlay.critical_path() {
        Some(cp) => EqValue::Finite(cp),
        None => EqValue::Infinite,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(o: u64) -> Work {
        Work::from_objects(o)
    }

    /// The paper's Figure 4-(a): precedence T4→T5 (weight 0), conflicts
    /// (T4,T6) with w(T4→T6)=10, w(T6→T4)=1, and (T5,T6) with w(T5→T6)=3,
    /// w(T6→T5)=1. All `w(T0→Ti) = 0` as the example assumes.
    ///
    /// The weights are chosen to reproduce Example 3.4/3.5: granting T5's
    /// request resolves (T5,T6) into T5→T6, before(T5)={T4}, after(T5)={T6},
    /// so (T4,T6) resolves into T4→T6 and the critical path is T4→T6 of
    /// length 10, E(q) = 10. Granting T6's conflicting request instead gives
    /// E(q') = 1.
    fn figure4() -> Wtpg {
        let mut g = Wtpg::new();
        g.add_txn(TxnId(4), Work::ZERO).unwrap();
        g.add_txn(TxnId(5), Work::ZERO).unwrap();
        g.add_txn(TxnId(6), Work::ZERO).unwrap();
        g.add_or_merge_conflict(TxnId(4), TxnId(5), w(0), w(9))
            .unwrap();
        g.resolve(TxnId(4), TxnId(5)).unwrap();
        g.add_or_merge_conflict(TxnId(4), TxnId(6), w(10), w(1))
            .unwrap();
        g.add_or_merge_conflict(TxnId(5), TxnId(6), w(3), w(1))
            .unwrap();
        g
    }

    #[test]
    fn example_3_4_eq_of_t5() {
        let g = figure4();
        // T5 requests a lock conflicting with T6.
        let e = eq_estimate(&g, TxnId(5), &[TxnId(6)]);
        assert_eq!(e, EqValue::Finite(w(10))); // critical path T4→T6 = 10
    }

    #[test]
    fn example_3_5_eq_of_t6_is_smaller() {
        let g = figure4();
        // T6's conflicting request q': resolves (T6,T5) into T6→T5.
        // before(T6) = {}, after(T6) = {T5}; (T4,T6) is NOT resolvable by
        // step 2 (T4 not in before(T6)) and is deleted; critical path is
        // T6→T5 … but w(T6→T5)=1 and all T0 weights are 0 → E(q') = 1.
        let e = eq_estimate(&g, TxnId(6), &[TxnId(5)]);
        assert_eq!(e, EqValue::Finite(w(1)));
        // CC2 would therefore delay T5's request: E(q) = 10 > E(q') = 1.
        assert!(eq_estimate(&g, TxnId(5), &[TxnId(6)]) > e);
    }

    #[test]
    fn deadlock_is_infinite() {
        let g = figure4();
        // T5 → T4 contradicts the existing T4 → T5 precedence edge.
        assert_eq!(eq_estimate(&g, TxnId(5), &[TxnId(4)]), EqValue::Infinite);
    }

    #[test]
    fn transitive_deadlock_is_infinite() {
        let mut g = Wtpg::new();
        for i in 1..=3 {
            g.add_txn(TxnId(i), Work::ZERO).unwrap();
        }
        g.add_or_merge_conflict(TxnId(1), TxnId(2), w(1), w(1))
            .unwrap();
        g.add_or_merge_conflict(TxnId(2), TxnId(3), w(1), w(1))
            .unwrap();
        g.add_or_merge_conflict(TxnId(1), TxnId(3), w(1), w(1))
            .unwrap();
        g.resolve(TxnId(1), TxnId(2)).unwrap();
        g.resolve(TxnId(2), TxnId(3)).unwrap();
        // T3 → T1 closes the cycle through T2.
        assert_eq!(eq_estimate(&g, TxnId(3), &[TxnId(1)]), EqValue::Infinite);
    }

    #[test]
    fn t0_weights_enter_the_estimate() {
        let mut g = Wtpg::new();
        g.add_txn(TxnId(1), w(7)).unwrap();
        g.add_txn(TxnId(2), w(2)).unwrap();
        g.add_or_merge_conflict(TxnId(1), TxnId(2), w(4), w(1))
            .unwrap();
        // Granting T1's request: path T0→T1→T2 = 7 + 4 = 11.
        assert_eq!(
            eq_estimate(&g, TxnId(1), &[TxnId(2)]),
            EqValue::Finite(w(11))
        );
        // Granting T2's: path T0→T2→T1 = 2 + 1 = 3 vs r(T1)=7 → 7.
        assert_eq!(
            eq_estimate(&g, TxnId(2), &[TxnId(1)]),
            EqValue::Finite(w(7))
        );
    }

    #[test]
    fn no_conflicts_yields_current_critical_path() {
        let mut g = Wtpg::new();
        g.add_txn(TxnId(1), w(5)).unwrap();
        g.add_txn(TxnId(2), w(3)).unwrap();
        assert_eq!(eq_estimate(&g, TxnId(1), &[]), EqValue::Finite(w(5)));
    }

    #[test]
    fn eq_value_ordering() {
        assert!(EqValue::Finite(w(10)) < EqValue::Infinite);
        assert!(EqValue::Finite(w(1)) < EqValue::Finite(w(2)));
        assert_eq!(
            EqValue::Infinite.cmp(&EqValue::Infinite),
            std::cmp::Ordering::Equal
        );
        assert!(EqValue::Infinite.is_infinite());
        assert!(!EqValue::Finite(Work::ZERO).is_infinite());
    }

    #[test]
    fn estimator_does_not_mutate_the_wtpg() {
        let g = figure4();
        let before = g.to_dot();
        let _ = eq_estimate(&g, TxnId(5), &[TxnId(6)]);
        assert_eq!(g.to_dot(), before);
    }
}
