//! The K-WTPG contention estimator `E(q)` (paper §3.3).
//!
//! `E(q)` scores a lock request `q` of transaction `T` by the critical path
//! the *present* schedule would have if `q` were granted:
//!
//! 1. Overlay the WTPG with the resolutions granting `q` implies
//!    (`T → T'` for every `T'` holding a conflicting declaration on the
//!    granule). A contradiction or cycle is a (future) deadlock: `E(q) = ∞`.
//! 2. Resolve every conflicting edge `(Ti, Tj)` with `Ti ∈ before(T)` and
//!    `Tj ∈ after(T)` into `Ti → Tj` — those orders are implied by
//!    transitivity through `T`.
//! 3. Delete the remaining conflicting edges and return the length of the
//!    critical path from `T0` to `Tf`.
//!
//! Complexity is `O(max(n, e))`: one DFS for the before/after sets plus one
//! topological pass for the critical path.
//!
//! The overlay never materialises a second graph. Hypothetical precedence
//! edges go into an [`EqScratch`] delta — per-slot linked lists of extra
//! edges plus a resolved-pair list — and every traversal (step 1's cycle
//! checks, step 2's before/after, step 3's critical path) walks the base
//! arena and the delta together. The scratch is reusable across requests, so
//! an estimate in steady state performs no allocation at all; the previous
//! clone-per-request implementation is retained as [`eq_estimate_naive`] and
//! serves as the differential-testing reference.

use crate::txn::TxnId;
use crate::work::Work;
use crate::wtpg::Wtpg;

/// The value of `E(q)`: either a finite critical-path length or ∞ (deadlock).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EqValue {
    /// Granting `q` keeps the schedule deadlock-free; the payload is the
    /// estimated critical path.
    Finite(Work),
    /// Granting `q` would (eventually) deadlock.
    Infinite,
}

impl EqValue {
    /// True for the ∞ case.
    pub fn is_infinite(self) -> bool {
        matches!(self, EqValue::Infinite)
    }
}

impl PartialOrd for EqValue {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EqValue {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use EqValue::*;
        match (self, other) {
            (Finite(a), Finite(b)) => a.cmp(b),
            (Finite(_), Infinite) => std::cmp::Ordering::Less,
            (Infinite, Finite(_)) => std::cmp::Ordering::Greater,
            (Infinite, Infinite) => std::cmp::Ordering::Equal,
        }
    }
}

const NIL: u32 = u32::MAX;

/// A hypothetical precedence edge in the overlay delta, chained per source
/// slot through `next`.
#[derive(Clone, Copy, Debug)]
struct ExtraEdge {
    to: u32,
    w: Work,
    next: u32,
}

/// Reusable overlay state for [`eq_estimate_with`]. One instance per
/// scheduler; buffers grow to the arena size once and are reused for every
/// subsequent request.
#[derive(Clone, Debug, Default)]
pub struct EqScratch {
    /// Head of the extra-edge chain per source slot (`NIL` = none).
    extra_head: Vec<u32>,
    extra: Vec<ExtraEdge>,
    /// Slots whose `extra_head` is set — for O(delta) reset.
    touched: Vec<u32>,
    /// Conflicting pairs resolved inside the overlay, as `(from, to)` slots.
    resolved: Vec<(u32, u32)>,
    /// Epoch-stamped visit marks for the reachability DFS.
    mark: Vec<u32>,
    epoch: u32,
    stack: Vec<u32>,
    /// Epoch-stamped membership of `before(txn)` / `after(txn)`.
    before: Vec<u32>,
    after: Vec<u32>,
    ba_epoch: u32,
    // Kahn scratch for the overlay critical path.
    indeg: Vec<u32>,
    dist: Vec<Work>,
    queue: Vec<u32>,
}

impl EqScratch {
    /// Creates an empty scratch; buffers are sized lazily on first use.
    pub fn new() -> EqScratch {
        EqScratch::default()
    }

    /// Clears the delta and sizes the per-slot arrays for `graph`.
    // lint:allow(panic-safety) touched holds indices reset sized extra_head for
    fn reset(&mut self, graph: &Wtpg) {
        for &s in &self.touched {
            self.extra_head[s as usize] = NIL;
        }
        self.touched.clear();
        self.extra.clear();
        self.resolved.clear();
        let n = graph.slot_count();
        if self.extra_head.len() < n {
            self.extra_head.resize(n, NIL);
        }
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
        if self.before.len() < n {
            self.before.resize(n, 0);
        }
        if self.after.len() < n {
            self.after.resize(n, 0);
        }
    }

    // lint:allow(panic-safety) reset sized extra_head to slot_count; slot ids are in range
    fn add_extra(&mut self, from: u32, to: u32, w: Work) {
        let head = &mut self.extra_head[from as usize];
        if *head == NIL {
            self.touched.push(from);
        }
        self.extra.push(ExtraEdge {
            to,
            w,
            next: *head,
        });
        *head = self.extra.len() as u32 - 1;
    }

    fn pair_resolved(&self, a: u32, b: u32) -> bool {
        self.resolved
            .iter()
            .any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
    }

    /// True if the overlay already has the precedence edge `from → to`
    /// (base arena or delta).
    // lint:allow(panic-safety) extra_head entries index into extra by construction
    fn has_edge(&self, graph: &Wtpg, from: u32, to: u32) -> bool {
        let to_id = graph.slot_txn(to);
        if graph
            .out_of(from)
            .binary_search_by(|e| e.id.cmp(&to_id))
            .is_ok()
        {
            return true;
        }
        let mut e = self.extra_head[from as usize];
        while e != NIL {
            let edge = self.extra[e as usize];
            if edge.to == to {
                return true;
            }
            e = edge.next;
        }
        false
    }

    /// DFS over base + delta out-edges: can `start` reach `target`?
    // lint:allow(panic-safety) mark is resized to slot_count; stack holds slot ids
    fn reaches(&mut self, graph: &Wtpg, start: u32, target: u32) -> bool {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.mark.fill(0);
            self.epoch = 1;
        }
        self.stack.clear();
        self.push_successors(graph, start);
        while let Some(s) = self.stack.pop() {
            if s == target {
                return true;
            }
            if self.mark[s as usize] != self.epoch {
                self.mark[s as usize] = self.epoch;
                self.push_successors(graph, s);
            }
        }
        false
    }

    // lint:allow(panic-safety) extra_head entries index into extra by construction
    fn push_successors(&mut self, graph: &Wtpg, s: u32) {
        for e in graph.out_of(s) {
            self.stack.push(e.slot);
        }
        let mut e = self.extra_head[s as usize];
        while e != NIL {
            let edge = self.extra[e as usize];
            self.stack.push(edge.to);
            e = edge.next;
        }
    }

    /// Stamps `before(txn)` and `after(txn)` under the overlay into the
    /// `before`/`after` arrays with a fresh `ba_epoch`.
    ///
    /// `after` walks base + delta edges forward. `before` only needs the
    /// base arena: every delta edge originates at `txn` itself at this
    /// point (step 1 adds `txn → other` only), and an extra edge extending
    /// `before(txn)` would close a cycle through `txn`, which step 1 just
    /// excluded.
    // lint:allow(panic-safety) before/after/stack are sized to slot_count by reset
    fn stamp_before_after(&mut self, graph: &Wtpg, s_txn: u32) {
        self.ba_epoch = self.ba_epoch.wrapping_add(1);
        if self.ba_epoch == 0 {
            self.before.fill(0);
            self.after.fill(0);
            self.ba_epoch = 1;
        }
        let epoch = self.ba_epoch;
        self.stack.clear();
        for e in graph.inc_of(s_txn) {
            self.stack.push(e.slot);
        }
        while let Some(s) = self.stack.pop() {
            if self.before[s as usize] != epoch {
                self.before[s as usize] = epoch;
                for e in graph.inc_of(s) {
                    self.stack.push(e.slot);
                }
            }
        }
        self.stack.clear();
        self.push_successors(graph, s_txn);
        while let Some(s) = self.stack.pop() {
            if self.after[s as usize] != epoch {
                self.after[s as usize] = epoch;
                self.push_successors(graph, s);
            }
        }
    }

    /// Longest `T0 → Tf` path of the overlay (base + delta precedence
    /// edges), or `None` on a cycle. Mirrors [`Wtpg::critical_path`].
    // lint:allow(panic-safety) indeg/dist are resized to slot_count; queue holds slot ids
    fn critical_path(&mut self, graph: &Wtpg) -> Option<Work> {
        let n = graph.slot_count();
        self.indeg.clear();
        self.indeg.resize(n, 0);
        self.dist.clear();
        self.dist.resize(n, Work::ZERO);
        self.queue.clear();
        for e in &self.extra {
            self.indeg[e.to as usize] += 1;
        }
        let mut live = 0usize;
        for s in graph.live_slots() {
            live += 1;
            self.indeg[s as usize] += graph.inc_of(s).len() as u32;
            if self.indeg[s as usize] == 0 {
                self.queue.push(s);
            }
        }
        let mut best = Work::ZERO;
        let mut head = 0;
        while head < self.queue.len() {
            let s = self.queue[head];
            head += 1;
            let dt = self.dist[s as usize].max(graph.slot_t0(s));
            best = best.max(dt);
            for e in graph.out_of(s) {
                let cand = dt + e.w;
                if cand > self.dist[e.slot as usize] {
                    self.dist[e.slot as usize] = cand;
                }
                self.indeg[e.slot as usize] -= 1;
                if self.indeg[e.slot as usize] == 0 {
                    self.queue.push(e.slot);
                }
            }
            let mut x = self.extra_head[s as usize];
            while x != NIL {
                let edge = self.extra[x as usize];
                let cand = dt + edge.w;
                if cand > self.dist[edge.to as usize] {
                    self.dist[edge.to as usize] = cand;
                }
                self.indeg[edge.to as usize] -= 1;
                if self.indeg[edge.to as usize] == 0 {
                    self.queue.push(edge.to);
                }
                x = edge.next;
            }
        }
        (head == live).then_some(best)
    }
}

/// Computes `E(q)` with a reusable [`EqScratch`] — the hot-path entry point
/// used by the schedulers. The WTPG itself is never mutated; hypothetical
/// resolutions live in the scratch delta.
// lint:allow(panic-safety) all indices are slot ids or Ok results of binary searches
pub fn eq_estimate_with(
    scratch: &mut EqScratch,
    wtpg: &Wtpg,
    txn: TxnId,
    implied: &[TxnId],
) -> EqValue {
    scratch.reset(wtpg);
    let s_txn = wtpg.slot_of(txn);
    // Step 1: apply the implied resolutions; any of them closing a directed
    // cycle (including contradicting an existing precedence edge) means the
    // grant would deadlock.
    for &other in implied {
        if other == txn {
            continue;
        }
        let Some(s_other) = wtpg.slot_of(other) else {
            continue;
        };
        let Some(s_txn) = s_txn else {
            // The clone-based algorithm fails the resolve on an unknown
            // requester; keep that contract.
            return EqValue::Infinite;
        };
        if scratch.reaches(wtpg, s_other, s_txn) {
            return EqValue::Infinite;
        }
        if !scratch.has_edge(wtpg, s_txn, s_other) {
            // resolve(txn, other): carry the stored conflict weight if the
            // pair is (still) unresolved, zero otherwise.
            let other_id = wtpg.slot_txn(s_other);
            let w = wtpg
                .conf_of(s_txn)
                .binary_search_by(|e| e.id.cmp(&other_id))
                .ok()
                .filter(|_| !scratch.pair_resolved(s_txn, s_other))
                .map(|i| wtpg.conf_of(s_txn)[i].w)
                .unwrap_or(Work::ZERO);
            scratch.add_extra(s_txn, s_other, w);
            scratch.resolved.push((s_txn, s_other));
        }
    }
    // Step 2: orders implied by transitivity through txn.
    if let Some(s_txn) = s_txn {
        scratch.stamp_before_after(wtpg, s_txn);
        let epoch = scratch.ba_epoch;
        for sa in wtpg.live_slots() {
            let a = wtpg.slot_txn(sa);
            for i in 0..wtpg.conf_of(sa).len() {
                let e = wtpg.conf_of(sa)[i];
                if a >= e.id || scratch.pair_resolved(sa, e.slot) {
                    continue;
                }
                let sb = e.slot;
                let w_ab = e.w;
                let a_before = scratch.before[sa as usize] == epoch;
                let a_after = scratch.after[sa as usize] == epoch;
                let b_before = scratch.before[sb as usize] == epoch;
                let b_after = scratch.after[sb as usize] == epoch;
                let (from, to, w) = if a_before && b_after {
                    (sa, sb, w_ab)
                } else if b_before && a_after {
                    let back = wtpg.conf_of(sb);
                    let j = back
                        .binary_search_by(|x| x.id.cmp(&a))
                        .expect("invariant: conflict edges are symmetric");
                    (sb, sa, back[j].w)
                } else {
                    continue;
                };
                scratch.add_extra(from, to, w);
                scratch.resolved.push((from, to));
            }
        }
    }
    // Step 3: remaining conflicting edges are ignored by the critical path.
    match scratch.critical_path(wtpg) {
        Some(cp) => EqValue::Finite(cp),
        None => EqValue::Infinite,
    }
}

/// Computes `E(q)` for a hypothetical grant to `txn` that would resolve the
/// conflicting edges listed in `implied` as `txn → other`.
///
/// Convenience wrapper over [`eq_estimate_with`] with a throwaway scratch;
/// the schedulers hold a long-lived [`EqScratch`] instead.
pub fn eq_estimate(wtpg: &Wtpg, txn: TxnId, implied: &[TxnId]) -> EqValue {
    let mut scratch = EqScratch::new();
    eq_estimate_with(&mut scratch, wtpg, txn, implied)
}

/// The original clone-per-request estimator: applies the overlay to a full
/// copy of the WTPG through the public mutation API. Kept as the reference
/// implementation for differential tests and benchmarks — `eq_estimate_with`
/// must agree with it on every input.
pub fn eq_estimate_naive(wtpg: &Wtpg, txn: TxnId, implied: &[TxnId]) -> EqValue {
    let mut overlay = wtpg.clone();
    // Step 1: apply the implied resolutions; any of them closing a directed
    // cycle (including contradicting an existing precedence edge) means the
    // grant would deadlock.
    for &other in implied {
        if other == txn || !overlay.contains(other) {
            continue;
        }
        if overlay.would_deadlock(txn, other) {
            return EqValue::Infinite;
        }
        if overlay.resolve(txn, other).is_err() {
            return EqValue::Infinite;
        }
    }
    // Step 2: orders implied by transitivity through txn.
    let before = overlay.before(txn);
    let after = overlay.after(txn);
    for (a, b, _, _) in overlay.conflict_edges() {
        let (from, to) = if before.contains(&a) && after.contains(&b) {
            (a, b)
        } else if before.contains(&b) && after.contains(&a) {
            (b, a)
        } else {
            continue;
        };
        if overlay.resolve(from, to).is_err() {
            return EqValue::Infinite;
        }
    }
    // Step 3: remaining conflicting edges are ignored by critical_path().
    match overlay.critical_path() {
        Some(cp) => EqValue::Finite(cp),
        None => EqValue::Infinite,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(o: u64) -> Work {
        Work::from_objects(o)
    }

    /// The paper's Figure 4-(a): precedence T4→T5 (weight 0), conflicts
    /// (T4,T6) with w(T4→T6)=10, w(T6→T4)=1, and (T5,T6) with w(T5→T6)=3,
    /// w(T6→T5)=1. All `w(T0→Ti) = 0` as the example assumes.
    ///
    /// The weights are chosen to reproduce Example 3.4/3.5: granting T5's
    /// request resolves (T5,T6) into T5→T6, before(T5)={T4}, after(T5)={T6},
    /// so (T4,T6) resolves into T4→T6 and the critical path is T4→T6 of
    /// length 10, E(q) = 10. Granting T6's conflicting request instead gives
    /// E(q') = 1.
    fn figure4() -> Wtpg {
        let mut g = Wtpg::new();
        g.add_txn(TxnId(4), Work::ZERO).unwrap();
        g.add_txn(TxnId(5), Work::ZERO).unwrap();
        g.add_txn(TxnId(6), Work::ZERO).unwrap();
        g.add_or_merge_conflict(TxnId(4), TxnId(5), w(0), w(9))
            .unwrap();
        g.resolve(TxnId(4), TxnId(5)).unwrap();
        g.add_or_merge_conflict(TxnId(4), TxnId(6), w(10), w(1))
            .unwrap();
        g.add_or_merge_conflict(TxnId(5), TxnId(6), w(3), w(1))
            .unwrap();
        g
    }

    #[test]
    fn example_3_4_eq_of_t5() {
        let g = figure4();
        // T5 requests a lock conflicting with T6.
        let e = eq_estimate(&g, TxnId(5), &[TxnId(6)]);
        assert_eq!(e, EqValue::Finite(w(10))); // critical path T4→T6 = 10
    }

    #[test]
    fn example_3_5_eq_of_t6_is_smaller() {
        let g = figure4();
        // T6's conflicting request q': resolves (T6,T5) into T6→T5.
        // before(T6) = {}, after(T6) = {T5}; (T4,T6) is NOT resolvable by
        // step 2 (T4 not in before(T6)) and is deleted; critical path is
        // T6→T5 … but w(T6→T5)=1 and all T0 weights are 0 → E(q') = 1.
        let e = eq_estimate(&g, TxnId(6), &[TxnId(5)]);
        assert_eq!(e, EqValue::Finite(w(1)));
        // CC2 would therefore delay T5's request: E(q) = 10 > E(q') = 1.
        assert!(eq_estimate(&g, TxnId(5), &[TxnId(6)]) > e);
    }

    #[test]
    fn deadlock_is_infinite() {
        let g = figure4();
        // T5 → T4 contradicts the existing T4 → T5 precedence edge.
        assert_eq!(eq_estimate(&g, TxnId(5), &[TxnId(4)]), EqValue::Infinite);
    }

    #[test]
    fn transitive_deadlock_is_infinite() {
        let mut g = Wtpg::new();
        for i in 1..=3 {
            g.add_txn(TxnId(i), Work::ZERO).unwrap();
        }
        g.add_or_merge_conflict(TxnId(1), TxnId(2), w(1), w(1))
            .unwrap();
        g.add_or_merge_conflict(TxnId(2), TxnId(3), w(1), w(1))
            .unwrap();
        g.add_or_merge_conflict(TxnId(1), TxnId(3), w(1), w(1))
            .unwrap();
        g.resolve(TxnId(1), TxnId(2)).unwrap();
        g.resolve(TxnId(2), TxnId(3)).unwrap();
        // T3 → T1 closes the cycle through T2.
        assert_eq!(eq_estimate(&g, TxnId(3), &[TxnId(1)]), EqValue::Infinite);
    }

    #[test]
    fn t0_weights_enter_the_estimate() {
        let mut g = Wtpg::new();
        g.add_txn(TxnId(1), w(7)).unwrap();
        g.add_txn(TxnId(2), w(2)).unwrap();
        g.add_or_merge_conflict(TxnId(1), TxnId(2), w(4), w(1))
            .unwrap();
        // Granting T1's request: path T0→T1→T2 = 7 + 4 = 11.
        assert_eq!(
            eq_estimate(&g, TxnId(1), &[TxnId(2)]),
            EqValue::Finite(w(11))
        );
        // Granting T2's: path T0→T2→T1 = 2 + 1 = 3 vs r(T1)=7 → 7.
        assert_eq!(
            eq_estimate(&g, TxnId(2), &[TxnId(1)]),
            EqValue::Finite(w(7))
        );
    }

    #[test]
    fn no_conflicts_yields_current_critical_path() {
        let mut g = Wtpg::new();
        g.add_txn(TxnId(1), w(5)).unwrap();
        g.add_txn(TxnId(2), w(3)).unwrap();
        assert_eq!(eq_estimate(&g, TxnId(1), &[]), EqValue::Finite(w(5)));
    }

    #[test]
    fn eq_value_ordering() {
        assert!(EqValue::Finite(w(10)) < EqValue::Infinite);
        assert!(EqValue::Finite(w(1)) < EqValue::Finite(w(2)));
        assert_eq!(
            EqValue::Infinite.cmp(&EqValue::Infinite),
            std::cmp::Ordering::Equal
        );
        assert!(EqValue::Infinite.is_infinite());
        assert!(!EqValue::Finite(Work::ZERO).is_infinite());
    }

    #[test]
    fn estimator_does_not_mutate_the_wtpg() {
        let g = figure4();
        let before = g.to_dot();
        let _ = eq_estimate(&g, TxnId(5), &[TxnId(6)]);
        assert_eq!(g.to_dot(), before);
    }

    #[test]
    fn overlay_agrees_with_naive_on_the_paper_examples() {
        let g = figure4();
        let mut scratch = EqScratch::new();
        let cases: &[(TxnId, &[TxnId])] = &[
            (TxnId(5), &[TxnId(6)]),
            (TxnId(6), &[TxnId(5)]),
            (TxnId(5), &[TxnId(4)]),
            (TxnId(4), &[TxnId(5), TxnId(6)]),
            (TxnId(5), &[]),
            (TxnId(9), &[TxnId(5)]), // unknown requester
            (TxnId(5), &[TxnId(9)]), // unknown partner
        ];
        for &(txn, implied) in cases {
            assert_eq!(
                eq_estimate_with(&mut scratch, &g, txn, implied),
                eq_estimate_naive(&g, txn, implied),
                "txn {txn:?} implied {implied:?}"
            );
        }
    }

    #[test]
    fn scratch_is_reusable_across_requests() {
        let g = figure4();
        let mut scratch = EqScratch::new();
        // Alternate between deadlocking and finite requests; stale delta
        // state from an earlier call must never leak into the next one.
        for _ in 0..3 {
            assert_eq!(
                eq_estimate_with(&mut scratch, &g, TxnId(5), &[TxnId(6)]),
                EqValue::Finite(w(10))
            );
            assert_eq!(
                eq_estimate_with(&mut scratch, &g, TxnId(5), &[TxnId(4)]),
                EqValue::Infinite
            );
            assert_eq!(
                eq_estimate_with(&mut scratch, &g, TxnId(6), &[TxnId(5)]),
                EqValue::Finite(w(1))
            );
        }
    }
}
