//! Recorded execution histories and correctness checkers.
//!
//! The simulator records every scheduling event; these checkers validate the
//! paper's claimed guarantees over whole runs:
//!
//! * **conflict serializability** — the serialization graph induced by the
//!   grant order of conflicting locks must be acyclic (holds for every
//!   scheduler except NODC, which is the paper's deliberate no-CC upper
//!   bound);
//! * **strictness / two-phase discipline** — no lock activity after commit;
//! * **no aborts after start** — a BAT is too expensive to abort; admission
//!   rejection happens before any work.

use std::collections::BTreeMap;

use wtpg_graph::{is_cyclic, DiGraph};

use crate::partition::PartitionId;
use crate::time::Tick;
use crate::txn::{AccessMode, TxnId};
use crate::work::Work;

/// One recorded scheduling event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Event {
    /// Transaction admitted and declared.
    Admitted(TxnId),
    /// Admission rejected (structural constraint or ASL lock failure);
    /// the transaction will be resubmitted and re-admitted under a fresh
    /// attempt with the same id.
    Rejected(TxnId),
    /// A step's lock was granted.
    Granted {
        /// The transaction.
        txn: TxnId,
        /// Step index within the transaction.
        step: usize,
        /// Partition locked.
        partition: PartitionId,
        /// Access mode of the step.
        mode: AccessMode,
    },
    /// A chunk of bulk work finished at a data node.
    Progress {
        /// The transaction.
        txn: TxnId,
        /// Amount of work completed.
        amount: Work,
    },
    /// A granted step finished all its declared work (the lock stays held
    /// until commit). Recorded so a replay can mirror the scheduler's
    /// `T0`-weight reset exactly.
    StepCompleted {
        /// The transaction.
        txn: TxnId,
        /// Step index within the transaction.
        step: usize,
    },
    /// The transaction committed (all locks released).
    Committed(TxnId),
}

/// An append-only event log with validation queries.
#[derive(Clone, Debug, Default)]
pub struct History {
    events: Vec<(Tick, Event)>,
}

impl History {
    /// An empty history.
    pub fn new() -> History {
        History::default()
    }

    /// Appends an event at time `t` (times must be non-decreasing).
    pub fn push(&mut self, t: Tick, e: Event) {
        debug_assert!(
            self.events.last().is_none_or(|&(last, _)| last <= t),
            "history times must be non-decreasing"
        );
        self.events.push((t, e));
    }

    /// All recorded events.
    pub fn events(&self) -> &[(Tick, Event)] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Ids of committed transactions, in commit order.
    pub fn committed(&self) -> Vec<TxnId> {
        self.events
            .iter()
            .filter_map(|&(_, e)| match e {
                Event::Committed(t) => Some(t),
                _ => None,
            })
            .collect()
    }

    /// Checks conflict serializability of the committed transactions.
    ///
    /// For each partition, conflicting grants order the transactions; the
    /// union of those orders must be acyclic. Because every scheduler holds
    /// locks to commit, the grant order *is* the access order.
    pub fn check_conflict_serializable(&self) -> Result<(), String> {
        let committed: BTreeMap<TxnId, ()> =
            self.committed().into_iter().map(|t| (t, ())).collect();
        // Per partition, grants in sequence order induce the conflict
        // edges. The full pairwise relation is quadratic in the grants on a
        // hot partition, so only its transitive reduction is materialised:
        // the last committed writer plus every reader since it. Each grant
        // then adds edges from exactly that frontier (writer → next access,
        // reader → next writer), and the frontier's transitive closure —
        // hence its cycles — equals the full relation's. An S→X upgrade is
        // two separate events — its write conflicts are ordered by the
        // *upgrade* time, not the first (shared) grant.
        struct Frontier {
            writer: Option<TxnId>,
            readers: Vec<TxnId>,
        }
        let mut frontiers: BTreeMap<PartitionId, Frontier> = BTreeMap::new();
        let mut edges: BTreeMap<(TxnId, TxnId), ()> = BTreeMap::new();
        for &(_, e) in &self.events {
            if let Event::Granted {
                txn,
                partition,
                mode,
                ..
            } = e
            {
                if !committed.contains_key(&txn) {
                    continue;
                }
                let f = frontiers.entry(partition).or_insert(Frontier {
                    writer: None,
                    readers: Vec::new(),
                });
                if let Some(w) = f.writer {
                    if w != txn {
                        // Grants are in sequence order: w accessed first.
                        edges.insert((w, txn), ());
                    }
                }
                match mode {
                    AccessMode::Write => {
                        for &r in &f.readers {
                            if r != txn {
                                edges.insert((r, txn), ());
                            }
                        }
                        f.writer = Some(txn);
                        f.readers.clear();
                    }
                    AccessMode::Read => f.readers.push(txn),
                }
            }
        }
        let mut graph: DiGraph<TxnId, ()> = DiGraph::new();
        let mut nodes = BTreeMap::new();
        for &t in committed.keys() {
            nodes.insert(t, graph.add_node(t));
        }
        for &(t1, t2) in edges.keys() {
            graph.add_edge(nodes[&t1], nodes[&t2], ());
        }
        if is_cyclic(&graph) {
            Err("serialization graph has a cycle".to_string())
        } else {
            Ok(())
        }
    }

    /// Checks that no transaction acquires locks or makes progress after its
    /// commit, and that every committed transaction was admitted first.
    pub fn check_strictness(&self) -> Result<(), String> {
        let mut committed: BTreeMap<TxnId, bool> = BTreeMap::new();
        let mut admitted: BTreeMap<TxnId, bool> = BTreeMap::new();
        for &(_, e) in &self.events {
            match e {
                Event::Admitted(t) => {
                    admitted.insert(t, true);
                    committed.insert(t, false);
                }
                Event::Rejected(t) => {
                    admitted.remove(&t);
                }
                Event::Granted { txn, .. }
                | Event::Progress { txn, .. }
                | Event::StepCompleted { txn, .. } => {
                    if committed.get(&txn).copied().unwrap_or(false) {
                        return Err(format!("{txn} active after commit"));
                    }
                    if !admitted.contains_key(&txn) {
                        return Err(format!("{txn} active without admission"));
                    }
                }
                Event::Committed(t) => {
                    if !admitted.contains_key(&t) {
                        return Err(format!("{t} committed without admission"));
                    }
                    committed.insert(t, true);
                }
            }
        }
        Ok(())
    }

    /// Checks that at every instant, conflicting locks are never co-held —
    /// the basic mutual-exclusion invariant (NODC violates it by design).
    pub fn check_lock_exclusion(&self) -> Result<(), String> {
        let mut held: BTreeMap<PartitionId, BTreeMap<TxnId, AccessMode>> = BTreeMap::new();
        for &(at, e) in &self.events {
            match e {
                Event::Granted {
                    txn,
                    partition,
                    mode,
                    ..
                } => {
                    let g = held.entry(partition).or_default();
                    for (&other, &m) in g.iter() {
                        if other != txn && m.conflicts_with(mode) {
                            return Err(format!(
                                "at {at}: {txn} granted {mode:?} on {partition} while {other} holds {m:?}"
                            ));
                        }
                    }
                    let slot = g.entry(txn).or_insert(mode);
                    if mode == AccessMode::Write {
                        *slot = AccessMode::Write;
                    }
                }
                Event::Committed(t) => {
                    for g in held.values_mut() {
                        g.remove(&t);
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grant(txn: u64, step: usize, p: u32, mode: AccessMode) -> Event {
        Event::Granted {
            txn: TxnId(txn),
            step,
            partition: PartitionId(p),
            mode,
        }
    }

    #[test]
    fn serializable_history_passes() {
        let mut h = History::new();
        h.push(Tick(0), Event::Admitted(TxnId(1)));
        h.push(Tick(0), grant(1, 0, 0, AccessMode::Write));
        h.push(Tick(5), Event::Committed(TxnId(1)));
        h.push(Tick(6), Event::Admitted(TxnId(2)));
        h.push(Tick(6), grant(2, 0, 0, AccessMode::Write));
        h.push(Tick(9), Event::Committed(TxnId(2)));
        assert!(h.check_conflict_serializable().is_ok());
        assert!(h.check_strictness().is_ok());
        assert!(h.check_lock_exclusion().is_ok());
    }

    #[test]
    fn cyclic_serialization_graph_detected() {
        // T1 writes A then B; T2 writes B then A, interleaved so that T1
        // precedes T2 on A but T2 precedes T1 on B.
        let mut h = History::new();
        h.push(Tick(0), Event::Admitted(TxnId(1)));
        h.push(Tick(0), Event::Admitted(TxnId(2)));
        h.push(Tick(1), grant(1, 0, 0, AccessMode::Write));
        h.push(Tick(1), grant(2, 0, 1, AccessMode::Write));
        h.push(Tick(2), grant(1, 1, 1, AccessMode::Write));
        h.push(Tick(2), grant(2, 1, 0, AccessMode::Write));
        h.push(Tick(3), Event::Committed(TxnId(1)));
        h.push(Tick(3), Event::Committed(TxnId(2)));
        assert!(h.check_conflict_serializable().is_err());
        // It also violates lock exclusion, of course.
        assert!(h.check_lock_exclusion().is_err());
    }

    #[test]
    fn shared_locks_do_not_conflict() {
        let mut h = History::new();
        h.push(Tick(0), Event::Admitted(TxnId(1)));
        h.push(Tick(0), Event::Admitted(TxnId(2)));
        h.push(Tick(1), grant(1, 0, 0, AccessMode::Read));
        h.push(Tick(1), grant(2, 0, 0, AccessMode::Read));
        h.push(Tick(2), Event::Committed(TxnId(1)));
        h.push(Tick(2), Event::Committed(TxnId(2)));
        assert!(h.check_conflict_serializable().is_ok());
        assert!(h.check_lock_exclusion().is_ok());
    }

    #[test]
    fn uncommitted_transactions_are_ignored_by_sr_check() {
        let mut h = History::new();
        h.push(Tick(0), Event::Admitted(TxnId(1)));
        h.push(Tick(1), grant(1, 0, 0, AccessMode::Write));
        // Never commits; SR check only covers committed transactions.
        assert!(h.check_conflict_serializable().is_ok());
        assert_eq!(h.committed(), Vec::<TxnId>::new());
    }

    #[test]
    fn activity_after_commit_detected() {
        let mut h = History::new();
        h.push(Tick(0), Event::Admitted(TxnId(1)));
        h.push(Tick(1), Event::Committed(TxnId(1)));
        h.push(Tick(2), grant(1, 1, 0, AccessMode::Read));
        assert!(h.check_strictness().is_err());
    }

    #[test]
    fn rejection_then_readmission_is_clean() {
        let mut h = History::new();
        h.push(Tick(0), Event::Admitted(TxnId(1)));
        h.push(Tick(0), Event::Rejected(TxnId(1)));
        h.push(Tick(5), Event::Admitted(TxnId(1)));
        h.push(Tick(5), grant(1, 0, 0, AccessMode::Read));
        h.push(Tick(9), Event::Committed(TxnId(1)));
        assert!(h.check_strictness().is_ok());
    }

    #[test]
    fn upgrade_keeps_first_grant_order() {
        // T1 reads A (S), T2 wants nothing conflicting yet, T1 upgrades to X.
        let mut h = History::new();
        h.push(Tick(0), Event::Admitted(TxnId(1)));
        h.push(Tick(1), grant(1, 0, 0, AccessMode::Read));
        h.push(Tick(2), grant(1, 2, 0, AccessMode::Write));
        h.push(Tick(3), Event::Committed(TxnId(1)));
        assert!(h.check_lock_exclusion().is_ok());
        assert!(h.check_conflict_serializable().is_ok());
    }
}
