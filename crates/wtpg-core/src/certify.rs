//! Full-schedule certification by deterministic replay (DESIGN.md §10).
//!
//! [`certify_history`] re-executes a recorded [`History`] against a fresh
//! [`SchedCore`] — the same lock-table/WTPG state machine the schedulers
//! run on — and checks, event by event, that every decision the scheduler
//! took was one it was *allowed* to take:
//!
//! - **protocol shape** — steps requested in declared order, grants match
//!   the declared partition/mode, commits only after the last step;
//! - **lock exclusion** — no grant while a conflicting lock is held
//!   (replayed against the real lock table, not just the event stream);
//! - **deadlock freedom** — no grant closes a precedence cycle, and the
//!   WTPG stays acyclic after every replayed grant;
//! - **arena integrity** — [`Wtpg::check_invariants`] after every
//!   structural step, plus version monotonicity across the whole run;
//! - **chain form** ([`CertifyMode::Chain`]) — every admission leaves the
//!   WTPG chain-form, CC1's structural admission constraint;
//! - **K-conflict bound** ([`CertifyMode::KConflict`]) — every admission
//!   satisfies `|C(q)| ≤ K` for all outstanding declarations, and every
//!   grant's `E(q)` (recomputed with the clone-based reference estimator
//!   [`eq_estimate_naive`], *not* the overlay hot path it cross-checks) is
//!   finite. `E(q)`-minimality is spot-checked too, but losses are
//!   *counted* in the report rather than flagged as violations: the
//!   starvation guard legitimately grants a losing request, and finite `E`
//!   values drift with `T0`-weight progress between the scheduler's
//!   decision and the replay.
//!
//! [`CertifyMode::Exempt`] (NODC) skips everything lock-related — NODC
//! violates exclusion *by design* — and keeps only the protocol-shape and
//! strictness checks.
//!
//! The replay is possible because every scheduler drives the same
//! `SchedCore` and the history records every state-changing input
//! ([`Event::StepCompleted`] included, so `T0`-weight resets replay
//! exactly). ASL grants all locks at admission but its histories still
//! replay cleanly step by step: replayed holds are always a subset of
//! ASL's actual holds, and ASL admits only conflict-free lock sets.
//!
//! Since the windowed-telemetry work, every check here is *incremental*:
//! [`certify_history`] is a thin driver over
//! [`StreamingCertifier`](crate::stream_certify::StreamingCertifier),
//! which also certifies live runs event-by-event with prefix retirement
//! (bounded memory on million-transaction open-loop cells). Strictness,
//! lock exclusion and conflict serializability are folded into the
//! per-event replay; the old end-of-run whole-history sweep is gone.

use std::collections::BTreeMap;

use crate::history::{Event, History};
use crate::stream_certify::StreamingCertifier;
use crate::time::Tick;
use crate::txn::{TxnId, TxnSpec};

/// Which guarantees a history claims; returned by
/// [`crate::sched::Scheduler::certify_mode`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CertifyMode {
    /// Lock-based baseline: exclusion, deadlock freedom, serializability.
    #[default]
    General,
    /// CC1: baseline plus chain-form compliance at every admission.
    Chain,
    /// CC2: baseline plus the `|C(q)| ≤ K` admission bound and finite-`E(q)`
    /// grants, with `E(q)`-minimality spot checks.
    KConflict(usize),
    /// No concurrency control at all (NODC): only protocol shape and
    /// strictness apply.
    Exempt,
}

/// Statistics from a successful certification.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CertifyReport {
    /// Events replayed.
    pub events: usize,
    /// Grants replayed and checked.
    pub grants: usize,
    /// Commits replayed.
    pub commits: usize,
    /// `E(q)` spot checks performed (K-WTPG runs only).
    pub eq_checks: usize,
    /// Grants whose `E(q)` was not minimal among the conflicting
    /// declarations at replay time (legitimate under the starvation guard
    /// and `T0`-weight drift; reported, never a violation).
    pub eq_losses: usize,
}

/// A certification failure: the first event the replay could not justify.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CertifyViolation {
    /// Index of the offending event in the history (usize::MAX for
    /// whole-history checks that fail after replay).
    pub at: usize,
    /// Recorded time of the offending event.
    pub tick: Tick,
    /// What went wrong.
    pub what: String,
}

impl std::fmt::Display for CertifyViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.at == usize::MAX {
            write!(f, "history check failed: {}", self.what)
        } else {
            write!(f, "event {} (t={}): {}", self.at, self.tick, self.what)
        }
    }
}

fn violation(at: usize, tick: Tick, what: impl Into<String>) -> CertifyViolation {
    CertifyViolation {
        at,
        tick,
        what: what.into(),
    }
}

/// Replays `history` against a fresh [`SchedCore`](crate::sched::SchedCore)
/// and checks the guarantees claimed by `mode`. `specs` must hold the
/// declaration of every transaction the history admits (keyed by id;
/// re-admissions after rejection reuse the same spec, mirroring the
/// simulator's retry loop).
///
/// This is a thin driver over [`StreamingCertifier`]: declare every spec,
/// feed every event, finish. All checks — protocol shape, exclusion,
/// deadlock freedom, strictness, incremental conflict-serializability —
/// run per event, so violations always carry the index of the offending
/// event (never the `usize::MAX` whole-history marker, which only the
/// shard merge still uses).
///
/// # Errors
/// The first [`CertifyViolation`] encountered.
pub fn certify_history(
    history: &History,
    specs: &BTreeMap<TxnId, TxnSpec>,
    mode: CertifyMode,
) -> Result<CertifyReport, CertifyViolation> {
    let mut sc = StreamingCertifier::new(mode);
    for spec in specs.values() {
        sc.declare(spec.clone());
    }
    for &(tick, event) in history.events() {
        sc.feed(tick, event)?;
    }
    sc.finish()
}

/// The transaction an event belongs to.
fn event_txn(e: &Event) -> TxnId {
    match *e {
        Event::Admitted(t) | Event::Rejected(t) | Event::Committed(t) => t,
        Event::Granted { txn, .. } | Event::Progress { txn, .. } | Event::StepCompleted { txn, .. } => txn,
    }
}

/// Merges per-shard histories into one globally ordered history.
///
/// Sharded control planes split the WTPG by *conflict component*: a
/// transaction's every event lives on exactly one shard, and a partition is
/// only ever granted by the shard owning its component. Under that
/// disjointness, shards share no constraints — so any interleaving that
/// preserves each shard's internal order is a valid linearization, and the
/// merge picks the canonical one: sort by `(recorded tick, shard index)`
/// (stable, so within-shard order is untouched), then re-tick sequentially.
///
/// A single-shard slice returns the history untouched (same ticks), so
/// unsharded runs certify byte-identically to the unsharded path.
///
/// # Errors
/// A [`CertifyViolation`] (`at == usize::MAX`) if the disjointness premise
/// is violated: a transaction with events on two shards, or a partition
/// granted by two shards. A swapped cross-shard grant is caught here — the
/// merge refuses to manufacture an ordering the shards never agreed on.
pub fn merge_shard_histories(shards: &[&History]) -> Result<History, CertifyViolation> {
    if shards.len() == 1 {
        return Ok(shards[0].clone());
    }
    let mut txn_home: BTreeMap<TxnId, usize> = BTreeMap::new();
    let mut part_home: BTreeMap<crate::partition::PartitionId, usize> = BTreeMap::new();
    let mut all: Vec<(Tick, usize, Event)> = Vec::new();
    for (si, h) in shards.iter().enumerate() {
        for &(t, e) in h.events() {
            let txn = event_txn(&e);
            if let Some(&home) = txn_home.get(&txn) {
                if home != si {
                    return Err(violation(
                        usize::MAX,
                        t,
                        format!("{txn} has events on shard {home} and shard {si}"),
                    ));
                }
            } else {
                txn_home.insert(txn, si);
            }
            if let Event::Granted { partition, .. } = e {
                if let Some(&home) = part_home.get(&partition) {
                    if home != si {
                        return Err(violation(
                            usize::MAX,
                            t,
                            format!("{partition} granted by shard {home} and shard {si}"),
                        ));
                    }
                } else {
                    part_home.insert(partition, si);
                }
            }
            all.push((t, si, e));
        }
    }
    all.sort_by_key(|&(t, si, _)| (t, si));
    let mut merged = History::new();
    for (i, (_, _, e)) in all.into_iter().enumerate() {
        merged.push(Tick(i as u64 + 1), e);
    }
    Ok(merged)
}

/// Certifies a sharded run: merges the per-shard histories (checking the
/// component-disjointness premise), unions the per-shard spec maps, and
/// replays the merged history under `mode` exactly like
/// [`certify_history`].
///
/// # Errors
/// The first [`CertifyViolation`] from the merge or the replay.
pub fn certify_sharded(
    shards: &[(&History, &BTreeMap<TxnId, TxnSpec>)],
    mode: CertifyMode,
) -> Result<CertifyReport, CertifyViolation> {
    let hists: Vec<&History> = shards.iter().map(|&(h, _)| h).collect();
    let merged = merge_shard_histories(&hists)?;
    let mut specs: BTreeMap<TxnId, TxnSpec> = BTreeMap::new();
    for &(_, shard_specs) in shards {
        for (id, spec) in shard_specs {
            specs.insert(*id, spec.clone());
        }
    }
    certify_history(&merged, &specs, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{Admission, LockOutcome, Scheduler};
    use crate::txn::StepSpec;
    use crate::work::Work;

    fn spec(id: u64, steps: Vec<StepSpec>) -> TxnSpec {
        TxnSpec::new(TxnId(id), steps)
    }

    /// Drives a scheduler through a toy workload while recording the
    /// history by hand, exactly as the simulator does.
    fn drive<S: Scheduler>(mut sched: S) -> (History, BTreeMap<TxnId, TxnSpec>, CertifyMode) {
        let mut h = History::new();
        let mut specs = BTreeMap::new();
        let ts = [
            spec(1, vec![StepSpec::write(0, 2.0), StepSpec::read(1, 1.0)]),
            spec(2, vec![StepSpec::write(2, 1.0)]),
            spec(3, vec![StepSpec::read(1, 1.0)]),
        ];
        let mut now = Tick(0);
        for t in &ts {
            specs.insert(t.id, t.clone());
            match sched.on_arrive(t, now).unwrap().0 {
                Admission::Admitted => h.push(now, Event::Admitted(t.id)),
                Admission::Rejected => h.push(now, Event::Rejected(t.id)),
            }
        }
        // Round-robin requests until everyone commits.
        let mut pending: Vec<(TxnId, usize, usize)> =
            ts.iter().map(|t| (t.id, 0, t.len())).collect();
        while !pending.is_empty() {
            now += 1;
            let mut next = Vec::new();
            for (id, step, len) in pending {
                match sched.on_request(id, step, now).unwrap().0 {
                    LockOutcome::Granted => {
                        let s = specs[&id].steps()[step];
                        h.push(
                            now,
                            Event::Granted {
                                txn: id,
                                step,
                                partition: s.partition,
                                mode: s.mode,
                            },
                        );
                        sched.on_progress(id, s.cost).unwrap();
                        h.push(
                            now,
                            Event::Progress {
                                txn: id,
                                amount: s.cost,
                            },
                        );
                        sched.on_step_complete(id, step).unwrap();
                        h.push(now, Event::StepCompleted { txn: id, step });
                        if step + 1 == len {
                            sched.on_commit(id, now).unwrap();
                            h.push(now, Event::Committed(id));
                        } else {
                            next.push((id, step + 1, len));
                        }
                    }
                    _ => next.push((id, step, len)),
                }
            }
            pending = next;
        }
        let mode = sched.certify_mode();
        (h, specs, mode)
    }

    #[test]
    fn chain_run_certifies() {
        let (h, specs, mode) = drive(crate::sched::ChainScheduler::new(5000));
        assert_eq!(mode, CertifyMode::Chain);
        let report = certify_history(&h, &specs, mode).expect("clean run certifies");
        assert_eq!(report.commits, 3);
        assert!(report.grants >= 4);
    }

    #[test]
    fn kwtpg_run_certifies_with_eq_checks() {
        let (h, specs, mode) = drive(crate::sched::KWtpgScheduler::new(2, 5000));
        assert_eq!(mode, CertifyMode::KConflict(2));
        let report = certify_history(&h, &specs, mode).expect("clean run certifies");
        assert_eq!(report.commits, 3);
        assert!(report.eq_checks >= report.grants);
    }

    #[test]
    fn c2pl_run_certifies_general() {
        let (h, specs, mode) = drive(crate::sched::C2plScheduler::new());
        assert_eq!(mode, CertifyMode::General);
        certify_history(&h, &specs, mode).expect("clean run certifies");
    }

    #[test]
    fn flipped_conflicting_grants_are_rejected() {
        // T1 and T2 both write P0; T1 is granted and holds the lock, so a
        // history claiming T2 was granted first must be rejected.
        let mut h = History::new();
        let mut specs = BTreeMap::new();
        let t1 = spec(1, vec![StepSpec::write(0, 1.0)]);
        let t2 = spec(2, vec![StepSpec::write(0, 1.0)]);
        specs.insert(t1.id, t1);
        specs.insert(t2.id, t2);
        h.push(Tick(0), Event::Admitted(TxnId(1)));
        h.push(Tick(0), Event::Admitted(TxnId(2)));
        h.push(
            Tick(1),
            Event::Granted {
                txn: TxnId(1),
                step: 0,
                partition: crate::partition::PartitionId(0),
                mode: crate::txn::AccessMode::Write,
            },
        );
        // Conflicting grant while T1 still holds P0.
        h.push(
            Tick(2),
            Event::Granted {
                txn: TxnId(2),
                step: 0,
                partition: crate::partition::PartitionId(0),
                mode: crate::txn::AccessMode::Write,
            },
        );
        let err = certify_history(&h, &specs, CertifyMode::General).unwrap_err();
        assert!(err.what.contains("while blocked"), "{err}");
    }

    /// Concurrent S grants on one partition are legal — the replay
    /// certifier must accept overlapping shared holders and only balk when
    /// an X grant lands while any of them is still live.
    #[test]
    fn concurrent_shared_grants_certify_and_block_writers() {
        let mut h = History::new();
        let mut specs = BTreeMap::new();
        let r1 = spec(1, vec![StepSpec::read(0, 1.0)]);
        let r2 = spec(2, vec![StepSpec::read(0, 1.0)]);
        let w = spec(3, vec![StepSpec::write(0, 1.0)]);
        for t in [&r1, &r2, &w] {
            specs.insert(t.id, t.clone());
            h.push(Tick(0), Event::Admitted(t.id));
        }
        let grant = |txn: u64, mode| Event::Granted {
            txn: TxnId(txn),
            step: 0,
            partition: crate::partition::PartitionId(0),
            mode,
        };
        let finish = |h: &mut History, txn: u64, tick: u64| {
            h.push(
                Tick(tick),
                Event::Progress {
                    txn: TxnId(txn),
                    amount: Work::from_objects(1),
                },
            );
            h.push(Tick(tick), Event::StepCompleted { txn: TxnId(txn), step: 0 });
            h.push(Tick(tick), Event::Committed(TxnId(txn)));
        };
        // Both readers hold S on P0 at once; the writer grants only after
        // both commits released it.
        h.push(Tick(1), grant(1, crate::txn::AccessMode::Read));
        h.push(Tick(1), grant(2, crate::txn::AccessMode::Read));
        finish(&mut h, 1, 2);
        finish(&mut h, 2, 2);
        h.push(Tick(3), grant(3, crate::txn::AccessMode::Write));
        finish(&mut h, 3, 4);
        let report =
            certify_history(&h, &specs, CertifyMode::General).expect("S/S co-grant is legal");
        assert_eq!(report.commits, 3);

        // Same prefix, but the writer jumps in while the readers still
        // hold S: rejected.
        let mut bad = History::new();
        for t in [&r1, &r2, &w] {
            bad.push(Tick(0), Event::Admitted(t.id));
        }
        bad.push(Tick(1), grant(1, crate::txn::AccessMode::Read));
        bad.push(Tick(1), grant(2, crate::txn::AccessMode::Read));
        bad.push(Tick(2), grant(3, crate::txn::AccessMode::Write));
        let err = certify_history(&bad, &specs, CertifyMode::General).unwrap_err();
        assert!(err.what.contains("while blocked"), "{err}");
    }

    #[test]
    fn dropped_commit_is_rejected() {
        // T1's commit is missing, so its conflicting grant of P0 by T2 must
        // be flagged (the lock was never released).
        let mut h = History::new();
        let mut specs = BTreeMap::new();
        let t1 = spec(1, vec![StepSpec::write(0, 1.0)]);
        let t2 = spec(2, vec![StepSpec::write(0, 1.0)]);
        specs.insert(t1.id, t1);
        specs.insert(t2.id, t2);
        h.push(Tick(0), Event::Admitted(TxnId(1)));
        h.push(Tick(0), Event::Admitted(TxnId(2)));
        h.push(
            Tick(1),
            Event::Granted {
                txn: TxnId(1),
                step: 0,
                partition: crate::partition::PartitionId(0),
                mode: crate::txn::AccessMode::Write,
            },
        );
        h.push(
            Tick(1),
            Event::Progress {
                txn: TxnId(1),
                amount: Work::from_objects(1),
            },
        );
        h.push(Tick(2), Event::StepCompleted { txn: TxnId(1), step: 0 });
        // Commit dropped here.
        h.push(
            Tick(3),
            Event::Granted {
                txn: TxnId(2),
                step: 0,
                partition: crate::partition::PartitionId(0),
                mode: crate::txn::AccessMode::Write,
            },
        );
        let err = certify_history(&h, &specs, CertifyMode::General).unwrap_err();
        assert!(err.what.contains("while blocked"), "{err}");
    }

    #[test]
    fn out_of_order_steps_are_rejected() {
        let mut h = History::new();
        let mut specs = BTreeMap::new();
        let t1 = spec(1, vec![StepSpec::write(0, 1.0), StepSpec::write(1, 1.0)]);
        specs.insert(t1.id, t1);
        h.push(Tick(0), Event::Admitted(TxnId(1)));
        h.push(
            Tick(1),
            Event::Granted {
                txn: TxnId(1),
                step: 1, // step 0 never granted
                partition: crate::partition::PartitionId(1),
                mode: crate::txn::AccessMode::Write,
            },
        );
        let err = certify_history(&h, &specs, CertifyMode::General).unwrap_err();
        assert!(err.what.contains("out of order"), "{err}");
    }

    #[test]
    fn premature_commit_is_rejected() {
        let mut h = History::new();
        let mut specs = BTreeMap::new();
        let t1 = spec(1, vec![StepSpec::write(0, 1.0), StepSpec::write(1, 1.0)]);
        specs.insert(t1.id, t1);
        h.push(Tick(0), Event::Admitted(TxnId(1)));
        h.push(Tick(1), Event::Committed(TxnId(1)));
        let err = certify_history(&h, &specs, CertifyMode::General).unwrap_err();
        assert!(err.what.contains("committed after 0 of 2"), "{err}");
    }

    #[test]
    fn k_bound_breach_is_rejected() {
        // Three single-step writers of P0: each pair conflicts, so the third
        // admission has |C(q)| = 2 > K = 1 for the already-present decls.
        let mut h = History::new();
        let mut specs = BTreeMap::new();
        for id in 1..=3 {
            let t = spec(id, vec![StepSpec::write(0, 1.0)]);
            specs.insert(t.id, t);
            h.push(Tick(0), Event::Admitted(TxnId(id)));
        }
        let err = certify_history(&h, &specs, CertifyMode::KConflict(1)).unwrap_err();
        assert!(err.what.contains("conflict bound"), "{err}");
    }

    #[test]
    fn exempt_mode_only_checks_strictness() {
        // Conflicting co-held locks — fine for NODC, but activity after
        // commit is still flagged.
        let mut h = History::new();
        let specs = BTreeMap::new();
        h.push(Tick(0), Event::Admitted(TxnId(1)));
        h.push(Tick(0), Event::Admitted(TxnId(2)));
        for id in [1u64, 2] {
            h.push(
                Tick(1),
                Event::Granted {
                    txn: TxnId(id),
                    step: 0,
                    partition: crate::partition::PartitionId(0),
                    mode: crate::txn::AccessMode::Write,
                },
            );
        }
        assert!(certify_history(&h, &specs, CertifyMode::Exempt).is_ok());
        h.push(Tick(2), Event::Committed(TxnId(1)));
        h.push(
            Tick(3),
            Event::Progress {
                txn: TxnId(1),
                amount: Work::from_objects(1),
            },
        );
        let err = certify_history(&h, &specs, CertifyMode::Exempt).unwrap_err();
        assert!(err.what.contains("after commit"), "{err}");
    }

    /// Drives `ts` through `sched` (round-robin, like the simulator),
    /// recording the history from `start_tick` — a stand-in for one control
    /// shard working its conflict component.
    fn drive_component<S: Scheduler>(
        mut sched: S,
        ts: &[TxnSpec],
        start_tick: u64,
    ) -> (History, BTreeMap<TxnId, TxnSpec>) {
        let mut h = History::new();
        let mut specs = BTreeMap::new();
        let mut now = Tick(start_tick);
        for t in ts {
            specs.insert(t.id, t.clone());
            match sched.on_arrive(t, now).unwrap().0 {
                Admission::Admitted => h.push(now, Event::Admitted(t.id)),
                Admission::Rejected => h.push(now, Event::Rejected(t.id)),
            }
        }
        let mut pending: Vec<(TxnId, usize, usize)> =
            ts.iter().map(|t| (t.id, 0, t.len())).collect();
        while !pending.is_empty() {
            now += 1;
            let mut next = Vec::new();
            for (id, step, len) in pending {
                match sched.on_request(id, step, now).unwrap().0 {
                    LockOutcome::Granted => {
                        let s = specs[&id].steps()[step];
                        h.push(
                            now,
                            Event::Granted {
                                txn: id,
                                step,
                                partition: s.partition,
                                mode: s.mode,
                            },
                        );
                        sched.on_progress(id, s.cost).unwrap();
                        h.push(
                            now,
                            Event::Progress {
                                txn: id,
                                amount: s.cost,
                            },
                        );
                        sched.on_step_complete(id, step).unwrap();
                        h.push(now, Event::StepCompleted { txn: id, step });
                        if step + 1 == len {
                            sched.on_commit(id, now).unwrap();
                            h.push(now, Event::Committed(id));
                        } else {
                            next.push((id, step + 1, len));
                        }
                    }
                    _ => next.push((id, step, len)),
                }
            }
            pending = next;
        }
        (h, specs)
    }

    /// `count` transactions confined to partitions `[base, base + 3)` —
    /// one conflict component per `base`.
    fn component_specs(base: u32, first_id: u64, count: u64) -> Vec<TxnSpec> {
        (0..count)
            .map(|i| {
                // Vary the shapes so the shard histories interleave
                // nontrivially when merged.
                let steps = match i % 3 {
                    0 => vec![StepSpec::write(base, 2.0), StepSpec::read(base + 1, 1.0)],
                    1 => vec![StepSpec::read(base + 1, 1.0), StepSpec::write(base + 2, 1.0)],
                    _ => vec![StepSpec::write(base + 2, 1.0)],
                };
                TxnSpec::new(TxnId(first_id + i), steps)
            })
            .collect()
    }

    #[test]
    fn disjoint_shard_histories_certify_clean() {
        // Three shards, each a chain run over its own partition range and
        // its own (deliberately overlapping) tick range.
        for shards in 2..=3usize {
            let parts: Vec<(History, BTreeMap<TxnId, TxnSpec>)> = (0..shards)
                .map(|s| {
                    drive_component(
                        crate::sched::ChainScheduler::new(5000),
                        &component_specs(10 * s as u32, 100 * s as u64 + 1, 4),
                        s as u64, // skewed starts → interleaved merge order
                    )
                })
                .collect();
            let refs: Vec<(&History, &BTreeMap<TxnId, TxnSpec>)> =
                parts.iter().map(|(h, s)| (h, s)).collect();
            let report =
                certify_sharded(&refs, CertifyMode::Chain).expect("disjoint shards certify");
            assert_eq!(report.commits, 4 * shards);
            let merged = merge_shard_histories(
                &parts.iter().map(|(h, _)| h).collect::<Vec<_>>(),
            )
            .unwrap();
            assert_eq!(
                merged.len(),
                parts.iter().map(|(h, _)| h.len()).sum::<usize>()
            );
            // Re-ticked sequentially: strictly increasing from 1.
            for (i, &(t, _)) in merged.events().iter().enumerate() {
                assert_eq!(t, Tick(i as u64 + 1));
            }
        }
    }

    #[test]
    fn swapped_cross_shard_grants_are_rejected() {
        // Both "shards" claim a grant on partition 0 — the disjointness
        // premise of sharded certification, so the merge must refuse.
        let (h1, s1) = drive_component(
            crate::sched::ChainScheduler::new(5000),
            &component_specs(0, 1, 2),
            0,
        );
        let (h2, s2) = drive_component(
            crate::sched::ChainScheduler::new(5000),
            &component_specs(0, 100, 2),
            0,
        );
        let err = certify_sharded(&[(&h1, &s1), (&h2, &s2)], CertifyMode::Chain).unwrap_err();
        assert_eq!(err.at, usize::MAX);
        assert!(err.what.contains("granted by shard"), "{err}");

        // A transaction with events on two shards is just as illegal.
        let mut h2b = History::new();
        h2b.push(Tick(0), Event::Admitted(TxnId(1))); // txn 1 lives in h1
        let err =
            merge_shard_histories(&[&h1, &h2b]).expect_err("split txn must be rejected");
        assert!(err.what.contains("events on shard"), "{err}");
    }

    #[test]
    fn single_shard_merge_is_byte_identical() {
        let (h, specs) = drive_component(
            crate::sched::ChainScheduler::new(5000),
            &component_specs(0, 1, 3),
            7,
        );
        let merged = merge_shard_histories(&[&h]).unwrap();
        assert_eq!(merged.events(), h.events(), "ticks and order untouched");
        let direct = certify_history(&h, &specs, CertifyMode::Chain).unwrap();
        let sharded = certify_sharded(&[(&h, &specs)], CertifyMode::Chain).unwrap();
        assert_eq!(direct, sharded);
    }
}
