//! # wtpg-core
//!
//! Concurrency control of **Bulk Access Transactions** (BATs) — a from-scratch
//! reproduction of Ohmori, Kitsuregawa & Tanaka, *"Concurrency Control of Bulk
//! Access Transactions on Shared Nothing Parallel Database Machines"*
//! (ICDE 1990).
//!
//! A BAT is a transaction that scans or rewrites whole file partitions. At
//! partition-granule locking, data contention is extreme: one BAT blocks the
//! next, forming *chains of blocking* that collapse throughput long before the
//! machine's resources saturate, and a bulk operation is far too expensive to
//! abort. The paper's answer is to make the scheduler *contention-aware*:
//!
//! * Every transaction pre-declares its step sequence and per-step I/O demand
//!   ([`txn`]).
//! * The scheduler maintains a [`Wtpg`] — a **Weighted Transaction
//!   Precedence Graph** whose edge weights count the objects a transaction
//!   still has to access. The longest `T0 → Tf` path of a fully resolved WTPG
//!   is the earliest possible completion time of the whole schedule.
//! * [`ChainScheduler`](sched::ChainScheduler) (the paper's CC1, "CHAIN")
//!   keeps the conflict graph a disjoint union of simple paths and computes
//!   the serialization order with the globally minimal critical path
//!   ([`chain`]), granting only consistent lock requests.
//! * [`KWtpgScheduler`](sched::KWtpgScheduler) (CC2, "K-WTPG") instead scores
//!   each lock request with [`estimate::eq_estimate`] — the critical path the
//!   present schedule would have if the request were granted — and grants the
//!   cheapest conflicting request.
//! * The comparison baselines from the paper's §4 are implemented behind the
//!   same [`Scheduler`](sched::Scheduler) trait: atomic static locking
//!   ([`AslScheduler`](sched::AslScheduler)), cautious two-phase locking
//!   ([`C2plScheduler`](sched::C2plScheduler)), the no-data-contention upper
//!   bound ([`NodcScheduler`](sched::NodcScheduler)), and the Experiment-4
//!   hybrids CHAIN-C2PL / K2-C2PL.
//!
//! The crate is simulator-agnostic: `wtpg-sim` drives these schedulers from a
//! discrete-event model of the paper's shared-nothing machine, but everything
//! here is also usable standalone (see the `quickstart` example at the
//! workspace root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certify;
pub mod chain;
pub mod error;
pub mod estimate;
pub mod history;
pub mod lock;
pub mod partition;
pub mod planner;
pub mod sched;
pub mod stream_certify;
pub mod time;
pub mod txn;
pub mod work;
pub mod wtpg;

pub use certify::{certify_history, CertifyMode, CertifyReport, CertifyViolation};
pub use stream_certify::StreamingCertifier;
pub use error::CoreError;
pub use lock::{LockMode, LockTable};
pub use partition::{Catalog, PartitionId, Placement};
pub use time::Tick;
pub use txn::{AccessMode, StepSpec, TxnId, TxnSpec};
pub use work::Work;
pub use wtpg::Wtpg;
