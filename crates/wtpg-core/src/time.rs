//! Simulated time, in integer milliseconds ("clocks", paper §4.1), plus the
//! logical clock real concurrent drivers stamp their histories with.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};

/// A point in simulated time. One tick is one millisecond — the paper's
/// simulation clock ("1 clock = 1 ms").
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Tick(pub u64);

impl Tick {
    /// Time zero.
    pub const ZERO: Tick = Tick(0);

    /// Builds a tick from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Tick {
        Tick(secs * 1000)
    }

    /// Milliseconds since time zero.
    #[inline]
    pub const fn millis(self) -> u64 {
        self.0
    }

    /// Seconds since time zero (fractional).
    #[inline]
    pub fn secs(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Saturating difference between two instants, as a duration in ticks.
    #[inline]
    pub const fn saturating_since(self, earlier: Tick) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Tick {
    type Output = Tick;
    #[inline]
    fn add(self, rhs: u64) -> Tick {
        Tick(self.0 + rhs)
    }
}

impl AddAssign<u64> for Tick {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for Tick {
    type Output = u64;
    /// Duration in milliseconds between two instants.
    ///
    /// # Panics
    /// Panics if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Tick) -> u64 {
        self.0.checked_sub(rhs.0).expect("tick underflow")
    }
}

impl fmt::Debug for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}ms", self.0)
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.secs())
    }
}

/// A monotone logical clock for drivers with *wall-clock* concurrency.
///
/// The simulator owns a global virtual time, but a real execution engine
/// (`wtpg-rt`) has no such thing: worker threads race, and wall-clock reads
/// are banned from recorded histories because [`crate::history::History`]
/// demands non-decreasing event times and the certifier replays events in
/// recorded order. Instead every control-node operation draws the next value
/// from one shared `LogicalClock`; the resulting [`Tick`]s totally order the
/// history exactly as the control node serialized the decisions.
///
/// The counter is atomic so progress reports and diagnostics may read it
/// without synchronisation; drivers that must keep *recording* and *ticking*
/// atomic with respect to each other (anything feeding one `History`) should
/// call [`LogicalClock::next`] while holding their control-state lock.
#[derive(Debug, Default)]
pub struct LogicalClock(AtomicU64);

impl LogicalClock {
    /// A clock starting at time zero.
    pub const fn new() -> LogicalClock {
        LogicalClock(AtomicU64::new(0))
    }

    /// A clock whose next tick follows `t` — for resuming a recorded run.
    pub const fn starting_after(t: Tick) -> LogicalClock {
        LogicalClock(AtomicU64::new(t.0))
    }

    /// Advances the clock and returns the new instant. Strictly monotone
    /// across all callers: no two `next` calls observe the same tick.
    pub fn next(&self) -> Tick {
        Tick(self.0.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// The most recently issued instant (time zero if none was issued).
    pub fn now(&self) -> Tick {
        Tick(self.0.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(Tick::from_secs(70).millis(), 70_000);
        assert_eq!(Tick(1500).secs(), 1.5);
    }

    #[test]
    fn arithmetic() {
        let t = Tick(100) + 50;
        assert_eq!(t, Tick(150));
        assert_eq!(t - Tick(100), 50);
        assert_eq!(Tick(10).saturating_since(Tick(30)), 0);
        assert_eq!(Tick(30).saturating_since(Tick(10)), 20);
    }

    #[test]
    fn logical_clock_is_strictly_monotone() {
        let c = LogicalClock::new();
        assert_eq!(c.now(), Tick::ZERO);
        let a = c.next();
        let b = c.next();
        assert!(a < b);
        assert_eq!(c.now(), b);
        let resumed = LogicalClock::starting_after(b);
        assert!(resumed.next() > b);
    }

    #[test]
    fn logical_clock_unique_across_threads() {
        let c = LogicalClock::new();
        let ticks: Vec<Tick> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4).map(|_| s.spawn(|| (0..100).map(|_| c.next()).collect::<Vec<_>>())).collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        let mut sorted = ticks.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), ticks.len(), "no duplicate ticks");
        assert_eq!(c.now(), Tick(400));
    }
}
