//! Simulated time, in integer milliseconds ("clocks", paper §4.1).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time. One tick is one millisecond — the paper's
/// simulation clock ("1 clock = 1 ms").
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Tick(pub u64);

impl Tick {
    /// Time zero.
    pub const ZERO: Tick = Tick(0);

    /// Builds a tick from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Tick {
        Tick(secs * 1000)
    }

    /// Milliseconds since time zero.
    #[inline]
    pub const fn millis(self) -> u64 {
        self.0
    }

    /// Seconds since time zero (fractional).
    #[inline]
    pub fn secs(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Saturating difference between two instants, as a duration in ticks.
    #[inline]
    pub const fn saturating_since(self, earlier: Tick) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Tick {
    type Output = Tick;
    #[inline]
    fn add(self, rhs: u64) -> Tick {
        Tick(self.0 + rhs)
    }
}

impl AddAssign<u64> for Tick {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for Tick {
    type Output = u64;
    /// Duration in milliseconds between two instants.
    ///
    /// # Panics
    /// Panics if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Tick) -> u64 {
        self.0.checked_sub(rhs.0).expect("tick underflow")
    }
}

impl fmt::Debug for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}ms", self.0)
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(Tick::from_secs(70).millis(), 70_000);
        assert_eq!(Tick(1500).secs(), 1.5);
    }

    #[test]
    fn arithmetic() {
        let t = Tick(100) + 50;
        assert_eq!(t, Tick(150));
        assert_eq!(t - Tick(100), 50);
        assert_eq!(Tick(10).saturating_since(Tick(30)), 0);
        assert_eq!(Tick(30).saturating_since(Tick(10)), 20);
    }
}
