//! The bulk-access transaction model (paper §2.2).
//!
//! A transaction is a *sequential* execution of steps; each step reads or
//! writes exactly one partition and declares its I/O demand (`costof`) up
//! front. From the declared costs each step's `due` value — the work the
//! transaction must still perform from that step until its commit — is
//! precomputed (§3.1):
//!
//! ```text
//! due(s_N) = costof(s_N)
//! due(s_i) = costof(s_i) + due(s_{i+1})      for i < N
//! ```
//!
//! `due` values are what the WTPG uses as edge weights, so they are stored on
//! the spec and attached to every lock declaration in the lock table.

use std::fmt;

use crate::partition::PartitionId;
use crate::work::Work;

/// Identifier of a transaction. Unique for the lifetime of a scheduler.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Whether a step reads or bulk-updates its partition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AccessMode {
    /// Bulk read — requires a shared lock.
    Read,
    /// Bulk update — requires an exclusive lock. Per the cost model, a bulk
    /// update of `a%` of a partition costs `2a|P|` (read before write).
    Write,
}

impl AccessMode {
    /// True when two accesses to the same granule by *different* transactions
    /// conflict: everything but read/read.
    pub fn conflicts_with(self, other: AccessMode) -> bool {
        !(self == AccessMode::Read && other == AccessMode::Read)
    }
}

/// One declared step: `r_i(P:C)` or `w_i(P:C)` in the paper's notation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StepSpec {
    /// The single partition this step accesses.
    pub partition: PartitionId,
    /// Read or write.
    pub mode: AccessMode,
    /// Declared I/O demand (`costof(s)`), possibly erroneous (Experiment 4).
    pub cost: Work,
    /// True I/O demand actually incurred at the data node. Equal to `cost`
    /// unless an error model perturbed the declaration.
    pub actual_cost: Work,
}

impl StepSpec {
    /// A step whose declared and actual costs agree.
    pub fn new(partition: PartitionId, mode: AccessMode, cost: Work) -> StepSpec {
        StepSpec {
            partition,
            mode,
            cost,
            actual_cost: cost,
        }
    }

    /// A read step of `cost` objects (fractional allowed).
    pub fn read(partition: u32, cost_objects: f64) -> StepSpec {
        StepSpec::new(
            PartitionId(partition),
            AccessMode::Read,
            Work::from_objects_f64(cost_objects),
        )
    }

    /// A write step of `cost` objects (fractional allowed).
    ///
    /// Note: per the paper's cost model the *caller* accounts for the
    /// read-before-write doubling; the value given here is the final
    /// `costof(s)`.
    pub fn write(partition: u32, cost_objects: f64) -> StepSpec {
        StepSpec::new(
            PartitionId(partition),
            AccessMode::Write,
            Work::from_objects_f64(cost_objects),
        )
    }
}

impl fmt::Display for StepSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = match self.mode {
            AccessMode::Read => 'r',
            AccessMode::Write => 'w',
        };
        write!(f, "{m}({}:{})", self.partition, self.cost)
    }
}

/// A fully declared bulk-access transaction: its id, ordered steps, and the
/// precomputed `due` value of every step.
#[derive(Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TxnSpec {
    /// Transaction identifier.
    pub id: TxnId,
    steps: Vec<StepSpec>,
    dues: Vec<Work>,
}

impl TxnSpec {
    /// Declares a transaction from its ordered steps.
    ///
    /// # Panics
    /// Panics if `steps` is empty — the model has no empty transactions.
    pub fn new(id: TxnId, steps: Vec<StepSpec>) -> TxnSpec {
        assert!(!steps.is_empty(), "a transaction needs at least one step");
        let dues = compute_dues(&steps);
        TxnSpec { id, steps, dues }
    }

    /// The declared steps, in execution order.
    pub fn steps(&self) -> &[StepSpec] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Always false; kept for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `due(s_i)`: declared work from the start of step `i` to commit.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn due(&self, i: usize) -> Work {
        self.dues[i]
    }

    /// `due(s_0)` — the initial `w(T0 → Ti)` weight: everything the
    /// transaction declared it must access before commit.
    pub fn total_declared(&self) -> Work {
        self.dues[0]
    }

    /// Total *actual* work across all steps (differs from
    /// [`Self::total_declared`] only under an error model).
    pub fn total_actual(&self) -> Work {
        self.steps.iter().map(|s| s.actual_cost).sum()
    }

    /// Strongest access mode this transaction declares on `p`, or `None` if
    /// it never touches `p`. Write dominates read (lock upgrade).
    pub fn mode_on(&self, p: PartitionId) -> Option<AccessMode> {
        let mut found = None;
        for s in &self.steps {
            if s.partition == p {
                match s.mode {
                    AccessMode::Write => return Some(AccessMode::Write),
                    AccessMode::Read => found = Some(AccessMode::Read),
                }
            }
        }
        found
    }

    /// True when every step is a read — the shape MVCC admits as a
    /// snapshot-reading BAT that bypasses the WTPG entirely.
    pub fn is_read_only(&self) -> bool {
        self.steps.iter().all(|s| s.mode == AccessMode::Read)
    }

    /// Distinct partitions accessed, in first-touch order.
    pub fn partitions(&self) -> Vec<PartitionId> {
        let mut seen = Vec::new();
        for s in &self.steps {
            if !seen.contains(&s.partition) {
                seen.push(s.partition);
            }
        }
        seen
    }

    /// Applies an error model to the *declared* costs, leaving actual costs
    /// intact, and recomputes dues. Used by Experiment 4.
    pub fn with_declared_costs(mut self, declared: &[Work]) -> TxnSpec {
        assert_eq!(
            declared.len(),
            self.steps.len(),
            "one declared cost per step"
        );
        for (s, &c) in self.steps.iter_mut().zip(declared) {
            s.cost = c;
        }
        self.dues = compute_dues(&self.steps);
        self
    }
}

impl fmt::Display for TxnSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.id)?;
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// The paper's `due` recurrence (§3.1).
fn compute_dues(steps: &[StepSpec]) -> Vec<Work> {
    let mut dues = vec![Work::ZERO; steps.len()];
    let mut acc = Work::ZERO;
    for (i, s) in steps.iter().enumerate().rev() {
        acc += s.cost;
        dues[i] = acc;
    }
    dues
}

#[cfg(test)]
mod tests {
    use super::*;

    /// T1 from the paper's Figure 1: r1(A:1) → r1(B:3) → w1(A:1).
    fn t1() -> TxnSpec {
        TxnSpec::new(
            TxnId(1),
            vec![
                StepSpec::read(0, 1.0),
                StepSpec::read(1, 3.0),
                StepSpec::write(0, 1.0),
            ],
        )
    }

    #[test]
    fn due_recurrence_matches_paper_example() {
        // Example 3.1: T1 has just started, so w(T0→T1) = 5.
        let t = t1();
        assert_eq!(t.total_declared(), Work::from_objects(5));
        assert_eq!(t.due(0), Work::from_objects(5));
        assert_eq!(t.due(1), Work::from_objects(4));
        assert_eq!(t.due(2), Work::from_objects(1));
    }

    #[test]
    fn due_with_fractional_costs() {
        // Pattern 1: r(F1:1) → r(F2:5) → w(F1:0.2) → w(F2:1).
        let t = TxnSpec::new(
            TxnId(9),
            vec![
                StepSpec::read(0, 1.0),
                StepSpec::read(1, 5.0),
                StepSpec::write(0, 0.2),
                StepSpec::write(1, 1.0),
            ],
        );
        assert_eq!(t.total_declared(), Work::from_objects_f64(7.2));
        assert_eq!(t.due(2), Work::from_objects_f64(1.2));
        assert_eq!(t.due(3), Work::from_objects(1));
    }

    #[test]
    fn mode_on_takes_strongest() {
        let t = t1();
        assert_eq!(t.mode_on(PartitionId(0)), Some(AccessMode::Write)); // r then w → X
        assert_eq!(t.mode_on(PartitionId(1)), Some(AccessMode::Read));
        assert_eq!(t.mode_on(PartitionId(7)), None);
    }

    #[test]
    fn read_only_means_no_write_step() {
        assert!(!t1().is_read_only());
        let r = TxnSpec::new(
            TxnId(2),
            vec![StepSpec::read(0, 1.0), StepSpec::read(1, 2.0)],
        );
        assert!(r.is_read_only());
    }

    #[test]
    fn partitions_in_first_touch_order() {
        let t = t1();
        assert_eq!(t.partitions(), vec![PartitionId(0), PartitionId(1)]);
    }

    #[test]
    fn conflict_matrix() {
        use AccessMode::*;
        assert!(!Read.conflicts_with(Read));
        assert!(Read.conflicts_with(Write));
        assert!(Write.conflicts_with(Read));
        assert!(Write.conflicts_with(Write));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(t1().to_string(), "T1: r(P0:1) -> r(P1:3) -> w(P0:1)");
    }

    #[test]
    fn erroneous_declarations_keep_actuals() {
        let t =
            t1().with_declared_costs(&[Work::from_objects(2), Work::from_objects(6), Work::ZERO]);
        assert_eq!(t.total_declared(), Work::from_objects(8));
        assert_eq!(t.total_actual(), Work::from_objects(5));
        assert_eq!(t.due(1), Work::from_objects(6));
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_txn_rejected() {
        let _ = TxnSpec::new(TxnId(0), vec![]);
    }
}
