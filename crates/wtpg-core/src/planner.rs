//! Full-SR-order optimisation for **general** (non-chain) WTPGs.
//!
//! The paper proves the problem NP-hard in general (Theorem 3, reduction
//! from job-shop scheduling) and escapes by restricting CHAIN to chain-form
//! graphs. This module is our extension for the unrestricted case:
//!
//! * [`exhaustive`] — all acyclic orientations, `O(2^E)`: the oracle.
//! * [`greedy`] — orient edges heaviest-first, each to the locally cheaper
//!   direction, skipping orientations that would close a cycle.
//! * [`local_search`] — greedy followed by single-edge flips while they
//!   shorten the critical path (first-improvement, bounded passes).
//!
//! On chain-form inputs `local_search` almost always reaches the true
//! optimum (property-tested against the chain DP); on general graphs it is
//! a heuristic. The [`GWtpgScheduler`](crate::sched::GWtpgScheduler) runs
//! CHAIN's global strategy with this planner instead of the chain-form
//! admission test.

use std::collections::BTreeSet;

use crate::txn::TxnId;
use crate::work::Work;
use crate::wtpg::Wtpg;

/// A full SR-order over a WTPG: one oriented pair per conflicting edge,
/// plus the already-resolved precedence edges, and the critical path the
/// whole orientation achieves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Plan {
    /// Oriented pairs `(from, to)` covering every conflicting *and*
    /// precedence edge of the input.
    pub order: BTreeSet<(TxnId, TxnId)>,
    /// Critical path of the WTPG resolved by `order`.
    pub critical_path: Work,
}

impl Plan {
    /// True if the plan orients `from → to`.
    pub fn orients(&self, from: TxnId, to: TxnId) -> bool {
        self.order.contains(&(from, to))
    }
}

/// Applies an orientation of the conflicting edges to a reusable overlay
/// graph (rebuilt from `wtpg` with `clone_from`, which recycles the slot
/// buffers instead of reallocating) and returns its critical path; `None`
/// when the orientation closes a cycle.
fn evaluate(overlay: &mut Wtpg, wtpg: &Wtpg, orientation: &[(TxnId, TxnId)]) -> Option<Work> {
    overlay.clone_from(wtpg);
    for &(from, to) in orientation {
        if overlay.would_deadlock(from, to) {
            return None;
        }
        overlay.resolve(from, to).ok()?;
    }
    overlay.critical_path()
}

fn finish_plan(wtpg: &Wtpg, orientation: Vec<(TxnId, TxnId)>, cp: Work) -> Plan {
    let mut order: BTreeSet<(TxnId, TxnId)> = orientation.into_iter().collect();
    for (a, b, _) in wtpg.precedence_edges() {
        order.insert((a, b));
    }
    Plan {
        order,
        critical_path: cp,
    }
}

/// Exhaustive search over all orientations of the unresolved conflicting
/// edges. The oracle for tests; panics above 20 free edges.
pub fn exhaustive(wtpg: &Wtpg) -> Plan {
    let conflicts = wtpg.conflict_edges();
    assert!(
        conflicts.len() <= 20,
        "exhaustive planner limited to 20 conflicting edges, got {}",
        conflicts.len()
    );
    let mut best: Option<(Vec<(TxnId, TxnId)>, Work)> = None;
    let mut overlay = Wtpg::new();
    let mut orientation: Vec<(TxnId, TxnId)> = Vec::with_capacity(conflicts.len());
    for mask in 0u64..(1 << conflicts.len()) {
        orientation.clear();
        orientation.extend(
            conflicts
                .iter()
                .enumerate()
                .map(|(i, &(a, b, _, _))| if mask >> i & 1 == 0 { (a, b) } else { (b, a) }),
        );
        if let Some(cp) = evaluate(&mut overlay, wtpg, &orientation) {
            if best.as_ref().is_none_or(|(_, b)| cp < *b) {
                best = Some((orientation.clone(), cp));
            }
        }
    }
    let (orientation, cp) =
        best.expect("at least one acyclic orientation exists for an acyclic precedence graph");
    finish_plan(wtpg, orientation, cp)
}

/// Greedy planner: orient conflicting edges one at a time, heaviest first
/// (by `max(w_ab, w_ba)`), each to the direction whose evaluation (with the
/// remaining conflicts deleted) is cheaper; cycle-closing directions are
/// skipped.
pub fn greedy(wtpg: &Wtpg) -> Plan {
    let mut conflicts = wtpg.conflict_edges();
    conflicts.sort_by_key(|&(a, b, w_ab, w_ba)| (std::cmp::Reverse(w_ab.max(w_ba)), a, b));
    let mut overlay = wtpg.clone();
    let mut fwd = Wtpg::new();
    let mut bwd = Wtpg::new();
    let mut orientation = Vec::with_capacity(conflicts.len());
    for (a, b, _, _) in conflicts {
        let forward_ok = !overlay.would_deadlock(a, b);
        let backward_ok = !overlay.would_deadlock(b, a);
        let pick = match (forward_ok, backward_ok) {
            (true, false) => (a, b),
            (false, true) => (b, a),
            (false, false) => unreachable!("both directions of one edge cannot close cycles"),
            (true, true) => {
                // Evaluate both partial resolutions; remaining conflicts are
                // ignored by critical_path, matching E(q)'s step 3.
                fwd.clone_from(&overlay);
                fwd.resolve(a, b).expect("checked acyclic");
                bwd.clone_from(&overlay);
                bwd.resolve(b, a).expect("checked acyclic");
                let cf = fwd.critical_path().expect("acyclic");
                let cb = bwd.critical_path().expect("acyclic");
                if cf <= cb {
                    (a, b)
                } else {
                    (b, a)
                }
            }
        };
        overlay.resolve(pick.0, pick.1).expect("checked acyclic");
        orientation.push(pick);
    }
    let cp = overlay
        .critical_path()
        .expect("greedy keeps the graph acyclic");
    finish_plan(wtpg, orientation, cp)
}

/// Maximum full passes of first-improvement flips.
const LOCAL_SEARCH_PASSES: usize = 8;

/// Greedy plus single-edge flip local search.
pub fn local_search(wtpg: &Wtpg) -> Plan {
    let seed = greedy(wtpg);
    let conflicts = wtpg.conflict_edges();
    let mut orientation: Vec<(TxnId, TxnId)> = conflicts
        .iter()
        .map(|&(a, b, _, _)| if seed.orients(a, b) { (a, b) } else { (b, a) })
        .collect();
    let mut best_cp = seed.critical_path;
    let mut overlay = Wtpg::new();
    for _ in 0..LOCAL_SEARCH_PASSES {
        let mut improved = false;
        for i in 0..orientation.len() {
            let (from, to) = orientation[i];
            orientation[i] = (to, from);
            match evaluate(&mut overlay, wtpg, &orientation) {
                Some(cp) if cp < best_cp => {
                    best_cp = cp;
                    improved = true;
                }
                _ => orientation[i] = (from, to), // revert
            }
        }
        if !improved {
            break;
        }
    }
    finish_plan(wtpg, orientation, best_cp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(o: u64) -> Work {
        Work::from_objects(o)
    }

    /// Figure 2-(a): the planner must find the paper's W with length 6.
    fn figure2a() -> Wtpg {
        let mut g = Wtpg::new();
        g.add_txn(TxnId(1), w(5)).unwrap();
        g.add_txn(TxnId(2), w(2)).unwrap();
        g.add_txn(TxnId(3), w(4)).unwrap();
        g.add_or_merge_conflict(TxnId(1), TxnId(2), w(1), w(5))
            .unwrap();
        g.add_or_merge_conflict(TxnId(2), TxnId(3), w(4), w(2))
            .unwrap();
        g
    }

    /// A non-chain WTPG: a 4-star around T1 plus a triangle — the shape
    /// CHAIN rejects outright.
    fn star_and_triangle() -> Wtpg {
        let mut g = Wtpg::new();
        for i in 1..=6 {
            g.add_txn(TxnId(i), w(2 + i % 3)).unwrap();
        }
        for other in [2, 3, 4] {
            g.add_or_merge_conflict(TxnId(1), TxnId(other), w(other), w(1))
                .unwrap();
        }
        g.add_or_merge_conflict(TxnId(4), TxnId(5), w(2), w(3))
            .unwrap();
        g.add_or_merge_conflict(TxnId(5), TxnId(6), w(1), w(4))
            .unwrap();
        g.add_or_merge_conflict(TxnId(4), TxnId(6), w(2), w(2))
            .unwrap();
        g
    }

    #[test]
    fn all_planners_solve_figure2() {
        let g = figure2a();
        for plan in [exhaustive(&g), greedy(&g), local_search(&g)] {
            assert_eq!(plan.critical_path, w(6), "{plan:?}");
            assert!(plan.orients(TxnId(1), TxnId(2)));
            assert!(plan.orients(TxnId(3), TxnId(2)));
        }
    }

    #[test]
    fn heuristics_match_oracle_on_the_star() {
        let g = star_and_triangle();
        let oracle = exhaustive(&g);
        let ls = local_search(&g);
        let gr = greedy(&g);
        assert!(gr.critical_path >= oracle.critical_path);
        assert!(ls.critical_path >= oracle.critical_path);
        assert!(ls.critical_path <= gr.critical_path);
        // On this instance local search should actually reach the optimum.
        assert_eq!(ls.critical_path, oracle.critical_path);
    }

    #[test]
    fn plans_cover_every_pair_and_respect_precedence() {
        let mut g = star_and_triangle();
        g.resolve(TxnId(1), TxnId(2)).unwrap(); // pre-resolved edge is forced
        let plan = local_search(&g);
        assert!(plan.orients(TxnId(1), TxnId(2)));
        // Every conflicting pair is oriented exactly one way.
        for (a, b, _, _) in g.conflict_edges() {
            assert!(plan.orients(a, b) ^ plan.orients(b, a));
        }
    }

    #[test]
    fn exhaustive_skips_cyclic_orientations() {
        // Pre-resolved T1→T2→T3 with a conflicting (T3,T1): only T1→T3 is
        // acyclic, so the plan must contain it.
        let mut g = Wtpg::new();
        for i in 1..=3 {
            g.add_txn(TxnId(i), w(1)).unwrap();
        }
        g.add_or_merge_conflict(TxnId(1), TxnId(2), w(1), w(1))
            .unwrap();
        g.add_or_merge_conflict(TxnId(2), TxnId(3), w(1), w(1))
            .unwrap();
        g.add_or_merge_conflict(TxnId(1), TxnId(3), w(9), w(9))
            .unwrap();
        g.resolve(TxnId(1), TxnId(2)).unwrap();
        g.resolve(TxnId(2), TxnId(3)).unwrap();
        let plan = exhaustive(&g);
        assert!(plan.orients(TxnId(1), TxnId(3)));
        let gr = greedy(&g);
        assert!(gr.orients(TxnId(1), TxnId(3)));
    }

    #[test]
    fn empty_wtpg_gives_empty_plan() {
        let g = Wtpg::new();
        let plan = local_search(&g);
        assert!(plan.order.is_empty());
        assert_eq!(plan.critical_path, Work::ZERO);
    }
}
