//! The Weighted Transaction Precedence Graph (paper §3.1, Definition 1).
//!
//! Nodes are the live transactions plus two virtual endpoints: `T0`, the
//! initial transaction, and `Tf`, the final one. Between transactions there
//! are two kinds of edges:
//!
//! * **conflicting edges** `(Ti, Tj)` — an unresolved pair of directed edges
//!   created when both transactions have issued conflicting lock declarations
//!   on some granule, carrying *both* candidate weights;
//! * **precedence edges** `Ti → Tj` — a resolved serialization decision,
//!   produced only by resolving a conflicting edge.
//!
//! Weights count work in objects (fixed-point [`Work`] units):
//! `w(T0→Ti)` is what `Ti` must still access before it commits (decremented
//! live, one message per processed object), `w(Ti→Tj)` is what `Tj` must
//! access *after `Ti` commits* before `Tj` itself commits, and `w(Ti→Tf)` is
//! zero under the paper's cost model (bulk-updated data are written back
//! immediately). The longest `T0 → Tf` path of a fully resolved WTPG is the
//! earliest possible completion time of the whole schedule — the quantity
//! both CHAIN and K-WTPG minimise.
//!
//! Committed transactions are removed: their locks are gone and their
//! outgoing precedence edges are satisfied constraints (see DESIGN.md §5).
//!
//! # Storage layout
//!
//! The schedulers hammer `critical_path`, `before`/`after` and
//! `would_deadlock` on every grant decision, so nodes live in a slot arena:
//! a contiguous `Vec<Slot>` with a free list, plus a `TxnId → slot` index
//! that is only touched at admission (`add_txn`) and commit (`remove_txn`).
//! Adjacency lists are `TxnId`-sorted `Vec`s carrying the partner's slot, so
//! traversals walk dense `u32` indices instead of chasing `BTreeMap` nodes,
//! and the public enumeration orders are unchanged from the map-based
//! implementation. Traversal state (Kahn queue, distance array, visit
//! stamps) lives in a reusable scratch behind a `RefCell`, so the read-only
//! query methods allocate nothing in steady state.
//!
//! Every structural mutation — node add/remove, conflict add/merge,
//! resolution — bumps a monotone [`version`](Wtpg::version) counter that the
//! schedulers key their `E(q)`/`W` caches on. Pure `w(T0→Ti)` adjustments
//! (`set_t0_weight`, `decrement_t0_weight`) deliberately do *not* bump it:
//! they model the keeptime drift of §3.4, which the paper's own reuse of `W`
//! between structural changes already tolerates.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

use crate::error::CoreError;
use crate::lock::ArrivalConflict;
use crate::txn::TxnId;
use crate::work::Work;

/// Orientation of a resolved chain edge, in chain-label order: `Down` means
/// `n[k] → n[k+1]`, `Up` means `n[k+1] → n[k]` (paper appendix notation).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Dir {
    /// Lower label precedes higher label.
    Down,
    /// Higher label precedes lower label.
    Up,
}

impl Dir {
    /// The opposite orientation.
    pub fn flip(self) -> Dir {
        match self {
            Dir::Down => Dir::Up,
            Dir::Up => Dir::Down,
        }
    }
}

/// Outgoing precedence edge: successor and `w(me → successor)`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct OutEdge {
    pub(crate) id: TxnId,
    pub(crate) slot: u32,
    pub(crate) w: Work,
}

/// Source of an incoming precedence edge.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Neighbor {
    pub(crate) id: TxnId,
    pub(crate) slot: u32,
}

/// Unresolved conflicting edge: partner and `w(me → partner)`. Symmetric —
/// the partner's list holds the reverse weight.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ConfEdge {
    pub(crate) id: TxnId,
    pub(crate) slot: u32,
    pub(crate) w: Work,
}

/// One arena slot. Dead slots keep their (cleared) adjacency buffers so a
/// reused slot starts with warm allocations.
#[derive(Debug)]
struct Slot {
    live: bool,
    id: TxnId,
    /// `w(T0 → Ti)`: declared work remaining before commit.
    t0_weight: Work,
    /// Outgoing precedence edges, sorted by successor id.
    out: Vec<OutEdge>,
    /// Incoming precedence edge sources, sorted by id.
    inc: Vec<Neighbor>,
    /// Unresolved conflicting edges, sorted by partner id.
    conf: Vec<ConfEdge>,
}

impl Clone for Slot {
    fn clone(&self) -> Slot {
        Slot {
            live: self.live,
            id: self.id,
            t0_weight: self.t0_weight,
            out: self.out.clone(),
            inc: self.inc.clone(),
            conf: self.conf.clone(),
        }
    }

    // `clone_from` keeps the destination's adjacency buffers, so overlay
    // scratch graphs refresh without reallocating.
    fn clone_from(&mut self, src: &Slot) {
        self.live = src.live;
        self.id = src.id;
        self.t0_weight = src.t0_weight;
        self.out.clone_from(&src.out);
        self.inc.clone_from(&src.inc);
        self.conf.clone_from(&src.conf);
    }
}

/// Reusable traversal state. `mark` is an epoch-stamped visited array: a
/// traversal bumps `epoch` instead of clearing the whole vector.
#[derive(Debug, Default)]
struct Scratch {
    indeg: Vec<u32>,
    dist: Vec<Work>,
    queue: Vec<u32>,
    mark: Vec<u32>,
    stack: Vec<u32>,
    epoch: u32,
}

impl Scratch {
    /// Starts a traversal over `n` slots and returns the fresh epoch.
    fn begin_mark(&mut self, n: usize) -> u32 {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrap-around: old stamps become ambiguous, reset them.
            self.mark.fill(0);
            self.epoch = 1;
        }
        self.epoch
    }
}

/// The Weighted Transaction Precedence Graph over the live transactions.
#[derive(Debug, Default)]
pub struct Wtpg {
    slots: Vec<Slot>,
    free: Vec<u32>,
    index: BTreeMap<TxnId, u32>,
    version: u64,
    scratch: RefCell<Scratch>,
}

impl Clone for Wtpg {
    fn clone(&self) -> Wtpg {
        Wtpg {
            slots: self.slots.clone(),
            free: self.free.clone(),
            index: self.index.clone(),
            version: self.version,
            scratch: RefCell::default(),
        }
    }

    fn clone_from(&mut self, src: &Wtpg) {
        self.slots.clone_from(&src.slots);
        self.free.clone_from(&src.free);
        self.index.clone_from(&src.index);
        self.version = src.version;
    }
}

fn find_out(list: &[OutEdge], id: TxnId) -> Result<usize, usize> {
    list.binary_search_by(|e| e.id.cmp(&id))
}

fn find_inc(list: &[Neighbor], id: TxnId) -> Result<usize, usize> {
    list.binary_search_by(|e| e.id.cmp(&id))
}

fn find_conf(list: &[ConfEdge], id: TxnId) -> Result<usize, usize> {
    list.binary_search_by(|e| e.id.cmp(&id))
}

impl Wtpg {
    /// An empty WTPG (just `T0` and `Tf`, conceptually).
    pub fn new() -> Wtpg {
        Wtpg::default()
    }

    /// Number of live transaction nodes.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no transactions are live.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// True if `txn` is a live node.
    pub fn contains(&self, txn: TxnId) -> bool {
        self.index.contains_key(&txn)
    }

    /// Live transaction ids, ascending.
    pub fn txn_ids(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.index.keys().copied()
    }

    /// Monotone structural version: bumped by every node or edge mutation
    /// (add/remove/conflict/resolve), *not* by `w(T0→Ti)` adjustments.
    /// Schedulers key memoised `E(q)` values and chain decompositions on it.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Restores a previously observed version after a sequence of mutations
    /// that provably returned the graph to its earlier logical state (a
    /// rolled-back arrival). Callers must guarantee no version was observed
    /// between the snapshot and the restore.
    pub(crate) fn restore_version(&mut self, v: u64) {
        self.version = v;
    }

    fn lookup(&self, txn: TxnId) -> Result<u32, CoreError> {
        self.index.get(&txn).copied().ok_or(CoreError::UnknownTxn(txn))
    }

    // lint:allow(panic-safety) slot ids are minted by add_txn and always < slots.len()
    fn slot(&self, s: u32) -> &Slot {
        &self.slots[s as usize]
    }

    // lint:allow(panic-safety) slot ids are minted by add_txn and always < slots.len()
    fn slot_mut(&mut self, s: u32) -> &mut Slot {
        &mut self.slots[s as usize]
    }

    // ---- crate-internal views for the overlay estimator (estimate.rs) ----

    pub(crate) fn slot_count(&self) -> usize {
        self.slots.len()
    }

    pub(crate) fn slot_of(&self, txn: TxnId) -> Option<u32> {
        self.index.get(&txn).copied()
    }

    /// Live slots in ascending `TxnId` order.
    pub(crate) fn live_slots(&self) -> impl Iterator<Item = u32> + '_ {
        self.index.values().copied()
    }

    pub(crate) fn slot_txn(&self, s: u32) -> TxnId {
        self.slot(s).id
    }

    pub(crate) fn slot_t0(&self, s: u32) -> Work {
        self.slot(s).t0_weight
    }

    pub(crate) fn out_of(&self, s: u32) -> &[OutEdge] {
        &self.slot(s).out
    }

    pub(crate) fn inc_of(&self, s: u32) -> &[Neighbor] {
        &self.slot(s).inc
    }

    pub(crate) fn conf_of(&self, s: u32) -> &[ConfEdge] {
        &self.slot(s).conf
    }

    /// Adds a transaction node with its initial `w(T0 → Ti) = due(s_0)`.
    ///
    /// # Errors
    /// [`CoreError::DuplicateTxn`] if the id is already live.
    pub fn add_txn(&mut self, txn: TxnId, t0_weight: Work) -> Result<(), CoreError> {
        if self.index.contains_key(&txn) {
            return Err(CoreError::DuplicateTxn(txn));
        }
        let s = match self.free.pop() {
            Some(s) => {
                let slot = self.slot_mut(s);
                debug_assert!(!slot.live && slot.out.is_empty());
                slot.live = true;
                slot.id = txn;
                slot.t0_weight = t0_weight;
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Slot {
                    live: true,
                    id: txn,
                    t0_weight,
                    out: Vec::new(),
                    inc: Vec::new(),
                    conf: Vec::new(),
                });
                s
            }
        };
        self.index.insert(txn, s);
        self.version += 1;
        self.debug_validate();
        Ok(())
    }

    /// Removes a committed (or aborted) transaction and every incident edge.
    pub fn remove_txn(&mut self, txn: TxnId) -> Result<(), CoreError> {
        let s = self.index.remove(&txn).ok_or(CoreError::UnknownTxn(txn))?;
        // Take the adjacency lists out, detach the partners, then hand the
        // cleared buffers back so a reused slot keeps its capacity.
        let mut out = std::mem::take(&mut self.slot_mut(s).out);
        for e in &out {
            let succ = self.slot_mut(e.slot);
            if let Ok(i) = find_inc(&succ.inc, txn) {
                succ.inc.remove(i);
            }
        }
        out.clear();
        let mut inc = std::mem::take(&mut self.slot_mut(s).inc);
        for e in &inc {
            let pred = self.slot_mut(e.slot);
            if let Ok(i) = find_out(&pred.out, txn) {
                pred.out.remove(i);
            }
        }
        inc.clear();
        let mut conf = std::mem::take(&mut self.slot_mut(s).conf);
        for e in &conf {
            let partner = self.slot_mut(e.slot);
            if let Ok(i) = find_conf(&partner.conf, txn) {
                partner.conf.remove(i);
            }
        }
        conf.clear();
        let slot = self.slot_mut(s);
        slot.live = false;
        slot.out = out;
        slot.inc = inc;
        slot.conf = conf;
        self.free.push(s);
        self.version += 1;
        self.debug_validate();
        Ok(())
    }

    /// Ingests the conflicts discovered at `txn`'s arrival: held-lock
    /// conflicts become precedence edges `other → txn` immediately; declared
    /// conflicts become (or merge into) conflicting edges, with the paper's
    /// max rule aggregating multiple granule conflicts per pair.
    ///
    /// Held conflicts are applied first so that a pair which is already
    /// ordered by a held lock folds its declared conflicts into the
    /// precedence edge rather than creating a phantom conflicting edge.
    pub fn ingest_arrival(
        &mut self,
        txn: TxnId,
        conflicts: &[ArrivalConflict],
    ) -> Result<(), CoreError> {
        for c in conflicts {
            if let ArrivalConflict::Held { other, my_due } = *c {
                self.add_or_merge_precedence(other, txn, my_due)?;
            }
        }
        for c in conflicts {
            if let ArrivalConflict::Declared {
                other,
                my_due,
                other_due,
            } = *c
            {
                self.add_or_merge_conflict(txn, other, other_due, my_due)?;
            }
        }
        Ok(())
    }

    /// Adds (or max-merges) a conflicting edge between `a` and `b` with
    /// weights `w_ab = w(a→b)` and `w_ba = w(b→a)`.
    ///
    /// If the pair already carries a precedence edge — the serialization
    /// order was decided by an earlier grant or a held lock — the matching
    /// directed weight is merged into it instead (the other candidate weight
    /// is moot: a resolved pair stays resolved).
    // lint:allow(panic-safety) every index is the Ok of a binary search on the same vec
    pub fn add_or_merge_conflict(
        &mut self,
        a: TxnId,
        b: TxnId,
        w_ab: Work,
        w_ba: Work,
    ) -> Result<(), CoreError> {
        if a == b {
            return Ok(()); // a transaction never conflicts with itself
        }
        let sa = self.lookup(a)?;
        let sb = self.lookup(b)?;
        if let Ok(i) = find_out(&self.slot(sa).out, b) {
            let w = &mut self.slot_mut(sa).out[i].w;
            *w = (*w).max(w_ab);
            self.version += 1;
            return Ok(());
        }
        if let Ok(i) = find_out(&self.slot(sb).out, a) {
            let w = &mut self.slot_mut(sb).out[i].w;
            *w = (*w).max(w_ba);
            self.version += 1;
            return Ok(());
        }
        {
            let ea = self.slot_mut(sa);
            match find_conf(&ea.conf, b) {
                Ok(i) => ea.conf[i].w = ea.conf[i].w.max(w_ab),
                Err(i) => ea.conf.insert(i, ConfEdge { id: b, slot: sb, w: w_ab }),
            }
        }
        {
            let eb = self.slot_mut(sb);
            match find_conf(&eb.conf, a) {
                Ok(i) => eb.conf[i].w = eb.conf[i].w.max(w_ba),
                Err(i) => eb.conf.insert(i, ConfEdge { id: a, slot: sa, w: w_ba }),
            }
        }
        self.version += 1;
        Ok(())
    }

    // lint:allow(panic-safety) every index is the Ok of a binary search on the same vec
    fn add_or_merge_precedence(
        &mut self,
        from: TxnId,
        to: TxnId,
        w: Work,
    ) -> Result<(), CoreError> {
        if from == to {
            return Ok(());
        }
        let sf = self.lookup(from)?;
        let st = self.lookup(to)?;
        debug_assert!(
            find_out(&self.slot(st).out, from).is_err(),
            "precedence edge {to}→{from} contradicts requested {from}→{to}"
        );
        // A conflicting edge between the pair collapses into the precedence edge.
        let ef = self.slot_mut(sf);
        let conf_w = match find_conf(&ef.conf, to) {
            Ok(i) => Some(ef.conf.remove(i).w),
            Err(_) => None,
        };
        let et = self.slot_mut(st);
        if let Ok(i) = find_conf(&et.conf, from) {
            et.conf.remove(i);
        }
        let merged = conf_w.map_or(w, |c| c.max(w));
        let ef = self.slot_mut(sf);
        match find_out(&ef.out, to) {
            Ok(i) => ef.out[i].w = ef.out[i].w.max(merged),
            Err(i) => ef.out.insert(i, OutEdge { id: to, slot: st, w: merged }),
        }
        let et = self.slot_mut(st);
        if let Err(i) = find_inc(&et.inc, from) {
            et.inc.insert(i, Neighbor { id: from, slot: sf });
        }
        self.version += 1;
        Ok(())
    }

    /// Resolves the conflicting edge `(from, to)` into the precedence edge
    /// `from → to`, carrying the stored `w(from→to)` weight (paper
    /// Definition 1, item 2). Resolving an already-resolved pair in the same
    /// direction is a no-op; in the opposite direction it is a logic error
    /// caught in debug builds.
    // lint:allow(panic-safety) conf index is the Ok of a binary search on the same vec
    pub fn resolve(&mut self, from: TxnId, to: TxnId) -> Result<(), CoreError> {
        let sf = self.lookup(from)?;
        self.lookup(to)?;
        if find_out(&self.slot(sf).out, to).is_ok() {
            return Ok(());
        }
        let w = match find_conf(&self.slot(sf).conf, to) {
            Ok(i) => self.slot(sf).conf[i].w,
            Err(_) => Work::ZERO,
        };
        self.add_or_merge_precedence(from, to, w)
    }

    /// `w(T0 → txn)`.
    pub fn t0_weight(&self, txn: TxnId) -> Result<Work, CoreError> {
        Ok(self.slot(self.lookup(txn)?).t0_weight)
    }

    /// Sets `w(T0 → txn)` outright — used at step boundaries, where the
    /// remaining declared work is known exactly (`due(next step)`).
    pub fn set_t0_weight(&mut self, txn: TxnId, w: Work) -> Result<(), CoreError> {
        let s = self.lookup(txn)?;
        self.slot_mut(s).t0_weight = w;
        Ok(())
    }

    /// Decrements `w(T0 → txn)` by `amount`, never dropping below `floor` —
    /// the per-object weight-adjustment message from the data node (§3.1).
    /// The floor protects against over-decrement when declared costs are
    /// erroneous (Experiment 4).
    pub fn decrement_t0_weight(
        &mut self,
        txn: TxnId,
        amount: Work,
        floor: Work,
    ) -> Result<(), CoreError> {
        let s = self.lookup(txn)?;
        let e = self.slot_mut(s);
        e.t0_weight = e.t0_weight.saturating_sub(amount).max(floor);
        Ok(())
    }

    /// Weight of the precedence edge `from → to`, if that edge exists.
    // lint:allow(panic-safety) out index is the Ok of a binary search on the same vec
    pub fn precedence_weight(&self, from: TxnId, to: TxnId) -> Option<Work> {
        let s = self.slot_of(from)?;
        find_out(&self.slot(s).out, to)
            .ok()
            .map(|i| self.slot(s).out[i].w)
    }

    /// Weights `(w(a→b), w(b→a))` of the conflicting edge between `a` and
    /// `b`, if the pair is (still) unresolved.
    // lint:allow(panic-safety) conf indices are the Ok of binary searches on the same vecs
    pub fn conflict_weights(&self, a: TxnId, b: TxnId) -> Option<(Work, Work)> {
        let sa = self.slot_of(a)?;
        let sb = self.slot_of(b)?;
        let ab = find_conf(&self.slot(sa).conf, b)
            .ok()
            .map(|i| self.slot(sa).conf[i].w)?;
        let ba = find_conf(&self.slot(sb).conf, a)
            .ok()
            .map(|i| self.slot(sb).conf[i].w)?;
        Some((ab, ba))
    }

    /// Partners of `txn` over *unresolved* conflicting edges, ascending.
    pub fn conflict_partners(&self, txn: TxnId) -> Vec<TxnId> {
        self.slot_of(txn)
            .map(|s| self.slot(s).conf.iter().map(|e| e.id).collect())
            .unwrap_or_default()
    }

    /// Direct precedence successors of `txn`.
    pub fn precedence_successors(&self, txn: TxnId) -> Vec<TxnId> {
        self.slot_of(txn)
            .map(|s| self.slot(s).out.iter().map(|e| e.id).collect())
            .unwrap_or_default()
    }

    /// Direct precedence predecessors of `txn`.
    pub fn precedence_predecessors(&self, txn: TxnId) -> Vec<TxnId> {
        self.slot_of(txn)
            .map(|s| self.slot(s).inc.iter().map(|e| e.id).collect())
            .unwrap_or_default()
    }

    /// All unresolved conflicting edges as `(a, b, w(a→b), w(b→a))` with
    /// `a < b`, ascending.
    // lint:allow(panic-safety) back[j] is the Ok of a binary search on back
    pub fn conflict_edges(&self) -> Vec<(TxnId, TxnId, Work, Work)> {
        let mut out = Vec::new();
        for (&a, &sa) in &self.index {
            for e in &self.slot(sa).conf {
                if a < e.id {
                    let back = &self.slot(e.slot).conf;
                    let j = find_conf(back, a).expect("invariant: conflict edges are symmetric");
                    out.push((a, e.id, e.w, back[j].w));
                }
            }
        }
        out
    }

    /// All precedence edges as `(from, to, weight)`, ascending by source.
    pub fn precedence_edges(&self) -> Vec<(TxnId, TxnId, Work)> {
        let mut out = Vec::new();
        for (&a, &sa) in &self.index {
            for e in &self.slot(sa).out {
                out.push((a, e.id, e.w));
            }
        }
        out
    }

    /// `before(txn)`: transactions that (transitively) precede `txn` along
    /// precedence edges (paper §3.3 Step 1).
    // lint:allow(panic-safety) begin_mark sizes `mark` to slots.len(); slot ids are in range
    pub fn before(&self, txn: TxnId) -> BTreeSet<TxnId> {
        let mut seen = BTreeSet::new();
        let Some(s0) = self.slot_of(txn) else {
            return seen;
        };
        let mut scratch = self.scratch.borrow_mut();
        let epoch = scratch.begin_mark(self.slots.len());
        let Scratch { mark, stack, .. } = &mut *scratch;
        stack.clear();
        stack.extend(self.slot(s0).inc.iter().map(|e| e.slot));
        while let Some(s) = stack.pop() {
            if mark[s as usize] != epoch {
                mark[s as usize] = epoch;
                let slot = self.slot(s);
                seen.insert(slot.id);
                stack.extend(slot.inc.iter().map(|e| e.slot));
            }
        }
        seen
    }

    /// `after(txn)`: transactions that `txn` (transitively) precedes.
    // lint:allow(panic-safety) begin_mark sizes `mark` to slots.len(); slot ids are in range
    pub fn after(&self, txn: TxnId) -> BTreeSet<TxnId> {
        let mut seen = BTreeSet::new();
        let Some(s0) = self.slot_of(txn) else {
            return seen;
        };
        let mut scratch = self.scratch.borrow_mut();
        let epoch = scratch.begin_mark(self.slots.len());
        let Scratch { mark, stack, .. } = &mut *scratch;
        stack.clear();
        stack.extend(self.slot(s0).out.iter().map(|e| e.slot));
        while let Some(s) = stack.pop() {
            if mark[s as usize] != epoch {
                mark[s as usize] = epoch;
                let slot = self.slot(s);
                seen.insert(slot.id);
                stack.extend(slot.out.iter().map(|e| e.slot));
            }
        }
        seen
    }

    /// True if the precedence edges contain a directed cycle — a deadlock.
    /// (Never true while the schedulers' grant checks hold; used as a
    /// validation invariant and by hypothetical overlays.)
    pub fn has_cycle(&self) -> bool {
        self.critical_path().is_none()
    }

    /// True if adding the precedence edge `from → to` would create a cycle:
    /// the deadlock *prediction* primitive (C2PL, and `E(q) = ∞`). Runs a
    /// DFS from `to` that exits as soon as it reaches `from`.
    // lint:allow(panic-safety) begin_mark sizes `mark` to slots.len(); slot ids are in range
    pub fn would_deadlock(&self, from: TxnId, to: TxnId) -> bool {
        if from == to {
            return true;
        }
        let (Some(sf), Some(st)) = (self.slot_of(from), self.slot_of(to)) else {
            return false;
        };
        let mut scratch = self.scratch.borrow_mut();
        let epoch = scratch.begin_mark(self.slots.len());
        let Scratch { mark, stack, .. } = &mut *scratch;
        stack.clear();
        stack.extend(self.slot(st).out.iter().map(|e| e.slot));
        while let Some(s) = stack.pop() {
            if s == sf {
                return true;
            }
            if mark[s as usize] != epoch {
                mark[s as usize] = epoch;
                stack.extend(self.slot(s).out.iter().map(|e| e.slot));
            }
        }
        false
    }

    /// Longest `T0 → Tf` path over the precedence edges alone (conflicting
    /// edges ignored — `E(q)`'s Step 3 deletion), or `None` when the
    /// precedence edges are cyclic.
    ///
    /// `dist(T) = max(w(T0→T), max over predecessors P of dist(P) + w(P→T))`
    /// and the critical path is `max over T of dist(T)` since every
    /// `w(T → Tf)` is zero. One Kahn pass over the arena, with the in-degree,
    /// distance and queue arrays reused across calls.
    // lint:allow(panic-safety) indeg/dist are resized to slots.len(); queue holds slot ids
    pub fn critical_path(&self) -> Option<Work> {
        if self.index.is_empty() {
            // Fast path: no live transactions, the schedule is just T0 → Tf.
            return Some(Work::ZERO);
        }
        let n = self.slots.len();
        let mut scratch = self.scratch.borrow_mut();
        let Scratch {
            indeg, dist, queue, ..
        } = &mut *scratch;
        indeg.clear();
        indeg.resize(n, 0);
        dist.clear();
        dist.resize(n, Work::ZERO);
        queue.clear();
        for (s, slot) in self.slots.iter().enumerate() {
            if !slot.live {
                continue;
            }
            indeg[s] = slot.inc.len() as u32;
            if slot.inc.is_empty() {
                queue.push(s as u32);
            }
        }
        let mut best = Work::ZERO;
        let mut head = 0;
        while head < queue.len() {
            let s = queue[head] as usize;
            head += 1;
            let slot = &self.slots[s];
            let dt = dist[s].max(slot.t0_weight);
            best = best.max(dt);
            for e in &slot.out {
                let t = e.slot as usize;
                let cand = dt + e.w;
                if cand > dist[t] {
                    dist[t] = cand;
                }
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    queue.push(e.slot);
                }
            }
        }
        (head == self.index.len()).then_some(best)
    }

    /// Builds the WTPG of a set of simultaneously declared transactions —
    /// every pair's conflicts become conflicting edges with the §3.1
    /// weights, nothing resolved. The static analogue of what a scheduler
    /// constructs incrementally; used by the planner, the CLI and tests.
    ///
    /// # Errors
    /// [`CoreError::DuplicateTxn`] on repeated ids.
    pub fn from_declared(specs: &[crate::txn::TxnSpec]) -> Result<Wtpg, CoreError> {
        let mut locks = crate::lock::LockTable::new();
        let mut g = Wtpg::new();
        for spec in specs {
            if g.contains(spec.id) {
                return Err(CoreError::DuplicateTxn(spec.id));
            }
            locks.declare(spec);
            g.add_txn(spec.id, spec.total_declared())?;
            let conflicts = locks.arrival_conflicts(spec);
            g.ingest_arrival(spec.id, &conflicts)?;
        }
        Ok(g)
    }

    /// If the precedence edges are cyclic, names one cycle — for diagnostics
    /// only; the schedulers' grant checks keep live WTPGs acyclic.
    // lint:allow(panic-safety) nodes has an entry for every txn_id; edges name live txns
    pub fn find_precedence_cycle(&self) -> Option<Vec<TxnId>> {
        let mut dg: wtpg_graph::DiGraph<TxnId, ()> = wtpg_graph::DiGraph::new();
        let mut nodes = BTreeMap::new();
        for t in self.txn_ids() {
            nodes.insert(t, dg.add_node(t));
        }
        for (a, b, _) in self.precedence_edges() {
            dg.add_edge(nodes[&a], nodes[&b], ());
        }
        wtpg_graph::find_cycle(&dg).map(|cycle| {
            cycle
                .into_iter()
                .map(|n| *dg.node_weight(n).expect("invariant: cycle nodes come from dg"))
                .collect()
        })
    }

    /// Deep structural self-check of the arena (DESIGN.md §10). Verifies:
    ///
    /// - index ↔ slot agreement: every indexed slot is in bounds, live, and
    ///   carries the id it is indexed under; live-slot count matches;
    /// - free-list / live-slot disjointness: free entries are dead, unique,
    ///   and `free + live` partitions the arena;
    /// - dead slots have empty adjacency (the reuse contract of `add_txn`);
    /// - adjacency is sorted, self-loop-free, targets live slots with
    ///   matching ids, and is mirrored (`out`/`inc`, symmetric `conf`);
    /// - no pair carries both a conflicting and a precedence edge;
    /// - scratch epoch-stamps never exceed the current epoch.
    ///
    /// Costs `O(V + E log E)`; meant for tests, `debug_assertions` hooks and
    /// the [`crate::certify`] replay — not the grant path.
    ///
    /// # Errors
    /// A description of the first violated invariant.
    // lint:allow(panic-safety) indices are validated against slots.len() before use
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.slots.len();
        for (&txn, &s) in &self.index {
            let Some(slot) = self.slots.get(s as usize) else {
                return Err(format!("index maps {txn} to out-of-bounds slot {s}"));
            };
            if !slot.live {
                return Err(format!("index maps {txn} to dead slot {s}"));
            }
            if slot.id != txn {
                return Err(format!("slot {s} holds {} but is indexed as {txn}", slot.id));
            }
        }
        let live = self.slots.iter().filter(|s| s.live).count();
        if live != self.index.len() {
            return Err(format!(
                "{live} live slots but {} index entries",
                self.index.len()
            ));
        }
        let mut free_seen = vec![false; n];
        for &s in &self.free {
            let Some(slot) = self.slots.get(s as usize) else {
                return Err(format!("free list holds out-of-bounds slot {s}"));
            };
            if slot.live {
                return Err(format!("free list holds live slot {s}"));
            }
            if free_seen[s as usize] {
                return Err(format!("free list holds slot {s} twice"));
            }
            free_seen[s as usize] = true;
        }
        if self.free.len() + self.index.len() != n {
            return Err(format!(
                "free ({}) + live ({}) != slots ({n})",
                self.free.len(),
                self.index.len()
            ));
        }
        for (i, slot) in self.slots.iter().enumerate() {
            let s = i as u32;
            if !slot.live {
                if !slot.out.is_empty() || !slot.inc.is_empty() || !slot.conf.is_empty() {
                    return Err(format!("dead slot {s} has non-empty adjacency"));
                }
                continue;
            }
            let a = slot.id;
            if !slot.out.windows(2).all(|w| w[0].id < w[1].id) {
                return Err(format!("slot {s} ({a}) out-edges not strictly sorted"));
            }
            if !slot.inc.windows(2).all(|w| w[0].id < w[1].id) {
                return Err(format!("slot {s} ({a}) inc-edges not strictly sorted"));
            }
            if !slot.conf.windows(2).all(|w| w[0].id < w[1].id) {
                return Err(format!("slot {s} ({a}) conf-edges not strictly sorted"));
            }
            for e in &slot.out {
                if e.id == a {
                    return Err(format!("{a} has a precedence self-edge"));
                }
                let t = self
                    .slots
                    .get(e.slot as usize)
                    .filter(|t| t.live && t.id == e.id);
                if t.is_none() {
                    return Err(format!("{a} → {} points at a stale slot", e.id));
                }
                let target = &self.slots[e.slot as usize];
                if find_inc(&target.inc, a).is_err() {
                    return Err(format!("{a} → {} missing the mirror inc entry", e.id));
                }
            }
            for e in &slot.inc {
                let p = self
                    .slots
                    .get(e.slot as usize)
                    .filter(|p| p.live && p.id == e.id);
                if p.is_none() {
                    return Err(format!("{a} ← {} points at a stale slot", e.id));
                }
                if find_out(&self.slots[e.slot as usize].out, a).is_err() {
                    return Err(format!("{a} ← {} missing the mirror out entry", e.id));
                }
            }
            for e in &slot.conf {
                if e.id == a {
                    return Err(format!("{a} has a conflicting self-edge"));
                }
                let p = self
                    .slots
                    .get(e.slot as usize)
                    .filter(|p| p.live && p.id == e.id);
                if p.is_none() {
                    return Err(format!("{a} ~ {} points at a stale slot", e.id));
                }
                let partner = &self.slots[e.slot as usize];
                if find_conf(&partner.conf, a).is_err() {
                    return Err(format!("{a} ~ {} missing the symmetric conf entry", e.id));
                }
                if find_out(&slot.out, e.id).is_ok() || find_out(&partner.out, a).is_ok() {
                    return Err(format!(
                        "{a} ~ {} is both conflicting and resolved",
                        e.id
                    ));
                }
            }
        }
        let scratch = self.scratch.borrow();
        if scratch.mark.iter().any(|&m| m > scratch.epoch) {
            return Err("scratch mark stamped past the current epoch".to_string());
        }
        Ok(())
    }

    /// `debug_assert!`-level hook: panics on a broken invariant in debug
    /// builds, compiles to nothing in release.
    // lint:allow(panic-safety) deliberate debug-only assertion, absent from release builds
    #[inline]
    pub(crate) fn debug_validate(&self) {
        #[cfg(debug_assertions)]
        if let Err(what) = self.check_invariants() {
            panic!("WTPG invariant violated: {what}");
        }
    }

    /// Renders the WTPG in Graphviz DOT: solid arrows for precedence edges,
    /// dashed double arrows for conflicting pairs, and `T0` with its weights.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("digraph wtpg {\n  rankdir=LR;\n  T0 [shape=doublecircle];\n");
        for (&t, &st) in &self.index {
            let _ = writeln!(s, "  \"{t}\";");
            let _ = writeln!(
                s,
                "  T0 -> \"{t}\" [label=\"{}\", color=gray];",
                self.slot(st).t0_weight
            );
        }
        for (a, b, w) in self.precedence_edges() {
            let _ = writeln!(s, "  \"{a}\" -> \"{b}\" [label=\"{w}\"];");
        }
        for (a, b, w_ab, w_ba) in self.conflict_edges() {
            let _ = writeln!(s, "  \"{a}\" -> \"{b}\" [label=\"{w_ab}\", style=dashed];");
            let _ = writeln!(s, "  \"{b}\" -> \"{a}\" [label=\"{w_ba}\", style=dashed];");
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(o: u64) -> Work {
        Work::from_objects(o)
    }

    /// Builds the paper's Figure 2-(a): T1/T2 conflict on A, T2/T3 on C.
    ///
    /// Weights from Example 3.1: w(T0→T1)=5, w(T0→T2)=2, w(T0→T3)=4;
    /// (T1,T2): w(T1→T2)=1, w(T2→T1)=5; (T2,T3): w(T2→T3)=4, w(T3→T2)=2.
    fn figure2a() -> Wtpg {
        let mut g = Wtpg::new();
        g.add_txn(TxnId(1), w(5)).unwrap();
        g.add_txn(TxnId(2), w(2)).unwrap();
        g.add_txn(TxnId(3), w(4)).unwrap();
        g.add_or_merge_conflict(TxnId(1), TxnId(2), w(1), w(5))
            .unwrap();
        g.add_or_merge_conflict(TxnId(2), TxnId(3), w(4), w(2))
            .unwrap();
        g
    }

    /// Example 3.2: resolving by W = {T1→T2, T3→T2} yields critical path 6.
    #[test]
    fn example_3_2_short_critical_path() {
        let mut g = figure2a();
        g.resolve(TxnId(1), TxnId(2)).unwrap();
        g.resolve(TxnId(3), TxnId(2)).unwrap();
        assert_eq!(g.critical_path(), Some(w(6))); // T0 →5 T1 →1 T2
    }

    /// Example 3.2: the chain of blocking {T1→T2→T3} yields length 10.
    #[test]
    fn example_3_2_chain_of_blocking() {
        let mut g = figure2a();
        g.resolve(TxnId(1), TxnId(2)).unwrap();
        g.resolve(TxnId(2), TxnId(3)).unwrap();
        assert_eq!(g.critical_path(), Some(w(10))); // T0 →5 T1 →1 T2 →4 T3
    }

    #[test]
    fn unresolved_conflicts_are_ignored_by_critical_path() {
        let g = figure2a();
        // No precedence edges yet: critical path = max T0 weight = 5.
        assert_eq!(g.critical_path(), Some(w(5)));
    }

    #[test]
    fn conflict_max_merge_across_granules() {
        let mut g = Wtpg::new();
        g.add_txn(TxnId(1), w(9)).unwrap();
        g.add_txn(TxnId(2), w(9)).unwrap();
        g.add_or_merge_conflict(TxnId(1), TxnId(2), w(1), w(4))
            .unwrap();
        g.add_or_merge_conflict(TxnId(1), TxnId(2), w(3), w(2))
            .unwrap();
        assert_eq!(g.conflict_weights(TxnId(1), TxnId(2)), Some((w(3), w(4))));
    }

    #[test]
    fn conflict_after_resolution_merges_into_precedence() {
        let mut g = Wtpg::new();
        g.add_txn(TxnId(1), w(9)).unwrap();
        g.add_txn(TxnId(2), w(9)).unwrap();
        g.add_or_merge_conflict(TxnId(1), TxnId(2), w(1), w(4))
            .unwrap();
        g.resolve(TxnId(1), TxnId(2)).unwrap();
        assert_eq!(g.precedence_weight(TxnId(1), TxnId(2)), Some(w(1)));
        // A later conflict on another granule folds into the existing edge.
        g.add_or_merge_conflict(TxnId(2), TxnId(1), w(7), w(2))
            .unwrap();
        assert_eq!(g.precedence_weight(TxnId(1), TxnId(2)), Some(w(2)));
        assert_eq!(g.conflict_weights(TxnId(1), TxnId(2)), None);
    }

    #[test]
    fn ingest_arrival_held_then_declared() {
        let mut g = Wtpg::new();
        g.add_txn(TxnId(1), w(5)).unwrap();
        g.add_txn(TxnId(2), w(3)).unwrap();
        g.ingest_arrival(
            TxnId(2),
            &[
                ArrivalConflict::Declared {
                    other: TxnId(1),
                    my_due: w(2),
                    other_due: w(4),
                },
                ArrivalConflict::Held {
                    other: TxnId(1),
                    my_due: w(3),
                },
            ],
        )
        .unwrap();
        // Held conflict resolves the pair T1 → T2; declared conflict merges.
        assert_eq!(g.precedence_weight(TxnId(1), TxnId(2)), Some(w(3)));
        assert!(g.conflict_weights(TxnId(1), TxnId(2)).is_none());
    }

    #[test]
    fn before_and_after_are_transitive() {
        let mut g = figure2a();
        g.resolve(TxnId(1), TxnId(2)).unwrap();
        g.resolve(TxnId(2), TxnId(3)).unwrap();
        assert_eq!(g.before(TxnId(3)), BTreeSet::from([TxnId(1), TxnId(2)]));
        assert_eq!(g.after(TxnId(1)), BTreeSet::from([TxnId(2), TxnId(3)]));
        assert!(g.before(TxnId(1)).is_empty());
    }

    #[test]
    fn deadlock_prediction() {
        let mut g = figure2a();
        g.resolve(TxnId(1), TxnId(2)).unwrap();
        g.resolve(TxnId(2), TxnId(3)).unwrap();
        assert!(g.would_deadlock(TxnId(3), TxnId(1)));
        assert!(g.would_deadlock(TxnId(2), TxnId(1)));
        assert!(!g.would_deadlock(TxnId(1), TxnId(3)));
        assert!(g.would_deadlock(TxnId(1), TxnId(1)));
    }

    #[test]
    fn remove_txn_detaches_all_edges() {
        let mut g = figure2a();
        g.resolve(TxnId(1), TxnId(2)).unwrap();
        g.remove_txn(TxnId(2)).unwrap();
        assert_eq!(g.len(), 2);
        assert!(g.precedence_successors(TxnId(1)).is_empty());
        assert!(g.conflict_partners(TxnId(3)).is_empty());
        assert_eq!(g.critical_path(), Some(w(5)));
    }

    #[test]
    fn weight_decrement_with_floor() {
        let mut g = Wtpg::new();
        g.add_txn(TxnId(1), w(5)).unwrap();
        g.decrement_t0_weight(TxnId(1), w(1), Work::ZERO).unwrap();
        assert_eq!(g.t0_weight(TxnId(1)).unwrap(), w(4));
        // Floor stops the decrement (erroneous-declaration clamp).
        g.decrement_t0_weight(TxnId(1), w(10), w(2)).unwrap();
        assert_eq!(g.t0_weight(TxnId(1)).unwrap(), w(2));
    }

    #[test]
    fn duplicate_and_unknown_txn_errors() {
        let mut g = Wtpg::new();
        g.add_txn(TxnId(1), w(1)).unwrap();
        assert_eq!(
            g.add_txn(TxnId(1), w(1)),
            Err(CoreError::DuplicateTxn(TxnId(1)))
        );
        assert_eq!(g.t0_weight(TxnId(9)), Err(CoreError::UnknownTxn(TxnId(9))));
        assert_eq!(g.remove_txn(TxnId(9)), Err(CoreError::UnknownTxn(TxnId(9))));
    }

    #[test]
    fn cycle_makes_critical_path_none() {
        // Cycles cannot arise through resolve() under the schedulers' checks,
        // but critical_path must stay total for validation code.
        let mut g = Wtpg::new();
        g.add_txn(TxnId(1), w(1)).unwrap();
        g.add_txn(TxnId(2), w(1)).unwrap();
        g.add_or_merge_conflict(TxnId(1), TxnId(2), w(1), w(1))
            .unwrap();
        g.resolve(TxnId(1), TxnId(2)).unwrap();
        // Force the reverse edge directly (bypassing debug assert via a fresh
        // conflict is impossible — simulate by second conflict pair).
        g.add_txn(TxnId(3), w(1)).unwrap();
        g.add_or_merge_conflict(TxnId(2), TxnId(3), w(1), w(1))
            .unwrap();
        g.add_or_merge_conflict(TxnId(3), TxnId(1), w(1), w(1))
            .unwrap();
        g.resolve(TxnId(2), TxnId(3)).unwrap();
        g.resolve(TxnId(3), TxnId(1)).unwrap();
        assert!(g.has_cycle());
        assert_eq!(g.critical_path(), None);
    }

    #[test]
    fn from_declared_builds_figure2a() {
        use crate::txn::{StepSpec, TxnSpec};
        let specs = vec![
            TxnSpec::new(
                TxnId(1),
                vec![
                    StepSpec::read(0, 1.0),
                    StepSpec::read(1, 3.0),
                    StepSpec::write(0, 1.0),
                ],
            ),
            TxnSpec::new(
                TxnId(2),
                vec![StepSpec::read(2, 1.0), StepSpec::write(0, 1.0)],
            ),
            TxnSpec::new(
                TxnId(3),
                vec![StepSpec::write(2, 1.0), StepSpec::read(3, 3.0)],
            ),
        ];
        let g = Wtpg::from_declared(&specs).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.conflict_weights(TxnId(1), TxnId(2)), Some((w(1), w(5))));
        assert_eq!(g.conflict_weights(TxnId(2), TxnId(3)), Some((w(4), w(2))));
        assert_eq!(g.t0_weight(TxnId(1)).unwrap(), w(5));
        assert!(Wtpg::from_declared(&[specs[0].clone(), specs[0].clone()]).is_err());
    }

    #[test]
    fn find_precedence_cycle_names_the_participants() {
        let mut g = Wtpg::new();
        for i in 1..=3 {
            g.add_txn(TxnId(i), w(1)).unwrap();
        }
        g.add_or_merge_conflict(TxnId(1), TxnId(2), w(1), w(1))
            .unwrap();
        g.add_or_merge_conflict(TxnId(2), TxnId(3), w(1), w(1))
            .unwrap();
        g.add_or_merge_conflict(TxnId(3), TxnId(1), w(1), w(1))
            .unwrap();
        g.resolve(TxnId(1), TxnId(2)).unwrap();
        assert_eq!(g.find_precedence_cycle(), None);
        g.resolve(TxnId(2), TxnId(3)).unwrap();
        g.resolve(TxnId(3), TxnId(1)).unwrap();
        let cycle = g.find_precedence_cycle().expect("cycle exists");
        let mut sorted = cycle.clone();
        sorted.sort();
        assert_eq!(sorted, vec![TxnId(1), TxnId(2), TxnId(3)]);
    }

    #[test]
    fn resolve_same_direction_is_idempotent() {
        let mut g = figure2a();
        g.resolve(TxnId(1), TxnId(2)).unwrap();
        g.resolve(TxnId(1), TxnId(2)).unwrap();
        assert_eq!(g.precedence_weight(TxnId(1), TxnId(2)), Some(w(1)));
    }

    #[test]
    fn dot_export_mentions_all_nodes() {
        let g = figure2a();
        let dot = g.to_dot();
        assert!(dot.contains("\"T1\""));
        assert!(dot.contains("\"T2\""));
        assert!(dot.contains("\"T3\""));
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn empty_graph_critical_path_fast_path() {
        let g = Wtpg::new();
        assert_eq!(g.critical_path(), Some(Work::ZERO));
        assert!(!g.has_cycle());
        // Emptied graphs hit the same path even with retired slots around.
        let mut g = figure2a();
        for i in 1..=3 {
            g.remove_txn(TxnId(i)).unwrap();
        }
        assert!(g.is_empty());
        assert_eq!(g.critical_path(), Some(Work::ZERO));
    }

    #[test]
    fn version_tracks_structural_mutations_only() {
        let mut g = Wtpg::new();
        let v0 = g.version();
        g.add_txn(TxnId(1), w(5)).unwrap();
        g.add_txn(TxnId(2), w(2)).unwrap();
        let v1 = g.version();
        assert!(v1 > v0);
        // Weight-only T0 adjustments (keeptime drift) do not bump.
        g.set_t0_weight(TxnId(1), w(4)).unwrap();
        g.decrement_t0_weight(TxnId(1), w(1), Work::ZERO).unwrap();
        assert_eq!(g.version(), v1);
        // Edge mutations do.
        g.add_or_merge_conflict(TxnId(1), TxnId(2), w(1), w(1))
            .unwrap();
        let v2 = g.version();
        assert!(v2 > v1);
        g.resolve(TxnId(1), TxnId(2)).unwrap();
        let v3 = g.version();
        assert!(v3 > v2);
        // Idempotent same-direction resolve is a no-op: no bump.
        g.resolve(TxnId(1), TxnId(2)).unwrap();
        assert_eq!(g.version(), v3);
        g.remove_txn(TxnId(2)).unwrap();
        assert!(g.version() > v3);
    }

    #[test]
    fn slots_are_reused_after_removal() {
        let mut g = Wtpg::new();
        for i in 1..=4 {
            g.add_txn(TxnId(i), w(1)).unwrap();
        }
        g.add_or_merge_conflict(TxnId(1), TxnId(2), w(2), w(3))
            .unwrap();
        g.resolve(TxnId(3), TxnId(4)).ok();
        g.remove_txn(TxnId(2)).unwrap();
        g.remove_txn(TxnId(3)).unwrap();
        let arena = g.slot_count();
        // New admissions fill the retired slots instead of growing the arena.
        g.add_txn(TxnId(5), w(7)).unwrap();
        g.add_txn(TxnId(6), w(8)).unwrap();
        assert_eq!(g.slot_count(), arena);
        // And the recycled nodes behave like fresh ones.
        assert!(g.conflict_partners(TxnId(5)).is_empty());
        assert!(g.precedence_successors(TxnId(6)).is_empty());
        g.add_or_merge_conflict(TxnId(5), TxnId(6), w(1), w(2))
            .unwrap();
        assert_eq!(g.conflict_weights(TxnId(5), TxnId(6)), Some((w(1), w(2))));
        assert_eq!(
            g.txn_ids().collect::<Vec<_>>(),
            vec![TxnId(1), TxnId(4), TxnId(5), TxnId(6)]
        );
    }
}
